#include "carbon/core/carbon_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/core/checkpoint.hpp"
#include "carbon/ea/archive.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/population_stats.hpp"

namespace carbon::core {

namespace {

/// A complete bi-level solution held in the archive.
struct ArchivedSolution {
  bcpop::Pricing pricing;
  bcpop::Evaluation evaluation;
};

/// Backend counters accumulated since run() entry (the evaluator may be
/// external and carry history from earlier runs).
obs::JournalBackendStats backend_delta(const bcpop::BackendStats& now,
                                       const bcpop::BackendStats& start) {
  obs::JournalBackendStats d;
  d.relaxation_cache_hits =
      now.relaxation_cache_hits - start.relaxation_cache_hits;
  d.relaxation_cache_misses =
      now.relaxation_cache_misses - start.relaxation_cache_misses;
  d.relaxation_cache_evictions =
      now.relaxation_cache_evictions - start.relaxation_cache_evictions;
  d.heuristic_dedup_hits =
      now.heuristic_dedup_hits - start.heuristic_dedup_hits;
  d.score_cache_hits = now.score_cache_hits - start.score_cache_hits;
  d.score_cache_evictions =
      now.score_cache_evictions - start.score_cache_evictions;
  d.guard_trips = now.guard_trips - start.guard_trips;
  d.guard_degraded_evals =
      now.guard_degraded_evals - start.guard_degraded_evals;
  d.guard_budget_exhausted =
      now.guard_budget_exhausted - start.guard_budget_exhausted;
  d.lp_family_rebinds = now.lp_family_rebinds - start.lp_family_rebinds;
  d.lp_warm_start_rejects =
      now.lp_warm_start_rejects - start.lp_warm_start_rejects;
  d.lp_pool_hits = now.lp_pool_hits - start.lp_pool_hits;
  d.lp_pool_rejects = now.lp_pool_rejects - start.lp_pool_rejects;
  d.lp_pivots_saved = now.lp_pivots_saved - start.lp_pivots_saved;
  return d;
}

}  // namespace

namespace {

void validate_config(const CarbonConfig& cfg) {
  if (cfg.ul_population_size < 2 || cfg.gp_population_size < 2) {
    throw std::invalid_argument("CarbonSolver: population sizes must be >= 2");
  }
  if (cfg.heuristic_sample_size < 1) {
    throw std::invalid_argument("CarbonSolver: heuristic_sample_size >= 1");
  }
  if (cfg.checkpoint.every < 0) {
    throw std::invalid_argument("CarbonSolver: checkpoint.every must be >= 0");
  }
  if (cfg.checkpoint.every > 0 && cfg.checkpoint.path.empty()) {
    throw std::invalid_argument(
        "CarbonSolver: checkpoint.path required when checkpoint.every > 0");
  }
  guard::validate(cfg.guard);
}

}  // namespace

CarbonSolver::CarbonSolver(const bcpop::Instance& instance,
                           CarbonConfig config)
    : inst_(&instance), cfg_(std::move(config)) {
  validate_config(cfg_);
}

CarbonSolver::CarbonSolver(bcpop::EvaluatorInterface& evaluator,
                           CarbonConfig config)
    : external_(&evaluator), cfg_(std::move(config)) {
  validate_config(cfg_);
}

CarbonResult CarbonSolver::run() {
  if (external_ != nullptr) return run_with(*external_);
  // Pool mode always routes through the parallel evaluator — it owns the
  // staged basis-pool discipline — even at eval_threads == 1.
  if (cfg_.eval_threads != 1 || cfg_.lp_warm == bcpop::LpWarm::kPool) {
    // The pool must hold at least two generations of the UL population's
    // bases: with fewer slots the LRU evicts the not-yet-re-evaluated
    // members' parent bases mid-generation (their last touch is a whole
    // generation old), and every such member falls back to a far-away
    // cousin basis instead of its own lineage.
    const std::size_t pool_cap =
        std::max<std::size_t>(bcpop::BasisPool::kDefaultCapacity,
                              2 * cfg_.ul_population_size);
    bcpop::ParallelEvaluator par(
        *inst_,
        bcpop::ParallelEvaluator::Options{.threads = cfg_.eval_threads,
                                          .sched = cfg_.sched,
                                          .memo_xgen = cfg_.memo_xgen,
                                          .lp_warm = cfg_.lp_warm,
                                          .basis_pool_capacity = pool_cap});
    par.set_polish(cfg_.memetic_polish);
    par.set_compiled_scoring(cfg_.compiled_scoring);
    return run_with(par);
  }
  bcpop::Evaluator own(*inst_);
  own.set_polish(cfg_.memetic_polish);
  own.set_compiled_scoring(cfg_.compiled_scoring);
  own.set_memo_xgen(cfg_.memo_xgen);
  return run_with(own);
}

CarbonResult CarbonSolver::run_with(bcpop::EvaluatorInterface& eval) {
  // Load (and fully validate) any resume checkpoint before touching solver
  // or telemetry state, so a bad file rejects with nothing applied.
  const bool resuming = !cfg_.checkpoint.resume_from.empty();
  CarbonCheckpoint ck;
  if (resuming) {
    ck = CarbonCheckpoint::load(cfg_.checkpoint.resume_from);
    if (ck.seed != cfg_.seed) {
      throw CheckpointError("checkpoint: seed mismatch (file " +
                            std::to_string(ck.seed) + ", config " +
                            std::to_string(cfg_.seed) + ")");
    }
    if (ck.ul_pop.size() != cfg_.ul_population_size ||
        ck.gp_pop.size() != cfg_.gp_population_size) {
      throw CheckpointError(
          "checkpoint: population shape does not match the configured run");
    }
  }

  common::Rng rng(cfg_.seed);
  const auto bounds = eval.price_bounds();
  long long ul_start = eval.ul_evaluations();
  long long ll_start = eval.ll_evaluations();

  // Telemetry is pure observation: nothing below reads it back, so the
  // trajectory is bit-identical whether or not sinks are attached.
  obs::MetricsRegistry* const metrics = cfg_.telemetry.metrics;
  obs::RunJournal* const journal = cfg_.telemetry.journal;
  if (metrics != nullptr) eval.set_metrics(metrics);
  bcpop::BackendStats backend_start = eval.backend_stats();
  if (journal != nullptr) {
    journal->begin_run("carbon", cfg_.seed, cfg_.eval_threads,
                       cfg_.compiled_scoring);
  }

  // --- Initial populations (skipped on resume: the checkpoint carries the
  // populations and the RNG state that already consumed this entropy) ---
  std::vector<bcpop::Pricing> ul_pop;
  ul_pop.reserve(cfg_.ul_population_size);
  std::vector<gp::Tree> gp_pop;
  gp_pop.reserve(cfg_.gp_population_size);
  if (!resuming) {
    for (std::size_t i = 0; i < cfg_.ul_population_size; ++i) {
      ul_pop.push_back(ea::random_real_vector(rng, bounds));
    }
    for (std::size_t i = 0; i < cfg_.gp_population_size; ++i) {
      gp_pop.push_back(gp::generate_ramped(rng, cfg_.gp_ops.generate));
    }
  }

  ea::Archive<ArchivedSolution> solution_archive(cfg_.ul_archive_size,
                                                 /*maximize=*/true);
  ea::Archive<gp::Tree> heuristic_archive(cfg_.gp_archive_size,
                                          /*maximize=*/false);

  CarbonResult result;
  result.best_gap = std::numeric_limits<double>::infinity();
  result.best_ul_objective = -std::numeric_limits<double>::infinity();

  std::vector<double> ul_fitness(cfg_.ul_population_size, 0.0);
  std::vector<double> gp_fitness(cfg_.gp_population_size, 0.0);

  int generation = 0;
  if (resuming) {
    rng.set_state(ck.progress.rng);
    generation = ck.progress.generation;
    // Budgets and backend counters continue from the checkpoint: offset the
    // fresh evaluator's cumulative counters by what the original run had
    // consumed, so `now - start` spans both run segments.
    ul_start = eval.ul_evaluations() - ck.progress.consumed_ul;
    ll_start = eval.ll_evaluations() - ck.progress.consumed_ll;
    backend_start.relaxation_cache_hits -=
        ck.progress.backend.relaxation_cache_hits;
    backend_start.relaxation_cache_misses -=
        ck.progress.backend.relaxation_cache_misses;
    backend_start.relaxation_cache_evictions -=
        ck.progress.backend.relaxation_cache_evictions;
    backend_start.heuristic_dedup_hits -=
        ck.progress.backend.heuristic_dedup_hits;
    backend_start.score_cache_hits -= ck.progress.backend.score_cache_hits;
    backend_start.score_cache_evictions -=
        ck.progress.backend.score_cache_evictions;
    backend_start.guard_trips -= ck.progress.backend.guard_trips;
    backend_start.guard_degraded_evals -=
        ck.progress.backend.guard_degraded_evals;
    backend_start.guard_budget_exhausted -=
        ck.progress.backend.guard_budget_exhausted;
    backend_start.lp_family_rebinds -= ck.progress.backend.lp_family_rebinds;
    backend_start.lp_warm_start_rejects -=
        ck.progress.backend.lp_warm_start_rejects;
    backend_start.lp_pool_hits -= ck.progress.backend.lp_pool_hits;
    backend_start.lp_pool_rejects -= ck.progress.backend.lp_pool_rejects;
    backend_start.lp_pivots_saved -= ck.progress.backend.lp_pivots_saved;
    static_cast<RunResult&>(result) = std::move(ck.progress.result);
    // Drop any cache state the (possibly reused) evaluator accumulated
    // before this resume: entries warmed by a different run segment — e.g.
    // under other guard limits or toggles — must not leak into the resumed
    // trajectory. Counters survive; the offsets above rely on them.
    eval.clear_caches();
    ul_pop = std::move(ck.ul_pop);
    gp_pop = std::move(ck.gp_pop);
    // Archives are stored best-first; re-adding in that order reproduces
    // the exact internal ordering (ties keep insertion order).
    for (ArchivedPricingState& e : ck.solution_archive) {
      solution_archive.add({std::move(e.pricing), std::move(e.evaluation)},
                           e.fitness);
    }
    for (ArchivedHeuristicState& e : ck.heuristic_archive) {
      heuristic_archive.add(std::move(e.tree), e.fitness);
    }
    if (journal != nullptr) {
      obs::ResumeRecord rec;
      rec.generation = generation;
      rec.ul_evals = ck.progress.consumed_ul;
      rec.ll_evals = ck.progress.consumed_ll;
      rec.checkpoint_path = cfg_.checkpoint.resume_from;
      journal->write_resume(rec);
    }
  }

  // Guard budgets + injection countdown. ll_start is the evaluator counter
  // reading at run-evaluation #0 (already offset by the resumed segment's
  // consumption), so an injection ordinal counts evaluations of the WHOLE
  // logical run: one that fired before the checkpoint lands below the
  // current counter and never re-fires, and a degraded-then-resumed run is
  // bit-identical to an uninterrupted one.
  eval.set_guard(cfg_.guard, ll_start);

  const auto write_checkpoint = [&] {
    CarbonCheckpoint out;
    out.seed = cfg_.seed;
    out.progress.rng = rng.state();
    out.progress.generation = generation;
    out.progress.consumed_ul = eval.ul_evaluations() - ul_start;
    out.progress.consumed_ll = eval.ll_evaluations() - ll_start;
    out.progress.backend = backend_delta(eval.backend_stats(), backend_start);
    out.progress.result = static_cast<const RunResult&>(result);
    out.ul_pop = ul_pop;
    out.gp_pop = gp_pop;
    for (const auto& e : solution_archive.entries()) {
      out.solution_archive.push_back(
          {e.item.pricing, e.item.evaluation, e.fitness});
    }
    for (const auto& e : heuristic_archive.entries()) {
      out.heuristic_archive.push_back({e.item, e.fitness});
    }
    out.save(cfg_.checkpoint.path);
  };
  long long next_checkpoint =
      cfg_.checkpoint.every > 0 ? generation + cfg_.checkpoint.every : 0;
  while (eval.ul_evaluations() - ul_start < cfg_.ul_eval_budget &&
         eval.ll_evaluations() - ll_start < cfg_.ll_eval_budget) {
    // ---- 1. Competition sample: pricings the predators must solve well ----
    std::vector<const bcpop::Pricing*> sample;
    sample.reserve(cfg_.heuristic_sample_size);
    for (std::size_t s = 0; s < cfg_.heuristic_sample_size; ++s) {
      // Mix current prey with archived elites once the archive has content.
      if (!solution_archive.empty() && rng.chance(0.3)) {
        sample.push_back(&solution_archive.sample(rng).item.pricing);
      } else {
        sample.push_back(&ul_pop[rng.below(ul_pop.size())]);
      }
    }

    // ---- 2. Predator evaluation: mean %-gap over the sample ----
    // One batch of (heuristic × sample pricing) jobs; the evaluator may fan
    // them across threads. Reduction walks the results in submission order,
    // so fitness, archive updates and the champion choice are bit-identical
    // to the serial loop.
    common::RunningStats generation_gap;
    {
      std::vector<bcpop::HeuristicJob> jobs;
      jobs.reserve(gp_pop.size() * sample.size());
      for (std::size_t h = 0; h < gp_pop.size(); ++h) {
        for (const bcpop::Pricing* x : sample) {
          jobs.push_back(
              {*x, &gp_pop[h], bcpop::EvalPurpose::kLowerOnly});
        }
      }
      obs::ScopedTimer timer(metrics, "time/eval_batch");
      const std::vector<bcpop::Evaluation> evals =
          eval.evaluate_heuristic_batch(jobs);
      timer.stop();
      for (std::size_t h = 0; h < gp_pop.size(); ++h) {
        common::RunningStats gaps;
        for (std::size_t s = 0; s < sample.size(); ++s) {
          const bcpop::Evaluation& e = evals[h * sample.size() + s];
          gaps.add(cfg_.predator_fitness == PredatorFitness::kGap
                       ? e.gap_percent
                       : e.ll_objective);
        }
        gp_fitness[h] = gaps.mean();
        generation_gap.add(gp_fitness[h]);
        heuristic_archive.add(gp_pop[h], gp_fitness[h]);
      }
    }
    const std::size_t champion_idx = static_cast<std::size_t>(
        std::min_element(gp_fitness.begin(), gp_fitness.end()) -
        gp_fitness.begin());
    // The follower model: the best heuristic known overall (archive head).
    const gp::Tree& follower_model = heuristic_archive.best().item;

    // ---- 3. Prey evaluation: leader revenue under the follower model ----
    // Optimistic stance: the single best model speaks for the follower.
    // Pessimistic stance: consult the top-E archived models and keep the
    // least favourable revenue (paper §II's pessimistic position).
    const std::size_t ensemble =
        cfg_.stance == Stance::kPessimistic
            ? std::max<std::size_t>(
                  1, std::min(cfg_.follower_ensemble,
                              heuristic_archive.size()))
            : 1;
    double current_best_ul = -std::numeric_limits<double>::infinity();
    std::vector<bcpop::HeuristicJob> prey_jobs;
    prey_jobs.reserve(ul_pop.size() * ensemble);
    for (std::size_t i = 0; i < ul_pop.size(); ++i) {
      prey_jobs.push_back(
          {ul_pop[i], &follower_model, bcpop::EvalPurpose::kBoth});
      // Ensemble alternates consume the leader revenue they compute (the
      // pessimistic min below), so they are full bi-level evaluations and
      // charge the UL budget — kLowerOnly here would obtain F without
      // paying for it (the Table II accounting bug).
      for (std::size_t h = 1; h < ensemble; ++h) {
        prey_jobs.push_back({ul_pop[i], &heuristic_archive.at(h).item,
                             bcpop::EvalPurpose::kBoth});
      }
    }
    obs::ScopedTimer prey_timer(metrics, "time/eval_batch");
    std::vector<bcpop::Evaluation> prey_evals =
        eval.evaluate_heuristic_batch(prey_jobs);
    prey_timer.stop();
    for (std::size_t i = 0; i < ul_pop.size(); ++i) {
      bcpop::Evaluation e = std::move(prey_evals[i * ensemble]);
      for (std::size_t h = 1; h < ensemble; ++h) {
        bcpop::Evaluation& alt = prey_evals[i * ensemble + h];
        if (alt.ll_feasible && alt.ul_objective < e.ul_objective) {
          e = std::move(alt);
        }
      }
      ul_fitness[i] = e.ul_objective;
      current_best_ul = std::max(current_best_ul, e.ul_objective);
      if (e.ll_feasible) {
        result.best_gap = std::min(result.best_gap, e.gap_percent);
        if (e.ul_objective > result.best_ul_objective) {
          result.best_ul_objective = e.ul_objective;
          result.best_pricing = ul_pop[i];
          result.best_evaluation = e;
        }
      }
      solution_archive.add({ul_pop[i], std::move(e)}, ul_fitness[i]);
    }

    // ---- 4. Convergence trace ----
    if (cfg_.record_convergence) {
      ConvergencePoint pt;
      pt.generation = generation;
      pt.ul_evaluations = eval.ul_evaluations() - ul_start;
      pt.ll_evaluations = eval.ll_evaluations() - ll_start;
      pt.best_ul_so_far = result.best_ul_objective;
      pt.best_gap_so_far = result.best_gap;
      pt.current_best_ul = current_best_ul;
      pt.current_mean_gap = generation_gap.mean();
      const gp::PopulationStats pop_stats = gp::analyze_population(gp_pop);
      pt.gp_unique_fraction =
          static_cast<double>(pop_stats.unique_structures) /
          static_cast<double>(std::max<std::size_t>(1, pop_stats.population));
      pt.gp_mean_tree_size = pop_stats.mean_size;
      pt.phase = "carbon";
      result.convergence.push_back(std::move(pt));
    }
    if (journal != nullptr) {
      common::RunningStats ul_stats;
      for (const double f : ul_fitness) ul_stats.add(f);
      obs::GenerationRecord rec;
      rec.generation = generation;
      rec.phase = "carbon";
      rec.best_ul = ul_stats.max();
      rec.mean_ul = ul_stats.mean();
      rec.std_ul = ul_stats.stddev();
      // Predator-population fitness: the mean %-gap per heuristic under the
      // paper's default (raw LL value under the kValue ablation).
      rec.best_gap = generation_gap.min();
      rec.mean_gap = generation_gap.mean();
      rec.std_gap = generation_gap.stddev();
      rec.best_ul_so_far = result.best_ul_objective;
      rec.best_gap_so_far = result.best_gap;
      rec.archive_size = solution_archive.size();
      rec.ll_archive_size = heuristic_archive.size();
      rec.ul_evals = eval.ul_evaluations() - ul_start;
      rec.ll_evals = eval.ll_evaluations() - ll_start;
      rec.backend = backend_delta(eval.backend_stats(), backend_start);
      journal->write_generation(rec);
    }

    // ---- 5. Breed prey (GA: tournament + SBX + polynomial mutation) ----
    {
      std::vector<bcpop::Pricing> next;
      next.reserve(ul_pop.size());
      while (next.size() < ul_pop.size()) {
        obs::ScopedTimer sel_timer(metrics, "time/selection");
        const std::size_t ia =
            ea::binary_tournament(rng, ul_fitness, /*maximize=*/true);
        const std::size_t ib =
            ea::binary_tournament(rng, ul_fitness, /*maximize=*/true);
        sel_timer.stop();
        bcpop::Pricing a = ul_pop[ia];
        bcpop::Pricing b = ul_pop[ib];
        obs::ScopedTimer var_timer(metrics, "time/variation");
        if (rng.chance(cfg_.ul_crossover_prob)) {
          ea::sbx_crossover(rng, a, b, bounds, cfg_.sbx);
        }
        if (rng.chance(cfg_.ul_mutation_prob)) {
          ea::polynomial_mutation(rng, a, bounds, cfg_.mutation);
        }
        if (rng.chance(cfg_.ul_mutation_prob)) {
          ea::polynomial_mutation(rng, b, bounds, cfg_.mutation);
        }
        var_timer.stop();
        next.push_back(std::move(a));
        if (next.size() < ul_pop.size()) next.push_back(std::move(b));
      }
      // Elitist re-injection from the archive (Algorithm 1 line 9 analogue).
      const std::size_t reinject =
          std::min(cfg_.archive_reinjection, solution_archive.size());
      for (std::size_t r = 0; r < reinject && r < next.size(); ++r) {
        next[next.size() - 1 - r] = solution_archive.at(r).item.pricing;
      }
      ul_pop = std::move(next);
    }

    // ---- 6. Breed predators (GP: tournament + subtree xover + mutation +
    //         reproduction) ----
    {
      std::vector<gp::Tree> next;
      next.reserve(gp_pop.size());
      // Elitism: keep the champion so the follower model never regresses.
      next.push_back(gp_pop[champion_idx]);
      while (next.size() < gp_pop.size()) {
        const double op = rng.uniform();
        if (op < cfg_.gp_reproduction_prob) {
          obs::ScopedTimer sel_timer(metrics, "time/selection");
          const std::size_t i = ea::tournament_select(
              rng, gp_fitness, cfg_.gp_tournament_size, /*maximize=*/false);
          sel_timer.stop();
          next.push_back(gp_pop[i]);
        } else if (op < cfg_.gp_reproduction_prob + cfg_.gp_crossover_prob) {
          obs::ScopedTimer sel_timer(metrics, "time/selection");
          const std::size_t ia = ea::tournament_select(
              rng, gp_fitness, cfg_.gp_tournament_size, /*maximize=*/false);
          const std::size_t ib = ea::tournament_select(
              rng, gp_fitness, cfg_.gp_tournament_size, /*maximize=*/false);
          sel_timer.stop();
          obs::ScopedTimer var_timer(metrics, "time/variation");
          auto [ca, cb] =
              gp::subtree_crossover(rng, gp_pop[ia], gp_pop[ib], cfg_.gp_ops);
          var_timer.stop();
          next.push_back(std::move(ca));
          if (next.size() < gp_pop.size()) next.push_back(std::move(cb));
        } else {
          obs::ScopedTimer sel_timer(metrics, "time/selection");
          const std::size_t i = ea::tournament_select(
              rng, gp_fitness, cfg_.gp_tournament_size, /*maximize=*/false);
          sel_timer.stop();
          obs::ScopedTimer var_timer(metrics, "time/variation");
          gp::Tree mutant = gp::uniform_mutation(rng, gp_pop[i], cfg_.gp_ops);
          var_timer.stop();
          next.push_back(std::move(mutant));
        }
      }
      // Independent mutation sweep at the configured rate.
      for (std::size_t i = 1; i < next.size(); ++i) {
        if (rng.chance(cfg_.gp_mutation_prob)) {
          obs::ScopedTimer var_timer(metrics, "time/variation");
          next[i] = gp::uniform_mutation(rng, next[i], cfg_.gp_ops);
        }
      }
      gp_pop = std::move(next);
    }

    ++generation;

    // Checkpoint at the generation boundary: populations, archives, RNG and
    // counters now fully determine the rest of the run.
    if (cfg_.checkpoint.every > 0 && generation >= next_checkpoint) {
      write_checkpoint();
      next_checkpoint = generation + cfg_.checkpoint.every;
      if (cfg_.checkpoint.stop_after_checkpoint &&
          cfg_.checkpoint.stop_after_checkpoint(generation)) {
        // Simulated preemption (fault-injection tests): everything after
        // the write is exactly what a real crash would lose.
        break;
      }
    }
  }

  result.generations = generation;
  result.ul_evaluations = eval.ul_evaluations() - ul_start;
  result.ll_evaluations = eval.ll_evaluations() - ll_start;
  if (!heuristic_archive.empty()) {
    result.best_heuristic = heuristic_archive.best().item;
    result.best_heuristic_gap = heuristic_archive.best().fitness;
  }
  if (!std::isfinite(result.best_ul_objective)) {
    result.best_ul_objective = 0.0;  // nothing feasible was found
  }
  if (!std::isfinite(result.best_gap)) result.best_gap = 1e9;
  if (journal != nullptr) {
    obs::RunSummary summary;
    summary.generations = result.generations;
    summary.ul_evals = result.ul_evaluations;
    summary.ll_evals = result.ll_evaluations;
    summary.best_ul = result.best_ul_objective;
    summary.best_gap = result.best_gap;
    summary.backend = backend_delta(eval.backend_stats(), backend_start);
    journal->finish_run(summary);
  }
  return result;
}

}  // namespace carbon::core

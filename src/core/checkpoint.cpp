#include "carbon/core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace carbon::core {

namespace {

constexpr std::string_view kMagic = "carbon-checkpoint";
constexpr char kHexDigits[] = "0123456789abcdef";

[[noreturn]] void fail(const std::string& what) { throw CheckpointError(what); }

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

// ---- Bit-exact scalar/sequence encoding ------------------------------------

std::string encode_u64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::uint64_t decode_u64(std::string_view text) {
  if (text.size() != 16) {
    fail("checkpoint: expected 16 hex digits, got '" + std::string(text) +
         "'");
  }
  std::uint64_t v = 0;
  for (const char c : text) {
    const int d = hex_value(c);
    if (d < 0) {
      fail("checkpoint: bad hex digit in '" + std::string(text) + "'");
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::string encode_i64(long long v) {
  return encode_u64(static_cast<std::uint64_t>(v));
}

long long decode_i64(std::string_view text) {
  return static_cast<long long>(decode_u64(text));
}

std::string encode_f64(double v) {
  return encode_u64(std::bit_cast<std::uint64_t>(v));
}

double decode_f64(std::string_view text) {
  return std::bit_cast<double>(decode_u64(text));
}

std::string encode_doubles(std::span<const double> values) {
  std::string out;
  out.reserve(values.size() * 17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += encode_f64(values[i]);
  }
  return out;
}

std::vector<double> decode_doubles(std::string_view text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(' ', pos), text.size());
    out.push_back(decode_f64(text.substr(pos, end - pos)));
    pos = end == text.size() ? end : end + 1;
  }
  return out;
}

std::string encode_bytes(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> decode_bytes(std::string_view text) {
  if (text.size() % 2 != 0) fail("checkpoint: odd-length byte string");
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) fail("checkpoint: bad hex digit in byte string");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string encode_tree(const gp::Tree& tree) {
  std::string out;
  out.reserve(tree.size() * 4);
  for (const gp::Node& n : tree.nodes()) {
    if (!out.empty()) out.push_back(' ');
    switch (n.op) {
      case gp::OpCode::kAdd:
        out.push_back('+');
        break;
      case gp::OpCode::kSub:
        out.push_back('-');
        break;
      case gp::OpCode::kMul:
        out.push_back('*');
        break;
      case gp::OpCode::kDiv:
        out.push_back('/');
        break;
      case gp::OpCode::kMod:
        out.push_back('%');
        break;
      case gp::OpCode::kTerminal:
        out.push_back('t');
        out += std::to_string(static_cast<unsigned>(n.terminal));
        break;
      case gp::OpCode::kConst:
        out.push_back('c');
        out += encode_f64(n.value);
        break;
    }
  }
  return out;
}

gp::Tree decode_tree(std::string_view text) {
  std::vector<gp::Node> nodes;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(' ', pos), text.size());
    const std::string_view tok = text.substr(pos, end - pos);
    pos = end == text.size() ? end : end + 1;
    if (tok.empty()) fail("checkpoint: empty tree token");
    gp::Node n;
    if (tok == "+") {
      n.op = gp::OpCode::kAdd;
    } else if (tok == "-") {
      n.op = gp::OpCode::kSub;
    } else if (tok == "*") {
      n.op = gp::OpCode::kMul;
    } else if (tok == "/") {
      n.op = gp::OpCode::kDiv;
    } else if (tok == "%") {
      n.op = gp::OpCode::kMod;
    } else if (tok[0] == 't') {
      unsigned idx = 0;
      if (tok.size() < 2) fail("checkpoint: bad terminal token");
      for (const char c : tok.substr(1)) {
        if (c < '0' || c > '9') fail("checkpoint: bad terminal token");
        idx = idx * 10 + static_cast<unsigned>(c - '0');
      }
      if (idx >= gp::kNumTerminals) {
        fail("checkpoint: terminal index out of range");
      }
      n.op = gp::OpCode::kTerminal;
      n.terminal = static_cast<std::uint8_t>(idx);
    } else if (tok[0] == 'c') {
      n.op = gp::OpCode::kConst;
      n.value = decode_f64(tok.substr(1));
    } else {
      fail("checkpoint: unknown tree token '" + std::string(tok) + "'");
    }
    nodes.push_back(n);
  }
  gp::Tree tree(std::move(nodes));
  if (!tree.valid()) fail("checkpoint: structurally invalid tree");
  return tree;
}

// ---- Shared component (de)serializers --------------------------------------

namespace {

const std::vector<obs::JsonValue>& as_array(const obs::JsonValue& v,
                                            const char* what) {
  if (v.kind != obs::JsonValue::Kind::kArray) {
    fail(std::string("checkpoint: '") + what + "' is not an array");
  }
  return v.array;
}

std::string rng_to_string(const common::RngState& s) {
  std::string out = encode_u64(s.xoshiro[0]);
  for (int i = 1; i < 4; ++i) out += " " + encode_u64(s.xoshiro[i]);
  return out + " " + encode_u64(s.seed_mix);
}

common::RngState rng_from_string(std::string_view text) {
  std::vector<std::uint64_t> words;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = std::min(text.find(' ', pos), text.size());
    words.push_back(decode_u64(text.substr(pos, end - pos)));
    pos = end == text.size() ? end : end + 1;
  }
  if (words.size() != 5) fail("checkpoint: rng state must have 5 words");
  common::RngState s;
  for (int i = 0; i < 4; ++i) s.xoshiro[static_cast<std::size_t>(i)] = words[static_cast<std::size_t>(i)];
  s.seed_mix = words[4];
  return s;
}

obs::JsonObjectWriter write_evaluation(const bcpop::Evaluation& e) {
  obs::JsonObjectWriter w;
  w.field("feasible", e.ll_feasible)
      .field("ul", encode_f64(e.ul_objective))
      .field("ll", encode_f64(e.ll_objective))
      .field("lb", encode_f64(e.lower_bound))
      .field("gap", encode_f64(e.gap_percent))
      .field("sel", encode_bytes(e.selection));
  // Guard outcome fields are emitted only when the evaluation left the
  // full-fidelity path, so checkpoints of unguarded runs keep their exact
  // historical bytes (and schema version 1 stays honest: old files simply
  // read back a default Outcome).
  if (e.guard != guard::Outcome{}) {
    w.field("grng", static_cast<long long>(e.guard.rung))
        .field("gtrip", static_cast<long long>(e.guard.trip))
        .field("gcap", e.guard.construction_capped)
        .field("gex", e.guard.budget_exhausted);
  }
  return w;
}

bcpop::Evaluation read_evaluation(const obs::JsonValue& v) {
  bcpop::Evaluation e;
  e.ll_feasible = v.at("feasible").as_bool();
  e.ul_objective = decode_f64(v.at("ul").as_string());
  e.ll_objective = decode_f64(v.at("ll").as_string());
  e.lower_bound = decode_f64(v.at("lb").as_string());
  e.gap_percent = decode_f64(v.at("gap").as_string());
  e.selection = decode_bytes(v.at("sel").as_string());
  if (v.has("grng")) {
    const long long rung = v.at("grng").as_integer();
    const long long trip = v.at("gtrip").as_integer();
    if (rung < 0 || rung > static_cast<long long>(guard::Rung::kGreedyOnly) ||
        trip < 0 || trip > static_cast<long long>(guard::Trip::kWatchdog)) {
      fail("checkpoint: guard outcome out of range");
    }
    e.guard.rung = static_cast<guard::Rung>(rung);
    e.guard.trip = static_cast<guard::Trip>(trip);
    e.guard.construction_capped = v.at("gcap").as_bool();
    e.guard.budget_exhausted = v.at("gex").as_bool();
  }
  return e;
}

obs::JsonObjectWriter write_point(const ConvergencePoint& p) {
  obs::JsonObjectWriter w;
  w.field("gen", p.generation)
      .field("ule", encode_i64(p.ul_evaluations))
      .field("lle", encode_i64(p.ll_evaluations))
      .field("bu", encode_f64(p.best_ul_so_far))
      .field("bg", encode_f64(p.best_gap_so_far))
      .field("cu", encode_f64(p.current_best_ul))
      .field("cg", encode_f64(p.current_mean_gap))
      .field("uf", encode_f64(p.gp_unique_fraction))
      .field("ts", encode_f64(p.gp_mean_tree_size))
      .field("phase", p.phase);
  return w;
}

ConvergencePoint read_point(const obs::JsonValue& v) {
  ConvergencePoint p;
  p.generation = static_cast<int>(v.at("gen").as_integer());
  p.ul_evaluations = decode_i64(v.at("ule").as_string());
  p.ll_evaluations = decode_i64(v.at("lle").as_string());
  p.best_ul_so_far = decode_f64(v.at("bu").as_string());
  p.best_gap_so_far = decode_f64(v.at("bg").as_string());
  p.current_best_ul = decode_f64(v.at("cu").as_string());
  p.current_mean_gap = decode_f64(v.at("cg").as_string());
  p.gp_unique_fraction = decode_f64(v.at("uf").as_string());
  p.gp_mean_tree_size = decode_f64(v.at("ts").as_string());
  p.phase = v.at("phase").as_string();
  return p;
}

obs::JsonObjectWriter write_progress(const SolverProgress& p) {
  obs::JsonObjectWriter backend;
  backend.field("rch", encode_i64(p.backend.relaxation_cache_hits))
      .field("rcm", encode_i64(p.backend.relaxation_cache_misses))
      .field("rce", encode_i64(p.backend.relaxation_cache_evictions))
      .field("ddh", encode_i64(p.backend.heuristic_dedup_hits));
  // Optional cross-generation score-memo counters; omitted when zero so
  // memo-less checkpoints keep their historical bytes, and absent keys read
  // back as zero.
  if (p.backend.score_cache_hits != 0 ||
      p.backend.score_cache_evictions != 0) {
    backend.field("xgh", encode_i64(p.backend.score_cache_hits))
        .field("xge", encode_i64(p.backend.score_cache_evictions));
  }
  // Optional guard counters; omitted when zero so unguarded checkpoints keep
  // their historical bytes, and absent keys read back as zero.
  if (p.backend.guard_trips != 0 || p.backend.guard_degraded_evals != 0 ||
      p.backend.guard_budget_exhausted != 0) {
    backend.field("gtr", encode_i64(p.backend.guard_trips))
        .field("gde", encode_i64(p.backend.guard_degraded_evals))
        .field("gex", encode_i64(p.backend.guard_budget_exhausted));
  }
  // Optional LP family / warm-start-pool counters (docs/ALGORITHMS.md §15);
  // omitted when all zero so pre-pool checkpoints keep their historical
  // bytes, and absent keys read back as zero.
  if (p.backend.lp_family_rebinds != 0 ||
      p.backend.lp_warm_start_rejects != 0 || p.backend.lp_pool_hits != 0 ||
      p.backend.lp_pool_rejects != 0 || p.backend.lp_pivots_saved != 0) {
    backend.field("lpf", encode_i64(p.backend.lp_family_rebinds))
        .field("wsr", encode_i64(p.backend.lp_warm_start_rejects))
        .field("lph", encode_i64(p.backend.lp_pool_hits))
        .field("lpr", encode_i64(p.backend.lp_pool_rejects))
        .field("lps", encode_i64(p.backend.lp_pivots_saved));
  }

  obs::JsonObjectWriter result;
  result.field("best_ul", encode_f64(p.result.best_ul_objective))
      .field("best_gap", encode_f64(p.result.best_gap))
      .field("best_pricing", encode_doubles(p.result.best_pricing))
      .object_field("best_evaluation",
                    write_evaluation(p.result.best_evaluation))
      .field("ul_evaluations", encode_i64(p.result.ul_evaluations))
      .field("ll_evaluations", encode_i64(p.result.ll_evaluations))
      .field("generations", p.result.generations);
  obs::JsonArrayWriter trace;
  for (const ConvergencePoint& pt : p.result.convergence) {
    trace.raw_item(write_point(pt).finish());
  }
  result.raw_field("convergence", trace.finish());

  obs::JsonObjectWriter w;
  w.field("rng", rng_to_string(p.rng))
      .field("generation", p.generation)
      .field("consumed_ul", encode_i64(p.consumed_ul))
      .field("consumed_ll", encode_i64(p.consumed_ll))
      .object_field("backend", std::move(backend))
      .object_field("result", std::move(result));
  return w;
}

SolverProgress read_progress(const obs::JsonValue& v) {
  SolverProgress p;
  p.rng = rng_from_string(v.at("rng").as_string());
  p.generation = static_cast<int>(v.at("generation").as_integer());
  p.consumed_ul = decode_i64(v.at("consumed_ul").as_string());
  p.consumed_ll = decode_i64(v.at("consumed_ll").as_string());
  const obs::JsonValue& b = v.at("backend");
  p.backend.relaxation_cache_hits = decode_i64(b.at("rch").as_string());
  p.backend.relaxation_cache_misses = decode_i64(b.at("rcm").as_string());
  p.backend.relaxation_cache_evictions = decode_i64(b.at("rce").as_string());
  p.backend.heuristic_dedup_hits = decode_i64(b.at("ddh").as_string());
  if (b.has("xgh")) {
    p.backend.score_cache_hits = decode_i64(b.at("xgh").as_string());
    p.backend.score_cache_evictions = decode_i64(b.at("xge").as_string());
  }
  if (b.has("gtr")) {
    p.backend.guard_trips = decode_i64(b.at("gtr").as_string());
    p.backend.guard_degraded_evals = decode_i64(b.at("gde").as_string());
    p.backend.guard_budget_exhausted = decode_i64(b.at("gex").as_string());
  }
  if (b.has("lpf")) {
    p.backend.lp_family_rebinds = decode_i64(b.at("lpf").as_string());
    p.backend.lp_warm_start_rejects = decode_i64(b.at("wsr").as_string());
    p.backend.lp_pool_hits = decode_i64(b.at("lph").as_string());
    p.backend.lp_pool_rejects = decode_i64(b.at("lpr").as_string());
    p.backend.lp_pivots_saved = decode_i64(b.at("lps").as_string());
  }
  const obs::JsonValue& r = v.at("result");
  p.result.best_ul_objective = decode_f64(r.at("best_ul").as_string());
  p.result.best_gap = decode_f64(r.at("best_gap").as_string());
  p.result.best_pricing = decode_doubles(r.at("best_pricing").as_string());
  p.result.best_evaluation = read_evaluation(r.at("best_evaluation"));
  p.result.ul_evaluations = decode_i64(r.at("ul_evaluations").as_string());
  p.result.ll_evaluations = decode_i64(r.at("ll_evaluations").as_string());
  p.result.generations = static_cast<int>(r.at("generations").as_integer());
  for (const obs::JsonValue& pt : as_array(r.at("convergence"), "convergence")) {
    p.result.convergence.push_back(read_point(pt));
  }
  return p;
}

std::string pricings_to_json(const std::vector<bcpop::Pricing>& pop) {
  obs::JsonArrayWriter a;
  for (const bcpop::Pricing& x : pop) a.item(encode_doubles(x));
  return a.finish();
}

std::vector<bcpop::Pricing> pricings_from_json(const obs::JsonValue& v,
                                               const char* what) {
  std::vector<bcpop::Pricing> pop;
  for (const obs::JsonValue& x : as_array(v, what)) {
    pop.push_back(decode_doubles(x.as_string()));
  }
  return pop;
}

std::string pair_archive_to_json(const std::vector<ArchivedPairState>& arch) {
  obs::JsonArrayWriter a;
  for (const ArchivedPairState& e : arch) {
    obs::JsonObjectWriter w;
    w.field("p", encode_doubles(e.pricing))
        .field("b", encode_bytes(e.basket))
        .object_field("e", write_evaluation(e.evaluation))
        .field("fit", encode_f64(e.fitness));
    a.raw_item(w.finish());
  }
  return a.finish();
}

std::vector<ArchivedPairState> pair_archive_from_json(const obs::JsonValue& v,
                                                      const char* what) {
  std::vector<ArchivedPairState> arch;
  for (const obs::JsonValue& e : as_array(v, what)) {
    ArchivedPairState s;
    s.pricing = decode_doubles(e.at("p").as_string());
    s.basket = decode_bytes(e.at("b").as_string());
    s.evaluation = read_evaluation(e.at("e"));
    s.fitness = decode_f64(e.at("fit").as_string());
    arch.push_back(std::move(s));
  }
  return arch;
}

/// Wraps JsonValue accessor errors (std::runtime_error) into CheckpointError
/// so callers see one failure type for every malformed file.
template <typename Fn>
auto guard(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("checkpoint: malformed body: ") +
                          e.what());
  }
}

}  // namespace

// ---- CarbonCheckpoint ------------------------------------------------------

std::string CarbonCheckpoint::to_json() const {
  obs::JsonObjectWriter w;
  w.field("algo", "carbon")
      .field("seed", encode_u64(seed))
      .object_field("progress", write_progress(progress))
      .raw_field("ul_pop", pricings_to_json(ul_pop));

  obs::JsonArrayWriter trees;
  for (const gp::Tree& t : gp_pop) trees.item(encode_tree(t));
  w.raw_field("gp_pop", trees.finish());

  obs::JsonArrayWriter sol;
  for (const ArchivedPricingState& e : solution_archive) {
    obs::JsonObjectWriter entry;
    entry.field("p", encode_doubles(e.pricing))
        .object_field("e", write_evaluation(e.evaluation))
        .field("fit", encode_f64(e.fitness));
    sol.raw_item(entry.finish());
  }
  w.raw_field("solution_archive", sol.finish());

  obs::JsonArrayWriter heur;
  for (const ArchivedHeuristicState& e : heuristic_archive) {
    obs::JsonObjectWriter entry;
    entry.field("tree", encode_tree(e.tree)).field("fit", encode_f64(e.fitness));
    heur.raw_item(entry.finish());
  }
  w.raw_field("heuristic_archive", heur.finish());
  return w.finish();
}

CarbonCheckpoint CarbonCheckpoint::from_json(const obs::JsonValue& body) {
  return guard([&] {
    CarbonCheckpoint ck;
    if (body.at("algo").as_string() != "carbon") {
      fail("checkpoint: body algorithm is not 'carbon'");
    }
    ck.seed = decode_u64(body.at("seed").as_string());
    ck.progress = read_progress(body.at("progress"));
    ck.ul_pop = pricings_from_json(body.at("ul_pop"), "ul_pop");
    for (const obs::JsonValue& t : as_array(body.at("gp_pop"), "gp_pop")) {
      ck.gp_pop.push_back(decode_tree(t.as_string()));
    }
    for (const obs::JsonValue& e :
         as_array(body.at("solution_archive"), "solution_archive")) {
      ArchivedPricingState s;
      s.pricing = decode_doubles(e.at("p").as_string());
      s.evaluation = read_evaluation(e.at("e"));
      s.fitness = decode_f64(e.at("fit").as_string());
      ck.solution_archive.push_back(std::move(s));
    }
    for (const obs::JsonValue& e :
         as_array(body.at("heuristic_archive"), "heuristic_archive")) {
      ArchivedHeuristicState s;
      s.tree = decode_tree(e.at("tree").as_string());
      s.fitness = decode_f64(e.at("fit").as_string());
      ck.heuristic_archive.push_back(std::move(s));
    }
    return ck;
  });
}

void CarbonCheckpoint::save(const std::string& path) const {
  save_checkpoint_file(path, "carbon", to_json());
}

CarbonCheckpoint CarbonCheckpoint::load(const std::string& path) {
  return from_json(load_checkpoint_file(path, "carbon"));
}

// ---- CobraCheckpoint -------------------------------------------------------

std::string CobraCheckpoint::to_json() const {
  obs::JsonObjectWriter w;
  w.field("algo", "cobra")
      .field("seed", encode_u64(seed))
      .object_field("progress", write_progress(progress))
      .raw_field("ul_pop", pricings_to_json(ul_pop));

  obs::JsonArrayWriter baskets;
  for (const std::vector<std::uint8_t>& y : ll_pop) {
    baskets.item(encode_bytes(y));
  }
  w.raw_field("ll_pop", baskets.finish())
      .raw_field("upper_archive", pair_archive_to_json(upper_archive))
      .raw_field("lower_archive", pair_archive_to_json(lower_archive))
      .field("paired_pricing", encode_doubles(paired_pricing))
      .field("paired_basket", encode_bytes(paired_basket));
  return w.finish();
}

CobraCheckpoint CobraCheckpoint::from_json(const obs::JsonValue& body) {
  return guard([&] {
    CobraCheckpoint ck;
    if (body.at("algo").as_string() != "cobra") {
      fail("checkpoint: body algorithm is not 'cobra'");
    }
    ck.seed = decode_u64(body.at("seed").as_string());
    ck.progress = read_progress(body.at("progress"));
    ck.ul_pop = pricings_from_json(body.at("ul_pop"), "ul_pop");
    for (const obs::JsonValue& y : as_array(body.at("ll_pop"), "ll_pop")) {
      ck.ll_pop.push_back(decode_bytes(y.as_string()));
    }
    ck.upper_archive =
        pair_archive_from_json(body.at("upper_archive"), "upper_archive");
    ck.lower_archive =
        pair_archive_from_json(body.at("lower_archive"), "lower_archive");
    ck.paired_pricing = decode_doubles(body.at("paired_pricing").as_string());
    ck.paired_basket = decode_bytes(body.at("paired_basket").as_string());
    return ck;
  });
}

void CobraCheckpoint::save(const std::string& path) const {
  save_checkpoint_file(path, "cobra", to_json());
}

CobraCheckpoint CobraCheckpoint::load(const std::string& path) {
  return from_json(load_checkpoint_file(path, "cobra"));
}

// ---- File layer ------------------------------------------------------------

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    fail("checkpoint: cannot open '" + tmp + "': " + std::strerror(errno));
  }
  const bool wrote =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  const bool flushed = std::fflush(f) == 0;
  const bool synced = ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !synced || !closed) {
    std::remove(tmp.c_str());
    fail("checkpoint: write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp.c_str());
    fail("checkpoint: rename to '" + path + "' failed: " + reason);
  }
  // Best-effort directory fsync so the rename itself is durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void save_checkpoint_file(const std::string& path, std::string_view algo,
                          std::string_view body_json) {
  obs::JsonObjectWriter header;
  header.field("magic", kMagic)
      .field("version", kCheckpointSchemaVersion)
      .field("algo", algo)
      .field("body_bytes", body_json.size())
      .field("body_fnv1a", encode_u64(fnv1a64(body_json)));
  std::string file = header.finish();
  file.push_back('\n');
  file += body_json;
  file.push_back('\n');
  write_file_atomic(path, file);
}

obs::JsonValue load_checkpoint_file(const std::string& path,
                                    std::string_view expect_algo) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("checkpoint: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string file = std::move(buf).str();

  const std::size_t nl = file.find('\n');
  if (nl == std::string::npos) {
    fail("checkpoint: '" + path + "' is truncated (no header line)");
  }
  obs::JsonValue header;
  try {
    header = obs::parse_json(std::string_view(file).substr(0, nl));
  } catch (const std::exception& e) {
    fail("checkpoint: '" + path + "' has a malformed header: " + e.what());
  }
  return guard([&]() -> obs::JsonValue {
    if (header.at("magic").as_string() != kMagic) {
      fail("checkpoint: '" + path + "' is not a carbon checkpoint");
    }
    const long long version = header.at("version").as_integer();
    if (version != kCheckpointSchemaVersion) {
      fail("checkpoint: '" + path + "' has unsupported schema version " +
           std::to_string(version) + " (expected " +
           std::to_string(kCheckpointSchemaVersion) + ")");
    }
    const std::string& algo = header.at("algo").as_string();
    if (algo != expect_algo) {
      fail("checkpoint: '" + path + "' was written by algorithm '" + algo +
           "', not '" + std::string(expect_algo) + "'");
    }
    const long long body_bytes = header.at("body_bytes").as_integer();
    std::string_view body = std::string_view(file).substr(nl + 1);
    if (!body.empty() && body.back() == '\n') body.remove_suffix(1);
    if (static_cast<long long>(body.size()) != body_bytes) {
      fail("checkpoint: '" + path + "' is truncated (body is " +
           std::to_string(body.size()) + " bytes, header promises " +
           std::to_string(body_bytes) + ")");
    }
    const std::uint64_t want_hash =
        decode_u64(header.at("body_fnv1a").as_string());
    if (fnv1a64(body) != want_hash) {
      fail("checkpoint: '" + path + "' is corrupted (content hash mismatch)");
    }
    try {
      return obs::parse_json(body);
    } catch (const std::exception& e) {
      fail("checkpoint: '" + path + "' has a malformed body: " + e.what());
    }
  });
}

}  // namespace carbon::core

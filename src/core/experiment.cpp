#include "carbon/core/experiment.hpp"

#include <cctype>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "carbon/baselines/biga.hpp"
#include "carbon/baselines/codba.hpp"
#include "carbon/baselines/nested_ga.hpp"
#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/common/stopwatch.hpp"
#include "carbon/common/thread_pool.hpp"
#include "carbon/core/carbon_solver.hpp"

namespace carbon::core {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kCarbon:
      return "CARBON";
    case Algorithm::kCobra:
      return "COBRA";
    case Algorithm::kNestedGa:
      return "NESTED-GA";
    case Algorithm::kCarbonValueFitness:
      return "CARBON-VALUE";
    case Algorithm::kCarbonMemetic:
      return "CARBON-MEMETIC";
    case Algorithm::kBiga:
      return "BIGA";
    case Algorithm::kCodba:
      return "CODBA";
  }
  // A value outside the enum means memory corruption or a bad cast
  // somewhere upstream — fail loudly instead of labelling results "?".
  throw std::invalid_argument("to_string: invalid Algorithm value " +
                              std::to_string(static_cast<int>(a)));
}

std::string experiment_checkpoint_path(const std::string& dir,
                                       Algorithm algorithm, std::size_t run) {
  std::string name = to_string(algorithm);
  for (char& c : name) {
    c = c == '-' ? '_' : static_cast<char>(std::tolower(
                             static_cast<unsigned char>(c)));
  }
  return (dir.empty() ? std::string() : dir + "/") + name + "-run" +
         std::to_string(run) + ".ckpt";
}

ExperimentConfig ExperimentConfig::paper_scale() {
  ExperimentConfig cfg;
  cfg.runs = 30;
  cfg.population_size = 100;
  cfg.archive_size = 100;
  cfg.ul_eval_budget = 50'000;
  cfg.ll_eval_budget = 50'000;
  cfg.heuristic_sample_size = 5;
  return cfg;
}

namespace {

/// Per-run checkpoint wiring: write every N generations to the run's own
/// file, and resume from it when a previous (interrupted) invocation left
/// one behind. Resumption is bit-identical, so a re-run cell aggregates the
/// same numbers whether or not it was preempted.
CheckpointConfig cell_checkpoint(const ExperimentConfig& cfg,
                                 Algorithm algorithm, std::size_t run) {
  CheckpointConfig ck;
  if (cfg.checkpoint_every <= 0) return ck;
  ck.every = cfg.checkpoint_every;
  ck.path = experiment_checkpoint_path(cfg.checkpoint_dir, algorithm, run);
  if (std::filesystem::exists(ck.path)) ck.resume_from = ck.path;
  return ck;
}

RunResult dispatch(const bcpop::Instance& instance, Algorithm algorithm,
                   const ExperimentConfig& cfg, std::size_t run) {
  const std::uint64_t seed = cfg.base_seed + run;
  switch (algorithm) {
    case Algorithm::kCarbon:
    case Algorithm::kCarbonValueFitness:
    case Algorithm::kCarbonMemetic: {
      CarbonConfig c;
      c.ul_population_size = cfg.population_size;
      c.gp_population_size = cfg.population_size;
      c.ul_archive_size = cfg.archive_size;
      c.gp_archive_size = cfg.archive_size;
      c.ul_eval_budget = cfg.ul_eval_budget;
      c.ll_eval_budget = cfg.ll_eval_budget;
      c.heuristic_sample_size = cfg.heuristic_sample_size;
      c.record_convergence = cfg.record_convergence;
      c.seed = seed;
      if (algorithm == Algorithm::kCarbonValueFitness) {
        c.predator_fitness = PredatorFitness::kValue;
      }
      if (algorithm == Algorithm::kCarbonMemetic) {
        c.memetic_polish = true;
      }
      c.checkpoint = cell_checkpoint(cfg, algorithm, run);
      return CarbonSolver(instance, c).run();
    }
    case Algorithm::kCobra: {
      cobra::CobraConfig c;
      c.ul_population_size = cfg.population_size;
      c.ll_population_size = cfg.population_size;
      c.ul_archive_size = cfg.archive_size;
      c.ll_archive_size = cfg.archive_size;
      c.ul_eval_budget = cfg.ul_eval_budget;
      c.ll_eval_budget = cfg.ll_eval_budget;
      c.record_convergence = cfg.record_convergence;
      c.seed = seed;
      c.checkpoint = cell_checkpoint(cfg, algorithm, run);
      return cobra::CobraSolver(instance, c).run();
    }
    case Algorithm::kBiga: {
      baselines::BigaConfig c;
      c.population_size = cfg.population_size;
      c.archive_size = cfg.archive_size;
      c.ul_eval_budget = cfg.ul_eval_budget;
      c.ll_eval_budget = cfg.ll_eval_budget;
      c.record_convergence = cfg.record_convergence;
      c.seed = seed;
      return baselines::BigaSolver(instance, c).run();
    }
    case Algorithm::kCodba: {
      baselines::CodbaConfig c;
      c.ul_population_size = cfg.population_size;
      c.archive_size = cfg.archive_size;
      c.ul_eval_budget = cfg.ul_eval_budget;
      c.ll_eval_budget = cfg.ll_eval_budget;
      c.record_convergence = cfg.record_convergence;
      c.seed = seed;
      return baselines::CodbaSolver(instance, c).run();
    }
    case Algorithm::kNestedGa: {
      baselines::NestedGaConfig c;
      c.population_size = cfg.population_size;
      c.archive_size = cfg.archive_size;
      c.ul_eval_budget = cfg.ul_eval_budget;
      c.ll_eval_budget = cfg.ll_eval_budget;
      c.record_convergence = cfg.record_convergence;
      c.seed = seed;
      return baselines::NestedGaSolver(instance, c).run();
    }
  }
  throw std::invalid_argument("run_cell: unknown algorithm");
}

}  // namespace

CellResult run_cell(const bcpop::Instance& instance, Algorithm algorithm,
                    const ExperimentConfig& config) {
  if (config.runs == 0) {
    throw std::invalid_argument("run_cell: runs must be >= 1");
  }
  if (config.checkpoint_every < 0) {
    throw std::invalid_argument("run_cell: checkpoint_every must be >= 0");
  }
  if (config.checkpoint_every > 0 && config.checkpoint_dir.empty()) {
    throw std::invalid_argument(
        "run_cell: checkpoint_every > 0 requires checkpoint_dir");
  }
  common::Stopwatch sw;
  CellResult cell;
  cell.algorithm = algorithm;
  cell.runs.resize(config.runs);

  const auto one_run = [&](std::size_t r) {
    cell.runs[r] = dispatch(instance, algorithm, config, r);
  };

  if (config.runs == 1 || config.threads == 1) {
    for (std::size_t r = 0; r < config.runs; ++r) one_run(r);
  } else {
    common::ThreadPool pool(config.threads);
    pool.parallel_for(config.runs, one_run);
  }

  std::vector<double> gaps;
  std::vector<double> uls;
  gaps.reserve(config.runs);
  uls.reserve(config.runs);
  for (const RunResult& r : cell.runs) {
    gaps.push_back(r.best_gap);
    uls.push_back(r.best_ul_objective);
  }
  cell.gap = common::summarize(gaps);
  cell.ul_objective = common::summarize(uls);
  cell.wall_seconds = sw.seconds();
  return cell;
}

std::vector<ConvergencePoint> average_convergence(
    const std::vector<RunResult>& runs) {
  if (runs.empty()) return {};
  std::size_t length = runs.front().convergence.size();
  for (const RunResult& r : runs) {
    length = std::min(length, r.convergence.size());
  }
  std::vector<ConvergencePoint> avg(length);
  if (length == 0) return avg;
  const double inv = 1.0 / static_cast<double>(runs.size());
  for (std::size_t g = 0; g < length; ++g) {
    ConvergencePoint& pt = avg[g];
    pt.generation = static_cast<int>(g);
    pt.phase = runs.front().convergence[g].phase;
    for (const RunResult& r : runs) {
      const ConvergencePoint& src = r.convergence[g];
      pt.ul_evaluations += src.ul_evaluations;
      pt.ll_evaluations += src.ll_evaluations;
      pt.best_ul_so_far += src.best_ul_so_far * inv;
      pt.best_gap_so_far += src.best_gap_so_far * inv;
      pt.current_best_ul += src.current_best_ul * inv;
      pt.current_mean_gap += src.current_mean_gap * inv;
      pt.gp_unique_fraction += src.gp_unique_fraction * inv;
      pt.gp_mean_tree_size += src.gp_mean_tree_size * inv;
    }
    pt.ul_evaluations /= static_cast<long long>(runs.size());
    pt.ll_evaluations /= static_cast<long long>(runs.size());
  }
  return avg;
}

}  // namespace carbon::core

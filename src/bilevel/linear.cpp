#include "carbon/bilevel/linear.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace carbon::bilevel {

std::optional<Interval> follower_feasible_interval(const LinearBilevel& p,
                                                   double x) {
  double lo = p.y_min;
  double hi = p.y_max;
  for (const auto& c : p.lower) {
    // c.a*x + c.b*y <= rhs
    if (c.b > 0.0) {
      hi = std::min(hi, (c.rhs - c.a * x) / c.b);
    } else if (c.b < 0.0) {
      lo = std::max(lo, (c.rhs - c.a * x) / c.b);
    } else if (c.a * x > c.rhs + 1e-9) {
      return std::nullopt;  // constraint on x alone, violated
    }
  }
  if (lo > hi + 1e-9) return std::nullopt;
  return Interval{lo, std::max(lo, hi)};
}

std::optional<double> rational_reaction(const LinearBilevel& p, double x) {
  const auto interval = follower_feasible_interval(p, x);
  if (!interval) return std::nullopt;
  if (p.lower_cost_y > 0.0) return interval->lo;
  if (p.lower_cost_y < 0.0) return interval->hi;
  // Indifferent follower: optimistic convention, pick the endpoint that is
  // better for the leader.
  const double f_lo = p.upper_objective(x, interval->lo);
  const double f_hi = p.upper_objective(x, interval->hi);
  return f_lo <= f_hi ? interval->lo : interval->hi;
}

bool upper_feasible(const LinearBilevel& p, double x, double y) {
  if (x < p.x_min - 1e-9 || x > p.x_max + 1e-9) return false;
  if (y < p.y_min - 1e-9 || y > p.y_max + 1e-9) return false;
  return std::all_of(p.upper.begin(), p.upper.end(),
                     [&](const LinearConstraint& c) { return c.satisfied(x, y); });
}

GridSolveResult solve_by_grid(const LinearBilevel& p, std::size_t resolution) {
  GridSolveResult out;
  if (resolution < 2) resolution = 2;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < resolution; ++i) {
    const double x = p.x_min + (p.x_max - p.x_min) * static_cast<double>(i) /
                                   static_cast<double>(resolution - 1);
    const auto y = rational_reaction(p, x);
    if (!y) {
      ++out.empty_points;
      continue;
    }
    if (!upper_feasible(p, x, *y)) {
      ++out.infeasible_points;
      continue;
    }
    ++out.feasible_points;
    const double value = p.upper_objective(x, *y);
    if (value < best_value) {
      best_value = value;
      out.best = BilevelPoint{x, *y, value};
    }
  }
  return out;
}

LinearBilevel program3() {
  LinearBilevel p;
  p.upper_cost_x = -1.0;
  p.upper_cost_y = -2.0;
  // 2x - 3y >= -12  <=>  -2x + 3y <= 12
  p.upper.push_back({-2.0, 3.0, 12.0});
  // x + y <= 14
  p.upper.push_back({1.0, 1.0, 14.0});
  p.lower_cost_y = -1.0;  // min -y  (follower maximizes y)
  // -3x + y <= -3
  p.lower.push_back({-3.0, 1.0, -3.0});
  // 3x + y <= 30
  p.lower.push_back({3.0, 1.0, 30.0});
  p.x_min = 0.0;
  p.x_max = 14.0;
  p.y_min = 0.0;
  p.y_max = 30.0;
  return p;
}

}  // namespace carbon::bilevel

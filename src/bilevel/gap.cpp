#include "carbon/bilevel/gap.hpp"

#include <algorithm>
#include <cmath>

namespace carbon::bilevel {

double percent_gap(double achieved, double lower_bound) noexcept {
  const double denom = std::max(std::abs(lower_bound), 1.0);
  const double gap = 100.0 * (achieved - lower_bound) / denom;
  // An algorithm can't genuinely beat a valid lower bound; tiny negatives are
  // LP rounding noise.
  return std::max(gap, 0.0);
}

}  // namespace carbon::bilevel

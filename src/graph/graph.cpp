#include "carbon/graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace carbon::graph {

ArcId Digraph::add_arc(NodeId from, NodeId to, double weight) {
  if (from >= num_nodes() || to >= num_nodes()) {
    throw std::invalid_argument("Digraph::add_arc: endpoint out of range");
  }
  if (weight < 0.0) {
    throw std::invalid_argument("Digraph::add_arc: negative weight");
  }
  const auto id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back({from, to, weight});
  out_[from].push_back(id);
  return id;
}

void Digraph::set_weight(ArcId a, double weight) {
  if (a >= arcs_.size()) {
    throw std::out_of_range("Digraph::set_weight: bad arc id");
  }
  if (weight < 0.0) {
    throw std::invalid_argument("Digraph::set_weight: negative weight");
  }
  arcs_[a].weight = weight;
}

ShortestPaths dijkstra(const Digraph& g, NodeId source) {
  if (source >= g.num_nodes()) {
    throw std::invalid_argument("dijkstra: source out of range");
  }
  ShortestPaths out;
  out.distance.assign(g.num_nodes(), kUnreachable);
  out.incoming_arc.assign(g.num_nodes(), ShortestPaths::kNoArc);
  out.distance[source] = 0.0;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > out.distance[node]) continue;  // stale entry
    for (const ArcId a : g.out_arcs(node)) {
      const Arc& arc = g.arc(a);
      const double candidate = dist + arc.weight;
      if (candidate < out.distance[arc.to]) {
        out.distance[arc.to] = candidate;
        out.incoming_arc[arc.to] = a;
        heap.push({candidate, arc.to});
      }
    }
  }
  return out;
}

std::vector<ArcId> extract_path(const ShortestPaths& paths, const Digraph& g,
                                NodeId target) {
  std::vector<ArcId> path;
  if (target >= paths.distance.size() || !paths.reachable(target)) {
    return path;
  }
  NodeId node = target;
  while (paths.incoming_arc[node] != ShortestPaths::kNoArc) {
    const ArcId a = paths.incoming_arc[node];
    path.push_back(a);
    node = g.arc(a).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace carbon::graph

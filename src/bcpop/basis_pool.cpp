#include "carbon/bcpop/basis_pool.hpp"

#include <algorithm>
#include <cassert>

namespace carbon::bcpop {

const char* to_string(LpWarm w) noexcept {
  switch (w) {
    case LpWarm::kBaseline:
      return "baseline";
    case LpWarm::kPool:
      return "pool";
  }
  return "?";
}

namespace {

/// Quantized squared Euclidean distance: accumulated in double over
/// ascending indices (one fixed order — no reduction-order ambiguity), then
/// cast to float so that near-ties collapse onto one quantum and the
/// explicit ordinal tie-break decides them reproducibly.
[[nodiscard]] float quantized_distance(std::span<const double> a,
                                       std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

[[nodiscard]] bool same_key(std::span<const double> a,
                            std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

BasisPool::BasisPool(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  entries_.reserve(capacity_);
}

const lp::Basis* BasisPool::select(std::span<const double> pricing) {
  if (entries_.empty()) return nullptr;
  std::size_t best = entries_.size();
  float best_dist = 0.0f;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    // Keys of a pool always share one length (one family per evaluator),
    // but guard anyway: a mismatched key can never win.
    if (entries_[i].key.size() != pricing.size()) continue;
    const float d = quantized_distance(entries_[i].key, pricing);
    if (best == entries_.size() || d < best_dist ||
        (d == best_dist && entries_[i].ordinal < entries_[best].ordinal)) {
      best = i;
      best_dist = d;
    }
  }
  if (best == entries_.size()) return nullptr;
  entries_[best].last_use = ++clock_;
  return &entries_[best].basis;
}

void BasisPool::insert(std::span<const double> pricing,
                       const lp::Basis& basis) {
  for (Entry& e : entries_) {
    if (same_key(e.key, pricing)) {
      e.basis = basis;
      e.last_use = ++clock_;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used entry; ties (possible only among
    // never-selected entries inserted before the clock first ticked) fall
    // to the lowest insertion ordinal.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].last_use < entries_[victim].last_use ||
          (entries_[i].last_use == entries_[victim].last_use &&
           entries_[i].ordinal < entries_[victim].ordinal)) {
        victim = i;
      }
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++evictions_;
  }
  Entry e;
  e.key.assign(pricing.begin(), pricing.end());
  e.basis = basis;
  e.ordinal = next_ordinal_++;
  e.last_use = ++clock_;
  entries_.push_back(std::move(e));
}

void BasisPool::clear() {
  entries_.clear();
  next_ordinal_ = 0;
  clock_ = 0;
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/instance.hpp"

#include <cassert>
#include <stdexcept>

#include "carbon/cover/generator.hpp"

namespace carbon::bcpop {

Instance::Instance(cover::Instance market, std::size_t num_owned,
                   double price_cap_factor)
    : market_(std::move(market)), num_owned_(num_owned) {
  if (num_owned_ == 0 || num_owned_ >= market_.num_bundles()) {
    throw std::invalid_argument(
        "bcpop::Instance: need 1 <= num_owned < num_bundles");
  }
  if (price_cap_factor <= 0.0) {
    throw std::invalid_argument("bcpop::Instance: price_cap_factor > 0");
  }
  double total = 0.0;
  for (std::size_t j = num_owned_; j < market_.num_bundles(); ++j) {
    total += market_.cost(j);
  }
  mean_competitor_price_ =
      total / static_cast<double>(market_.num_bundles() - num_owned_);
  price_bounds_.assign(num_owned_,
                       ea::Bounds{0.0, price_cap_factor * mean_competitor_price_});
}

cover::Instance Instance::lower_level_instance(
    std::span<const double> pricing) const {
  assert(pricing.size() == num_owned_);
  cover::Instance ll = market_;
  for (std::size_t j = 0; j < num_owned_; ++j) {
    ll.set_cost(j, pricing[j]);
  }
  return ll;
}

double Instance::leader_revenue(std::span<const double> pricing,
                                std::span<const std::uint8_t> selection) const {
  assert(pricing.size() == num_owned_);
  double revenue = 0.0;
  for (std::size_t j = 0; j < num_owned_ && j < selection.size(); ++j) {
    if (selection[j]) revenue += pricing[j];
  }
  return revenue;
}

Instance make_paper_bcpop(std::size_t class_index, std::uint64_t run) {
  cover::Instance market = cover::make_paper_instance(class_index, run);
  const std::size_t owned = std::max<std::size_t>(1, market.num_bundles() / 10);
  return Instance(std::move(market), owned);
}

}  // namespace carbon::bcpop

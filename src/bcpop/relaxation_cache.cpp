#include "carbon/bcpop/relaxation_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace carbon::bcpop {

std::size_t PricingHash::operator()(
    const std::vector<double>& v) const noexcept {
  std::size_t h = 14695981039346656037ULL;
  for (double d : v) {
    const auto bits = std::bit_cast<std::uint64_t>(d);
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}

ShardedRelaxationCache::ShardedRelaxationCache(std::size_t capacity,
                                               std::size_t num_shards) {
  num_shards = std::max<std::size_t>(num_shards, 1);
  shard_capacity_ = std::max<std::size_t>(capacity / num_shards, 1);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedRelaxationCache::Shard& ShardedRelaxationCache::shard_for(
    std::span<const double> pricing) noexcept {
  if (shards_.size() == 1) return *shards_.front();
  // Finalize the FNV hash with a multiply-shift so shard selection uses the
  // high bits, decorrelated from the map's bucket selection (low bits).
  std::size_t h = 14695981039346656037ULL;
  for (double d : pricing) {
    h ^= std::bit_cast<std::uint64_t>(d);
    h *= 1099511628211ULL;
  }
  h *= 0x9E3779B97F4A7C15ULL;
  return *shards_[(h >> 32) % shards_.size()];
}

ShardedRelaxationCache::RelaxationPtr ShardedRelaxationCache::get_or_compute(
    std::span<const double> pricing, const SolveFn& solve) {
  Shard& s = shard_for(pricing);
  Key key(pricing.begin(), pricing.end());

  std::unique_lock lock(s.mutex);
  for (;;) {
    const auto it = s.map.find(key);
    if (it == s.map.end()) break;  // miss: this call becomes the solver
    Entry& e = it->second;
    if (e.value != nullptr) {
      s.lru.splice(s.lru.begin(), s.lru, e.lru_pos);  // touch
      hits_.fetch_add(1, std::memory_order_relaxed);
      return e.value;
    }
    // Another call is solving this pricing right now: wait for it, then
    // re-check (the entry is erased again if that solve threw).
    s.ready_cv.wait(lock);
  }

  const auto [it, inserted] = s.map.try_emplace(std::move(key));
  lock.unlock();

  RelaxationPtr value;
  try {
    value = std::make_shared<const cover::Relaxation>(solve(pricing));
  } catch (...) {
    lock.lock();
    s.map.erase(it);
    s.ready_cv.notify_all();
    throw;
  }

  lock.lock();
  Entry& e = it->second;
  e.value = value;
  s.lru.push_front(it->first);
  e.lru_pos = s.lru.begin();
  solves_.fetch_add(1, std::memory_order_relaxed);
  // Evict beyond capacity, oldest first — but never the entry this call is
  // about to hand out. Previously handed-out entries survive eviction via
  // their shared_ptr; eviction only drops the cache's own reference.
  while (s.lru.size() > shard_capacity_ && s.lru.back() != it->first) {
    s.map.erase(s.lru.back());
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  s.ready_cv.notify_all();
  return value;
}

ShardedRelaxationCache::RelaxationPtr ShardedRelaxationCache::lookup(
    std::span<const double> pricing) {
  Shard& s = shard_for(pricing);
  Key key(pricing.begin(), pricing.end());
  std::lock_guard lock(s.mutex);
  const auto it = s.map.find(key);
  if (it == s.map.end() || it->second.value == nullptr) return nullptr;
  s.lru.splice(s.lru.begin(), s.lru, it->second.lru_pos);  // touch
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

void ShardedRelaxationCache::insert(std::span<const double> pricing,
                                    RelaxationPtr value) {
  Shard& s = shard_for(pricing);
  Key key(pricing.begin(), pricing.end());
  std::lock_guard lock(s.mutex);
  const auto [it, inserted] = s.map.try_emplace(std::move(key));
  Entry& e = it->second;
  if (!inserted && e.value != nullptr) {
    // Existing ready entry: replace the value in place and touch.
    e.value = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, e.lru_pos);
    return;
  }
  e.value = std::move(value);
  s.lru.push_front(it->first);
  e.lru_pos = s.lru.begin();
  solves_.fetch_add(1, std::memory_order_relaxed);
  while (s.lru.size() > shard_capacity_ && s.lru.back() != it->first) {
    s.map.erase(s.lru.back());
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ShardedRelaxationCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mutex);
    total += s->lru.size();
  }
  return total;
}

void ShardedRelaxationCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mutex);
    // Keep in-flight placeholders (value == nullptr): their solver will
    // complete the entry; dropping them would strand its waiters.
    for (const Key& k : s->lru) s->map.erase(k);
    s->lru.clear();
  }
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/score_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace carbon::bcpop {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= kFnvPrime;
}

/// FNV-1a over the exact key content (node bit patterns included, so -0.0
/// and NaN payloads key distinctly — strictly finer than ==, never coarser).
std::uint64_t hash_key(std::span<const gp::Node> nodes,
                       std::span<const double> pricing,
                       EvalPurpose purpose) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const gp::Node& nd : nodes) {
    fnv_mix(h, static_cast<std::uint64_t>(nd.op));
    fnv_mix(h, nd.terminal);
    fnv_mix(h, std::bit_cast<std::uint64_t>(nd.value));
  }
  fnv_mix(h, 0x9e3779b97f4a7c15ull);  // separate the node and pricing runs
  for (double x : pricing) {
    fnv_mix(h, std::bit_cast<std::uint64_t>(x));
  }
  fnv_mix(h, static_cast<std::uint64_t>(purpose));
  return h;
}

bool same_nodes(std::span<const gp::Node> a,
                std::span<const gp::Node> b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].terminal != b[i].terminal ||
        std::bit_cast<std::uint64_t>(a[i].value) !=
            std::bit_cast<std::uint64_t>(b[i].value)) {
      return false;
    }
  }
  return true;
}

bool same_doubles(std::span<const double> a,
                  std::span<const double> b) noexcept {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

ScoreCache::ScoreCache(std::size_t capacity, std::size_t num_shards) {
  num_shards = std::max<std::size_t>(num_shards, 1);
  capacity = std::max<std::size_t>(capacity, 1);
  shard_capacity_ = std::max<std::size_t>(1, capacity / num_shards);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ScoreCache::lookup(std::span<const gp::Node> nodes,
                        std::span<const double> pricing, EvalPurpose purpose,
                        Evaluation* out) {
  const std::uint64_t h = hash_key(nodes, pricing, purpose);
  Shard& shard = *shards_[h % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto chain = shard.chains.find(h);
    if (chain != shard.chains.end()) {
      for (const auto it : chain->second) {
        if (it->purpose == purpose && same_nodes(it->nodes, nodes) &&
            same_doubles(it->pricing, pricing)) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it);
          *out = it->value;
          hits_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ScoreCache::insert(std::span<const gp::Node> nodes,
                        std::span<const double> pricing, EvalPurpose purpose,
                        const Evaluation& result) {
  const std::uint64_t h = hash_key(nodes, pricing, purpose);
  Shard& shard = *shards_[h % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& chain = shard.chains[h];
  for (const auto it : chain) {
    if (it->purpose == purpose && same_nodes(it->nodes, nodes) &&
        same_doubles(it->pricing, pricing)) {
      // Concurrent scalar callers may race a probe-then-insert; both
      // computed identical bits, so refreshing recency is all that is left.
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
      return;
    }
  }
  shard.lru.push_front(Entry{{nodes.begin(), nodes.end()},
                             {pricing.begin(), pricing.end()},
                             purpose,
                             result});
  chain.push_back(shard.lru.begin());
  while (shard.lru.size() > shard_capacity_) {
    const auto victim = std::prev(shard.lru.end());
    const std::uint64_t vh =
        hash_key(victim->nodes, victim->pricing, victim->purpose);
    auto vchain = shard.chains.find(vh);
    auto& vec = vchain->second;
    vec.erase(std::find(vec.begin(), vec.end(), victim));
    if (vec.empty()) shard.chains.erase(vchain);
    shard.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ScoreCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void ScoreCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->chains.clear();
    shard->lru.clear();
  }
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/eval_core.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <vector>

#include "carbon/bilevel/gap.hpp"
#include "carbon/cover/local_search.hpp"
#include "carbon/gp/scoring.hpp"

namespace carbon::bcpop {

namespace {

/// Points the context's working market at this pricing.
void load_pricing(EvalContext& ctx, std::span<const double> pricing) {
  assert(pricing.size() == ctx.inst->num_owned());
  for (std::size_t j = 0; j < pricing.size(); ++j) {
    ctx.ll.set_cost(j, pricing[j]);
  }
}

}  // namespace

EvalContext::EvalContext(const Instance& instance)
    : inst(&instance),
      ll(instance.market()),
      ll_lp(cover::build_relaxation_lp(instance.market())) {
  // Solve the base-market LP once to pin the warm-start basis. The basis
  // stays primal-feasible under any leader pricing (costs only enter the
  // objective). If the base market is not coverable the basis stays empty
  // and later solves crash-start, which is equally deterministic.
  lp::Basis basis;
  const lp::Solution sol = lp::solve(ll_lp, {}, &basis);
  if (sol.status == lp::SolveStatus::kOptimal) {
    baseline_basis = std::move(basis);
  }
}

cover::Relaxation solve_relaxation(EvalContext& ctx,
                                   std::span<const double> pricing) {
  for (std::size_t j = 0; j < pricing.size(); ++j) {
    ctx.ll_lp.objective[j] = pricing[j];
  }
  // Warm-start from a COPY of the fixed baseline so the basis stored in the
  // context never drifts with evaluation order.
  lp::Basis basis = ctx.baseline_basis;
  const lp::Solution sol =
      lp::solve(ctx.ll_lp, {}, basis.empty() ? nullptr : &basis);
  cover::Relaxation relax;
  if (sol.status == lp::SolveStatus::kOptimal) {
    relax.feasible = true;
    relax.lower_bound = sol.objective;
    relax.duals = sol.duals;
    relax.relaxed_x = sol.x;
  } else if (sol.status != lp::SolveStatus::kInfeasible) {
    throw std::runtime_error(
        std::string("bcpop: LP relaxation failed with status ") +
        lp::to_string(sol.status));
  }
  return relax;
}

cover::SolveResult solve_with_heuristic(EvalContext& ctx,
                                        const cover::Relaxation& relax,
                                        std::span<const double> pricing,
                                        const gp::Tree& heuristic,
                                        bool polish) {
  load_pricing(ctx, pricing);

  if (gp::is_static_heuristic(heuristic)) {
    // The score ignores the residual-dependent terminals, so it is constant
    // per bundle: one evaluation per bundle plus a sorted sweep replaces the
    // per-round argmax (identical semantics, see greedy_solve_static docs).
    const std::size_t m = ctx.ll.num_bundles();
    const std::size_t n = ctx.ll.num_services();
    std::vector<double> scores(m);
    for (std::size_t j = 0; j < m; ++j) {
      cover::BundleFeatures f;
      f.cost = ctx.ll.cost(j);
      const auto row = ctx.ll.bundle(j);
      for (std::size_t k = 0; k < n; ++k) {
        f.qsum += row[k];
        if (k < relax.duals.size()) f.dual += relax.duals[k] * row[k];
      }
      f.xbar = j < relax.relaxed_x.size() ? relax.relaxed_x[j] : 0.0;
      const auto arr = gp::features_to_array(f);
      scores[j] =
          heuristic.evaluate(std::span<const double, gp::kNumTerminals>(arr));
    }
    cover::SolveResult solved = cover::greedy_solve_static(ctx.ll, scores);
    if (polish && solved.feasible) {
      solved.value = cover::local_search(ctx.ll, solved.selection).value;
    }
    return solved;
  }

  // Hot path: the tree evaluation inlines into the greedy's scoring loop
  // (no std::function indirection — this runs ~10^5 times per solver run).
  cover::SolveResult solved = cover::greedy_solve_with(
      ctx.ll,
      [&heuristic](const cover::BundleFeatures& f) {
        const auto arr = gp::features_to_array(f);
        return heuristic.evaluate(
            std::span<const double, gp::kNumTerminals>(arr));
      },
      relax.duals, relax.relaxed_x);
  if (polish && solved.feasible) {
    solved.value = cover::local_search(ctx.ll, solved.selection).value;
  }
  return solved;
}

cover::SolveResult solve_with_score(EvalContext& ctx,
                                    const cover::Relaxation& relax,
                                    std::span<const double> pricing,
                                    const cover::ScoreFunction& score) {
  load_pricing(ctx, pricing);
  return cover::greedy_solve(ctx.ll, score, relax.duals, relax.relaxed_x);
}

cover::SolveResult solve_with_selection(EvalContext& ctx,
                                        const cover::Relaxation& relax,
                                        std::span<const double> pricing,
                                        std::span<const std::uint8_t> selection) {
  (void)relax;
  load_pricing(ctx, pricing);

  cover::SolveResult solved;
  solved.selection.assign(selection.begin(), selection.end());
  solved.selection.resize(ctx.ll.num_bundles(), 0);

  // Repair: add the cheapest-per-useful-coverage bundles until feasible.
  std::vector<int> residual = ctx.ll.residual_demand(solved.selection);
  long long outstanding = 0;
  for (int r : residual) outstanding += r;
  while (outstanding > 0) {
    double best_ratio = -1.0;
    std::size_t best_j = ctx.ll.num_bundles();
    for (std::size_t j = 0; j < ctx.ll.num_bundles(); ++j) {
      if (solved.selection[j]) continue;
      const auto row = ctx.ll.bundle(j);
      long long useful = 0;
      for (std::size_t k = 0; k < ctx.ll.num_services(); ++k) {
        if (residual[k] > 0 && row[k] > 0) {
          useful += std::min(row[k], residual[k]);
        }
      }
      if (useful <= 0) continue;
      const double ratio =
          static_cast<double>(useful) / std::max(ctx.ll.cost(j), 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_j = j;
      }
    }
    if (best_j == ctx.ll.num_bundles()) {
      solved.feasible = false;
      solved.value = ctx.ll.selection_cost(solved.selection);
      return solved;
    }
    solved.selection[best_j] = 1;
    const auto row = ctx.ll.bundle(best_j);
    for (std::size_t k = 0; k < ctx.ll.num_services(); ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        const int used = std::min(row[k], residual[k]);
        residual[k] -= used;
        outstanding -= used;
      }
    }
  }

  solved.feasible = true;
  solved.value = ctx.ll.selection_cost(solved.selection);
  return solved;
}

Evaluation finalize_evaluation(const Instance& inst,
                               std::span<const double> pricing,
                               const cover::SolveResult& solved,
                               const cover::Relaxation& relax,
                               EvalPurpose purpose) {
  Evaluation out;
  out.ll_feasible = solved.feasible;
  out.selection = solved.selection;
  out.ll_objective = solved.value;
  out.lower_bound = relax.lower_bound;
  out.gap_percent = solved.feasible
                        ? bilevel::percent_gap(solved.value, relax.lower_bound)
                        : 1e9;
  if (purpose == EvalPurpose::kBoth) {
    out.ul_objective = inst.leader_revenue(pricing, out.selection);
  }
  return out;
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/eval_core.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "carbon/bilevel/gap.hpp"
#include "carbon/cover/lagrangian.hpp"
#include "carbon/cover/local_search.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/obs/metrics.hpp"

namespace carbon::bcpop {

namespace {

/// Points the context's working market at this pricing.
void load_pricing(EvalContext& ctx, std::span<const double> pricing) {
  assert(pricing.size() == ctx.inst->num_owned());
  for (std::size_t j = 0; j < pricing.size(); ++j) {
    ctx.ll.set_cost(j, pricing[j]);
  }
}

// --- Hashing for the per-batch score memo -----------------------------------
// FNV-1a over exact content; equality is always re-verified bitwise, so hash
// collisions cost a comparison, never a wrong merge.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= kFnvPrime;
}

[[nodiscard]] std::uint64_t hash_nodes(std::span<const gp::Node> nodes) {
  std::uint64_t h = kFnvOffset;
  for (const gp::Node& nd : nodes) {
    fnv_mix(h, static_cast<std::uint64_t>(nd.op));
    fnv_mix(h, nd.terminal);
    fnv_mix(h, std::bit_cast<std::uint64_t>(nd.value));
  }
  return h;
}

/// Bitwise node-sequence equality (distinguishes -0.0 from +0.0 and NaN
/// payloads — strictly finer than ==, so it can never merge trees whose
/// evaluations could differ).
[[nodiscard]] bool same_nodes(std::span<const gp::Node> a,
                              std::span<const gp::Node> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].terminal != b[i].terminal ||
        std::bit_cast<std::uint64_t>(a[i].value) !=
            std::bit_cast<std::uint64_t>(b[i].value)) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] std::uint64_t hash_doubles(std::span<const double> v) {
  std::uint64_t h = kFnvOffset;
  for (double x : v) fnv_mix(h, std::bit_cast<std::uint64_t>(x));
  return h;
}

[[nodiscard]] bool same_doubles(std::span<const double> a,
                                std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

EvalContext::EvalContext(const Instance& instance)
    : EvalContext(instance, cover::RelaxationFamily(instance.market())) {}

EvalContext::EvalContext(const Instance& instance,
                         const cover::RelaxationFamily& shared)
    : inst(&instance),
      ll(instance.market()),
      // Copying the family clones the validated problem without
      // re-validating; the baseline basis (optimal for the base costs,
      // primal-feasible under any leader pricing — costs only enter the
      // objective) was pinned once when `shared` was built. An empty
      // baseline means the base market is not coverable; later solves then
      // crash-start, which is equally deterministic.
      ll_family(shared.family),
      baseline_basis(shared.baseline_basis) {}

cover::Relaxation solve_relaxation(EvalContext& ctx,
                                   std::span<const double> pricing) {
  ctx.ll_family.rebind(pricing);
  // Warm-start from a COPY of the fixed baseline so the basis stored in the
  // context never drifts with evaluation order. The copy lands in the
  // context's scratch basis, whose vectors keep their capacity across calls.
  ctx.basis_scratch = ctx.baseline_basis;
  return cover::solve_relaxation_lp(
      ctx.ll_family, {},
      ctx.basis_scratch.empty() ? nullptr : &ctx.basis_scratch,
      &ctx.lp_scratch);
}

namespace {

/// Rung 2: no bound at all. The evaluation stays valid — LB = 0 is a
/// trivially correct lower bound for non-negative costs — it just reports a
/// pessimal gap. Empty duals/x̄ make the DUAL/XBAR terminals read 0, the
/// same convention the unguarded path uses for absent relaxation data.
cover::Relaxation greedy_only_relaxation(guard::Trip trip,
                                         long long nodes_spent) {
  cover::Relaxation out;
  out.feasible = true;
  out.lower_bound = 0.0;
  out.guard_rung = guard::Rung::kGreedyOnly;
  out.guard_trip = trip;
  out.guard_nodes = nodes_spent;
  return out;
}

/// Rung 1: Lagrangian subgradient bound. Requires load_pricing to have run
/// (the multipliers price the CURRENT market). Falls through to rung 2 when
/// the rung-1 iteration allowance is already zero.
cover::Relaxation lagrangian_relaxation(EvalContext& ctx, guard::Trip trip,
                                        long long nodes_spent) {
  const guard::Limits& lim = ctx.guard;
  long long cap = lim.lagrangian_iteration_cap;
  if (lim.ll_node_cap > 0) {
    const long long remaining = lim.ll_node_cap - nodes_spent;
    if (remaining <= 0) return greedy_only_relaxation(trip, nodes_spent);
    cap = guard::combine_caps(cap, remaining);
  }
  if (cap <= 0) return greedy_only_relaxation(trip, nodes_spent);

  // Any feasible cover's value calibrates the Polyak steps; the sum of all
  // bundle costs is one (select everything) and needs no extra solve.
  double ub = 0.0;
  for (std::size_t j = 0; j < ctx.ll.num_bundles(); ++j) {
    ub += ctx.ll.cost(j);
  }
  cover::LagrangianOptions opts;
  opts.max_iterations = static_cast<std::size_t>(cap);
  const cover::LagrangianResult res =
      cover::lagrangian_bound(ctx.ll, ub, opts);

  cover::Relaxation out;
  out.feasible = true;
  out.lower_bound = res.lower_bound;
  out.duals = res.multipliers;
  out.relaxed_x.assign(res.inner_selection.begin(),
                       res.inner_selection.end());
  out.guard_rung = guard::Rung::kLagrangian;
  out.guard_trip = trip;
  out.guard_nodes = nodes_spent + static_cast<long long>(res.iterations);
  return out;
}

}  // namespace

cover::Relaxation solve_relaxation_guarded(EvalContext& ctx,
                                           std::span<const double> pricing,
                                           guard::Trip force_trip,
                                           guard::Rung force_rung) {
  const guard::Limits& lim = ctx.guard;
  if (force_trip == guard::Trip::kNone && lim.lp_iteration_cap == 0 &&
      lim.ll_node_cap == 0) {
    // No rung-0 cap in play: the unguarded kernel, bit for bit.
    return solve_relaxation(ctx, pricing);
  }

  if (force_trip != guard::Trip::kNone) {
    // Forced (injected) trip: skip rung 0 entirely and land on the
    // requested rung. The Lagrangian prices the current market, so load it.
    load_pricing(ctx, pricing);
    return force_rung == guard::Rung::kGreedyOnly
               ? greedy_only_relaxation(force_trip, 0)
               : lagrangian_relaxation(ctx, force_trip, 0);
  }

  const long long cap =
      guard::combine_caps(lim.lp_iteration_cap, lim.ll_node_cap);
  ctx.ll_family.rebind(pricing);
  ctx.basis_scratch = ctx.baseline_basis;
  lp::SimplexOptions opts;
  opts.max_iterations = static_cast<int>(
      std::min<long long>(cap, std::numeric_limits<int>::max()));
  cover::Relaxation relax = cover::solve_relaxation_lp_capped(
      ctx.ll_family, opts,
      ctx.basis_scratch.empty() ? nullptr : &ctx.basis_scratch,
      &ctx.lp_scratch);
  if (relax.guard_trip == guard::Trip::kNone) return relax;

  // The cap that bound first names the trip: the LP cap if it is the
  // tighter (or only) one, the node budget otherwise.
  const guard::Trip trip =
      lim.lp_iteration_cap > 0 && cap == lim.lp_iteration_cap
          ? guard::Trip::kLpIterationCap
          : guard::Trip::kNodeBudget;
  const long long spent = relax.guard_nodes;
  load_pricing(ctx, pricing);
  return lagrangian_relaxation(ctx, trip, spent);
}

cover::Relaxation solve_relaxation_pooled(EvalContext& ctx,
                                          std::span<const double> pricing,
                                          const lp::Basis& warm,
                                          lp::Basis* final_basis) {
  const guard::Limits& lim = ctx.guard;
  ctx.ll_family.rebind(pricing);
  // The start basis is copied into the context scratch; on an optimal clean
  // exit the solver overwrites it with the FINAL basis (stats.basis_saved).
  ctx.basis_scratch = warm;
  lp::Basis* warm_ptr = &ctx.basis_scratch;

  cover::Relaxation relax;
  if (lim.lp_iteration_cap == 0 && lim.ll_node_cap == 0) {
    relax = cover::solve_relaxation_lp(ctx.ll_family, {}, warm_ptr,
                                       &ctx.lp_scratch);
  } else {
    // Rung-0 cap discipline mirrors solve_relaxation_guarded; a tripped
    // solve degrades to the Lagrangian/greedy rungs, which never produce a
    // basis to commit.
    const long long cap =
        guard::combine_caps(lim.lp_iteration_cap, lim.ll_node_cap);
    lp::SimplexOptions opts;
    opts.max_iterations = static_cast<int>(
        std::min<long long>(cap, std::numeric_limits<int>::max()));
    relax = cover::solve_relaxation_lp_capped(ctx.ll_family, opts, warm_ptr,
                                              &ctx.lp_scratch);
    if (relax.guard_trip != guard::Trip::kNone) {
      const guard::Trip trip =
          lim.lp_iteration_cap > 0 && cap == lim.lp_iteration_cap
              ? guard::Trip::kLpIterationCap
              : guard::Trip::kNodeBudget;
      const long long spent = relax.guard_nodes;
      load_pricing(ctx, pricing);
      return lagrangian_relaxation(ctx, trip, spent);
    }
  }
  if (final_basis != nullptr && relax.stats.basis_saved) {
    *final_basis = ctx.basis_scratch;
  }
  return relax;
}

ConstructionBudget plan_construction(const guard::Limits& limits,
                                     const cover::Relaxation& relax) {
  ConstructionBudget plan;
  plan.options.max_rounds = limits.construction_round_cap;
  if (limits.ll_node_cap > 0) {
    const long long remaining = limits.ll_node_cap - relax.guard_nodes;
    if (remaining <= 0) {
      plan.skip = true;
      return plan;
    }
    plan.options.max_rounds =
        guard::combine_caps(plan.options.max_rounds, remaining);
  }
  return plan;
}

Evaluation skipped_evaluation(const Instance& inst,
                              std::span<const double> pricing,
                              const cover::Relaxation& relax,
                              guard::Trip trip, EvalPurpose purpose) {
  Evaluation out;
  out.ll_feasible = false;
  out.ll_objective = 0.0;
  out.lower_bound = relax.lower_bound;
  out.gap_percent = 1e9;
  out.selection.assign(inst.market().num_bundles(), 0);
  out.guard.rung = relax.guard_rung;
  out.guard.trip =
      relax.guard_trip != guard::Trip::kNone ? relax.guard_trip : trip;
  out.guard.budget_exhausted = true;
  if (purpose == EvalPurpose::kBoth) {
    out.ul_objective = inst.leader_revenue(pricing, out.selection);
  }
  return out;
}

void record_lp_metrics(obs::MetricsRegistry* metrics,
                       const cover::Relaxation& relax) {
  if (metrics == nullptr) return;
  metrics->add_counter("lp/iterations", relax.stats.iterations);
  metrics->add_counter("lp/refactorizations", relax.stats.refactorizations);
  if (relax.stats.warm_start_used) {
    metrics->add_counter("lp/warm_start_hits");
  }
  if (relax.stats.warm_start_rejected) {
    metrics->add_counter("lp/warm_start_rejects");
  }
  metrics->add_counter("lp/ftran_nnz_skipped", relax.stats.ftran_nnz_skipped);
}

cover::SolveResult solve_with_heuristic(EvalContext& ctx,
                                        const cover::Relaxation& relax,
                                        std::span<const double> pricing,
                                        const gp::Tree& heuristic, bool polish,
                                        const cover::GreedyOptions& greedy) {
  load_pricing(ctx, pricing);

  if (gp::is_static_heuristic(heuristic)) {
    // The score ignores the residual-dependent terminals, so it is constant
    // per bundle: one evaluation per bundle plus a sorted sweep replaces the
    // per-round argmax (identical semantics, see greedy_solve_static docs).
    const std::size_t m = ctx.ll.num_bundles();
    const std::size_t n = ctx.ll.num_services();
    std::vector<double>& scores = ctx.static_scores;
    scores.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      cover::BundleFeatures f;
      f.cost = ctx.ll.cost(j);
      const auto row = ctx.ll.bundle(j);
      for (std::size_t k = 0; k < n; ++k) {
        f.qsum += row[k];
        if (k < relax.duals.size()) f.dual += relax.duals[k] * row[k];
      }
      f.xbar = j < relax.relaxed_x.size() ? relax.relaxed_x[j] : 0.0;
      const auto arr = gp::features_to_array(f);
      scores[j] = heuristic.evaluate(
          std::span<const double, gp::kNumTerminals>(arr), ctx.op_scratch);
    }
    cover::SolveResult solved =
        cover::greedy_solve_static(ctx.ll, scores, greedy);
    if (polish && solved.feasible) {
      solved.value = cover::local_search(ctx.ll, solved.selection).value;
    }
    return solved;
  }

  // Hot path: the tree evaluation inlines into the greedy's scoring loop
  // (no std::function indirection — this runs ~10^5 times per solver run).
  cover::SolveResult solved = cover::greedy_solve_with(
      ctx.ll,
      [&heuristic, &ctx](const cover::BundleFeatures& f) {
        const auto arr = gp::features_to_array(f);
        return heuristic.evaluate(
            std::span<const double, gp::kNumTerminals>(arr), ctx.op_scratch);
      },
      relax.duals, relax.relaxed_x, greedy);
  if (polish && solved.feasible) {
    solved.value = cover::local_search(ctx.ll, solved.selection).value;
  }
  return solved;
}

cover::SolveResult solve_with_program(EvalContext& ctx,
                                      const cover::Relaxation& relax,
                                      std::span<const double> pricing,
                                      const gp::CompiledProgram& program,
                                      bool polish, obs::MetricsRegistry* metrics,
                                      const cover::GreedyOptions& greedy) {
  load_pricing(ctx, pricing);

  cover::SolveResult solved;
  if (program.is_static()) {
    // The canonical program reads neither QCOV nor BRES (checked AFTER
    // simplification, so trees whose dynamic terminals fold away — e.g.
    // (sub QCOV QCOV) — land here too). One batched sweep computes every
    // bundle's round-invariant score; the sorted greedy is equivalent to
    // the per-round argmax (see greedy_solve_static). All columns live in
    // the per-context greedy scratch — zero allocations once warm.
    const std::size_t m = ctx.ll.num_bundles();
    cover::GreedyScratch& gs = ctx.greedy_scratch;
    cover::detail::static_masses(ctx.ll, relax.duals, gs.qsum, gs.dual_mass);
    gs.xbar.assign(m, 0.0);
    for (std::size_t j = 0; j < m && j < relax.relaxed_x.size(); ++j) {
      gs.xbar[j] = relax.relaxed_x[j];
    }
    // The interpreter's static path leaves qcov/bres at their zero
    // defaults; broadcast the same zeros (the program ignores them anyway).
    const double zero = 0.0;
    gp::CompiledProgram::TerminalBatch batch;
    batch.columns[static_cast<std::size_t>(gp::Terminal::kCost)] =
        ctx.ll.costs();
    batch.columns[static_cast<std::size_t>(gp::Terminal::kQsum)] = gs.qsum;
    batch.columns[static_cast<std::size_t>(gp::Terminal::kQcov)] = {&zero, 1};
    batch.columns[static_cast<std::size_t>(gp::Terminal::kBres)] = {&zero, 1};
    batch.columns[static_cast<std::size_t>(gp::Terminal::kDual)] =
        gs.dual_mass;
    batch.columns[static_cast<std::size_t>(gp::Terminal::kXbar)] = gs.xbar;
    batch.count = m;
    ctx.static_scores.resize(m);
    program.evaluate_batch(batch, ctx.static_scores, ctx.reg_scratch);
    solved = cover::greedy_solve_static(ctx.ll, ctx.static_scores, greedy);
  } else {
    cover::GreedyBatchStats stats;
    solved = cover::greedy_solve_batched(
        ctx.ll, gp::CompiledBatchScorer(program, ctx.reg_scratch),
        relax.duals, relax.relaxed_x, greedy, &ctx.greedy_scratch, &stats);
    if (metrics != nullptr && stats.rounds > 0) {
      metrics->add_counter("greedy/rounds",
                           static_cast<long long>(stats.rounds));
      metrics->add_counter("greedy/bundles_rescored",
                           static_cast<long long>(stats.bundles_rescored));
      metrics->add_counter("greedy/rescore_slots",
                           static_cast<long long>(stats.rescore_slots));
      metrics->set_gauge("greedy/rescored_frac", stats.rescored_frac());
    }
  }
  if (polish && solved.feasible) {
    solved.value = cover::local_search(ctx.ll, solved.selection).value;
  }
  return solved;
}

HeuristicBatchPlan plan_heuristic_batch(std::span<const HeuristicJob> jobs,
                                        bool compiled_scoring) {
  HeuristicBatchPlan plan;
  plan.result_of.resize(jobs.size());
  if (jobs.empty()) return plan;

  // 1. Group jobs by exact tree content so each distinct genome is hashed
  //    (and later compiled) once. Chains keyed by content hash; equality is
  //    verified node-by-node.
  std::vector<std::size_t> content_group_of(jobs.size());
  std::vector<std::size_t> content_rep;  // group id -> representative job
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> content_chains;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& nodes = jobs[i].heuristic->nodes();
    auto& chain = content_chains[hash_nodes(nodes)];
    std::size_t gid = content_rep.size();
    for (std::size_t g : chain) {
      if (same_nodes(nodes, jobs[content_rep[g]].heuristic->nodes())) {
        gid = g;
        break;
      }
    }
    if (gid == content_rep.size()) {
      content_rep.push_back(i);
      chain.push_back(gid);
    }
    content_group_of[i] = gid;
  }

  // 2. Compile one program per content group, then merge groups whose
  //    CANONICAL forms coincide — syntactically different genomes that
  //    simplify to the same program share one evaluation. With compiled
  //    scoring off, merged groups are the content groups themselves.
  std::vector<std::size_t> merged_of(content_rep.size());
  std::vector<std::shared_ptr<const gp::CompiledProgram>> merged_program;
  if (compiled_scoring) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> canon_chains;
    for (std::size_t g = 0; g < content_rep.size(); ++g) {
      auto program = std::make_shared<const gp::CompiledProgram>(
          gp::CompiledProgram::compile(*jobs[content_rep[g]].heuristic));
      auto& chain = canon_chains[program->canonical_hash()];
      std::size_t mid = merged_program.size();
      for (std::size_t c : chain) {
        if (std::ranges::equal(program->canonical_nodes(),
                               merged_program[c]->canonical_nodes())) {
          mid = c;
          break;
        }
      }
      if (mid == merged_program.size()) {
        merged_program.push_back(std::move(program));
        chain.push_back(mid);
      }
      merged_of[g] = mid;
    }
  } else {
    merged_program.assign(content_rep.size(), nullptr);
    for (std::size_t g = 0; g < content_rep.size(); ++g) merged_of[g] = g;
  }

  // 3. Key each job by (merged tree group, pricing content, purpose);
  //    first job with a fresh key becomes the unique's representative.
  struct JobKeyChain {
    std::vector<std::size_t> uniques;  // indices into plan.uniques
  };
  std::unordered_map<std::uint64_t, JobKeyChain> job_chains;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::size_t mid = merged_of[content_group_of[i]];
    std::uint64_t h = hash_doubles(jobs[i].pricing);
    fnv_mix(h, mid);
    fnv_mix(h, static_cast<std::uint64_t>(jobs[i].purpose));
    auto& chain = job_chains[h];
    std::size_t uid = plan.uniques.size();
    for (std::size_t u : chain.uniques) {
      const HeuristicJob& rep = jobs[plan.uniques[u].job_index];
      if (merged_of[content_group_of[plan.uniques[u].job_index]] == mid &&
          rep.purpose == jobs[i].purpose &&
          same_doubles(rep.pricing, jobs[i].pricing)) {
        uid = u;
        break;
      }
    }
    if (uid == plan.uniques.size()) {
      plan.uniques.push_back({i, merged_program[mid]});
      chain.uniques.push_back(uid);
    }
    plan.result_of[i] = uid;
  }
  return plan;
}

cover::SolveResult solve_with_score(EvalContext& ctx,
                                    const cover::Relaxation& relax,
                                    std::span<const double> pricing,
                                    const cover::ScoreFunction& score,
                                    const cover::GreedyOptions& greedy) {
  load_pricing(ctx, pricing);
  return cover::greedy_solve(ctx.ll, score, relax.duals, relax.relaxed_x,
                             greedy);
}

cover::SolveResult solve_with_selection(EvalContext& ctx,
                                        const cover::Relaxation& relax,
                                        std::span<const double> pricing,
                                        std::span<const std::uint8_t> selection,
                                        const cover::GreedyOptions& greedy) {
  (void)relax;
  load_pricing(ctx, pricing);

  cover::SolveResult solved;
  solved.selection.assign(selection.begin(), selection.end());
  solved.selection.resize(ctx.ll.num_bundles(), 0);

  // Repair: add the cheapest-per-useful-coverage bundles until feasible.
  std::vector<int> residual = ctx.ll.residual_demand(solved.selection);
  long long outstanding = 0;
  for (int r : residual) outstanding += r;
  long long additions = 0;
  while (outstanding > 0) {
    if (greedy.max_rounds > 0 && additions >= greedy.max_rounds) {
      solved.feasible = false;
      solved.rounds_capped = true;
      solved.value = ctx.ll.selection_cost(solved.selection);
      return solved;
    }
    ++additions;
    double best_ratio = -1.0;
    std::size_t best_j = ctx.ll.num_bundles();
    for (std::size_t j = 0; j < ctx.ll.num_bundles(); ++j) {
      if (solved.selection[j]) continue;
      const auto row = ctx.ll.bundle(j);
      long long useful = 0;
      for (std::size_t k = 0; k < ctx.ll.num_services(); ++k) {
        if (residual[k] > 0 && row[k] > 0) {
          useful += std::min(row[k], residual[k]);
        }
      }
      if (useful <= 0) continue;
      const double ratio =
          static_cast<double>(useful) / std::max(ctx.ll.cost(j), 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_j = j;
      }
    }
    if (best_j == ctx.ll.num_bundles()) {
      solved.feasible = false;
      solved.value = ctx.ll.selection_cost(solved.selection);
      return solved;
    }
    solved.selection[best_j] = 1;
    const auto row = ctx.ll.bundle(best_j);
    for (std::size_t k = 0; k < ctx.ll.num_services(); ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        const int used = std::min(row[k], residual[k]);
        residual[k] -= used;
        outstanding -= used;
      }
    }
  }

  solved.feasible = true;
  solved.value = ctx.ll.selection_cost(solved.selection);
  return solved;
}

Evaluation finalize_evaluation(const Instance& inst,
                               std::span<const double> pricing,
                               const cover::SolveResult& solved,
                               const cover::Relaxation& relax,
                               EvalPurpose purpose) {
  Evaluation out;
  out.ll_feasible = solved.feasible;
  out.selection = solved.selection;
  out.ll_objective = solved.value;
  out.lower_bound = relax.lower_bound;
  out.gap_percent = solved.feasible
                        ? bilevel::percent_gap(solved.value, relax.lower_bound)
                        : 1e9;
  out.guard.rung = relax.guard_rung;
  out.guard.construction_capped = solved.rounds_capped;
  out.guard.trip = relax.guard_trip != guard::Trip::kNone
                       ? relax.guard_trip
                       : (solved.rounds_capped ? guard::Trip::kConstructionCap
                                               : guard::Trip::kNone);
  if (purpose == EvalPurpose::kBoth) {
    out.ul_objective = inst.leader_revenue(pricing, out.selection);
  }
  return out;
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/parallel_evaluator.hpp"

#include <algorithm>
#include <thread>

#include "carbon/common/stopwatch.hpp"
#include "carbon/gp/simd.hpp"

namespace carbon::bcpop {

/// Pops a context off the free list (waiting if every context is in use —
/// only possible under caller-side oversubscription) and returns it on
/// destruction, exception-safe.
class ParallelEvaluator::ContextLease {
 public:
  explicit ContextLease(ParallelEvaluator& owner) : owner_(owner) {
    std::unique_lock lock(owner_.free_mutex_);
    owner_.free_cv_.wait(lock,
                         [&] { return !owner_.free_contexts_.empty(); });
    ctx_ = owner_.free_contexts_.back();
    owner_.free_contexts_.pop_back();
  }
  ~ContextLease() {
    {
      std::lock_guard lock(owner_.free_mutex_);
      owner_.free_contexts_.push_back(ctx_);
    }
    owner_.free_cv_.notify_one();
  }
  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

  [[nodiscard]] EvalContext& get() noexcept { return *ctx_; }

 private:
  ParallelEvaluator& owner_;
  EvalContext* ctx_ = nullptr;
};

ParallelEvaluator::ParallelEvaluator(const Instance& instance, Options options)
    : inst_(instance),
      pool_(options.threads != 0
                ? options.threads
                : std::max<std::size_t>(
                      1, std::thread::hardware_concurrency())),
      cache_(std::max<std::size_t>(options.relaxation_cache_capacity, 1),
             std::max<std::size_t>(options.cache_shards, 1)) {
  const std::size_t n = pool_.size() + 1;
  contexts_.reserve(n);
  free_contexts_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts_.push_back(std::make_unique<EvalContext>(inst_));
    free_contexts_.push_back(contexts_.back().get());
  }
}

void ParallelEvaluator::charge(EvalPurpose purpose) noexcept {
  ll_evals_.fetch_add(1, std::memory_order_relaxed);
  if (purpose == EvalPurpose::kBoth) {
    ul_evals_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ParallelEvaluator::count_guard(const Evaluation& evaluation) noexcept {
  const guard::Outcome& g = evaluation.guard;
  if (g.tripped()) {
    guard_trips_.fetch_add(1, std::memory_order_relaxed);
    obs::count(metrics_, "guard/trips");
  }
  if (g.degraded()) {
    guard_degraded_.fetch_add(1, std::memory_order_relaxed);
    obs::count(metrics_, "guard/degraded_evals");
  }
  if (g.budget_exhausted) {
    guard_exhausted_.fetch_add(1, std::memory_order_relaxed);
    obs::count(metrics_, "guard/budget_exhausted");
  }
}

void ParallelEvaluator::set_guard(const guard::GuardConfig& config,
                                  long long eval_base) noexcept {
  guard_ = config;
  inject_at_ =
      config.inject.at_eval >= 0 ? eval_base + config.inject.at_eval : -1;
  for (const auto& ctx : contexts_) ctx->guard = config.limits;
}

Evaluation ParallelEvaluator::finish_heuristic(
    EvalContext& ctx, const cover::Relaxation& relax, const HeuristicJob& job,
    const gp::CompiledProgram* program) {
  const ConstructionBudget plan = plan_construction(ctx.guard, relax);
  if (plan.skip) {
    return skipped_evaluation(inst_, job.pricing, relax,
                              guard::Trip::kNodeBudget, job.purpose);
  }
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      program
          ? solve_with_program(ctx, relax, job.pricing, *program, polish_,
                               metrics_, plan.options)
          : solve_with_heuristic(ctx, relax, job.pricing, *job.heuristic,
                                 polish_, plan.options);
  timer.stop();
  return finalize_evaluation(inst_, job.pricing, solved, relax, job.purpose);
}

Evaluation ParallelEvaluator::evaluate_heuristic_job(
    EvalContext& ctx, const HeuristicJob& job,
    const gp::CompiledProgram* program, bool injected) {
  if (injected) {
    // Forced trip: the degradation is ordinal-dependent, so it must never
    // land in — or come from — the pricing-keyed shared cache.
    const cover::Relaxation relax = solve_relaxation_guarded(
        ctx, job.pricing, guard::Trip::kInjected, guard_.inject.degrade_to);
    return finish_heuristic(ctx, relax, job, program);
  }
  common::Stopwatch watchdog;
  const auto relax =
      cache_.get_or_compute(job.pricing, [&](std::span<const double> p) {
        obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
        cover::Relaxation r = solve_relaxation_guarded(ctx, p);
        timer.stop();
        record_lp_metrics(metrics_, r);
        return r;
      });
  if (guard_.limits.watchdog_seconds > 0.0 &&
      watchdog.seconds() > guard_.limits.watchdog_seconds) {
    // Only this evaluation's construction stage is skipped; the cached
    // relaxation stays full-fidelity. Opt-in, explicitly non-deterministic.
    return skipped_evaluation(inst_, job.pricing, *relax,
                              guard::Trip::kWatchdog, job.purpose);
  }
  return finish_heuristic(ctx, *relax, job, program);
}

Evaluation ParallelEvaluator::evaluate_one(EvalContext& ctx,
                                           const SelectionJob& job,
                                           bool injected) {
  Evaluation result;
  if (injected) {
    const cover::Relaxation relax = solve_relaxation_guarded(
        ctx, job.pricing, guard::Trip::kInjected, guard_.inject.degrade_to);
    charge(job.purpose);
    const ConstructionBudget plan = plan_construction(ctx.guard, relax);
    if (plan.skip) {
      result = skipped_evaluation(inst_, job.pricing, relax,
                                  guard::Trip::kNodeBudget, job.purpose);
    } else {
      obs::ScopedTimer timer(metrics_, "time/ll_solve");
      const cover::SolveResult solved = solve_with_selection(
          ctx, relax, job.pricing, job.selection, plan.options);
      timer.stop();
      result =
          finalize_evaluation(inst_, job.pricing, solved, relax, job.purpose);
    }
    count_guard(result);
    return result;
  }

  common::Stopwatch watchdog;
  const auto relax =
      cache_.get_or_compute(job.pricing, [&](std::span<const double> p) {
        obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
        cover::Relaxation r = solve_relaxation_guarded(ctx, p);
        timer.stop();
        record_lp_metrics(metrics_, r);
        return r;
      });
  charge(job.purpose);
  if (guard_.limits.watchdog_seconds > 0.0 &&
      watchdog.seconds() > guard_.limits.watchdog_seconds) {
    result = skipped_evaluation(inst_, job.pricing, *relax,
                                guard::Trip::kWatchdog, job.purpose);
    count_guard(result);
    return result;
  }
  const ConstructionBudget plan = plan_construction(ctx.guard, *relax);
  if (plan.skip) {
    result = skipped_evaluation(inst_, job.pricing, *relax,
                                guard::Trip::kNodeBudget, job.purpose);
  } else {
    obs::ScopedTimer timer(metrics_, "time/ll_solve");
    const cover::SolveResult solved = solve_with_selection(
        ctx, *relax, job.pricing, job.selection, plan.options);
    timer.stop();
    result =
        finalize_evaluation(inst_, job.pricing, solved, *relax, job.purpose);
  }
  count_guard(result);
  return result;
}

BackendStats ParallelEvaluator::backend_stats() const {
  BackendStats s;
  s.relaxation_cache_hits = cache_.hits();
  s.relaxation_cache_misses = cache_.solves();
  s.relaxation_cache_evictions = cache_.evictions();
  s.heuristic_dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.guard_trips = guard_trips_.load(std::memory_order_relaxed);
  s.guard_degraded_evals = guard_degraded_.load(std::memory_order_relaxed);
  s.guard_budget_exhausted =
      guard_exhausted_.load(std::memory_order_relaxed);
  return s;
}

template <typename Job>
std::vector<Evaluation> ParallelEvaluator::run_batch(
    std::span<const Job> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  // Injection ordinals are assigned by submission index BEFORE fan-out
  // (job i gets base + i — the ordinal the serial call sequence would
  // charge it with), so the tripped job is the same for any thread count
  // even though the atomic charges land in arbitrary order.
  const long long base = ll_evals_.load(std::memory_order_relaxed);
  // Tasks write disjoint slots of `results`; parallel_for drains every task
  // before returning (even on exceptions), so the by-reference captures
  // cannot dangle.
  pool_.parallel_for(jobs.size(), [&](std::size_t i) {
    ContextLease lease(*this);
    results[i] = evaluate_one(lease.get(), jobs[i],
                              inject_now(base + static_cast<long long>(i)));
  });
  return results;
}

std::vector<Evaluation> ParallelEvaluator::evaluate_heuristic_batch(
    std::span<const HeuristicJob> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  obs::gauge(metrics_, "gp/lanes", static_cast<double>(gp::simd::lanes()));
  // Plan the score memo on the calling thread BEFORE fan-out: the plan is a
  // pure function of the submitted jobs, so deduplication needs no locks
  // and the set of real solves is identical for any thread count.
  const HeuristicBatchPlan plan =
      plan_heuristic_batch(jobs, compiled_scoring_);
  const long long base = ll_evals_.load(std::memory_order_relaxed);
  std::vector<Evaluation> unique_results(plan.uniques.size());
  pool_.parallel_for(plan.uniques.size(), [&](std::size_t u) {
    ContextLease lease(*this);
    unique_results[u] =
        evaluate_heuristic_job(lease.get(), jobs[plan.uniques[u].job_index],
                               plan.uniques[u].program.get(),
                               /*injected=*/false);
  });
  // Every submitted job pays the budget — the memo optimizes wall-clock,
  // never the Table II accounting, so trajectories stay bit-identical.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (inject_now(base + static_cast<long long>(i))) {
      // The injected job gets its own forced-trip evaluation on the calling
      // thread; its memo siblings keep the full-fidelity result, exactly as
      // the serial call sequence would produce.
      ContextLease lease(*this);
      results[i] = evaluate_heuristic_job(
          lease.get(), jobs[i], plan.uniques[plan.result_of[i]].program.get(),
          /*injected=*/true);
    } else {
      results[i] = unique_results[plan.result_of[i]];
    }
    charge(jobs[i].purpose);
    count_guard(results[i]);
  }
  dedup_hits_.fetch_add(static_cast<long long>(plan.duplicates()),
                        std::memory_order_relaxed);
  return results;
}

std::vector<Evaluation> ParallelEvaluator::evaluate_selection_batch(
    std::span<const SelectionJob> jobs) {
  return run_batch(jobs);
}

Evaluation ParallelEvaluator::evaluate_with_heuristic(
    std::span<const double> pricing, const gp::Tree& heuristic,
    EvalPurpose purpose) {
  ContextLease lease(*this);
  const HeuristicJob job{pricing, &heuristic, purpose};
  const bool injected =
      inject_now(ll_evals_.load(std::memory_order_relaxed));
  charge(purpose);
  Evaluation result;
  if (compiled_scoring_) {
    const gp::CompiledProgram program = gp::CompiledProgram::compile(heuristic);
    result = evaluate_heuristic_job(lease.get(), job, &program, injected);
  } else {
    result = evaluate_heuristic_job(lease.get(), job, nullptr, injected);
  }
  count_guard(result);
  return result;
}

Evaluation ParallelEvaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  ContextLease lease(*this);
  const SelectionJob job{pricing, selection, purpose};
  const bool injected =
      inject_now(ll_evals_.load(std::memory_order_relaxed));
  return evaluate_one(lease.get(), job, injected);
}

}  // namespace carbon::bcpop

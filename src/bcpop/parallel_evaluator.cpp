#include "carbon/bcpop/parallel_evaluator.hpp"

#include <algorithm>
#include <thread>

#include "carbon/gp/simd.hpp"

namespace carbon::bcpop {

/// Pops a context off the free list (waiting if every context is in use —
/// only possible under caller-side oversubscription) and returns it on
/// destruction, exception-safe.
class ParallelEvaluator::ContextLease {
 public:
  explicit ContextLease(ParallelEvaluator& owner) : owner_(owner) {
    std::unique_lock lock(owner_.free_mutex_);
    owner_.free_cv_.wait(lock,
                         [&] { return !owner_.free_contexts_.empty(); });
    ctx_ = owner_.free_contexts_.back();
    owner_.free_contexts_.pop_back();
  }
  ~ContextLease() {
    {
      std::lock_guard lock(owner_.free_mutex_);
      owner_.free_contexts_.push_back(ctx_);
    }
    owner_.free_cv_.notify_one();
  }
  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

  [[nodiscard]] EvalContext& get() noexcept { return *ctx_; }

 private:
  ParallelEvaluator& owner_;
  EvalContext* ctx_ = nullptr;
};

ParallelEvaluator::ParallelEvaluator(const Instance& instance, Options options)
    : inst_(instance),
      pool_(options.threads != 0
                ? options.threads
                : std::max<std::size_t>(
                      1, std::thread::hardware_concurrency())),
      cache_(std::max<std::size_t>(options.relaxation_cache_capacity, 1),
             std::max<std::size_t>(options.cache_shards, 1)) {
  const std::size_t n = pool_.size() + 1;
  contexts_.reserve(n);
  free_contexts_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts_.push_back(std::make_unique<EvalContext>(inst_));
    free_contexts_.push_back(contexts_.back().get());
  }
}

void ParallelEvaluator::charge(EvalPurpose purpose) noexcept {
  ll_evals_.fetch_add(1, std::memory_order_relaxed);
  if (purpose == EvalPurpose::kBoth) {
    ul_evals_.fetch_add(1, std::memory_order_relaxed);
  }
}

Evaluation ParallelEvaluator::evaluate_heuristic_job(
    EvalContext& ctx, const HeuristicJob& job,
    const gp::CompiledProgram* program) {
  const auto relax =
      cache_.get_or_compute(job.pricing, [&](std::span<const double> p) {
        obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
        cover::Relaxation r = solve_relaxation(ctx, p);
        timer.stop();
        record_lp_metrics(metrics_, r);
        return r;
      });
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      program
          ? solve_with_program(ctx, *relax, job.pricing, *program, polish_,
                               metrics_)
          : solve_with_heuristic(ctx, *relax, job.pricing, *job.heuristic,
                                 polish_);
  timer.stop();
  return finalize_evaluation(inst_, job.pricing, solved, *relax, job.purpose);
}

Evaluation ParallelEvaluator::evaluate_one(EvalContext& ctx,
                                           const SelectionJob& job) {
  const auto relax =
      cache_.get_or_compute(job.pricing, [&](std::span<const double> p) {
        obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
        cover::Relaxation r = solve_relaxation(ctx, p);
        timer.stop();
        record_lp_metrics(metrics_, r);
        return r;
      });
  charge(job.purpose);
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      solve_with_selection(ctx, *relax, job.pricing, job.selection);
  timer.stop();
  return finalize_evaluation(inst_, job.pricing, solved, *relax, job.purpose);
}

BackendStats ParallelEvaluator::backend_stats() const {
  BackendStats s;
  s.relaxation_cache_hits = cache_.hits();
  s.relaxation_cache_misses = cache_.solves();
  s.relaxation_cache_evictions = cache_.evictions();
  s.heuristic_dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  return s;
}

template <typename Job>
std::vector<Evaluation> ParallelEvaluator::run_batch(
    std::span<const Job> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  // Tasks write disjoint slots of `results`; parallel_for drains every task
  // before returning (even on exceptions), so the by-reference captures
  // cannot dangle.
  pool_.parallel_for(jobs.size(), [&](std::size_t i) {
    ContextLease lease(*this);
    results[i] = evaluate_one(lease.get(), jobs[i]);
  });
  return results;
}

std::vector<Evaluation> ParallelEvaluator::evaluate_heuristic_batch(
    std::span<const HeuristicJob> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  obs::gauge(metrics_, "gp/lanes", static_cast<double>(gp::simd::lanes()));
  // Plan the score memo on the calling thread BEFORE fan-out: the plan is a
  // pure function of the submitted jobs, so deduplication needs no locks
  // and the set of real solves is identical for any thread count.
  const HeuristicBatchPlan plan =
      plan_heuristic_batch(jobs, compiled_scoring_);
  std::vector<Evaluation> unique_results(plan.uniques.size());
  pool_.parallel_for(plan.uniques.size(), [&](std::size_t u) {
    ContextLease lease(*this);
    unique_results[u] =
        evaluate_heuristic_job(lease.get(), jobs[plan.uniques[u].job_index],
                               plan.uniques[u].program.get());
  });
  // Every submitted job pays the budget — the memo optimizes wall-clock,
  // never the Table II accounting, so trajectories stay bit-identical.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    charge(jobs[i].purpose);
    results[i] = unique_results[plan.result_of[i]];
  }
  dedup_hits_.fetch_add(static_cast<long long>(plan.duplicates()),
                        std::memory_order_relaxed);
  return results;
}

std::vector<Evaluation> ParallelEvaluator::evaluate_selection_batch(
    std::span<const SelectionJob> jobs) {
  return run_batch(jobs);
}

Evaluation ParallelEvaluator::evaluate_with_heuristic(
    std::span<const double> pricing, const gp::Tree& heuristic,
    EvalPurpose purpose) {
  ContextLease lease(*this);
  const HeuristicJob job{pricing, &heuristic, purpose};
  charge(purpose);
  if (compiled_scoring_) {
    const gp::CompiledProgram program = gp::CompiledProgram::compile(heuristic);
    return evaluate_heuristic_job(lease.get(), job, &program);
  }
  return evaluate_heuristic_job(lease.get(), job, nullptr);
}

Evaluation ParallelEvaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  ContextLease lease(*this);
  return evaluate_one(lease.get(), SelectionJob{pricing, selection, purpose});
}

}  // namespace carbon::bcpop

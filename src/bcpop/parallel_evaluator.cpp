#include "carbon/bcpop/parallel_evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <utility>

#include "carbon/common/stopwatch.hpp"
#include "carbon/gp/simd.hpp"

namespace carbon::bcpop {

EvalContext* ParallelEvaluator::acquire_context() {
  std::unique_lock lock(free_mutex_);
  free_cv_.wait(lock, [&] { return !free_contexts_.empty(); });
  EvalContext* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return ctx;
}

void ParallelEvaluator::release_context(EvalContext* ctx) noexcept {
  {
    std::lock_guard lock(free_mutex_);
    free_contexts_.push_back(ctx);
  }
  free_cv_.notify_one();
}

/// Pops a context off the free list (waiting if every context is in use —
/// only possible under caller-side oversubscription) and returns it on
/// destruction, exception-safe.
class ParallelEvaluator::ContextLease {
 public:
  explicit ContextLease(ParallelEvaluator& owner)
      : owner_(owner), ctx_(owner.acquire_context()) {}
  ~ContextLease() { owner_.release_context(ctx_); }
  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

  [[nodiscard]] EvalContext& get() noexcept { return *ctx_; }

 private:
  ParallelEvaluator& owner_;
  EvalContext* ctx_ = nullptr;
};

/// Per-participant context leases for one scheduler batch. Slot p is only
/// ever touched by participant p (the scheduler guarantees a participant id
/// is never observed by two jobs concurrently), so acquisition is lazy and
/// lock-free on the slot itself; all acquired contexts return to the free
/// list at the batch barrier.
class ParallelEvaluator::BatchLeases {
 public:
  BatchLeases(ParallelEvaluator& owner, std::size_t participants)
      : owner_(owner), slots_(participants, nullptr) {}
  ~BatchLeases() {
    for (EvalContext* ctx : slots_) {
      if (ctx != nullptr) owner_.release_context(ctx);
    }
  }
  BatchLeases(const BatchLeases&) = delete;
  BatchLeases& operator=(const BatchLeases&) = delete;

  [[nodiscard]] EvalContext& get(std::size_t participant) {
    EvalContext*& slot = slots_[participant];
    if (slot == nullptr) slot = owner_.acquire_context();
    return *slot;
  }

 private:
  ParallelEvaluator& owner_;
  std::vector<EvalContext*> slots_;
};

ParallelEvaluator::ParallelEvaluator(const Instance& instance, Options options)
    : inst_(instance),
      threads_(options.threads != 0
                   ? options.threads
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())),
      sched_kind_(options.sched),
      lp_warm_(options.lp_warm),
      // Pool mode forces ONE shard per cache: all staged lookups/inserts
      // happen on the calling thread anyway, and a single global LRU makes
      // the eviction order — and hence the pooled-solve history — exactly
      // the serial one for any thread count.
      cache_(std::max<std::size_t>(options.relaxation_cache_capacity, 1),
             options.lp_warm == LpWarm::kPool
                 ? 1
                 : std::max<std::size_t>(options.cache_shards, 1)),
      xgen_(std::max<std::size_t>(options.score_cache_capacity, 1),
            options.lp_warm == LpWarm::kPool
                ? 1
                : std::max<std::size_t>(options.score_cache_shards, 1)),
      memo_xgen_(options.memo_xgen),
      basis_pool_(std::max<std::size_t>(options.basis_pool_capacity, 1)) {
  if (sched_kind_ == common::SchedKind::kStealing) {
    scheduler_ = std::make_unique<common::TaskScheduler>(threads_);
  } else {
    pool_ = std::make_unique<common::ThreadPool>(threads_);
  }
  // Build + validate the relaxation structure and solve the base-cost LP
  // once, then stamp every per-thread context from the shared family.
  const cover::RelaxationFamily shared(inst_.market());
  const std::size_t n = threads_ + 1;
  contexts_.reserve(n);
  free_contexts_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts_.push_back(std::make_unique<EvalContext>(inst_, shared));
    free_contexts_.push_back(contexts_.back().get());
  }
}

void ParallelEvaluator::for_each(
    std::size_t n, const std::function<void(EvalContext&, std::size_t)>& body) {
  if (scheduler_ != nullptr) {
    const common::TaskScheduler::Stats before = scheduler_->stats();
    {
      BatchLeases leases(*this, scheduler_->participants());
      scheduler_->parallel_for(
          n, [&](std::size_t participant, std::size_t i) {
            body(leases.get(participant), i);
          });
    }
    if (metrics_ != nullptr) {
      const common::TaskScheduler::Stats after = scheduler_->stats();
      obs::count(metrics_, "sched/tasks", after.tasks - before.tasks);
      if (after.steals > before.steals) {
        obs::count(metrics_, "sched/steals", after.steals - before.steals);
      }
      if (after.idle_ns > before.idle_ns) {
        obs::count(metrics_, "sched/idle_ns", after.idle_ns - before.idle_ns);
      }
    }
    return;
  }
  pool_->parallel_for(n, [&](std::size_t i) {
    ContextLease lease(*this);
    body(lease.get(), i);
  });
}

void ParallelEvaluator::charge(EvalPurpose purpose) noexcept {
  ll_evals_.fetch_add(1, std::memory_order_relaxed);
  if (purpose == EvalPurpose::kBoth) {
    ul_evals_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ParallelEvaluator::count_guard(const Evaluation& evaluation) noexcept {
  const guard::Outcome& g = evaluation.guard;
  if (g.tripped()) {
    guard_trips_.fetch_add(1, std::memory_order_relaxed);
    obs::count(metrics_, "guard/trips");
  }
  if (g.degraded()) {
    guard_degraded_.fetch_add(1, std::memory_order_relaxed);
    obs::count(metrics_, "guard/degraded_evals");
  }
  if (g.budget_exhausted) {
    guard_exhausted_.fetch_add(1, std::memory_order_relaxed);
    obs::count(metrics_, "guard/budget_exhausted");
  }
}

void ParallelEvaluator::set_guard(const guard::GuardConfig& config,
                                  long long eval_base) noexcept {
  if (!(config.limits == guard_.limits)) {
    // Cached relaxations and evaluations are pure functions of
    // (inputs, limits); entries warmed under other limits would serve
    // stale degradation rungs. The basis pool and the pivots-saved
    // baseline mean are dropped with them: pooled pivot counts (and what
    // gets committed at all) depend on the rung-0 caps.
    cache_.clear();
    xgen_.clear();
    basis_pool_.clear();
    base_iter_sum_ = 0;
    base_iter_count_ = 0;
  }
  guard_ = config;
  inject_at_ =
      config.inject.at_eval >= 0 ? eval_base + config.inject.at_eval : -1;
  for (const auto& ctx : contexts_) ctx->guard = config.limits;
}

void ParallelEvaluator::clear_caches() noexcept {
  cache_.clear();
  xgen_.clear();
  // Resume isolation: a resumed segment must never consume another
  // segment's pooled bases (or its pivots-saved baseline estimate), so the
  // pool is cleared — clocks included — alongside the caches. Counters are
  // kept; solvers subtract their checkpointed offsets.
  basis_pool_.clear();
  base_iter_sum_ = 0;
  base_iter_count_ = 0;
}

Evaluation ParallelEvaluator::finish_heuristic(
    EvalContext& ctx, const cover::Relaxation& relax, const HeuristicJob& job,
    const gp::CompiledProgram* program) {
  const ConstructionBudget plan = plan_construction(ctx.guard, relax);
  if (plan.skip) {
    return skipped_evaluation(inst_, job.pricing, relax,
                              guard::Trip::kNodeBudget, job.purpose);
  }
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      program
          ? solve_with_program(ctx, relax, job.pricing, *program, polish_,
                               metrics_, plan.options)
          : solve_with_heuristic(ctx, relax, job.pricing, *job.heuristic,
                                 polish_, plan.options);
  timer.stop();
  return finalize_evaluation(inst_, job.pricing, solved, relax, job.purpose);
}

Evaluation ParallelEvaluator::evaluate_heuristic_job(
    EvalContext& ctx, const HeuristicJob& job,
    const gp::CompiledProgram* program, bool injected) {
  if (injected) {
    // Forced trip: the degradation is ordinal-dependent, so it must never
    // land in — or come from — the pricing-keyed shared cache (nor touch
    // the basis pool in pool mode).
    const cover::Relaxation relax = solve_relaxation_guarded(
        ctx, job.pricing, guard::Trip::kInjected, guard_.inject.degrade_to);
    if (relax.stats.warm_start_rejected) {
      warm_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    return finish_heuristic(ctx, relax, job, program);
  }
  common::Stopwatch watchdog;
  const auto relax =
      cache_.get_or_compute(job.pricing, [&](std::span<const double> p) {
        obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
        cover::Relaxation r = solve_relaxation_guarded(ctx, p);
        timer.stop();
        record_lp_metrics(metrics_, r);
        if (r.stats.warm_start_rejected) {
          warm_rejects_.fetch_add(1, std::memory_order_relaxed);
        }
        return r;
      });
  if (guard_.limits.watchdog_seconds > 0.0 &&
      watchdog.seconds() > guard_.limits.watchdog_seconds) {
    // Only this evaluation's construction stage is skipped; the cached
    // relaxation stays full-fidelity. Opt-in, explicitly non-deterministic.
    return skipped_evaluation(inst_, job.pricing, *relax,
                              guard::Trip::kWatchdog, job.purpose);
  }
  return finish_heuristic(ctx, *relax, job, program);
}

Evaluation ParallelEvaluator::evaluate_one(EvalContext& ctx,
                                           const SelectionJob& job,
                                           bool injected) {
  Evaluation result;
  if (injected) {
    const cover::Relaxation relax = solve_relaxation_guarded(
        ctx, job.pricing, guard::Trip::kInjected, guard_.inject.degrade_to);
    if (relax.stats.warm_start_rejected) {
      warm_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    charge(job.purpose);
    const ConstructionBudget plan = plan_construction(ctx.guard, relax);
    if (plan.skip) {
      result = skipped_evaluation(inst_, job.pricing, relax,
                                  guard::Trip::kNodeBudget, job.purpose);
    } else {
      obs::ScopedTimer timer(metrics_, "time/ll_solve");
      const cover::SolveResult solved = solve_with_selection(
          ctx, relax, job.pricing, job.selection, plan.options);
      timer.stop();
      result =
          finalize_evaluation(inst_, job.pricing, solved, relax, job.purpose);
    }
    count_guard(result);
    return result;
  }

  common::Stopwatch watchdog;
  const auto relax =
      cache_.get_or_compute(job.pricing, [&](std::span<const double> p) {
        obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
        cover::Relaxation r = solve_relaxation_guarded(ctx, p);
        timer.stop();
        record_lp_metrics(metrics_, r);
        if (r.stats.warm_start_rejected) {
          warm_rejects_.fetch_add(1, std::memory_order_relaxed);
        }
        return r;
      });
  charge(job.purpose);
  if (guard_.limits.watchdog_seconds > 0.0 &&
      watchdog.seconds() > guard_.limits.watchdog_seconds) {
    result = skipped_evaluation(inst_, job.pricing, *relax,
                                guard::Trip::kWatchdog, job.purpose);
    count_guard(result);
    return result;
  }
  const ConstructionBudget plan = plan_construction(ctx.guard, *relax);
  if (plan.skip) {
    result = skipped_evaluation(inst_, job.pricing, *relax,
                                guard::Trip::kNodeBudget, job.purpose);
  } else {
    obs::ScopedTimer timer(metrics_, "time/ll_solve");
    const cover::SolveResult solved = solve_with_selection(
        ctx, *relax, job.pricing, job.selection, plan.options);
    timer.stop();
    result =
        finalize_evaluation(inst_, job.pricing, solved, *relax, job.purpose);
  }
  count_guard(result);
  return result;
}

Evaluation ParallelEvaluator::evaluate_one_with(
    EvalContext& ctx, const SelectionJob& job,
    const cover::Relaxation& relax) {
  charge(job.purpose);
  Evaluation result;
  const ConstructionBudget plan = plan_construction(ctx.guard, relax);
  if (plan.skip) {
    result = skipped_evaluation(inst_, job.pricing, relax,
                                guard::Trip::kNodeBudget, job.purpose);
  } else {
    obs::ScopedTimer timer(metrics_, "time/ll_solve");
    const cover::SolveResult solved = solve_with_selection(
        ctx, relax, job.pricing, job.selection, plan.options);
    timer.stop();
    result =
        finalize_evaluation(inst_, job.pricing, solved, relax, job.purpose);
  }
  count_guard(result);
  return result;
}

std::vector<ParallelEvaluator::RelaxationPtr>
ParallelEvaluator::resolve_pooled(
    std::span<const std::span<const double>> pricings) {
  std::vector<RelaxationPtr> out(pricings.size());
  struct Pending {
    std::size_t out_index = 0;
    std::span<const double> pricing;
    lp::Basis warm;          ///< copied pooled start basis (from_pool only)
    bool from_pool = false;
    bool rejected = false;   ///< pooled basis rejected, re-solved baseline
    cover::Relaxation relax;
    lp::Basis final_basis;   ///< valid iff relax.stats.basis_saved
    RelaxationPtr result;
  };
  std::vector<Pending> pending;
  /// (out index, pending index) of duplicates of an in-batch miss.
  std::vector<std::pair<std::size_t, std::size_t>> aliases;
  std::unordered_map<std::vector<double>, std::size_t, PricingHash> index_of;

  // Stage A — calling thread, submission order: cache probes and pool
  // selections. The selected basis is COPIED out: the select() pointer dies
  // at the next insert(), and workers must not touch the pool at all.
  for (std::size_t i = 0; i < pricings.size(); ++i) {
    std::vector<double> key(pricings[i].begin(), pricings[i].end());
    if (const auto it = index_of.find(key); it != index_of.end()) {
      aliases.emplace_back(i, it->second);
      continue;
    }
    if (RelaxationPtr hit = cache_.lookup(pricings[i])) {
      out[i] = std::move(hit);
      continue;
    }
    Pending p;
    p.out_index = i;
    p.pricing = pricings[i];
    if (const lp::Basis* nearest = basis_pool_.select(pricings[i])) {
      p.warm = *nearest;
      p.from_pool = true;
    }
    index_of.emplace(std::move(key), pending.size());
    pending.push_back(std::move(p));
  }

  // Stage B — fan-out: each miss solves from its pre-selected start basis.
  // A rejected pooled basis re-solves from the fixed baseline, so the
  // resulting relaxation is bit-identical to what a pool miss produces.
  for_each(pending.size(), [&](EvalContext& ctx, std::size_t k) {
    Pending& p = pending[k];
    obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
    const lp::Basis& start = p.from_pool ? p.warm : ctx.baseline_basis;
    p.relax = solve_relaxation_pooled(ctx, p.pricing, start, &p.final_basis);
    if (p.from_pool && p.relax.stats.warm_start_rejected) {
      p.rejected = true;
      p.final_basis = lp::Basis{};
      p.relax = solve_relaxation_pooled(ctx, p.pricing, ctx.baseline_basis,
                                        &p.final_basis);
    }
  });

  // Stage C — calling thread, pending order: metrics, counters, pool
  // commits, cache inserts. Deterministic because the pending order is the
  // submission order and nothing here depends on solve timing.
  for (Pending& p : pending) {
    record_lp_metrics(metrics_, p.relax);
    if (p.rejected) {
      ++pool_rejects_;
      warm_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    if (p.relax.stats.warm_start_rejected) {
      warm_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    const bool full_rung = p.relax.guard_trip == guard::Trip::kNone &&
                           p.relax.guard_rung == guard::Rung::kFullLp;
    if (p.from_pool && !p.rejected) {
      ++pool_hits_;
      if (full_rung && p.relax.feasible && base_iter_count_ > 0) {
        const long long mean = std::llround(
            static_cast<double>(base_iter_sum_) / base_iter_count_);
        pivots_saved_ +=
            std::max(0LL, mean - static_cast<long long>(
                                     p.relax.stats.iterations));
      }
    } else if (full_rung && p.relax.feasible) {
      base_iter_sum_ += p.relax.stats.iterations;
      ++base_iter_count_;
    }
    if (p.relax.stats.basis_saved) {
      basis_pool_.insert(p.pricing, p.final_basis);
    }
    p.result = std::make_shared<const cover::Relaxation>(std::move(p.relax));
    cache_.insert(p.pricing, p.result);
    out[p.out_index] = p.result;
  }
  // In-batch duplicates read back through the cache so the hit counters
  // match the serial call sequence; the direct pointer covers the (tiny
  // cache) case where a later insert already evicted the entry.
  for (const auto& [i, k] : aliases) {
    RelaxationPtr hit = cache_.lookup(pricings[i]);
    out[i] = hit != nullptr ? std::move(hit) : pending[k].result;
  }
  return out;
}

BackendStats ParallelEvaluator::backend_stats() const {
  BackendStats s;
  s.relaxation_cache_hits = cache_.hits();
  s.relaxation_cache_misses = cache_.solves();
  s.relaxation_cache_evictions = cache_.evictions();
  s.heuristic_dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.score_cache_hits = xgen_.hits();
  s.score_cache_evictions = xgen_.evictions();
  s.guard_trips = guard_trips_.load(std::memory_order_relaxed);
  s.guard_degraded_evals = guard_degraded_.load(std::memory_order_relaxed);
  s.guard_budget_exhausted =
      guard_exhausted_.load(std::memory_order_relaxed);
  long long rebinds = 0;
  for (const auto& ctx : contexts_) rebinds += ctx->ll_family.rebinds();
  s.lp_family_rebinds = rebinds;
  s.lp_warm_start_rejects = warm_rejects_.load(std::memory_order_relaxed);
  s.lp_pool_hits = pool_hits_;
  s.lp_pool_rejects = pool_rejects_;
  s.lp_pivots_saved = pivots_saved_;
  return s;
}

template <typename Job>
std::vector<Evaluation> ParallelEvaluator::run_batch(
    std::span<const Job> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  // Injection ordinals are assigned by submission index BEFORE fan-out
  // (job i gets base + i — the ordinal the serial call sequence would
  // charge it with), so the tripped job is the same for any thread count
  // even though the atomic charges land in arbitrary order.
  const long long base = ll_evals_.load(std::memory_order_relaxed);
  if (lp_warm_ == LpWarm::kPool) {
    // Staged pool path: relaxations first (pool/cache traffic on this
    // thread, in submission order), then only the construction stage fans
    // out. Injected jobs bypass the pool like they bypass the cache.
    std::vector<std::size_t> pooled;
    std::vector<std::span<const double>> pricings;
    pooled.reserve(jobs.size());
    pricings.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!inject_now(base + static_cast<long long>(i))) {
        pooled.push_back(i);
        pricings.push_back(jobs[i].pricing);
      }
    }
    const std::vector<RelaxationPtr> relaxes = resolve_pooled(pricings);
    std::vector<RelaxationPtr> by_job(jobs.size());
    for (std::size_t k = 0; k < pooled.size(); ++k) {
      by_job[pooled[k]] = relaxes[k];
    }
    for_each(jobs.size(), [&](EvalContext& ctx, std::size_t i) {
      results[i] = by_job[i] != nullptr
                       ? evaluate_one_with(ctx, jobs[i], *by_job[i])
                       : evaluate_one(ctx, jobs[i], /*injected=*/true);
    });
    return results;
  }
  // Tasks write disjoint slots of `results`; both engines drain every task
  // before returning (even on exceptions), so the by-reference captures
  // cannot dangle.
  for_each(jobs.size(), [&](EvalContext& ctx, std::size_t i) {
    results[i] = evaluate_one(ctx, jobs[i],
                              inject_now(base + static_cast<long long>(i)));
  });
  return results;
}

std::vector<Evaluation> ParallelEvaluator::evaluate_heuristic_batch(
    std::span<const HeuristicJob> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  obs::gauge(metrics_, "gp/lanes", static_cast<double>(gp::simd::lanes()));
  // Plan the score memo on the calling thread BEFORE fan-out: the plan is a
  // pure function of the submitted jobs, so deduplication needs no locks
  // and the set of real solves is identical for any thread count.
  const HeuristicBatchPlan plan =
      plan_heuristic_batch(jobs, compiled_scoring_);
  const long long base = ll_evals_.load(std::memory_order_relaxed);
  std::vector<Evaluation> unique_results(plan.uniques.size());

  // Cross-generation memo: probe on the calling thread in unique order (so
  // hit/miss counters and the LRU walk are thread-count independent), fan
  // out only the misses, then insert the fresh results — again in unique
  // order, after the barrier. The cache state after the batch is therefore
  // a pure function of the submitted jobs.
  const bool use_xgen = xgen_active();
  const auto key_nodes_of = [&](std::size_t u) -> std::span<const gp::Node> {
    const HeuristicBatchPlan::Unique& uq = plan.uniques[u];
    return uq.program != nullptr ? uq.program->canonical_nodes()
                                 : jobs[uq.job_index].heuristic->nodes();
  };
  std::vector<std::size_t> misses;
  if (use_xgen) {
    misses.reserve(plan.uniques.size());
    long long xgen_hits = 0;
    for (std::size_t u = 0; u < plan.uniques.size(); ++u) {
      const HeuristicJob& job = jobs[plan.uniques[u].job_index];
      if (xgen_.lookup(key_nodes_of(u), job.pricing, job.purpose,
                       &unique_results[u])) {
        ++xgen_hits;
      } else {
        misses.push_back(u);
      }
    }
    if (xgen_hits > 0) obs::count(metrics_, "memo/xgen_hits", xgen_hits);
  } else {
    misses.resize(plan.uniques.size());
    for (std::size_t u = 0; u < misses.size(); ++u) misses[u] = u;
  }

  if (lp_warm_ == LpWarm::kPool) {
    // Staged pool path: the miss set's relaxations are resolved through the
    // basis pool first (submission-order pool/cache traffic on this
    // thread), then only the construction stage fans out. The wall-clock
    // watchdog skip does not apply to pooled batch solves (see the class
    // comment).
    std::vector<std::span<const double>> pricings;
    pricings.reserve(misses.size());
    for (const std::size_t u : misses) {
      pricings.push_back(jobs[plan.uniques[u].job_index].pricing);
    }
    const std::vector<RelaxationPtr> relaxes = resolve_pooled(pricings);
    for_each(misses.size(), [&](EvalContext& ctx, std::size_t m) {
      const std::size_t u = misses[m];
      unique_results[u] =
          finish_heuristic(ctx, *relaxes[m], jobs[plan.uniques[u].job_index],
                           plan.uniques[u].program.get());
    });
  } else {
    for_each(misses.size(), [&](EvalContext& ctx, std::size_t m) {
      const std::size_t u = misses[m];
      unique_results[u] =
          evaluate_heuristic_job(ctx, jobs[plan.uniques[u].job_index],
                                 plan.uniques[u].program.get(),
                                 /*injected=*/false);
    });
  }

  if (use_xgen) {
    const long long evictions_before = xgen_.evictions();
    for (const std::size_t u : misses) {
      const HeuristicJob& job = jobs[plan.uniques[u].job_index];
      xgen_.insert(key_nodes_of(u), job.pricing, job.purpose,
                   unique_results[u]);
    }
    const long long evicted = xgen_.evictions() - evictions_before;
    if (evicted > 0) obs::count(metrics_, "memo/xgen_evictions", evicted);
  }
  // Every submitted job pays the budget — the memo optimizes wall-clock,
  // never the Table II accounting, so trajectories stay bit-identical.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (inject_now(base + static_cast<long long>(i))) {
      // The injected job gets its own forced-trip evaluation on the calling
      // thread; its memo siblings keep the full-fidelity result, exactly as
      // the serial call sequence would produce.
      ContextLease lease(*this);
      results[i] = evaluate_heuristic_job(
          lease.get(), jobs[i], plan.uniques[plan.result_of[i]].program.get(),
          /*injected=*/true);
    } else {
      results[i] = unique_results[plan.result_of[i]];
    }
    charge(jobs[i].purpose);
    count_guard(results[i]);
  }
  dedup_hits_.fetch_add(static_cast<long long>(plan.duplicates()),
                        std::memory_order_relaxed);
  return results;
}

std::vector<Evaluation> ParallelEvaluator::evaluate_selection_batch(
    std::span<const SelectionJob> jobs) {
  return run_batch(jobs);
}

Evaluation ParallelEvaluator::evaluate_with_heuristic(
    std::span<const double> pricing, const gp::Tree& heuristic,
    EvalPurpose purpose) {
  const HeuristicJob job{pricing, &heuristic, purpose};
  const bool injected =
      inject_now(ll_evals_.load(std::memory_order_relaxed));
  charge(purpose);

  const gp::CompiledProgram* program = nullptr;
  gp::CompiledProgram compiled;
  if (compiled_scoring_) {
    compiled = gp::CompiledProgram::compile(heuristic);
    program = &compiled;
  }
  // Cross-generation memo (skipped for injected jobs — their degradation is
  // ordinal-dependent). Concurrent scalar callers race benignly: both
  // compute identical bits, insert() keeps one.
  const bool use_xgen = xgen_active() && !injected;
  const std::span<const gp::Node> key_nodes =
      program != nullptr ? program->canonical_nodes() : heuristic.nodes();
  if (use_xgen) {
    Evaluation cached;
    if (xgen_.lookup(key_nodes, pricing, purpose, &cached)) {
      obs::count(metrics_, "memo/xgen_hits");
      count_guard(cached);
      return cached;
    }
  }

  Evaluation result;
  if (lp_warm_ == LpWarm::kPool && !injected) {
    // Inline staging (single-element batch). NOT safe to call concurrently
    // in pool mode — the pool is single-threaded by contract.
    const std::span<const double> one[] = {pricing};
    const std::vector<RelaxationPtr> relaxes = resolve_pooled(one);
    ContextLease lease(*this);
    result = finish_heuristic(lease.get(), *relaxes[0], job, program);
  } else {
    ContextLease lease(*this);
    result = evaluate_heuristic_job(lease.get(), job, program, injected);
  }
  count_guard(result);
  if (use_xgen) {
    const long long evictions_before = xgen_.evictions();
    xgen_.insert(key_nodes, pricing, purpose, result);
    const long long evicted = xgen_.evictions() - evictions_before;
    if (evicted > 0) obs::count(metrics_, "memo/xgen_evictions", evicted);
  }
  return result;
}

Evaluation ParallelEvaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  const SelectionJob job{pricing, selection, purpose};
  const bool injected =
      inject_now(ll_evals_.load(std::memory_order_relaxed));
  if (lp_warm_ == LpWarm::kPool && !injected) {
    // Inline staging; see evaluate_with_heuristic.
    const std::span<const double> one[] = {pricing};
    const std::vector<RelaxationPtr> relaxes = resolve_pooled(one);
    ContextLease lease(*this);
    return evaluate_one_with(lease.get(), job, *relaxes[0]);
  }
  ContextLease lease(*this);
  return evaluate_one(lease.get(), job, injected);
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/evaluator.hpp"

#include <algorithm>

#include "carbon/common/stopwatch.hpp"
#include "carbon/gp/simd.hpp"

namespace carbon::bcpop {

Evaluator::Evaluator(const Instance& instance,
                     std::size_t relaxation_cache_capacity,
                     std::size_t score_cache_capacity)
    : inst_(instance),
      ctx_(instance),
      cache_(std::max<std::size_t>(relaxation_cache_capacity, 1),
             /*num_shards=*/1),
      // One shard keeps the serial evaluator's LRU eviction order exact.
      xgen_(std::max<std::size_t>(score_cache_capacity, 1),
            /*num_shards=*/1) {}

Evaluator::RelaxationPtr Evaluator::relaxation(
    std::span<const double> pricing) {
  return cache_.get_or_compute(pricing, [this](std::span<const double> p) {
    obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
    cover::Relaxation relax = solve_relaxation_guarded(ctx_, p);
    timer.stop();
    record_lp_metrics(metrics_, relax);
    if (relax.stats.warm_start_rejected) ++warm_rejects_;
    return relax;
  });
}

BackendStats Evaluator::backend_stats() const {
  BackendStats s;
  s.relaxation_cache_hits = cache_.hits();
  s.relaxation_cache_misses = cache_.solves();
  s.relaxation_cache_evictions = cache_.evictions();
  s.heuristic_dedup_hits = dedup_hits_;
  s.score_cache_hits = xgen_.hits();
  s.score_cache_evictions = xgen_.evictions();
  s.guard_trips = guard_trips_;
  s.guard_degraded_evals = guard_degraded_;
  s.guard_budget_exhausted = guard_exhausted_;
  s.lp_family_rebinds = ctx_.ll_family.rebinds();
  s.lp_warm_start_rejects = warm_rejects_;
  return s;
}

void Evaluator::set_guard(const guard::GuardConfig& config,
                          long long eval_base) noexcept {
  if (!(config.limits == ctx_.guard)) {
    // Cached relaxations and evaluations are pure functions of
    // (inputs, limits); entries warmed under other limits would serve
    // stale degradation rungs.
    cache_.clear();
    xgen_.clear();
  }
  guard_ = config;
  ctx_.guard = config.limits;
  inject_at_ =
      config.inject.at_eval >= 0 ? eval_base + config.inject.at_eval : -1;
}

void Evaluator::clear_caches() noexcept {
  cache_.clear();
  xgen_.clear();
}

void Evaluator::charge(EvalPurpose purpose) noexcept {
  ++ll_evals_;
  if (purpose == EvalPurpose::kBoth) ++ul_evals_;
}

void Evaluator::count_guard(const Evaluation& evaluation) noexcept {
  const guard::Outcome& g = evaluation.guard;
  if (g.tripped()) {
    ++guard_trips_;
    obs::count(metrics_, "guard/trips");
  }
  if (g.degraded()) {
    ++guard_degraded_;
    obs::count(metrics_, "guard/degraded_evals");
  }
  if (g.budget_exhausted) {
    ++guard_exhausted_;
    obs::count(metrics_, "guard/budget_exhausted");
  }
}

Evaluation Evaluator::finish_heuristic(const cover::Relaxation& relax,
                                       std::span<const double> pricing,
                                       const gp::Tree& heuristic,
                                       const gp::CompiledProgram* program,
                                       EvalPurpose purpose) {
  const ConstructionBudget plan = plan_construction(ctx_.guard, relax);
  if (plan.skip) {
    return skipped_evaluation(inst_, pricing, relax, guard::Trip::kNodeBudget,
                              purpose);
  }
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  cover::SolveResult solved;
  if (program != nullptr) {
    solved = solve_with_program(ctx_, relax, pricing, *program, polish_,
                                metrics_, plan.options);
  } else if (compiled_scoring_) {
    const gp::CompiledProgram compiled =
        gp::CompiledProgram::compile(heuristic);
    solved = solve_with_program(ctx_, relax, pricing, compiled, polish_,
                                metrics_, plan.options);
  } else {
    solved = solve_with_heuristic(ctx_, relax, pricing, heuristic, polish_,
                                  plan.options);
  }
  timer.stop();
  return finalize_evaluation(inst_, pricing, solved, relax, purpose);
}

Evaluation Evaluator::finish_selection(const cover::Relaxation& relax,
                                       std::span<const double> pricing,
                                       std::span<const std::uint8_t> selection,
                                       EvalPurpose purpose) {
  const ConstructionBudget plan = plan_construction(ctx_.guard, relax);
  if (plan.skip) {
    return skipped_evaluation(inst_, pricing, relax, guard::Trip::kNodeBudget,
                              purpose);
  }
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      solve_with_selection(ctx_, relax, pricing, selection, plan.options);
  timer.stop();
  return finalize_evaluation(inst_, pricing, solved, relax, purpose);
}

Evaluation Evaluator::evaluate_with_heuristic(std::span<const double> pricing,
                                              const gp::Tree& heuristic,
                                              EvalPurpose purpose) {
  const long long ordinal = ll_evals_;
  if (inject_now(ordinal)) {
    // Forced trip: a fresh, cache-bypassing relaxation (the degradation is
    // ordinal-dependent, so it must never land in — or come from — the
    // pricing-keyed cache, nor in the cross-generation score cache).
    charge(purpose);
    const cover::Relaxation relax = solve_relaxation_guarded(
        ctx_, pricing, guard::Trip::kInjected, guard_.inject.degrade_to);
    if (relax.stats.warm_start_rejected) ++warm_rejects_;
    Evaluation result =
        finish_heuristic(relax, pricing, heuristic, nullptr, purpose);
    count_guard(result);
    return result;
  }

  // Cross-generation memo: key by the canonical program (compiled scoring)
  // or the raw tree (interpreter). A hit still charges the full budget —
  // the cache saves wall-clock, never evaluations.
  const gp::CompiledProgram* program = nullptr;
  gp::CompiledProgram compiled;
  if (compiled_scoring_) {
    compiled = gp::CompiledProgram::compile(heuristic);
    program = &compiled;
  }
  const bool use_xgen = xgen_active();
  const std::span<const gp::Node> key_nodes =
      program != nullptr ? program->canonical_nodes() : heuristic.nodes();
  if (use_xgen) {
    Evaluation cached;
    if (xgen_.lookup(key_nodes, pricing, purpose, &cached)) {
      obs::count(metrics_, "memo/xgen_hits");
      charge(purpose);
      count_guard(cached);
      return cached;
    }
  }

  common::Stopwatch watchdog;
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  if (guard_.limits.watchdog_seconds > 0.0 &&
      watchdog.seconds() > guard_.limits.watchdog_seconds) {
    // The (cacheable) relaxation is kept full-fidelity; only this
    // evaluation's construction stage is skipped. Opt-in and explicitly
    // non-deterministic (which is why xgen_active() is false here).
    Evaluation result = skipped_evaluation(inst_, pricing, *relax,
                                           guard::Trip::kWatchdog, purpose);
    count_guard(result);
    return result;
  }
  Evaluation result =
      finish_heuristic(*relax, pricing, heuristic, program, purpose);
  count_guard(result);
  if (use_xgen) {
    const long long evictions_before = xgen_.evictions();
    xgen_.insert(key_nodes, pricing, purpose, result);
    const long long evicted = xgen_.evictions() - evictions_before;
    if (evicted > 0) obs::count(metrics_, "memo/xgen_evictions", evicted);
  }
  return result;
}

std::vector<Evaluation> Evaluator::evaluate_heuristic_batch(
    std::span<const HeuristicJob> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  // Which kernel width the compiled scorer dispatched to (1 = scalar,
  // 4 = AVX2) — constant per process, but recorded per batch so journals
  // from different machines stay attributable.
  obs::gauge(metrics_, "gp/lanes", static_cast<double>(gp::simd::lanes()));
  const HeuristicBatchPlan plan =
      plan_heuristic_batch(jobs, compiled_scoring_);
  // Jobs are charged in submission order below, so job i's ll ordinal is
  // base + i — the same ordinal the serial scalar path would assign. The
  // injection target is therefore identical for any batching.
  const long long base = ll_evals_;
  const bool use_xgen = xgen_active();
  std::vector<Evaluation> unique_results(plan.uniques.size());
  long long xgen_hits = 0;
  for (std::size_t u = 0; u < plan.uniques.size(); ++u) {
    const HeuristicBatchPlan::Unique& uq = plan.uniques[u];
    const HeuristicJob& job = jobs[uq.job_index];
    // Cross-generation memo: the per-batch plan already collapsed
    // duplicates within this batch; the xgen cache collapses repeats
    // ACROSS batches and generations. Probes, inserts and the LRU walk all
    // happen here in unique order, so the cache state after the batch is a
    // pure function of the submitted jobs.
    const std::span<const gp::Node> key_nodes =
        uq.program != nullptr ? uq.program->canonical_nodes()
                              : job.heuristic->nodes();
    if (use_xgen &&
        xgen_.lookup(key_nodes, job.pricing, job.purpose,
                     &unique_results[u])) {
      ++xgen_hits;
      continue;
    }
    common::Stopwatch watchdog;
    const RelaxationPtr relax = relaxation(job.pricing);
    if (guard_.limits.watchdog_seconds > 0.0 &&
        watchdog.seconds() > guard_.limits.watchdog_seconds) {
      unique_results[u] = skipped_evaluation(
          inst_, job.pricing, *relax, guard::Trip::kWatchdog, job.purpose);
      continue;
    }
    unique_results[u] = finish_heuristic(*relax, job.pricing, *job.heuristic,
                                         uq.program.get(), job.purpose);
    if (use_xgen) {
      const long long evictions_before = xgen_.evictions();
      xgen_.insert(key_nodes, job.pricing, job.purpose, unique_results[u]);
      const long long evicted = xgen_.evictions() - evictions_before;
      if (evicted > 0) obs::count(metrics_, "memo/xgen_evictions", evicted);
    }
  }
  if (xgen_hits > 0) obs::count(metrics_, "memo/xgen_hits", xgen_hits);
  // Every submitted job pays the budget — the memo optimizes wall-clock,
  // never the Table II accounting (purpose is part of the memo key, so a
  // duplicate always shares its representative's purpose).
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (inject_now(base + static_cast<long long>(i))) {
      // The injected job gets its own forced-trip evaluation; its memo
      // siblings keep the full-fidelity result, exactly as the scalar call
      // sequence would produce.
      const cover::Relaxation relax =
          solve_relaxation_guarded(ctx_, jobs[i].pricing,
                                   guard::Trip::kInjected,
                                   guard_.inject.degrade_to);
      if (relax.stats.warm_start_rejected) ++warm_rejects_;
      results[i] = finish_heuristic(
          relax, jobs[i].pricing, *jobs[i].heuristic,
          plan.uniques[plan.result_of[i]].program.get(), jobs[i].purpose);
    } else {
      results[i] = unique_results[plan.result_of[i]];
    }
    charge(jobs[i].purpose);
    count_guard(results[i]);
  }
  dedup_hits_ += static_cast<long long>(plan.duplicates());
  return results;
}

Evaluation Evaluator::evaluate_with_score(std::span<const double> pricing,
                                          const cover::ScoreFunction& score,
                                          EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  const ConstructionBudget plan = plan_construction(ctx_.guard, *relax);
  Evaluation result;
  if (plan.skip) {
    result = skipped_evaluation(inst_, pricing, *relax,
                                guard::Trip::kNodeBudget, purpose);
  } else {
    obs::ScopedTimer timer(metrics_, "time/ll_solve");
    const cover::SolveResult solved =
        solve_with_score(ctx_, *relax, pricing, score, plan.options);
    timer.stop();
    result = finalize_evaluation(inst_, pricing, solved, *relax, purpose);
  }
  count_guard(result);
  return result;
}

Evaluation Evaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  const long long ordinal = ll_evals_;
  if (inject_now(ordinal)) {
    charge(purpose);
    const cover::Relaxation relax = solve_relaxation_guarded(
        ctx_, pricing, guard::Trip::kInjected, guard_.inject.degrade_to);
    if (relax.stats.warm_start_rejected) ++warm_rejects_;
    Evaluation result = finish_selection(relax, pricing, selection, purpose);
    count_guard(result);
    return result;
  }

  common::Stopwatch watchdog;
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  if (guard_.limits.watchdog_seconds > 0.0 &&
      watchdog.seconds() > guard_.limits.watchdog_seconds) {
    Evaluation result = skipped_evaluation(inst_, pricing, *relax,
                                           guard::Trip::kWatchdog, purpose);
    count_guard(result);
    return result;
  }
  Evaluation result = finish_selection(*relax, pricing, selection, purpose);
  count_guard(result);
  return result;
}

}  // namespace carbon::bcpop

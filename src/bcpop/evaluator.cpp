#include "carbon/bcpop/evaluator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "carbon/bilevel/gap.hpp"
#include "carbon/cover/local_search.hpp"
#include "carbon/gp/scoring.hpp"

namespace carbon::bcpop {

std::size_t Evaluator::PricingHash::operator()(
    const std::vector<double>& v) const noexcept {
  // FNV-1a over the raw bit patterns; exact-match keying is what we want
  // because identical genomes produce bit-identical prices.
  std::size_t h = 14695981039346656037ULL;
  for (double d : v) {
    const auto bits = std::bit_cast<std::uint64_t>(d);
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}

Evaluator::Evaluator(const Instance& instance,
                     std::size_t relaxation_cache_capacity)
    : inst_(instance),
      ll_(instance.market()),
      ll_lp_(cover::build_relaxation_lp(instance.market())),
      cache_capacity_(std::max<std::size_t>(relaxation_cache_capacity, 1)) {}

void Evaluator::load_pricing(std::span<const double> pricing) {
  assert(pricing.size() == inst_.num_owned());
  for (std::size_t j = 0; j < pricing.size(); ++j) {
    ll_.set_cost(j, pricing[j]);
  }
}

const cover::Relaxation& Evaluator::relaxation(
    std::span<const double> pricing) {
  std::vector<double> key(pricing.begin(), pricing.end());
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  if (cache_.size() >= cache_capacity_) {
    cache_.clear();  // generation-local reuse pattern: wholesale reset is fine
  }
  ++relaxations_solved_;
  // Only the leader's objective coefficients change between pricings, so the
  // previous optimal basis stays primal-feasible: warm-start the simplex.
  for (std::size_t j = 0; j < pricing.size(); ++j) {
    ll_lp_.objective[j] = pricing[j];
  }
  const lp::Solution sol = lp::solve(ll_lp_, {}, &warm_basis_);
  cover::Relaxation relax;
  if (sol.status == lp::SolveStatus::kOptimal) {
    relax.feasible = true;
    relax.lower_bound = sol.objective;
    relax.duals = sol.duals;
    relax.relaxed_x = sol.x;
  } else if (sol.status != lp::SolveStatus::kInfeasible) {
    throw std::runtime_error(
        std::string("bcpop::Evaluator: LP relaxation failed with status ") +
        lp::to_string(sol.status));
  }
  auto [it, inserted] = cache_.emplace(std::move(key), std::move(relax));
  return it->second;
}

Evaluation Evaluator::finalize(std::span<const double> pricing,
                               const cover::SolveResult& solved,
                               const cover::Relaxation& relax,
                               EvalPurpose purpose) {
  Evaluation out;
  out.ll_feasible = solved.feasible;
  out.selection = solved.selection;
  out.ll_objective = solved.value;
  out.lower_bound = relax.lower_bound;
  out.gap_percent = solved.feasible
                        ? bilevel::percent_gap(solved.value, relax.lower_bound)
                        : 1e9;
  if (purpose == EvalPurpose::kBoth) ++ul_evals_;
  out.ul_objective = inst_.leader_revenue(pricing, out.selection);
  return out;
}

Evaluation Evaluator::evaluate_with_heuristic(std::span<const double> pricing,
                                              const gp::Tree& heuristic,
                                              EvalPurpose purpose) {
  // Hot path: the tree evaluation inlines into the greedy's scoring loop
  // (no std::function indirection — this runs ~10^5 times per solver run).
  const cover::Relaxation& relax = relaxation(pricing);
  load_pricing(pricing);
  ++ll_evals_;

  if (gp::is_static_heuristic(heuristic)) {
    // The score ignores the residual-dependent terminals, so it is constant
    // per bundle: one evaluation per bundle plus a sorted sweep replaces the
    // per-round argmax (identical semantics, see greedy_solve_static docs).
    const std::size_t m = ll_.num_bundles();
    const std::size_t n = ll_.num_services();
    std::vector<double> scores(m);
    for (std::size_t j = 0; j < m; ++j) {
      cover::BundleFeatures f;
      f.cost = ll_.cost(j);
      const auto row = ll_.bundle(j);
      for (std::size_t k = 0; k < n; ++k) {
        f.qsum += row[k];
        if (k < relax.duals.size()) f.dual += relax.duals[k] * row[k];
      }
      f.xbar = j < relax.relaxed_x.size() ? relax.relaxed_x[j] : 0.0;
      const auto arr = gp::features_to_array(f);
      scores[j] =
          heuristic.evaluate(std::span<const double, gp::kNumTerminals>(arr));
    }
    cover::SolveResult solved = cover::greedy_solve_static(ll_, scores);
    if (polish_ && solved.feasible) {
      solved.value = cover::local_search(ll_, solved.selection).value;
    }
    return finalize(pricing, solved, relax, purpose);
  }

  cover::SolveResult solved = cover::greedy_solve_with(
      ll_,
      [&heuristic](const cover::BundleFeatures& f) {
        const auto arr = gp::features_to_array(f);
        return heuristic.evaluate(
            std::span<const double, gp::kNumTerminals>(arr));
      },
      relax.duals, relax.relaxed_x);
  if (polish_ && solved.feasible) {
    solved.value = cover::local_search(ll_, solved.selection).value;
  }
  return finalize(pricing, solved, relax, purpose);
}

Evaluation Evaluator::evaluate_with_score(std::span<const double> pricing,
                                          const cover::ScoreFunction& score,
                                          EvalPurpose purpose) {
  const cover::Relaxation& relax = relaxation(pricing);
  load_pricing(pricing);
  ++ll_evals_;
  const cover::SolveResult solved =
      cover::greedy_solve(ll_, score, relax.duals, relax.relaxed_x);
  return finalize(pricing, solved, relax, purpose);
}

Evaluation Evaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  const cover::Relaxation& relax = relaxation(pricing);
  load_pricing(pricing);
  ++ll_evals_;

  cover::SolveResult solved;
  solved.selection.assign(selection.begin(), selection.end());
  solved.selection.resize(ll_.num_bundles(), 0);

  // Repair: add the cheapest-per-useful-coverage bundles until feasible.
  std::vector<int> residual = ll_.residual_demand(solved.selection);
  long long outstanding = 0;
  for (int r : residual) outstanding += r;
  while (outstanding > 0) {
    double best_ratio = -1.0;
    std::size_t best_j = ll_.num_bundles();
    for (std::size_t j = 0; j < ll_.num_bundles(); ++j) {
      if (solved.selection[j]) continue;
      const auto row = ll_.bundle(j);
      long long useful = 0;
      for (std::size_t k = 0; k < ll_.num_services(); ++k) {
        if (residual[k] > 0 && row[k] > 0) {
          useful += std::min(row[k], residual[k]);
        }
      }
      if (useful <= 0) continue;
      const double ratio =
          static_cast<double>(useful) / std::max(ll_.cost(j), 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_j = j;
      }
    }
    if (best_j == ll_.num_bundles()) {
      solved.feasible = false;
      solved.value = ll_.selection_cost(solved.selection);
      return finalize(pricing, solved, relax, purpose);
    }
    solved.selection[best_j] = 1;
    const auto row = ll_.bundle(best_j);
    for (std::size_t k = 0; k < ll_.num_services(); ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        const int used = std::min(row[k], residual[k]);
        residual[k] -= used;
        outstanding -= used;
      }
    }
  }

  solved.feasible = true;
  solved.value = ll_.selection_cost(solved.selection);
  return finalize(pricing, solved, relax, purpose);
}

}  // namespace carbon::bcpop

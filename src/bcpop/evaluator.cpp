#include "carbon/bcpop/evaluator.hpp"

#include <algorithm>

#include "carbon/gp/simd.hpp"

namespace carbon::bcpop {

Evaluator::Evaluator(const Instance& instance,
                     std::size_t relaxation_cache_capacity)
    : inst_(instance),
      ctx_(instance),
      cache_(std::max<std::size_t>(relaxation_cache_capacity, 1),
             /*num_shards=*/1) {}

Evaluator::RelaxationPtr Evaluator::relaxation(
    std::span<const double> pricing) {
  return cache_.get_or_compute(pricing, [this](std::span<const double> p) {
    obs::ScopedTimer timer(metrics_, "time/lp_relaxation");
    cover::Relaxation relax = solve_relaxation(ctx_, p);
    timer.stop();
    record_lp_metrics(metrics_, relax);
    return relax;
  });
}

BackendStats Evaluator::backend_stats() const {
  BackendStats s;
  s.relaxation_cache_hits = cache_.hits();
  s.relaxation_cache_misses = cache_.solves();
  s.relaxation_cache_evictions = cache_.evictions();
  s.heuristic_dedup_hits = dedup_hits_;
  return s;
}

void Evaluator::charge(EvalPurpose purpose) noexcept {
  ++ll_evals_;
  if (purpose == EvalPurpose::kBoth) ++ul_evals_;
}

Evaluation Evaluator::evaluate_with_heuristic(std::span<const double> pricing,
                                              const gp::Tree& heuristic,
                                              EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  cover::SolveResult solved;
  if (compiled_scoring_) {
    const gp::CompiledProgram program = gp::CompiledProgram::compile(heuristic);
    solved = solve_with_program(ctx_, *relax, pricing, program, polish_,
                                metrics_);
  } else {
    solved = solve_with_heuristic(ctx_, *relax, pricing, heuristic, polish_);
  }
  timer.stop();
  return finalize_evaluation(inst_, pricing, solved, *relax, purpose);
}

std::vector<Evaluation> Evaluator::evaluate_heuristic_batch(
    std::span<const HeuristicJob> jobs) {
  std::vector<Evaluation> results(jobs.size());
  if (jobs.empty()) return results;
  // Which kernel width the compiled scorer dispatched to (1 = scalar,
  // 4 = AVX2) — constant per process, but recorded per batch so journals
  // from different machines stay attributable.
  obs::gauge(metrics_, "gp/lanes", static_cast<double>(gp::simd::lanes()));
  const HeuristicBatchPlan plan =
      plan_heuristic_batch(jobs, compiled_scoring_);
  std::vector<Evaluation> unique_results(plan.uniques.size());
  for (std::size_t u = 0; u < plan.uniques.size(); ++u) {
    const HeuristicBatchPlan::Unique& uq = plan.uniques[u];
    const HeuristicJob& job = jobs[uq.job_index];
    const RelaxationPtr relax = relaxation(job.pricing);
    obs::ScopedTimer timer(metrics_, "time/ll_solve");
    const cover::SolveResult solved =
        uq.program
            ? solve_with_program(ctx_, *relax, job.pricing, *uq.program,
                                 polish_, metrics_)
            : solve_with_heuristic(ctx_, *relax, job.pricing, *job.heuristic,
                                   polish_);
    timer.stop();
    unique_results[u] =
        finalize_evaluation(inst_, job.pricing, solved, *relax, job.purpose);
  }
  // Every submitted job pays the budget — the memo optimizes wall-clock,
  // never the Table II accounting (purpose is part of the memo key, so a
  // duplicate always shares its representative's purpose).
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    charge(jobs[i].purpose);
    results[i] = unique_results[plan.result_of[i]];
  }
  dedup_hits_ += static_cast<long long>(plan.duplicates());
  return results;
}

Evaluation Evaluator::evaluate_with_score(std::span<const double> pricing,
                                          const cover::ScoreFunction& score,
                                          EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      solve_with_score(ctx_, *relax, pricing, score);
  timer.stop();
  return finalize_evaluation(inst_, pricing, solved, *relax, purpose);
}

Evaluation Evaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  obs::ScopedTimer timer(metrics_, "time/ll_solve");
  const cover::SolveResult solved =
      solve_with_selection(ctx_, *relax, pricing, selection);
  timer.stop();
  return finalize_evaluation(inst_, pricing, solved, *relax, purpose);
}

}  // namespace carbon::bcpop

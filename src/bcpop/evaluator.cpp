#include "carbon/bcpop/evaluator.hpp"

#include <algorithm>

namespace carbon::bcpop {

Evaluator::Evaluator(const Instance& instance,
                     std::size_t relaxation_cache_capacity)
    : inst_(instance),
      ctx_(instance),
      cache_(std::max<std::size_t>(relaxation_cache_capacity, 1),
             /*num_shards=*/1) {}

Evaluator::RelaxationPtr Evaluator::relaxation(
    std::span<const double> pricing) {
  return cache_.get_or_compute(pricing, [this](std::span<const double> p) {
    return solve_relaxation(ctx_, p);
  });
}

void Evaluator::charge(EvalPurpose purpose) noexcept {
  ++ll_evals_;
  if (purpose == EvalPurpose::kBoth) ++ul_evals_;
}

Evaluation Evaluator::evaluate_with_heuristic(std::span<const double> pricing,
                                              const gp::Tree& heuristic,
                                              EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  const cover::SolveResult solved =
      solve_with_heuristic(ctx_, *relax, pricing, heuristic, polish_);
  return finalize_evaluation(inst_, pricing, solved, *relax, purpose);
}

Evaluation Evaluator::evaluate_with_score(std::span<const double> pricing,
                                          const cover::ScoreFunction& score,
                                          EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  const cover::SolveResult solved =
      solve_with_score(ctx_, *relax, pricing, score);
  return finalize_evaluation(inst_, pricing, solved, *relax, purpose);
}

Evaluation Evaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  const RelaxationPtr relax = relaxation(pricing);
  charge(purpose);
  const cover::SolveResult solved =
      solve_with_selection(ctx_, *relax, pricing, selection);
  return finalize_evaluation(inst_, pricing, solved, *relax, purpose);
}

}  // namespace carbon::bcpop

#include "carbon/bcpop/multi_follower.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "carbon/bilevel/gap.hpp"
#include "carbon/common/rng.hpp"

namespace carbon::bcpop {

namespace {

/// Rebuilds a cover::Instance with the same bundles/costs but new demands.
cover::Instance with_demands(const cover::Instance& base,
                             std::vector<int> demands) {
  std::vector<std::vector<int>> q(base.num_bundles());
  for (std::size_t j = 0; j < base.num_bundles(); ++j) {
    const auto row = base.bundle(j);
    q[j].assign(row.begin(), row.end());
  }
  std::vector<double> costs(base.costs().begin(), base.costs().end());
  return cover::Instance(std::move(costs), std::move(q), std::move(demands));
}

}  // namespace

MultiFollowerProblem::MultiFollowerProblem(
    Instance market, std::vector<std::vector<int>> extra_follower_demands) {
  followers_.reserve(1 + extra_follower_demands.size());
  followers_.push_back(std::move(market));
  // Take references only after the move above; `market` is gone.
  const std::size_t owned = followers_.front().num_owned();
  const cover::Instance& base = followers_.front().market();
  for (auto& demands : extra_follower_demands) {
    if (demands.size() != base.num_services()) {
      throw std::invalid_argument(
          "MultiFollowerProblem: demand vector size must match services");
    }
    cover::Instance follower_market = with_demands(base, std::move(demands));
    if (!follower_market.coverable()) {
      throw std::invalid_argument(
          "MultiFollowerProblem: follower demands exceed market supply");
    }
    followers_.emplace_back(std::move(follower_market), owned);
  }
}

MultiFollowerProblem make_multi_follower(Instance market,
                                         std::size_t num_followers,
                                         std::uint64_t seed) {
  if (num_followers == 0) {
    throw std::invalid_argument("make_multi_follower: need >= 1 follower");
  }
  common::Rng rng(seed);
  const cover::Instance& base = market.market();
  std::vector<std::vector<int>> extra;
  for (std::size_t f = 1; f < num_followers; ++f) {
    std::vector<int> demands(base.num_services());
    for (std::size_t k = 0; k < base.num_services(); ++k) {
      // Scale the base demand by a follower-specific factor in [0.5, 1.3],
      // clamped to stay coverable.
      const double factor = rng.uniform(0.5, 1.3);
      const long long supply = base.total_supply(k);
      const long long want =
          std::llround(factor * static_cast<double>(base.demand(k)));
      demands[k] = static_cast<int>(
          std::clamp<long long>(want, 1, supply));
    }
    extra.push_back(std::move(demands));
  }
  return MultiFollowerProblem(std::move(market), std::move(extra));
}

MultiFollowerEvaluator::MultiFollowerEvaluator(
    const MultiFollowerProblem& problem)
    : problem_(problem) {
  for (std::size_t f = 0; f < problem_.num_followers(); ++f) {
    per_follower_.push_back(
        std::make_unique<Evaluator>(problem_.follower(f)));
  }
}

Evaluation MultiFollowerEvaluator::aggregate(std::span<const double> pricing,
                                             EvalPurpose purpose) {
  Evaluation total;
  total.ll_feasible = true;
  total.selection.clear();
  for (const Evaluation& e : last_breakdown_) {
    total.ll_feasible = total.ll_feasible && e.ll_feasible;
    total.ll_objective += e.ll_objective;
    total.lower_bound += e.lower_bound;
    total.selection.insert(total.selection.end(), e.selection.begin(),
                           e.selection.end());
  }
  total.gap_percent =
      total.ll_feasible
          ? bilevel::percent_gap(total.ll_objective, total.lower_bound)
          : 1e9;
  ll_evals_ += static_cast<long long>(problem_.num_followers());
  // Mirror of Evaluator's budget rule: leader revenue is computed if and
  // only if the evaluation is charged to the UL budget. Sub-evaluations run
  // as kLowerOnly (they never produce F), so the per-follower revenues are
  // computed here, once, under the charged purpose, and back-filled into the
  // breakdown for diagnostics.
  if (purpose == EvalPurpose::kBoth) {
    ++ul_evals_;
    for (std::size_t f = 0; f < last_breakdown_.size(); ++f) {
      last_breakdown_[f].ul_objective = problem_.follower(f).leader_revenue(
          pricing, last_breakdown_[f].selection);
      total.ul_objective += last_breakdown_[f].ul_objective;
    }
  }
  return total;
}

Evaluation MultiFollowerEvaluator::evaluate_with_heuristic(
    std::span<const double> pricing, const gp::Tree& heuristic,
    EvalPurpose purpose) {
  last_breakdown_.clear();
  for (auto& eval : per_follower_) {
    // Sub-evaluators keep their own counters; ours are authoritative.
    last_breakdown_.push_back(eval->evaluate_with_heuristic(
        pricing, heuristic, EvalPurpose::kLowerOnly));
  }
  return aggregate(pricing, purpose);
}

Evaluation MultiFollowerEvaluator::evaluate_with_selection(
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    EvalPurpose purpose) {
  const std::size_t m = problem_.num_bundles();
  last_breakdown_.clear();
  for (std::size_t f = 0; f < per_follower_.size(); ++f) {
    // Slice follower f's block from the concatenated genome; missing or
    // short genomes read as all-zeros (the repair fills them in).
    std::span<const std::uint8_t> block;
    if (selection.size() >= (f + 1) * m) {
      block = selection.subspan(f * m, m);
    }
    last_breakdown_.push_back(per_follower_[f]->evaluate_with_selection(
        pricing, block, EvalPurpose::kLowerOnly));
  }
  return aggregate(pricing, purpose);
}

BackendStats MultiFollowerEvaluator::backend_stats() const {
  BackendStats total;
  for (const auto& eval : per_follower_) {
    const BackendStats s = eval->backend_stats();
    total.relaxation_cache_hits += s.relaxation_cache_hits;
    total.relaxation_cache_misses += s.relaxation_cache_misses;
    total.relaxation_cache_evictions += s.relaxation_cache_evictions;
    total.heuristic_dedup_hits += s.heuristic_dedup_hits;
    total.score_cache_hits += s.score_cache_hits;
    total.score_cache_evictions += s.score_cache_evictions;
    total.guard_trips += s.guard_trips;
    total.guard_degraded_evals += s.guard_degraded_evals;
    total.guard_budget_exhausted += s.guard_budget_exhausted;
  }
  return total;
}

void MultiFollowerEvaluator::set_metrics(
    obs::MetricsRegistry* metrics) noexcept {
  for (const auto& eval : per_follower_) eval->set_metrics(metrics);
}

void MultiFollowerEvaluator::set_guard(const guard::GuardConfig& config,
                                       long long eval_base) noexcept {
  for (const auto& eval : per_follower_) eval->set_guard(config, eval_base);
}

void MultiFollowerEvaluator::clear_caches() noexcept {
  for (const auto& eval : per_follower_) eval->clear_caches();
}

}  // namespace carbon::bcpop

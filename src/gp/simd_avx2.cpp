// AVX2 table of the GP bytecode kernels — the only translation unit in the
// project compiled with -mavx2 (see src/CMakeLists.txt). Nothing here runs
// unless simd::kernels() dispatched to this table after a runtime CPU check,
// so the rest of the binary stays executable on pre-AVX2 hardware.
//
// Bit-identity with the scalar table (src/gp/simd.cpp) is by construction:
//   * add/sub/mul/div use the single-rounded vector instruction for the
//     exact IEEE operation the scalar expression performs — no FMA
//     contraction, no reassociation, no approximate reciprocals.
//   * clamp_finite's branch ladder (NaN -> 0, > cap -> cap, < -cap -> -cap)
//     becomes three ordered-quiet compares + blends on the ORIGINAL value;
//     the branches are mutually exclusive, so blend order only has to keep
//     the NaN blend last (NaN fails both OQ magnitude compares).
//   * the protected-divisor test |b| < kProtectTol is an abs-mask AND plus
//     an OQ compare: false for NaN divisors exactly like the scalar
//     std::abs(b) < tol.
//   * kMod stays element-at-a-time: there is no vector fmod instruction,
//     and fmod is exactly rounded, so the scalar loop is already the unique
//     correct answer — vectorizing only the mask would complicate the code
//     for an opcode that is rare in evolved trees.
// The ragged tail (n % 4 elements) runs the scalar expressions, which
// compute the same bits per element as the vector body.
#include "carbon/gp/simd.hpp"

#if defined(CARBON_SIMD_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "carbon/gp/eval_ops.hpp"

namespace carbon::gp::simd {

namespace {

namespace ops = carbon::gp::detail;

[[nodiscard]] inline __m256d clamp4(__m256d v) noexcept {
  const __m256d cap = _mm256_set1_pd(ops::kValueCap);
  const __m256d neg_cap = _mm256_set1_pd(-ops::kValueCap);
  __m256d r = _mm256_blendv_pd(v, cap, _mm256_cmp_pd(v, cap, _CMP_GT_OQ));
  r = _mm256_blendv_pd(r, neg_cap, _mm256_cmp_pd(v, neg_cap, _CMP_LT_OQ));
  return _mm256_blendv_pd(r, _mm256_setzero_pd(),
                          _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
}

void add4(const double* a, const double* b, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    _mm256_storeu_pd(dst + i, clamp4(_mm256_add_pd(va, vb)));
  }
  for (; i < n; ++i) dst[i] = ops::clamp_finite(a[i] + b[i]);
}

void sub4(const double* a, const double* b, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    _mm256_storeu_pd(dst + i, clamp4(_mm256_sub_pd(va, vb)));
  }
  for (; i < n; ++i) dst[i] = ops::clamp_finite(a[i] - b[i]);
}

void mul4(const double* a, const double* b, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    _mm256_storeu_pd(dst + i, clamp4(_mm256_mul_pd(va, vb)));
  }
  for (; i < n; ++i) dst[i] = ops::clamp_finite(a[i] * b[i]);
}

void div4(const double* a, const double* b, double* dst, std::size_t n) {
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d tol = _mm256_set1_pd(ops::kProtectTol);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d protect =
        _mm256_cmp_pd(_mm256_and_pd(vb, abs_mask), tol, _CMP_LT_OQ);
    const __m256d quot = clamp4(_mm256_div_pd(va, vb));
    _mm256_storeu_pd(dst + i, _mm256_blendv_pd(quot, one, protect));
  }
  for (; i < n; ++i) {
    dst[i] = std::abs(b[i]) < ops::kProtectTol ? 1.0
                                               : ops::clamp_finite(a[i] / b[i]);
  }
}

void mod4(const double* a, const double* b, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::abs(b[i]) < ops::kProtectTol
                 ? 0.0
                 : ops::clamp_finite(std::fmod(a[i], b[i]));
  }
}

void splat4(double value, double* dst, std::size_t n) {
  const __m256d v = _mm256_set1_pd(value);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, v);
  for (; i < n; ++i) dst[i] = value;
}

void copy4(const double* src, double* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
  }
  for (; i < n; ++i) dst[i] = src[i];
}

constexpr Kernels kAvx2Table = {
    add4, sub4, mul4, div4, mod4, splat4, copy4,
    Path::kAvx2, /*lanes=*/4, "avx2"};

}  // namespace

namespace detail {
const Kernels* avx2_table() noexcept { return &kAvx2Table; }
}  // namespace detail

}  // namespace carbon::gp::simd

#else  // !CARBON_SIMD_AVX2

namespace carbon::gp::simd::detail {
const Kernels* avx2_table() noexcept { return nullptr; }
}  // namespace carbon::gp::simd::detail

#endif

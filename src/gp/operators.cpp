#include "carbon/gp/operators.hpp"

#include <algorithm>
#include <vector>

namespace carbon::gp {

std::size_t pick_node(common::Rng& rng, const Tree& tree,
                      double internal_bias) {
  const auto& nodes = tree.nodes();
  if (nodes.size() == 1) return 0;

  std::vector<std::size_t> internal;
  std::vector<std::size_t> leaves;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    (nodes[i].is_leaf() ? leaves : internal).push_back(i);
  }
  const bool pick_internal =
      !internal.empty() && (leaves.empty() || rng.chance(internal_bias));
  const auto& pool = pick_internal ? internal : leaves;
  return pool[rng.below(pool.size())];
}

std::pair<Tree, Tree> subtree_crossover(common::Rng& rng, const Tree& a,
                                        const Tree& b,
                                        const OperatorConfig& cfg) {
  const std::size_t pa = pick_node(rng, a, cfg.internal_bias);
  const std::size_t pb = pick_node(rng, b, cfg.internal_bias);

  Tree child_a = a;
  Tree child_b = b;
  child_a.replace_subtree(pa, b.subtree(pb));
  child_b.replace_subtree(pb, a.subtree(pa));

  if (child_a.depth() > cfg.max_depth) child_a = a;
  if (child_b.depth() > cfg.max_depth) child_b = b;
  return {std::move(child_a), std::move(child_b)};
}

Tree uniform_mutation(common::Rng& rng, const Tree& tree,
                      const OperatorConfig& cfg) {
  const std::size_t pos = pick_node(rng, tree, cfg.internal_bias);
  const int depth = static_cast<int>(
      rng.range(cfg.mutation_min_depth, cfg.mutation_max_depth));
  const Tree fresh = generate_grow(rng, depth, cfg.generate);

  Tree child = tree;
  child.replace_subtree(pos, fresh);
  if (child.depth() > cfg.max_depth) return tree;
  return child;
}

Tree point_mutation(common::Rng& rng, const Tree& tree,
                    const OperatorConfig& cfg) {
  Tree child = tree;
  auto nodes = child.nodes();  // copy
  const std::size_t pos = rng.below(nodes.size());
  Node& n = nodes[pos];
  if (n.is_leaf()) {
    const Tree leaf = random_leaf(rng, cfg.generate);
    n = leaf.nodes()[0];
  } else {
    static constexpr OpCode kOps[] = {OpCode::kAdd, OpCode::kSub, OpCode::kMul,
                                      OpCode::kDiv, OpCode::kMod};
    n.op = kOps[rng.below(std::size(kOps))];
  }
  return Tree(std::move(nodes));
}

}  // namespace carbon::gp

#include "carbon/gp/generate.hpp"

#include <stdexcept>

namespace carbon::gp {

namespace {

constexpr OpCode kOperators[] = {OpCode::kAdd, OpCode::kSub, OpCode::kMul,
                                 OpCode::kDiv, OpCode::kMod};
constexpr std::size_t kNumOperators = std::size(kOperators);

Node random_terminal_node(common::Rng& rng, const GenerateConfig& cfg) {
  Node n;
  // With constants enabled, draw a constant 1 time in (kNumTerminals + 1).
  if (cfg.use_constants && rng.below(kNumTerminals + 1) == kNumTerminals) {
    n.op = OpCode::kConst;
    n.value = rng.uniform(cfg.constant_min, cfg.constant_max);
  } else {
    n.op = OpCode::kTerminal;
    n.terminal = static_cast<std::uint8_t>(rng.below(kNumTerminals));
  }
  return n;
}

Node random_operator_node(common::Rng& rng) {
  Node n;
  n.op = kOperators[rng.below(kNumOperators)];
  return n;
}

void build(common::Rng& rng, const GenerateConfig& cfg, int remaining,
           bool full, std::vector<Node>& out) {
  const bool force_terminal = remaining <= 1;
  const bool choose_terminal =
      force_terminal ||
      (!full && rng.chance(cfg.terminal_probability));
  if (choose_terminal) {
    out.push_back(random_terminal_node(rng, cfg));
    return;
  }
  out.push_back(random_operator_node(rng));
  build(rng, cfg, remaining - 1, full, out);
  build(rng, cfg, remaining - 1, full, out);
}

}  // namespace

Tree random_leaf(common::Rng& rng, const GenerateConfig& cfg) {
  return Tree({random_terminal_node(rng, cfg)});
}

Tree generate_full(common::Rng& rng, int depth, const GenerateConfig& cfg) {
  if (depth < 1) throw std::invalid_argument("generate_full: depth >= 1");
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(1) << std::min(depth, 20));
  build(rng, cfg, depth, /*full=*/true, nodes);
  return Tree(std::move(nodes));
}

Tree generate_grow(common::Rng& rng, int depth, const GenerateConfig& cfg) {
  if (depth < 1) throw std::invalid_argument("generate_grow: depth >= 1");
  std::vector<Node> nodes;
  build(rng, cfg, depth, /*full=*/false, nodes);
  return Tree(std::move(nodes));
}

Tree generate_ramped(common::Rng& rng, const GenerateConfig& cfg) {
  if (cfg.min_depth < 1 || cfg.max_depth < cfg.min_depth) {
    throw std::invalid_argument("generate_ramped: bad depth range");
  }
  const int depth =
      static_cast<int>(rng.range(cfg.min_depth, cfg.max_depth));
  return rng.chance(0.5) ? generate_full(rng, depth, cfg)
                         : generate_grow(rng, depth, cfg);
}

}  // namespace carbon::gp

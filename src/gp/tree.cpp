#include "carbon/gp/tree.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "carbon/gp/eval_ops.hpp"

namespace carbon::gp {

// The protected-operator arithmetic lives in gp/eval_ops.hpp so that the
// interpreter and gp::CompiledProgram share one definition (bit-identity
// between the two paths depends on it).
using detail::apply_op;

const char* terminal_name(Terminal t) noexcept {
  switch (t) {
    case Terminal::kCost:
      return "COST";
    case Terminal::kQsum:
      return "QSUM";
    case Terminal::kQcov:
      return "QCOV";
    case Terminal::kBres:
      return "BRES";
    case Terminal::kDual:
      return "DUAL";
    case Terminal::kXbar:
      return "XBAR";
    case Terminal::kCount:
      break;
  }
  return "?";
}

const char* opcode_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::kAdd:
      return "add";
    case OpCode::kSub:
      return "sub";
    case OpCode::kMul:
      return "mul";
    case OpCode::kDiv:
      return "div";
    case OpCode::kMod:
      return "mod";
    case OpCode::kTerminal:
      return "terminal";
    case OpCode::kConst:
      return "const";
  }
  return "?";
}

int opcode_arity(OpCode op) noexcept {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
      return 2;
    case OpCode::kTerminal:
    case OpCode::kConst:
      return 0;
  }
  return 0;
}

Tree Tree::terminal(Terminal t) {
  Node n;
  n.op = OpCode::kTerminal;
  n.terminal = static_cast<std::uint8_t>(t);
  return Tree({n});
}

Tree Tree::constant(double v) {
  Node n;
  n.op = OpCode::kConst;
  n.value = v;
  return Tree({n});
}

Tree Tree::apply(OpCode op, const Tree& lhs, const Tree& rhs) {
  assert(opcode_arity(op) == 2);
  std::vector<Node> nodes;
  nodes.reserve(1 + lhs.size() + rhs.size());
  Node root;
  root.op = op;
  nodes.push_back(root);
  nodes.insert(nodes.end(), lhs.nodes_.begin(), lhs.nodes_.end());
  nodes.insert(nodes.end(), rhs.nodes_.begin(), rhs.nodes_.end());
  return Tree(std::move(nodes));
}

std::size_t Tree::subtree_end(std::size_t pos) const {
  assert(pos < nodes_.size());
  std::size_t needed = 1;
  std::size_t i = pos;
  while (needed > 0) {
    assert(i < nodes_.size());
    needed += static_cast<std::size_t>(opcode_arity(nodes_[i].op));
    --needed;
    ++i;
  }
  return i;
}

int Tree::depth() const {
  int max_depth = 0;
  int current = 0;
  // Track remaining-children counts down the spine.
  std::vector<int> pending;
  for (const Node& n : nodes_) {
    ++current;
    max_depth = std::max(max_depth, current);
    const int arity = opcode_arity(n.op);
    if (arity > 0) {
      pending.push_back(arity);
    } else {
      // Leaf closes this path; pop completed operators.
      --current;
      while (!pending.empty() && --pending.back() == 0) {
        pending.pop_back();
        --current;
      }
    }
  }
  return max_depth;
}

int Tree::node_depth(std::size_t pos) const {
  assert(pos < nodes_.size());
  int current = 0;
  std::vector<int> pending;
  for (std::size_t i = 0; i <= pos; ++i) {
    ++current;
    if (i == pos) return current;
    const int arity = opcode_arity(nodes_[i].op);
    if (arity > 0) {
      pending.push_back(arity);
    } else {
      --current;
      while (!pending.empty() && --pending.back() == 0) {
        pending.pop_back();
        --current;
      }
    }
  }
  return current;
}

Tree Tree::subtree(std::size_t pos) const {
  const std::size_t end = subtree_end(pos);
  return Tree(std::vector<Node>(nodes_.begin() + static_cast<long>(pos),
                                nodes_.begin() + static_cast<long>(end)));
}

void Tree::replace_subtree(std::size_t pos, const Tree& replacement) {
  const std::size_t end = subtree_end(pos);
  std::vector<Node> out;
  out.reserve(nodes_.size() - (end - pos) + replacement.size());
  out.insert(out.end(), nodes_.begin(), nodes_.begin() + static_cast<long>(pos));
  out.insert(out.end(), replacement.nodes_.begin(), replacement.nodes_.end());
  out.insert(out.end(), nodes_.begin() + static_cast<long>(end), nodes_.end());
  nodes_ = std::move(out);
}

double Tree::evaluate(std::span<const double, kNumTerminals> features) const {
  std::vector<double> heap;
  return evaluate(features, heap);
}

double Tree::evaluate(std::span<const double, kNumTerminals> features,
                      std::vector<double>& scratch) const {
  assert(valid());
  // Evaluate right-to-left over the prefix encoding with an operand stack:
  // leaves push, operators pop two. Scanning backwards means operands are
  // already on the stack when their operator is reached.
  // Fixed-size stack: depth never exceeds node count; use a small buffer,
  // spilling into the caller's scratch only for trees over 64 nodes.
  double local[64] = {};
  double* stack = local;
  if (nodes_.size() > 64) {
    if (scratch.size() < nodes_.size()) scratch.resize(nodes_.size());
    stack = scratch.data();
  }
  std::size_t top = 0;
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const Node& n = nodes_[i];
    switch (n.op) {
      case OpCode::kTerminal:
        stack[top++] = features[n.terminal];
        break;
      case OpCode::kConst:
        stack[top++] = n.value;
        break;
      default: {
        const double a = stack[--top];
        const double b = stack[--top];
        stack[top++] = apply_op(n.op, a, b);
        break;
      }
    }
  }
  assert(top == 1);
  return stack[0];
}

bool Tree::valid() const {
  if (nodes_.empty()) return false;
  // A prefix encoding is valid iff scanning with a "slots" counter starting
  // at 1 reaches exactly 0 at the last node and never earlier.
  long slots = 1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (slots <= 0) return false;
    slots += opcode_arity(nodes_[i].op) - 1;
    if (nodes_[i].op == OpCode::kTerminal &&
        nodes_[i].terminal >= kNumTerminals) {
      return false;
    }
  }
  return slots == 0;
}

bool Tree::uses_terminal(Terminal t) const noexcept {
  for (const Node& n : nodes_) {
    if (n.op == OpCode::kTerminal &&
        n.terminal == static_cast<std::uint8_t>(t)) {
      return true;
    }
  }
  return false;
}

std::string Tree::to_string() const {
  std::ostringstream out;
  out.precision(17);
  // Recursive print over the prefix array.
  const auto print = [&](auto&& self, std::size_t pos) -> std::size_t {
    const Node& n = nodes_[pos];
    if (n.op == OpCode::kTerminal) {
      out << terminal_name(static_cast<Terminal>(n.terminal));
      return pos + 1;
    }
    if (n.op == OpCode::kConst) {
      out << n.value;
      return pos + 1;
    }
    out << '(' << opcode_name(n.op) << ' ';
    std::size_t next = self(self, pos + 1);
    out << ' ';
    next = self(self, next);
    out << ')';
    return next;
  };
  if (!nodes_.empty()) print(print, 0);
  return out.str();
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("gp::parse: " + what + " at offset " +
                             std::to_string(pos));
  }

  std::string token() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() && !std::isspace(static_cast<unsigned char>(text[pos])) &&
           text[pos] != '(' && text[pos] != ')') {
      ++pos;
    }
    if (start == pos) fail("expected token");
    return text.substr(start, pos - start);
  }

  void expr(std::vector<Node>& out) {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    if (text[pos] == '(') {
      ++pos;
      const std::string op_name = token();
      Node n;
      if (op_name == "add") {
        n.op = OpCode::kAdd;
      } else if (op_name == "sub") {
        n.op = OpCode::kSub;
      } else if (op_name == "mul") {
        n.op = OpCode::kMul;
      } else if (op_name == "div") {
        n.op = OpCode::kDiv;
      } else if (op_name == "mod") {
        n.op = OpCode::kMod;
      } else {
        fail("unknown operator '" + op_name + "'");
      }
      out.push_back(n);
      expr(out);
      expr(out);
      skip_ws();
      if (pos >= text.size() || text[pos] != ')') fail("expected ')'");
      ++pos;
      return;
    }
    const std::string tok = token();
    for (std::size_t t = 0; t < kNumTerminals; ++t) {
      if (tok == terminal_name(static_cast<Terminal>(t))) {
        Node n;
        n.op = OpCode::kTerminal;
        n.terminal = static_cast<std::uint8_t>(t);
        out.push_back(n);
        return;
      }
    }
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("unknown terminal '" + tok + "'");
    Node n;
    n.op = OpCode::kConst;
    n.value = v;
    out.push_back(n);
  }
};

}  // namespace

Tree parse(const std::string& text) {
  Parser parser{text};
  std::vector<Node> nodes;
  parser.expr(nodes);
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing input");
  Tree t(std::move(nodes));
  if (!t.valid()) throw std::runtime_error("gp::parse: produced invalid tree");
  return t;
}

namespace {

/// Recursively simplifies the subtree at pos; appends result to out.
/// Returns one-past-the-end of the consumed input range.
std::size_t simplify_rec(const std::vector<Node>& in, std::size_t pos,
                         std::vector<Node>& out) {
  const Node& n = in[pos];
  if (n.is_leaf()) {
    out.push_back(n);
    return pos + 1;
  }

  std::vector<Node> lhs;
  std::vector<Node> rhs;
  std::size_t next = simplify_rec(in, pos + 1, lhs);
  next = simplify_rec(in, next, rhs);

  const bool lhs_const = lhs.size() == 1 && lhs[0].op == OpCode::kConst;
  const bool rhs_const = rhs.size() == 1 && rhs[0].op == OpCode::kConst;

  // Constant folding.
  if (lhs_const && rhs_const) {
    Node folded;
    folded.op = OpCode::kConst;
    folded.value = apply_op(n.op, lhs[0].value, rhs[0].value);
    out.push_back(folded);
    return next;
  }

  // Identities valid under protected semantics for identical subtrees.
  if (lhs == rhs) {
    if (n.op == OpCode::kSub || n.op == OpCode::kMod) {
      Node zero;
      zero.op = OpCode::kConst;
      zero.value = 0.0;
      out.push_back(zero);
      return next;
    }
    if (n.op == OpCode::kDiv) {
      // x/x == 1 both when x != 0 and (by protection) when x ~ 0.
      Node one;
      one.op = OpCode::kConst;
      one.value = 1.0;
      out.push_back(one);
      return next;
    }
  }

  // Neutral elements.
  const auto is_const = [](const std::vector<Node>& t, double v) {
    return t.size() == 1 && t[0].op == OpCode::kConst && t[0].value == v;
  };
  if (n.op == OpCode::kAdd && is_const(lhs, 0.0)) {
    out.insert(out.end(), rhs.begin(), rhs.end());
    return next;
  }
  if ((n.op == OpCode::kAdd || n.op == OpCode::kSub) && is_const(rhs, 0.0)) {
    out.insert(out.end(), lhs.begin(), lhs.end());
    return next;
  }
  if (n.op == OpCode::kMul && (is_const(lhs, 1.0))) {
    out.insert(out.end(), rhs.begin(), rhs.end());
    return next;
  }
  if ((n.op == OpCode::kMul || n.op == OpCode::kDiv) && is_const(rhs, 1.0)) {
    out.insert(out.end(), lhs.begin(), lhs.end());
    return next;
  }

  out.push_back(n);
  out.insert(out.end(), lhs.begin(), lhs.end());
  out.insert(out.end(), rhs.begin(), rhs.end());
  return next;
}

}  // namespace

Tree simplify(const Tree& tree) {
  if (tree.empty()) return tree;
  std::vector<Node> out;
  out.reserve(tree.size());
  simplify_rec(tree.nodes(), 0, out);
  Tree result(std::move(out));
  assert(result.valid());
  return result;
}

}  // namespace carbon::gp

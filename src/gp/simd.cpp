#include "carbon/gp/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "carbon/gp/eval_ops.hpp"

namespace carbon::gp::simd {

namespace {

// --- Scalar reference kernels ----------------------------------------------
// These ARE the semantics: one ops::apply_op-equivalent expression per
// element, in index order. The AVX2 table must match them bit-for-bit.

namespace ops = carbon::gp::detail;

void add_n(const double* a, const double* b, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ops::clamp_finite(a[i] + b[i]);
}

void sub_n(const double* a, const double* b, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ops::clamp_finite(a[i] - b[i]);
}

void mul_n(const double* a, const double* b, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ops::clamp_finite(a[i] * b[i]);
}

void div_n(const double* a, const double* b, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::abs(b[i]) < ops::kProtectTol
                 ? 1.0
                 : ops::clamp_finite(a[i] / b[i]);
  }
}

void mod_n(const double* a, const double* b, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::abs(b[i]) < ops::kProtectTol
                 ? 0.0
                 : ops::clamp_finite(std::fmod(a[i], b[i]));
  }
}

void splat_n(double value, double* dst, std::size_t n) {
  std::fill_n(dst, n, value);
}

void copy_n(const double* src, double* dst, std::size_t n) {
  std::copy_n(src, n, dst);
}

constexpr Kernels kScalarTable = {
    add_n, sub_n, mul_n, div_n, mod_n, splat_n, copy_n,
    Path::kScalar, /*lanes=*/1, "scalar"};

// --- Dispatch ---------------------------------------------------------------

[[nodiscard]] const Kernels* avx2_or_null() noexcept {
  const Kernels* t = detail::avx2_table();
  return (t != nullptr && cpu_supports_avx2()) ? t : nullptr;
}

[[nodiscard]] const Kernels* resolve(std::string_view request) noexcept {
  if (request == "scalar") return &kScalarTable;
  // "avx2" and "auto" both take AVX2 when actually available; an explicit
  // "avx2" on an unsupported machine degrades to scalar rather than
  // crashing — the active table stays observable through path_name().
  const Kernels* t = avx2_or_null();
  return t != nullptr ? t : &kScalarTable;
}

std::atomic<const Kernels*>& active_slot() noexcept {
  static std::atomic<const Kernels*> slot{nullptr};
  return slot;
}

}  // namespace

const Kernels& kernels() noexcept {
  const Kernels* k = active_slot().load(std::memory_order_acquire);
  if (k == nullptr) {
    // First use: resolve CARBON_SIMD. A benign race resolves the same env
    // var to the same table on every thread.
    const char* env = std::getenv("CARBON_SIMD");
    k = resolve(env != nullptr ? std::string_view(env) : "auto");
    active_slot().store(k, std::memory_order_release);
  }
  return *k;
}

Path active_path() noexcept { return kernels().path; }

const char* path_name() noexcept { return kernels().name; }

std::size_t lanes() noexcept { return kernels().lanes; }

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool avx2_kernels_available() noexcept { return avx2_or_null() != nullptr; }

Path select_path(Path path) noexcept {
  return select_path(path == Path::kAvx2 ? "avx2" : "scalar");
}

Path select_path(std::string_view name) noexcept {
  const Kernels* k = resolve(name);
  active_slot().store(k, std::memory_order_release);
  return k->path;
}

namespace detail {
const Kernels& scalar_table() noexcept { return kScalarTable; }
}  // namespace detail

}  // namespace carbon::gp::simd

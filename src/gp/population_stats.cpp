#include "carbon/gp/population_stats.hpp"

#include <algorithm>
#include <tuple>
#include <set>
#include <vector>

namespace carbon::gp {

namespace {

bool uses_dynamic(const Tree& t) {
  return t.uses_terminal(Terminal::kQcov) || t.uses_terminal(Terminal::kBres);
}

}  // namespace

PopulationStats analyze_population(std::span<const Tree> trees) {
  PopulationStats stats;
  stats.population = trees.size();
  if (trees.empty()) return stats;

  double total_size = 0.0;
  double total_depth = 0.0;
  std::size_t static_count = 0;

  // Exact structural dedup via sorted views of node sequences.
  std::vector<const Tree*> sorted;
  sorted.reserve(trees.size());
  for (const Tree& t : trees) {
    total_size += static_cast<double>(t.size());
    stats.max_size = std::max(stats.max_size, t.size());
    const int d = t.depth();
    total_depth += d;
    stats.max_depth = std::max(stats.max_depth, d);
    if (!uses_dynamic(t)) ++static_count;
    for (std::size_t term = 0; term < kNumTerminals; ++term) {
      if (t.uses_terminal(static_cast<Terminal>(term))) {
        stats.terminal_usage[term] += 1.0;
      }
    }
    sorted.push_back(&t);
  }

  const auto node_key = [](const Node& n) {
    return std::make_tuple(static_cast<int>(n.op), static_cast<int>(n.terminal),
                      n.value);
  };
  std::sort(sorted.begin(), sorted.end(),
            [&](const Tree* a, const Tree* b) {
              return std::lexicographical_compare(
                  a->nodes().begin(), a->nodes().end(), b->nodes().begin(),
                  b->nodes().end(), [&](const Node& x, const Node& y) {
                    return node_key(x) < node_key(y);
                  });
            });
  stats.unique_structures = 1;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (!(*sorted[i] == *sorted[i - 1])) ++stats.unique_structures;
  }

  const double n = static_cast<double>(trees.size());
  stats.mean_size = total_size / n;
  stats.mean_depth = total_depth / n;
  stats.static_fraction = static_cast<double>(static_count) / n;
  for (double& u : stats.terminal_usage) u /= n;
  return stats;
}

}  // namespace carbon::gp

#include "carbon/gp/compiled.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <map>
#include <stdexcept>

#include "carbon/gp/eval_ops.hpp"
#include "carbon/gp/simd.hpp"

namespace carbon::gp {

namespace {

/// Total order on nodes for canonical operand ordering: opcode, then
/// terminal index, then the constant's bit pattern (bitwise so that e.g.
/// -0.0 and +0.0 order deterministically).
bool node_less(const Node& a, const Node& b) noexcept {
  if (a.op != b.op) return a.op < b.op;
  if (a.terminal != b.terminal) return a.terminal < b.terminal;
  return std::bit_cast<std::uint64_t>(a.value) <
         std::bit_cast<std::uint64_t>(b.value);
}

bool node_seq_less(const std::vector<Node>& a,
                   const std::vector<Node>& b) noexcept {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      node_less);
}

/// Canonicalizes the subtree at `pos` into `out`; returns one-past-the-end
/// of the consumed range. Only commutative operators reorder, and IEEE-754
/// + and * are commutative (payload choice aside for NaN operands), so the
/// rewrite is value-exact for finite inputs.
std::size_t canon_rec(const std::vector<Node>& in, std::size_t pos,
                      std::vector<Node>& out) {
  const Node& n = in[pos];
  if (n.is_leaf()) {
    out.push_back(n);
    return pos + 1;
  }
  std::vector<Node> lhs;
  std::vector<Node> rhs;
  std::size_t next = canon_rec(in, pos + 1, lhs);
  next = canon_rec(in, next, rhs);
  if ((n.op == OpCode::kAdd || n.op == OpCode::kMul) &&
      node_seq_less(rhs, lhs)) {
    lhs.swap(rhs);
  }
  out.push_back(n);
  out.insert(out.end(), lhs.begin(), lhs.end());
  out.insert(out.end(), rhs.begin(), rhs.end());
  return next;
}

std::uint64_t fnv1a_nodes(const std::vector<Node>& nodes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const Node& n : nodes) {
    mix(static_cast<std::uint64_t>(n.op));
    if (n.op == OpCode::kTerminal) mix(n.terminal);
    if (n.op == OpCode::kConst) mix(std::bit_cast<std::uint64_t>(n.value));
  }
  return h;
}

}  // namespace

Tree canonicalize(const Tree& tree) {
  if (tree.empty()) return tree;
  std::vector<Node> out;
  out.reserve(tree.size());
  canon_rec(tree.nodes(), 0, out);
  return Tree(std::move(out));
}

CompiledProgram CompiledProgram::compile(const Tree& tree,
                                         const CompileOptions& options) {
  CompiledProgram p;
  if (tree.empty()) return p;
  assert(tree.valid());

  const Tree canon =
      options.simplify ? canonicalize(simplify(tree)) : tree;
  p.canonical_ = canon.nodes();
  p.hash_ = fnv1a_nodes(p.canonical_);

  // --- Hash-consed value numbering (CSE) over the canonical prefix form.
  // Keys: (kTerminal, index, 0) / (kConst, value bits, 0) / (op, lhs, rhs).
  // Values are created children-first, so evaluating them in id order is a
  // valid schedule and every operand id precedes its user.
  struct Value {
    OpCode op;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double value = 0.0;
  };
  std::vector<Value> values;
  std::map<std::array<std::uint64_t, 3>, std::uint32_t> memo;

  const auto intern = [&](const std::array<std::uint64_t, 3>& key,
                          const Value& v) -> std::uint32_t {
    const auto [it, inserted] =
        memo.emplace(key, static_cast<std::uint32_t>(values.size()));
    if (inserted) values.push_back(v);
    return it->second;
  };

  const auto build = [&](auto&& self, std::size_t pos)
      -> std::pair<std::uint32_t, std::size_t> {
    const Node& n = p.canonical_[pos];
    if (n.op == OpCode::kTerminal) {
      return {intern({static_cast<std::uint64_t>(OpCode::kTerminal),
                      n.terminal, 0},
                     Value{OpCode::kTerminal, n.terminal, 0, 0.0}),
              pos + 1};
    }
    if (n.op == OpCode::kConst) {
      return {intern({static_cast<std::uint64_t>(OpCode::kConst),
                      std::bit_cast<std::uint64_t>(n.value), 0},
                     Value{OpCode::kConst, 0, 0, n.value}),
              pos + 1};
    }
    const auto [lhs, after_lhs] = self(self, pos + 1);
    const auto [rhs, after_rhs] = self(self, after_lhs);
    return {intern({static_cast<std::uint64_t>(n.op), lhs, rhs},
                   Value{n.op, lhs, rhs, 0.0}),
            after_rhs};
  };
  const std::uint32_t root = build(build, 0).first;

  if (values.size() > 0xffff) {
    throw std::length_error("CompiledProgram: tree too large to compile");
  }

  // --- Liveness + greedy register assignment. A value's register is
  // recycled after its last reader, so the register file stays small (and
  // the batch scratch with it). Reusing an operand's register as the
  // destination is safe: every instruction reads regs[i] before writing
  // dst[i] within the same element.
  std::vector<std::uint32_t> last_use(values.size());
  for (std::uint32_t id = 0; id < values.size(); ++id) {
    last_use[id] = id;
    const Value& v = values[id];
    if (v.op != OpCode::kTerminal && v.op != OpCode::kConst) {
      last_use[v.a] = id;
      last_use[v.b] = id;
    }
  }
  last_use[root] = static_cast<std::uint32_t>(values.size());

  std::vector<std::uint16_t> reg_of(values.size(), 0);
  std::vector<std::uint16_t> free_regs;
  std::uint16_t next_reg = 0;
  p.code_.reserve(values.size());
  for (std::uint32_t id = 0; id < values.size(); ++id) {
    const Value& v = values[id];
    Instr ins;
    ins.op = v.op;
    if (v.op == OpCode::kTerminal) {
      ins.a = static_cast<std::uint16_t>(v.a);
      p.terminal_mask_ |= static_cast<std::uint8_t>(1u << v.a);
    } else if (v.op == OpCode::kConst) {
      ins.value = v.value;
    } else {
      ins.a = reg_of[v.a];
      ins.b = reg_of[v.b];
      if (last_use[v.a] == id) free_regs.push_back(reg_of[v.a]);
      if (last_use[v.b] == id && v.b != v.a) free_regs.push_back(reg_of[v.b]);
    }
    if (free_regs.empty()) {
      reg_of[id] = next_reg++;
    } else {
      reg_of[id] = free_regs.back();
      free_regs.pop_back();
    }
    ins.dst = reg_of[id];
    p.code_.push_back(ins);
  }
  p.num_regs_ = next_reg;
  p.result_reg_ = reg_of[root];
  return p;
}

double CompiledProgram::evaluate(
    std::span<const double, kNumTerminals> features) const {
  std::vector<double> heap;
  return evaluate(features, heap);
}

double CompiledProgram::evaluate(std::span<const double, kNumTerminals> features,
                                 std::vector<double>& scratch) const {
  if (code_.empty()) return 0.0;
  double local[64];
  double* regs = local;
  if (num_regs_ > 64) {
    if (scratch.size() < num_regs_) scratch.resize(num_regs_);
    regs = scratch.data();
  }
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kConst:
        regs[ins.dst] = ins.value;
        break;
      case OpCode::kTerminal:
        regs[ins.dst] = features[ins.a];
        break;
      default:
        regs[ins.dst] = detail::apply_op(ins.op, regs[ins.a], regs[ins.b]);
        break;
    }
  }
  return regs[result_reg_];
}

void CompiledProgram::evaluate_batch(const TerminalBatch& batch,
                                     std::span<double> out,
                                     std::vector<double>& scratch) const {
  const std::size_t m = batch.count;
  assert(out.size() == m);
  if (m == 0) return;
  if (code_.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const std::size_t needed = static_cast<std::size_t>(num_regs_) * m;
  if (scratch.size() < needed) scratch.resize(needed);
  double* const regs = scratch.data();

  // All instruction loops go through the dispatched kernel table: scalar and
  // AVX2 tables compute bit-identical doubles per element (see gp/simd.hpp),
  // so the choice is invisible to every trajectory.
  const simd::Kernels& k = simd::kernels();
  for (const Instr& ins : code_) {
    double* const dst = regs + static_cast<std::size_t>(ins.dst) * m;
    const double* const a = regs + static_cast<std::size_t>(ins.a) * m;
    const double* const b = regs + static_cast<std::size_t>(ins.b) * m;
    switch (ins.op) {
      case OpCode::kConst:
        k.splat(ins.value, dst, m);
        break;
      case OpCode::kTerminal: {
        const std::span<const double> col = batch.columns[ins.a];
        if (col.size() == 1) {
          k.splat(col[0], dst, m);
        } else {
          assert(col.size() == m);
          k.copy(col.data(), dst, m);
        }
        break;
      }
      case OpCode::kAdd:
        k.add(a, b, dst, m);
        break;
      case OpCode::kSub:
        k.sub(a, b, dst, m);
        break;
      case OpCode::kMul:
        k.mul(a, b, dst, m);
        break;
      case OpCode::kDiv:
        k.div(a, b, dst, m);
        break;
      case OpCode::kMod:
        k.mod(a, b, dst, m);
        break;
    }
  }
  std::copy_n(regs + static_cast<std::size_t>(result_reg_) * m, m, out.data());
}

}  // namespace carbon::gp

#include "carbon/cover/instance.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace carbon::cover {

Instance::Instance(std::vector<double> costs, std::vector<std::vector<int>> q,
                   std::vector<int> demands)
    : costs_(std::move(costs)), demands_(std::move(demands)) {
  if (q.size() != costs_.size()) {
    throw std::invalid_argument("Instance: q rows must match costs size");
  }
  const std::size_t n = demands_.size();
  q_.reserve(q.size() * n);
  for (const auto& row : q) {
    if (row.size() != n) {
      throw std::invalid_argument("Instance: bundle row size mismatch");
    }
    for (int v : row) {
      if (v < 0) throw std::invalid_argument("Instance: negative quantity");
      q_.push_back(v);
    }
  }
  for (int d : demands_) {
    if (d < 0) throw std::invalid_argument("Instance: negative demand");
  }
  build_supplier_index();
}

void Instance::build_supplier_index() {
  const std::size_t m = num_bundles();
  const std::size_t n = num_services();
  supplier_start_.assign(n + 1, 0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (quantity(j, k) > 0) ++supplier_start_[k + 1];
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    supplier_start_[k + 1] += supplier_start_[k];
  }
  supplier_idx_.resize(supplier_start_[n]);
  supplier_q_.resize(supplier_start_[n]);
  std::vector<std::size_t> cursor(supplier_start_.begin(),
                                  supplier_start_.end() - 1);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      const int q = quantity(j, k);
      if (q <= 0) continue;
      supplier_idx_[cursor[k]] = static_cast<std::uint32_t>(j);
      supplier_q_[cursor[k]] = q;
      ++cursor[k];
    }
  }
}

long long Instance::total_supply(std::size_t k) const noexcept {
  long long total = 0;
  for (std::size_t j = 0; j < num_bundles(); ++j) total += quantity(j, k);
  return total;
}

bool Instance::coverable() const noexcept {
  for (std::size_t k = 0; k < num_services(); ++k) {
    if (total_supply(k) < demands_[k]) return false;
  }
  return true;
}

bool Instance::feasible(std::span<const std::uint8_t> selection) const {
  if (selection.size() != num_bundles()) return false;
  for (std::size_t k = 0; k < num_services(); ++k) {
    long long covered = 0;
    for (std::size_t j = 0; j < num_bundles(); ++j) {
      if (selection[j]) covered += quantity(j, k);
    }
    if (covered < demands_[k]) return false;
  }
  return true;
}

double Instance::selection_cost(std::span<const std::uint8_t> selection) const {
  double total = 0.0;
  for (std::size_t j = 0; j < num_bundles() && j < selection.size(); ++j) {
    if (selection[j]) total += costs_[j];
  }
  return total;
}

std::vector<int> Instance::residual_demand(
    std::span<const std::uint8_t> selection) const {
  std::vector<int> residual(demands_.begin(), demands_.end());
  for (std::size_t j = 0; j < num_bundles() && j < selection.size(); ++j) {
    if (!selection[j]) continue;
    for (std::size_t k = 0; k < num_services(); ++k) {
      residual[k] = std::max(0, residual[k] - quantity(j, k));
    }
  }
  return residual;
}

std::string Instance::describe() const {
  std::ostringstream ss;
  ss << "cover instance: " << num_bundles() << " bundles x " << num_services()
     << " services";
  return ss.str();
}

}  // namespace carbon::cover

#include "carbon/cover/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace carbon::cover {

Instance generate(const GeneratorConfig& config) {
  if (config.num_bundles == 0 || config.num_services == 0) {
    throw std::invalid_argument("generate: empty instance requested");
  }
  if (config.tightness <= 0.0 || config.tightness > 1.0) {
    throw std::invalid_argument("generate: tightness must be in (0, 1]");
  }
  common::Rng rng(config.seed);

  const std::size_t m = config.num_bundles;
  const std::size_t n = config.num_services;

  std::vector<std::vector<int>> q(m, std::vector<int>(n, 0));
  std::vector<long long> column_sum(n, 0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (!rng.chance(config.density)) continue;
      const int v = static_cast<int>(rng.range(1, config.max_quantity));
      q[j][k] = v;
      column_sum[k] += v;
    }
  }
  // Guarantee every service is supplied by at least two bundles so demands
  // are always coverable and the greedy always has a choice.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t suppliers = 0;
    for (std::size_t j = 0; j < m; ++j) suppliers += (q[j][k] > 0);
    while (suppliers < 2) {
      const auto j = static_cast<std::size_t>(rng.below(m));
      if (q[j][k] > 0) continue;
      const int v = static_cast<int>(rng.range(1, config.max_quantity));
      q[j][k] = v;
      column_sum[k] += v;
      ++suppliers;
    }
  }

  std::vector<int> demands(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const double target = config.tightness * static_cast<double>(column_sum[k]);
    demands[k] = std::max(1, static_cast<int>(std::floor(target)));
  }

  std::vector<double> costs(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double mass = 0.0;
    for (std::size_t k = 0; k < n; ++k) mass += q[j][k];
    costs[j] = config.cost_base +
               config.cost_correlation * mass / static_cast<double>(n) +
               config.cost_noise * rng.uniform();
  }

  Instance inst(std::move(costs), std::move(q), std::move(demands));
  if (!inst.coverable()) {
    throw std::logic_error("generate: produced uncoverable instance (bug)");
  }
  return inst;
}

const std::vector<PaperClass>& paper_classes() {
  static const std::vector<PaperClass> kClasses = {
      {100, 5}, {100, 10}, {100, 30},
      {250, 5}, {250, 10}, {250, 30},
      {500, 5}, {500, 10}, {500, 30},
  };
  return kClasses;
}

const std::vector<NamedFamily>& instance_families() {
  static const std::vector<NamedFamily> kFamilies = [] {
    std::vector<NamedFamily> fams;
    GeneratorConfig base;
    base.num_bundles = 120;
    base.num_services = 8;
    base.seed = 0xFA111E5;

    NamedFamily loose{"loose", "tightness 0.10: shallow covers", base};
    loose.config.tightness = 0.10;
    NamedFamily tight{"tight", "tightness 0.60: most bundles needed", base};
    tight.config.tightness = 0.60;
    NamedFamily sparse{"sparse", "density 0.15: specialized bundles", base};
    sparse.config.density = 0.15;
    NamedFamily dense{"dense", "density 1.00: generalist bundles", base};
    dense.config.density = 1.0;
    NamedFamily correlated{
        "correlated", "costs proportional to service mass", base};
    correlated.config.cost_correlation = 2.0;
    correlated.config.cost_noise = 50.0;
    NamedFamily random_costs{
        "random-costs", "costs independent of content", base};
    random_costs.config.cost_correlation = 0.0;
    random_costs.config.cost_noise = 1000.0;

    fams.push_back(loose);
    fams.push_back(tight);
    fams.push_back(sparse);
    fams.push_back(dense);
    fams.push_back(correlated);
    fams.push_back(random_costs);
    return fams;
  }();
  return kFamilies;
}

Instance make_paper_instance(std::size_t class_index, std::uint64_t run) {
  const auto& classes = paper_classes();
  if (class_index >= classes.size()) {
    throw std::out_of_range("make_paper_instance: class index 0..8");
  }
  GeneratorConfig cfg;
  cfg.num_bundles = classes[class_index].num_bundles;
  cfg.num_services = classes[class_index].num_services;
  cfg.seed = 0x5EEDULL + 1000 * class_index + run;
  return generate(cfg);
}

}  // namespace carbon::cover

#include "carbon/cover/relaxation.hpp"

#include <stdexcept>
#include <vector>

#include "carbon/lp/simplex.hpp"

namespace carbon::cover {

lp::Problem build_relaxation_lp(const Instance& instance) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  lp::Problem p;
  p.objective.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    p.add_variable(instance.cost(j), 0.0, 1.0);
  }
  // Row k's nonzeros are exactly the suppliers of service k (quantities are
  // validated non-negative, so q_jk > 0 <=> q_jk != 0). Constraints are added
  // in ascending k, which keeps every column's row indices sorted.
  std::vector<lp::RowEntry> entries;
  for (std::size_t k = 0; k < n; ++k) {
    const auto suppliers = instance.suppliers(k);
    const auto quantities = instance.supplier_quantities(k);
    entries.clear();
    entries.reserve(suppliers.size());
    for (std::size_t s = 0; s < suppliers.size(); ++s) {
      entries.push_back({static_cast<std::size_t>(suppliers[s]),
                         static_cast<double>(quantities[s])});
    }
    p.add_constraint(entries, lp::RowSense::kGreaterEqual,
                     static_cast<double>(instance.demand(k)));
  }
  return p;
}

RelaxationFamily::RelaxationFamily(const Instance& instance)
    : family(build_relaxation_lp(instance)) {
  // Solve the base-cost LP once to pin the fixed warm-start basis. If the
  // base market is not coverable the basis stays empty and every later solve
  // crash-starts, which is equally deterministic.
  lp::Basis basis;
  const lp::Solution sol = lp::solve(family, {}, &basis);
  if (sol.status == lp::SolveStatus::kOptimal) {
    baseline_basis = std::move(basis);
  }
}

namespace {

Relaxation relaxation_from_solution(const lp::Solution& sol, bool capped) {
  Relaxation out;
  out.stats.iterations = sol.iterations;
  out.stats.refactorizations = sol.refactorizations;
  out.stats.warm_start_used = sol.warm_start_used;
  out.stats.warm_start_rejected = sol.warm_start_rejected;
  out.stats.basis_saved = sol.basis_saved;
  out.stats.ftran_nnz_skipped = sol.ftran_nnz_skipped;
  out.guard_nodes = sol.iterations;
  switch (sol.status) {
    case lp::SolveStatus::kOptimal:
      out.feasible = true;
      out.lower_bound = sol.objective;
      out.duals = sol.duals;
      out.relaxed_x = sol.x;
      return out;
    case lp::SolveStatus::kInfeasible:
      out.feasible = false;
      return out;
    case lp::SolveStatus::kIterationLimit:
      if (capped) {
        // A deliberate budget cap, not a solver bug: report the trip and let
        // the caller degrade down the ladder.
        out.feasible = false;
        out.guard_trip = guard::Trip::kLpIterationCap;
        return out;
      }
      [[fallthrough]];
    default:
      throw std::runtime_error(
          std::string("cover: relaxation LP solver failed with status ") +
          lp::to_string(sol.status));
  }
}

}  // namespace

Relaxation solve_relaxation_lp(const lp::Problem& problem,
                               const lp::SimplexOptions& options,
                               lp::Basis* warm) {
  return relaxation_from_solution(lp::solve(problem, options, warm),
                                  /*capped=*/false);
}

Relaxation solve_relaxation_lp(const lp::ProblemFamily& family,
                               const lp::SimplexOptions& options,
                               lp::Basis* warm, lp::SolveScratch* scratch) {
  return relaxation_from_solution(lp::solve(family, options, warm, scratch),
                                  /*capped=*/false);
}

Relaxation solve_relaxation_lp_capped(const lp::Problem& problem,
                                      const lp::SimplexOptions& options,
                                      lp::Basis* warm) {
  return relaxation_from_solution(lp::solve(problem, options, warm),
                                  /*capped=*/true);
}

Relaxation solve_relaxation_lp_capped(const lp::ProblemFamily& family,
                                      const lp::SimplexOptions& options,
                                      lp::Basis* warm,
                                      lp::SolveScratch* scratch) {
  return relaxation_from_solution(lp::solve(family, options, warm, scratch),
                                  /*capped=*/true);
}

Relaxation relax(const Instance& instance) {
  const lp::Problem p = build_relaxation_lp(instance);
  return solve_relaxation_lp(p, {}, nullptr);
}

}  // namespace carbon::cover

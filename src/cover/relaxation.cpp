#include "carbon/cover/relaxation.hpp"

#include <stdexcept>

#include "carbon/lp/simplex.hpp"

namespace carbon::cover {

lp::Problem build_relaxation_lp(const Instance& instance) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  lp::Problem p;
  p.objective.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    p.add_variable(instance.cost(j), 0.0, 1.0);
  }
  std::vector<double> row(m);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = static_cast<double>(instance.quantity(j, k));
    }
    p.add_constraint(row, lp::RowSense::kGreaterEqual,
                     static_cast<double>(instance.demand(k)));
  }
  return p;
}

Relaxation relax(const Instance& instance) {
  const lp::Problem p = build_relaxation_lp(instance);
  const lp::Solution sol = lp::solve(p);

  Relaxation out;
  switch (sol.status) {
    case lp::SolveStatus::kOptimal:
      out.feasible = true;
      out.lower_bound = sol.objective;
      out.duals = sol.duals;
      out.relaxed_x = sol.x;
      return out;
    case lp::SolveStatus::kInfeasible:
      out.feasible = false;
      return out;
    default:
      throw std::runtime_error(
          std::string("cover::relax: LP solver failed with status ") +
          lp::to_string(sol.status));
  }
}

}  // namespace carbon::cover

#include "carbon/cover/lagrangian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace carbon::cover {

LagrangianResult lagrangian_bound(const Instance& instance,
                                  double upper_bound,
                                  const LagrangianOptions& options) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  if (!std::isfinite(upper_bound)) {
    throw std::invalid_argument("lagrangian_bound: finite upper bound needed");
  }

  std::vector<double> lambda(n, 0.0);
  std::vector<double> reduced(m, 0.0);
  std::vector<std::uint8_t> x(m, 0);
  std::vector<double> subgradient(n, 0.0);

  LagrangianResult best;
  best.multipliers.assign(n, 0.0);
  best.inner_selection.assign(m, 0);
  best.lower_bound = -std::numeric_limits<double>::infinity();

  double mu = options.step_scale;
  std::size_t stall = 0;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Inner problem: x_j = 1 iff c_j - λ'Q_j < 0. Value decomposes.
    double value = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      value += lambda[k] * instance.demand(k);
    }
    for (std::size_t j = 0; j < m; ++j) {
      double rc = instance.cost(j);
      const auto row = instance.bundle(j);
      for (std::size_t k = 0; k < n; ++k) {
        if (lambda[k] != 0.0 && row[k] != 0) rc -= lambda[k] * row[k];
      }
      reduced[j] = rc;
      x[j] = rc < 0.0 ? 1 : 0;
      if (x[j]) value += rc;
    }

    if (value > best.lower_bound) {
      best.lower_bound = value;
      best.multipliers = lambda;
      best.inner_selection = x;
      stall = 0;
    } else if (++stall >= options.stall_limit) {
      mu *= 0.5;
      stall = 0;
    }
    best.iterations = it + 1;
    if (mu < options.min_step_scale) break;

    // Subgradient of L at λ: g_k = b_k − Σ_j Q_jk x_j.
    double norm_sq = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      long long covered = 0;
      const auto idx = instance.suppliers(k);
      const auto qty = instance.supplier_quantities(k);
      for (std::size_t t = 0; t < idx.size(); ++t) {
        if (x[idx[t]]) covered += qty[t];
      }
      subgradient[k] = static_cast<double>(instance.demand(k) - covered);
      norm_sq += subgradient[k] * subgradient[k];
    }
    if (norm_sq < 1e-18) break;  // inner solution covers exactly: optimal

    const double gap_to_ub = std::max(upper_bound - value, 1e-9);
    const double step = mu * gap_to_ub / norm_sq;
    for (std::size_t k = 0; k < n; ++k) {
      lambda[k] = std::max(0.0, lambda[k] + step * subgradient[k]);
    }
  }

  return best;
}

}  // namespace carbon::cover

#include "carbon/cover/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::cover {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const Instance& instance, const ExactOptions& options)
      : inst_(instance), opt_(options), lp_(build_relaxation_lp(instance)) {}

  ExactResult run() {
    // Warm-start the incumbent with the classic greedy.
    const SolveResult greedy =
        greedy_solve(inst_, cost_effectiveness_score);
    if (greedy.feasible) {
      incumbent_ = greedy.selection;
      incumbent_value_ = greedy.value;
    }

    const bool complete = explore(0);

    ExactResult out;
    out.nodes_explored = nodes_;
    if (!incumbent_.empty()) {
      out.feasible = true;
      out.value = incumbent_value_;
      out.selection = incumbent_;
      out.proven_optimal = complete;
    }
    return out;
  }

 private:
  /// Returns true when the subtree was fully explored (no budget cutoff).
  bool explore(int depth) {
    if (nodes_ >= opt_.max_nodes) return false;
    ++nodes_;

    const lp::Solution rel = lp::solve(lp_);
    if (rel.status == lp::SolveStatus::kInfeasible) return true;  // pruned
    if (rel.status != lp::SolveStatus::kOptimal) return false;    // give up

    if (!incumbent_.empty() &&
        rel.objective >= incumbent_value_ - opt_.bound_tolerance) {
      return true;  // bound prune
    }

    // Integral solution? Then it is optimal for this subtree.
    std::size_t branch_var = inst_.num_bundles();
    double most_fractional = 0.0;
    for (std::size_t j = 0; j < inst_.num_bundles(); ++j) {
      const double frac = std::abs(rel.x[j] - std::round(rel.x[j]));
      if (frac > 1e-6 && frac > most_fractional) {
        most_fractional = frac;
        branch_var = j;
      }
    }
    if (branch_var == inst_.num_bundles()) {
      // Integral: candidate incumbent.
      std::vector<std::uint8_t> sel(inst_.num_bundles(), 0);
      for (std::size_t j = 0; j < inst_.num_bundles(); ++j) {
        sel[j] = rel.x[j] > 0.5 ? 1 : 0;
      }
      const double value = inst_.selection_cost(sel);
      if (incumbent_.empty() || value < incumbent_value_) {
        incumbent_ = std::move(sel);
        incumbent_value_ = value;
      }
      return true;
    }

    // Branch: try x_j = 1 first (covers demand sooner in a min-cover).
    bool complete = true;
    const double old_lower = lp_.lower[branch_var];
    const double old_upper = lp_.upper[branch_var];

    lp_.lower[branch_var] = 1.0;
    lp_.upper[branch_var] = 1.0;
    complete &= explore(depth + 1);
    lp_.lower[branch_var] = 0.0;
    lp_.upper[branch_var] = 0.0;
    complete &= explore(depth + 1);
    lp_.lower[branch_var] = old_lower;
    lp_.upper[branch_var] = old_upper;
    return complete;
  }

  const Instance& inst_;
  ExactOptions opt_;
  lp::Problem lp_;
  std::vector<std::uint8_t> incumbent_;
  double incumbent_value_ = std::numeric_limits<double>::infinity();
  std::size_t nodes_ = 0;
};

}  // namespace

ExactResult exact_solve(const Instance& instance, const ExactOptions& options) {
  BranchAndBound bb(instance, options);
  return bb.run();
}

}  // namespace carbon::cover

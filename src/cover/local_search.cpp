#include "carbon/cover/local_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace carbon::cover {

namespace {

/// Coverage per service of the current selection.
std::vector<long long> coverage_of(const Instance& inst,
                                   std::span<const std::uint8_t> selection) {
  std::vector<long long> covered(inst.num_services(), 0);
  for (std::size_t j = 0; j < inst.num_bundles(); ++j) {
    if (!selection[j]) continue;
    const auto row = inst.bundle(j);
    for (std::size_t k = 0; k < inst.num_services(); ++k) {
      covered[k] += row[k];
    }
  }
  return covered;
}

bool removable(const Instance& inst, std::span<const long long> covered,
               std::size_t j) {
  const auto row = inst.bundle(j);
  for (std::size_t k = 0; k < inst.num_services(); ++k) {
    if (covered[k] - row[k] < inst.demand(k)) return false;
  }
  return true;
}

bool swappable(const Instance& inst, std::span<const long long> covered,
               std::size_t out, std::size_t in) {
  const auto row_out = inst.bundle(out);
  const auto row_in = inst.bundle(in);
  for (std::size_t k = 0; k < inst.num_services(); ++k) {
    if (covered[k] - row_out[k] + row_in[k] < inst.demand(k)) return false;
  }
  return true;
}

}  // namespace

LocalSearchResult local_search(const Instance& instance,
                               std::vector<std::uint8_t>& selection,
                               const LocalSearchOptions& options) {
  if (selection.size() != instance.num_bundles() ||
      !instance.feasible(selection)) {
    throw std::invalid_argument("local_search: need a feasible cover");
  }

  LocalSearchResult result;
  std::vector<long long> covered = coverage_of(instance, selection);
  const std::size_t m = instance.num_bundles();
  const auto moves_left = [&] {
    return options.max_moves == 0 ||
           result.drops + result.swaps < options.max_moves;
  };

  bool improved = true;
  while (improved && moves_left()) {
    improved = false;

    if (options.enable_drop) {
      // Most expensive first: dropping a pricey redundant bundle may keep a
      // cheap one feasible, never the other way around.
      std::vector<std::size_t> chosen;
      for (std::size_t j = 0; j < m; ++j) {
        if (selection[j]) chosen.push_back(j);
      }
      std::sort(chosen.begin(), chosen.end(),
                [&](std::size_t a, std::size_t b) {
                  return instance.cost(a) > instance.cost(b);
                });
      for (std::size_t j : chosen) {
        if (!moves_left()) break;
        if (instance.cost(j) <= 0.0) continue;
        if (!removable(instance, covered, j)) continue;
        selection[j] = 0;
        const auto row = instance.bundle(j);
        for (std::size_t k = 0; k < instance.num_services(); ++k) {
          covered[k] -= row[k];
        }
        ++result.drops;
        improved = true;
      }
    }

    if (options.enable_swap) {
      for (std::size_t out = 0; out < m && moves_left(); ++out) {
        if (!selection[out]) continue;
        for (std::size_t in = 0; in < m; ++in) {
          if (selection[in] || instance.cost(in) >= instance.cost(out)) {
            continue;
          }
          if (!swappable(instance, covered, out, in)) continue;
          selection[out] = 0;
          selection[in] = 1;
          const auto row_out = instance.bundle(out);
          const auto row_in = instance.bundle(in);
          for (std::size_t k = 0; k < instance.num_services(); ++k) {
            covered[k] += row_in[k] - row_out[k];
          }
          ++result.swaps;
          improved = true;
          break;  // `out` is gone; move to the next selected bundle
        }
      }
    }
  }

  result.value = instance.selection_cost(selection);
  return result;
}

}  // namespace carbon::cover

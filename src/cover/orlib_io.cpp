#include "carbon/cover/orlib_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace carbon::cover {

void write_orlib(std::ostream& out, const Instance& instance) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  out << m << ' ' << n << '\n';
  out << std::setprecision(17);
  for (std::size_t j = 0; j < m; ++j) {
    out << instance.cost(j) << (j + 1 == m ? '\n' : ' ');
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      out << instance.quantity(j, k) << (j + 1 == m ? '\n' : ' ');
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    out << instance.demand(k) << (k + 1 == n ? '\n' : ' ');
  }
  if (!out) throw std::ios_base::failure("write_orlib: stream error");
}

Instance read_orlib(std::istream& in) {
  std::size_t m = 0;
  std::size_t n = 0;
  if (!(in >> m >> n)) {
    throw std::runtime_error("read_orlib: missing header");
  }
  if (m == 0 || n == 0 || m > 10'000'000 || n > 10'000'000) {
    throw std::runtime_error("read_orlib: implausible dimensions");
  }
  std::vector<double> costs(m);
  for (auto& c : costs) {
    if (!(in >> c)) throw std::runtime_error("read_orlib: truncated costs");
    if (!std::isfinite(c)) {
      throw std::runtime_error("read_orlib: non-finite cost");
    }
  }
  std::vector<std::vector<int>> q(m, std::vector<int>(n));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!(in >> q[j][k])) {
        throw std::runtime_error("read_orlib: truncated matrix");
      }
      if (q[j][k] < 0) {
        throw std::runtime_error("read_orlib: negative coefficient");
      }
    }
  }
  std::vector<int> demands(n);
  for (auto& b : demands) {
    if (!(in >> b)) throw std::runtime_error("read_orlib: truncated demands");
    if (b < 0) throw std::runtime_error("read_orlib: negative demand");
  }
  return Instance(std::move(costs), std::move(q), std::move(demands));
}

void save_orlib(const std::string& path, const Instance& instance) {
  std::ofstream f(path);
  if (!f) throw std::ios_base::failure("save_orlib: cannot open " + path);
  write_orlib(f, instance);
}

Instance load_orlib(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::ios_base::failure("load_orlib: cannot open " + path);
  return read_orlib(f);
}

}  // namespace carbon::cover

#include "carbon/cover/greedy.hpp"

#include <stdexcept>

namespace carbon::cover {

namespace detail {

void eliminate_redundancy(const Instance& instance,
                          std::vector<std::uint8_t>& selection) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  // Coverage including slack (residual may be over-covered).
  std::vector<long long> covered(n, 0);
  for (std::size_t j = 0; j < m; ++j) {
    if (!selection[j]) continue;
    const auto row = instance.bundle(j);
    for (std::size_t k = 0; k < n; ++k) covered[k] += row[k];
  }
  // Try to drop selected bundles, most expensive first.
  std::vector<std::size_t> chosen;
  for (std::size_t j = 0; j < m; ++j) {
    if (selection[j]) chosen.push_back(j);
  }
  std::sort(chosen.begin(), chosen.end(), [&](std::size_t a, std::size_t b) {
    return instance.cost(a) > instance.cost(b);
  });
  for (std::size_t j : chosen) {
    const auto row = instance.bundle(j);
    bool droppable = true;
    for (std::size_t k = 0; k < n; ++k) {
      if (covered[k] - row[k] < instance.demand(k)) {
        droppable = false;
        break;
      }
    }
    if (!droppable) continue;
    selection[j] = 0;
    for (std::size_t k = 0; k < n; ++k) covered[k] -= row[k];
  }
}

void static_masses(const Instance& instance, std::span<const double> duals,
                   std::vector<double>& qsum, std::vector<double>& dual_mass) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  qsum.assign(m, 0.0);
  dual_mass.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double s = 0.0;
    double d = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      s += row[k];
      if (k < duals.size()) d += duals[k] * row[k];
    }
    qsum[j] = s;
    dual_mass[j] = d;
  }
}

}  // namespace detail

SolveResult greedy_solve_static(const Instance& instance,
                                std::span<const double> scores,
                                const GreedyOptions& options) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();
  if (scores.size() != m) {
    throw std::invalid_argument("greedy_solve_static: one score per bundle");
  }

  // Sanitize once up front — the comparator previously re-sanitized both
  // sides of every comparison, O(M log M) redundant isfinite checks.
  std::vector<double> sane(m);
  for (std::size_t j = 0; j < m; ++j) {
    sane[j] = detail::sanitize_score(scores[j]);
  }

  // Stable order: score descending, index ascending — matches the argmax
  // tie-breaking of greedy_solve_with exactly.
  std::vector<std::size_t> order(m);
  for (std::size_t j = 0; j < m; ++j) order[j] = j;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sane[a] > sane[b];
                   });

  SolveResult result;
  result.selection.assign(m, 0);
  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  // Each selection is one "round" of the equivalent argmax greedy, so the
  // round cap counts selections here too.
  long long rounds = 0;
  for (std::size_t rank = 0; rank < m && outstanding > 0; ++rank) {
    const std::size_t j = order[rank];
    const auto row = instance.bundle(j);
    long long useful = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        useful += std::min(row[k], residual[k]);
      }
    }
    if (useful <= 0) continue;
    if (options.max_rounds > 0 && rounds >= options.max_rounds) {
      result.feasible = false;
      result.rounds_capped = true;
      result.value = instance.selection_cost(result.selection);
      return result;
    }
    ++rounds;
    result.selection[j] = 1;
    for (std::size_t k = 0; k < n; ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        const int used = std::min(row[k], residual[k]);
        residual[k] -= used;
        outstanding -= used;
      }
    }
  }

  if (outstanding > 0) {
    result.feasible = false;
    result.value = instance.selection_cost(result.selection);
    return result;
  }

  if (options.eliminate_redundancy) {
    detail::eliminate_redundancy(instance, result.selection);
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  return result;
}

double cost_effectiveness_score(const BundleFeatures& f) {
  return f.qcov / std::max(f.cost, 1e-9);
}

double dual_score(const BundleFeatures& f) { return f.dual - f.cost; }

SolveResult greedy_solve(const Instance& instance, const ScoreFunction& score,
                         std::span<const double> duals,
                         std::span<const double> relaxed_x,
                         const GreedyOptions& options) {
  return greedy_solve_with(instance, score, duals, relaxed_x, options);
}

}  // namespace carbon::cover

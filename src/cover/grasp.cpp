#include "carbon/cover/grasp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace carbon::cover {

namespace {

/// One semi-greedy construction.
SolveResult construct(const Instance& instance, const ScoreFunction& score,
                      common::Rng& rng, std::span<const double> duals,
                      std::span<const double> relaxed_x, double alpha,
                      const GreedyOptions& greedy_options) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  SolveResult result;
  result.selection.assign(m, 0);
  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  std::vector<double> qsum(m, 0.0);
  std::vector<double> dual_mass(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    for (std::size_t k = 0; k < n; ++k) {
      qsum[j] += row[k];
      if (k < duals.size()) dual_mass[j] += duals[k] * row[k];
    }
  }

  std::vector<std::size_t> candidates;
  std::vector<double> scores;
  while (outstanding > 0) {
    candidates.clear();
    scores.clear();
    double best = -std::numeric_limits<double>::infinity();
    double worst = std::numeric_limits<double>::infinity();
    const double bres = static_cast<double>(outstanding);
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) continue;
      const auto row = instance.bundle(j);
      double useful = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (residual[k] > 0 && row[k] > 0) {
          useful += std::min(row[k], residual[k]);
        }
      }
      if (useful <= 0.0) continue;
      BundleFeatures f;
      f.cost = instance.cost(j);
      f.qsum = qsum[j];
      f.qcov = useful;
      f.bres = bres;
      f.dual = dual_mass[j];
      f.xbar = j < relaxed_x.size() ? relaxed_x[j] : 0.0;
      const double s = detail::sanitize_score(score(f));
      candidates.push_back(j);
      scores.push_back(s);
      best = std::max(best, s);
      worst = std::min(worst, s);
    }
    if (candidates.empty()) {
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      return result;
    }

    // Restricted candidate list.
    const double threshold = best - alpha * (best - worst);
    std::size_t rcl_size = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (scores[i] >= threshold) {
        candidates[rcl_size++] = candidates[i];
      }
    }
    const std::size_t pick = candidates[rng.below(rcl_size)];

    result.selection[pick] = 1;
    const auto row = instance.bundle(pick);
    for (std::size_t k = 0; k < n; ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        const int used = std::min(row[k], residual[k]);
        residual[k] -= used;
        outstanding -= used;
      }
    }
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  if (greedy_options.eliminate_redundancy) {
    // Reuse the deterministic greedy's elimination by delegating to a
    // zero-alpha pass over the already-feasible selection: simplest is the
    // same reverse sweep.
    std::vector<long long> covered(n, 0);
    for (std::size_t j = 0; j < m; ++j) {
      if (!result.selection[j]) continue;
      const auto row = instance.bundle(j);
      for (std::size_t k = 0; k < n; ++k) covered[k] += row[k];
    }
    std::vector<std::size_t> chosen;
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) chosen.push_back(j);
    }
    std::sort(chosen.begin(), chosen.end(),
              [&](std::size_t a, std::size_t b) {
                return instance.cost(a) > instance.cost(b);
              });
    for (std::size_t j : chosen) {
      const auto row = instance.bundle(j);
      bool droppable = true;
      for (std::size_t k = 0; k < n; ++k) {
        if (covered[k] - row[k] < instance.demand(k)) {
          droppable = false;
          break;
        }
      }
      if (!droppable) continue;
      result.selection[j] = 0;
      for (std::size_t k = 0; k < n; ++k) covered[k] -= row[k];
    }
    result.value = instance.selection_cost(result.selection);
  }
  return result;
}

}  // namespace

SolveResult grasp_solve(const Instance& instance, const ScoreFunction& score,
                        common::Rng& rng, std::span<const double> duals,
                        std::span<const double> relaxed_x,
                        const GraspOptions& options) {
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    throw std::invalid_argument("grasp_solve: alpha in [0, 1]");
  }
  if (options.restarts == 0) {
    throw std::invalid_argument("grasp_solve: restarts >= 1");
  }
  SolveResult best;
  best.feasible = false;
  best.value = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    SolveResult candidate = construct(instance, score, rng, duals, relaxed_x,
                                      options.alpha, options.greedy);
    if (!candidate.feasible) return candidate;  // instance not coverable
    if (candidate.value < best.value) best = std::move(candidate);
  }
  return best;
}

}  // namespace carbon::cover

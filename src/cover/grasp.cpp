#include "carbon/cover/grasp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace carbon::cover {

namespace {

/// One semi-greedy construction, batch-scoring core: every round fills the
/// SoA feature view once and scores the whole bundle axis in one call.
SolveResult construct(const Instance& instance,
                      const BatchScoreFunction& score, common::Rng& rng,
                      std::span<const double> duals,
                      std::span<const double> relaxed_x, double alpha,
                      const GreedyOptions& greedy_options) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  SolveResult result;
  result.selection.assign(m, 0);
  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  std::vector<double> qsum;
  std::vector<double> dual_mass;
  detail::static_masses(instance, duals, qsum, dual_mass);

  std::vector<double> xbar(m, 0.0);
  for (std::size_t j = 0; j < m && j < relaxed_x.size(); ++j) {
    xbar[j] = relaxed_x[j];
  }

  std::vector<double> useful(m, 0.0);
  std::vector<double> scores(m, 0.0);
  std::vector<std::size_t> candidates;
  std::vector<double> cand_scores;

  BatchFeatureView view;
  view.cost = instance.costs();
  view.qsum = qsum;
  view.qcov = useful;
  view.dual = dual_mass;
  view.xbar = xbar;
  view.count = m;

  long long rounds = 0;
  while (outstanding > 0) {
    if (greedy_options.max_rounds > 0 &&
        rounds >= greedy_options.max_rounds) {
      result.feasible = false;
      result.rounds_capped = true;
      result.value = instance.selection_cost(result.selection);
      return result;
    }
    ++rounds;
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) {
        useful[j] = 0.0;
        continue;
      }
      const auto row = instance.bundle(j);
      double u = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (residual[k] > 0 && row[k] > 0) {
          u += std::min(row[k], residual[k]);
        }
      }
      useful[j] = u;
    }
    view.bres = static_cast<double>(outstanding);
    score(view, std::span<double>(scores));

    candidates.clear();
    cand_scores.clear();
    double best = -std::numeric_limits<double>::infinity();
    double worst = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j] || useful[j] <= 0.0) continue;
      const double s = detail::sanitize_score(scores[j]);
      candidates.push_back(j);
      cand_scores.push_back(s);
      best = std::max(best, s);
      worst = std::min(worst, s);
    }
    if (candidates.empty()) {
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      return result;
    }

    // Restricted candidate list.
    const double threshold = best - alpha * (best - worst);
    std::size_t rcl_size = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (cand_scores[i] >= threshold) {
        candidates[rcl_size++] = candidates[i];
      }
    }
    const std::size_t pick = candidates[rng.below(rcl_size)];

    result.selection[pick] = 1;
    const auto row = instance.bundle(pick);
    for (std::size_t k = 0; k < n; ++k) {
      if (residual[k] > 0 && row[k] > 0) {
        const int used = std::min(row[k], residual[k]);
        residual[k] -= used;
        outstanding -= used;
      }
    }
  }

  result.feasible = true;
  if (greedy_options.eliminate_redundancy) {
    detail::eliminate_redundancy(instance, result.selection);
  }
  result.value = instance.selection_cost(result.selection);
  return result;
}

void validate(const GraspOptions& options) {
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    throw std::invalid_argument("grasp_solve: alpha in [0, 1]");
  }
  if (options.restarts == 0) {
    throw std::invalid_argument("grasp_solve: restarts >= 1");
  }
}

SolveResult multistart(const Instance& instance,
                       const BatchScoreFunction& score, common::Rng& rng,
                       std::span<const double> duals,
                       std::span<const double> relaxed_x,
                       const GraspOptions& options) {
  SolveResult best;
  best.feasible = false;
  best.value = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    SolveResult candidate = construct(instance, score, rng, duals, relaxed_x,
                                      options.alpha, options.greedy);
    if (!candidate.feasible) {
      if (!candidate.rounds_capped) return candidate;  // not coverable
      // A round-capped restart only proves the budget ran out, not that the
      // instance is uncoverable — remember it (so a fully-capped multistart
      // still reports the trip) and let later restarts try.
      if (!best.feasible) best = std::move(candidate);
      continue;
    }
    if (!best.feasible || candidate.value < best.value) {
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace

SolveResult grasp_solve(const Instance& instance, const ScoreFunction& score,
                        common::Rng& rng, std::span<const double> duals,
                        std::span<const double> relaxed_x,
                        const GraspOptions& options) {
  validate(options);
  // Adapt the per-bundle scorer onto the batch core: every considered
  // candidate sees exactly the features the scalar construction built, so
  // the RCL (and thus the rng consumption) is unchanged.
  const BatchScoreFunction batched = [&score](const BatchFeatureView& view,
                                              std::span<double> out) {
    for (std::size_t j = 0; j < view.count; ++j) {
      BundleFeatures f;
      f.cost = view.cost[j];
      f.qsum = view.qsum[j];
      f.qcov = view.qcov[j];
      f.bres = view.bres;
      f.dual = view.dual[j];
      f.xbar = view.xbar[j];
      out[j] = score(f);
    }
  };
  return multistart(instance, batched, rng, duals, relaxed_x, options);
}

SolveResult grasp_solve(const Instance& instance,
                        const BatchScoreFunction& score, common::Rng& rng,
                        std::span<const double> duals,
                        std::span<const double> relaxed_x,
                        const GraspOptions& options) {
  validate(options);
  return multistart(instance, score, rng, duals, relaxed_x, options);
}

}  // namespace carbon::cover

#include "carbon/baselines/nested_ga.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "carbon/common/statistics.hpp"
#include "carbon/ea/archive.hpp"

namespace carbon::baselines {

namespace {

struct ArchivedSolution {
  bcpop::Pricing pricing;
  bcpop::Evaluation evaluation;
};

}  // namespace

NestedGaSolver::NestedGaSolver(const bcpop::Instance& instance,
                               NestedGaConfig config)
    : inst_(instance), cfg_(std::move(config)) {
  if (cfg_.population_size < 2) {
    throw std::invalid_argument("NestedGaSolver: population size >= 2");
  }
}

core::RunResult NestedGaSolver::run() {
  common::Rng rng(cfg_.seed);
  bcpop::Evaluator eval(inst_);
  const auto bounds = inst_.price_bounds();

  std::vector<bcpop::Pricing> pop;
  for (std::size_t i = 0; i < cfg_.population_size; ++i) {
    pop.push_back(ea::random_real_vector(rng, bounds));
  }
  std::vector<double> fitness(pop.size(), 0.0);

  ea::Archive<ArchivedSolution> archive(cfg_.archive_size, /*maximize=*/true);

  core::RunResult result;
  result.best_gap = std::numeric_limits<double>::infinity();
  result.best_ul_objective = -std::numeric_limits<double>::infinity();

  int generation = 0;
  while (eval.ul_evaluations() < cfg_.ul_eval_budget &&
         eval.ll_evaluations() < cfg_.ll_eval_budget) {
    double cur_best = -std::numeric_limits<double>::infinity();
    common::RunningStats gaps;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const bcpop::Evaluation e =
          eval.evaluate_with_score(pop[i], cover::cost_effectiveness_score);
      fitness[i] = e.ul_objective;
      cur_best = std::max(cur_best, e.ul_objective);
      gaps.add(e.gap_percent);
      if (e.ll_feasible) {
        result.best_gap = std::min(result.best_gap, e.gap_percent);
        if (e.ul_objective > result.best_ul_objective) {
          result.best_ul_objective = e.ul_objective;
          result.best_pricing = pop[i];
          result.best_evaluation = e;
        }
      }
      archive.add({pop[i], e}, e.ul_objective);
    }

    if (cfg_.record_convergence) {
      core::ConvergencePoint pt;
      pt.generation = generation;
      pt.ul_evaluations = eval.ul_evaluations();
      pt.ll_evaluations = eval.ll_evaluations();
      pt.best_ul_so_far = result.best_ul_objective;
      pt.best_gap_so_far = result.best_gap;
      pt.current_best_ul = cur_best;
      pt.current_mean_gap = gaps.mean();
      pt.phase = "nested";
      result.convergence.push_back(std::move(pt));
    }

    std::vector<bcpop::Pricing> next;
    next.reserve(pop.size());
    while (next.size() < pop.size()) {
      const std::size_t ia = ea::binary_tournament(rng, fitness, true);
      const std::size_t ib = ea::binary_tournament(rng, fitness, true);
      bcpop::Pricing a = pop[ia];
      bcpop::Pricing b = pop[ib];
      if (rng.chance(cfg_.crossover_prob)) {
        ea::sbx_crossover(rng, a, b, bounds, cfg_.sbx);
      }
      if (rng.chance(cfg_.mutation_prob)) {
        ea::polynomial_mutation(rng, a, bounds, cfg_.mutation);
      }
      if (rng.chance(cfg_.mutation_prob)) {
        ea::polynomial_mutation(rng, b, bounds, cfg_.mutation);
      }
      next.push_back(std::move(a));
      if (next.size() < pop.size()) next.push_back(std::move(b));
    }
    const std::size_t reinject =
        std::min({cfg_.archive_reinjection, archive.size(), next.size()});
    for (std::size_t r = 0; r < reinject; ++r) {
      next[next.size() - 1 - r] = archive.at(r).item.pricing;
    }
    pop = std::move(next);
    ++generation;
  }

  result.generations = generation;
  result.ul_evaluations = eval.ul_evaluations();
  result.ll_evaluations = eval.ll_evaluations();
  if (!std::isfinite(result.best_ul_objective)) result.best_ul_objective = 0.0;
  if (!std::isfinite(result.best_gap)) result.best_gap = 1e9;
  return result;
}

}  // namespace carbon::baselines

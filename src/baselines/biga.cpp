#include "carbon/baselines/biga.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "carbon/common/statistics.hpp"
#include "carbon/ea/archive.hpp"

namespace carbon::baselines {

namespace {

struct ArchivedSolution {
  bcpop::Pricing pricing;
  std::vector<std::uint8_t> basket;
  bcpop::Evaluation evaluation;
};

}  // namespace

BigaSolver::BigaSolver(const bcpop::Instance& instance, BigaConfig config)
    : inst_(&instance), cfg_(std::move(config)) {
  if (cfg_.population_size < 2) {
    throw std::invalid_argument("BigaSolver: population size >= 2");
  }
}

BigaSolver::BigaSolver(bcpop::EvaluatorInterface& evaluator, BigaConfig config)
    : external_(&evaluator), cfg_(std::move(config)) {
  if (cfg_.population_size < 2) {
    throw std::invalid_argument("BigaSolver: population size >= 2");
  }
}

core::RunResult BigaSolver::run() {
  if (external_ != nullptr) return run_with(*external_);
  bcpop::Evaluator own(*inst_);
  return run_with(own);
}

core::RunResult BigaSolver::run_with(bcpop::EvaluatorInterface& eval) {
  common::Rng rng(cfg_.seed);
  const auto bounds = eval.price_bounds();
  const std::size_t genome = eval.genome_length();
  const long long ul_start = eval.ul_evaluations();
  const long long ll_start = eval.ll_evaluations();

  const std::size_t pop = cfg_.population_size;
  std::vector<bcpop::Pricing> xs;
  std::vector<std::vector<std::uint8_t>> ys;
  for (std::size_t i = 0; i < pop; ++i) {
    xs.push_back(ea::random_real_vector(rng, bounds));
    ys.push_back(ea::random_binary_vector(rng, genome, cfg_.ll_init_density));
  }

  ea::Archive<ArchivedSolution> archive(cfg_.archive_size, /*maximize=*/true);
  core::RunResult result;
  result.best_gap = std::numeric_limits<double>::infinity();
  result.best_ul_objective = -std::numeric_limits<double>::infinity();

  std::vector<double> f_upper(pop, 0.0);
  std::vector<double> f_lower(pop, 0.0);

  int generation = 0;
  while (eval.ul_evaluations() - ul_start < cfg_.ul_eval_budget &&
         eval.ll_evaluations() - ll_start < cfg_.ll_eval_budget) {
    double cur_best = -std::numeric_limits<double>::infinity();
    common::RunningStats gaps;
    for (std::size_t i = 0; i < pop; ++i) {
      const bcpop::Evaluation e = eval.evaluate_with_selection(xs[i], ys[i]);
      f_upper[i] = e.ul_objective;
      f_lower[i] = e.ll_objective;
      cur_best = std::max(cur_best, e.ul_objective);
      gaps.add(e.gap_percent);
      if (e.ll_feasible) {
        result.best_gap = std::min(result.best_gap, e.gap_percent);
        if (e.ul_objective > result.best_ul_objective) {
          result.best_ul_objective = e.ul_objective;
          result.best_pricing = xs[i];
          result.best_evaluation = e;
        }
      }
      archive.add({xs[i], ys[i], e}, e.ul_objective);
    }

    if (cfg_.record_convergence) {
      core::ConvergencePoint pt;
      pt.generation = generation;
      pt.ul_evaluations = eval.ul_evaluations() - ul_start;
      pt.ll_evaluations = eval.ll_evaluations() - ll_start;
      pt.best_ul_so_far = result.best_ul_objective;
      pt.best_gap_so_far = result.best_gap;
      pt.current_best_ul = cur_best;
      pt.current_mean_gap = gaps.mean();
      pt.phase = "biga";
      result.convergence.push_back(std::move(pt));
    }

    // Breed both halves simultaneously: pricings on F, baskets on f.
    std::vector<bcpop::Pricing> next_x;
    std::vector<std::vector<std::uint8_t>> next_y;
    next_x.reserve(pop);
    next_y.reserve(pop);
    while (next_x.size() < pop) {
      const std::size_t xa = ea::binary_tournament(rng, f_upper, true);
      const std::size_t xb = ea::binary_tournament(rng, f_upper, true);
      bcpop::Pricing cx1 = xs[xa];
      bcpop::Pricing cx2 = xs[xb];
      if (rng.chance(cfg_.ul_crossover_prob)) {
        ea::sbx_crossover(rng, cx1, cx2, bounds, cfg_.sbx);
      }
      if (rng.chance(cfg_.ul_mutation_prob)) {
        ea::polynomial_mutation(rng, cx1, bounds, cfg_.mutation);
      }
      if (rng.chance(cfg_.ul_mutation_prob)) {
        ea::polynomial_mutation(rng, cx2, bounds, cfg_.mutation);
      }

      const std::size_t ya = ea::binary_tournament(rng, f_lower, false);
      const std::size_t yb = ea::binary_tournament(rng, f_lower, false);
      std::vector<std::uint8_t> cy1 = ys[ya];
      std::vector<std::uint8_t> cy2 = ys[yb];
      if (rng.chance(cfg_.ll_crossover_prob)) {
        ea::two_point_crossover(rng, cy1, cy2);
      }
      ea::swap_mutation(rng, cy1, cfg_.ll_mutation_prob);
      ea::swap_mutation(rng, cy2, cfg_.ll_mutation_prob);

      next_x.push_back(std::move(cx1));
      next_y.push_back(std::move(cy1));
      if (next_x.size() < pop) {
        next_x.push_back(std::move(cx2));
        next_y.push_back(std::move(cy2));
      }
    }
    const std::size_t reinject =
        std::min({cfg_.archive_reinjection, archive.size(), pop});
    for (std::size_t r = 0; r < reinject; ++r) {
      next_x[pop - 1 - r] = archive.at(r).item.pricing;
      next_y[pop - 1 - r] = archive.at(r).item.basket;
    }
    xs = std::move(next_x);
    ys = std::move(next_y);
    ++generation;
  }

  result.generations = generation;
  result.ul_evaluations = eval.ul_evaluations() - ul_start;
  result.ll_evaluations = eval.ll_evaluations() - ll_start;
  if (!std::isfinite(result.best_ul_objective)) result.best_ul_objective = 0.0;
  if (!std::isfinite(result.best_gap)) result.best_gap = 1e9;
  return result;
}

}  // namespace carbon::baselines

#include "carbon/baselines/codba.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "carbon/common/statistics.hpp"
#include "carbon/ea/archive.hpp"

namespace carbon::baselines {

namespace {

using Basket = std::vector<std::uint8_t>;

struct ArchivedSolution {
  bcpop::Pricing pricing;
  Basket basket;
  bcpop::Evaluation evaluation;
};

}  // namespace

CodbaSolver::CodbaSolver(const bcpop::Instance& instance, CodbaConfig config)
    : inst_(&instance), cfg_(std::move(config)) {
  if (cfg_.ul_population_size < 2 || cfg_.ll_subpopulation_size < 2) {
    throw std::invalid_argument("CodbaSolver: population sizes must be >= 2");
  }
  if (cfg_.decomposition_width < 1) {
    throw std::invalid_argument("CodbaSolver: decomposition_width >= 1");
  }
}

CodbaSolver::CodbaSolver(bcpop::EvaluatorInterface& evaluator,
                         CodbaConfig config)
    : external_(&evaluator), cfg_(std::move(config)) {
  if (cfg_.ul_population_size < 2 || cfg_.ll_subpopulation_size < 2) {
    throw std::invalid_argument("CodbaSolver: population sizes must be >= 2");
  }
}

core::RunResult CodbaSolver::run() {
  if (external_ != nullptr) return run_with(*external_);
  bcpop::Evaluator own(*inst_);
  return run_with(own);
}

core::RunResult CodbaSolver::run_with(bcpop::EvaluatorInterface& eval) {
  common::Rng rng(cfg_.seed);
  const auto bounds = eval.price_bounds();
  const std::size_t genome = eval.genome_length();
  const long long ul_start = eval.ul_evaluations();
  const long long ll_start = eval.ll_evaluations();

  std::vector<bcpop::Pricing> ul_pop;
  for (std::size_t i = 0; i < cfg_.ul_population_size; ++i) {
    ul_pop.push_back(ea::random_real_vector(rng, bounds));
  }
  std::vector<double> ul_fitness(ul_pop.size(), 0.0);

  // Archive of complete solutions (keyed by F); its baskets seed the LL
  // subpopulations ("mate with the best archived LL solutions").
  ea::Archive<ArchivedSolution> archive(cfg_.archive_size, /*maximize=*/true);

  core::RunResult result;
  result.best_gap = std::numeric_limits<double>::infinity();
  result.best_ul_objective = -std::numeric_limits<double>::infinity();

  const auto budget_left = [&] {
    return eval.ul_evaluations() - ul_start < cfg_.ul_eval_budget &&
           eval.ll_evaluations() - ll_start < cfg_.ll_eval_budget;
  };

  // Evolves a fresh LL subpopulation for the given pricing and returns the
  // best complete evaluation found.
  const auto solve_subproblem = [&](const bcpop::Pricing& pricing) {
    std::vector<Basket> sub;
    for (std::size_t i = 0; i < cfg_.ll_subpopulation_size; ++i) {
      if (!archive.empty() && rng.chance(0.5)) {
        sub.push_back(archive.sample(rng).item.basket);
      } else {
        sub.push_back(
            ea::random_binary_vector(rng, genome, cfg_.ll_init_density));
      }
    }
    std::vector<double> fit(sub.size(), 0.0);
    bcpop::Evaluation best;
    Basket best_basket;
    double best_f = std::numeric_limits<double>::infinity();
    for (int g = 0; g < cfg_.ll_subpopulation_generations && budget_left();
         ++g) {
      for (std::size_t i = 0; i < sub.size(); ++i) {
        const bcpop::Evaluation e =
            eval.evaluate_with_selection(pricing, sub[i]);
        fit[i] = e.ll_objective;
        if (e.ll_feasible && e.ll_objective < best_f) {
          best_f = e.ll_objective;
          best = e;
          best_basket = sub[i];
        }
      }
      std::vector<Basket> next;
      next.reserve(sub.size());
      while (next.size() < sub.size()) {
        const std::size_t ia = ea::binary_tournament(rng, fit, false);
        const std::size_t ib = ea::binary_tournament(rng, fit, false);
        Basket a = sub[ia];
        Basket b = sub[ib];
        if (rng.chance(cfg_.ll_crossover_prob)) {
          ea::two_point_crossover(rng, a, b);
        }
        ea::swap_mutation(rng, a, cfg_.ll_mutation_prob);
        ea::swap_mutation(rng, b, cfg_.ll_mutation_prob);
        next.push_back(std::move(a));
        if (next.size() < sub.size()) next.push_back(std::move(b));
      }
      sub = std::move(next);
    }
    return std::pair{best, best_basket};
  };

  int generation = 0;
  while (budget_left()) {
    double cur_best = -std::numeric_limits<double>::infinity();
    common::RunningStats gaps;

    // Decomposition: the top pricings (by last fitness; random in gen 0)
    // each get a dedicated LL subpopulation.
    std::vector<std::size_t> chosen(ul_pop.size());
    for (std::size_t i = 0; i < ul_pop.size(); ++i) chosen[i] = i;
    std::sort(chosen.begin(), chosen.end(), [&](std::size_t a, std::size_t b) {
      return ul_fitness[a] > ul_fitness[b];
    });
    chosen.resize(std::min(cfg_.decomposition_width, chosen.size()));

    for (const std::size_t i : chosen) {
      if (!budget_left()) break;
      const auto [e, basket] = solve_subproblem(ul_pop[i]);
      if (basket.empty()) continue;
      ul_fitness[i] = e.ul_objective;
      cur_best = std::max(cur_best, e.ul_objective);
      gaps.add(e.gap_percent);
      archive.add({ul_pop[i], basket, e}, e.ul_objective);
      if (e.ll_feasible) {
        result.best_gap = std::min(result.best_gap, e.gap_percent);
        if (e.ul_objective > result.best_ul_objective) {
          result.best_ul_objective = e.ul_objective;
          result.best_pricing = ul_pop[i];
          result.best_evaluation = e;
        }
      }
    }

    if (cfg_.record_convergence) {
      core::ConvergencePoint pt;
      pt.generation = generation;
      pt.ul_evaluations = eval.ul_evaluations() - ul_start;
      pt.ll_evaluations = eval.ll_evaluations() - ll_start;
      pt.best_ul_so_far = result.best_ul_objective;
      pt.best_gap_so_far = result.best_gap;
      pt.current_best_ul = cur_best;
      pt.current_mean_gap = gaps.count() ? gaps.mean() : 0.0;
      pt.phase = "codba";
      result.convergence.push_back(std::move(pt));
    }

    // UL variation on the (partially updated) fitness.
    std::vector<bcpop::Pricing> next;
    next.reserve(ul_pop.size());
    while (next.size() < ul_pop.size()) {
      const std::size_t ia = ea::binary_tournament(rng, ul_fitness, true);
      const std::size_t ib = ea::binary_tournament(rng, ul_fitness, true);
      bcpop::Pricing a = ul_pop[ia];
      bcpop::Pricing b = ul_pop[ib];
      if (rng.chance(cfg_.ul_crossover_prob)) {
        ea::sbx_crossover(rng, a, b, bounds, cfg_.sbx);
      }
      if (rng.chance(cfg_.ul_mutation_prob)) {
        ea::polynomial_mutation(rng, a, bounds, cfg_.mutation);
      }
      if (rng.chance(cfg_.ul_mutation_prob)) {
        ea::polynomial_mutation(rng, b, bounds, cfg_.mutation);
      }
      next.push_back(std::move(a));
      if (next.size() < ul_pop.size()) next.push_back(std::move(b));
    }
    // Keep the archive elites alive.
    const std::size_t reinject = std::min<std::size_t>(
        {std::size_t{3}, archive.size(), next.size()});
    for (std::size_t r = 0; r < reinject; ++r) {
      next[next.size() - 1 - r] = archive.at(r).item.pricing;
    }
    ul_pop = std::move(next);
    ++generation;
  }

  result.generations = generation;
  result.ul_evaluations = eval.ul_evaluations() - ul_start;
  result.ll_evaluations = eval.ll_evaluations() - ll_start;
  if (!std::isfinite(result.best_ul_objective)) result.best_ul_objective = 0.0;
  if (!std::isfinite(result.best_gap)) result.best_gap = 1e9;
  return result;
}

}  // namespace carbon::baselines

#include "carbon/common/task_scheduler.hpp"

#include <chrono>

namespace carbon::common {

namespace {

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  return threads == 0 ? 1 : threads;
}

std::uint64_t xorshift64(std::uint64_t x) noexcept {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

long long ns_between(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

}  // namespace

TaskScheduler::TaskScheduler(std::size_t threads)
    : deques_(resolve_threads(threads) + 1) {
  const std::size_t workers = deques_.size() - 1;
  workers_.reserve(workers);
  for (std::size_t k = 0; k < workers; ++k) {
    workers_.emplace_back([this, k] { worker_loop(k + 1); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void TaskScheduler::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t participants = deques_.size();
  if (n == 1 || participants == 1) {
    // Nothing to distribute: run on the calling thread without touching the
    // mutex or waking anyone. Every job still runs before the first
    // exception (serial, so "lowest index" is simply the first one).
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(0, i);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    stats_.tasks += static_cast<long long>(n);
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    return;
  }

  // Deal contiguous blocks before anyone wakes: participant k owns
  // [n*k/p, n*(k+1)/p), so no deque is ever pushed to concurrently.
  for (std::size_t k = 0; k < participants; ++k) {
    Deque& d = deques_[k];
    const std::size_t lo = n * k / participants;
    const std::size_t hi = n * (k + 1) / participants;
    d.base = lo;
    d.top.store(0);
    d.bottom.store(static_cast<std::int64_t>(hi - lo));
    d.tasks = 0;
    d.steals = 0;
    d.idle_ns = 0;
    d.first_error_index = -1;
    d.first_error = nullptr;
    d.rng = (0x9e3779b97f4a7c15ULL * (k + 1)) ^ (epoch_ + 1);
  }
  remaining_.store(n);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    active_.store(participants - 1);
    ++epoch_;
  }
  cv_.notify_all();

  run_participant(0);

  // Barrier: wait for every worker to leave the batch so their counters
  // and error slots are quiescent before the merge below reads them. The
  // last worker out notifies under the mutex.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return active_.load() == 0; });
    job_ = nullptr;
  }

  std::int64_t error_index = -1;
  std::exception_ptr error;
  for (Deque& d : deques_) {
    stats_.tasks += d.tasks;
    stats_.steals += d.steals;
    stats_.idle_ns += d.idle_ns;
    if (d.first_error_index >= 0 &&
        (error_index < 0 || d.first_error_index < error_index)) {
      error_index = d.first_error_index;
      error = d.first_error;
    }
    d.first_error = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void TaskScheduler::worker_loop(std::size_t participant) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) {
        return;
      }
      seen_epoch = epoch_;
    }
    run_participant(participant);
    if (active_.fetch_sub(1) == 1) {
      // Last worker out: the caller may be parked on the barrier. Taking
      // the mutex before notifying closes the check-then-wait window.
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
  }
}

void TaskScheduler::run_participant(std::size_t participant) {
  Deque& self = deques_[participant];
  const std::size_t participants = deques_.size();
  std::size_t index = 0;
  for (;;) {
    while (pop_own(self, &index)) {
      execute(self, index, participant);
    }
    if (remaining_.load() == 0) {
      return;
    }
    // One sweep over the other participants, starting at a random victim.
    // Success executes the stolen job and re-enters the loop; a fully
    // failed sweep counts as idle time and yields the core — on
    // oversubscribed machines the owner of the remaining work needs the
    // timeslice more than this thread needs another sweep.
    const auto sweep_start = std::chrono::steady_clock::now();
    self.rng = xorshift64(self.rng);
    bool stole = false;
    for (std::size_t a = 0; a < participants && !stole; ++a) {
      const std::size_t victim = (self.rng + a) % participants;
      if (victim == participant) {
        continue;
      }
      if (steal_from(deques_[victim], &index)) {
        ++self.steals;
        execute(self, index, participant);
        stole = true;
      }
    }
    if (!stole) {
      self.idle_ns +=
          ns_between(sweep_start, std::chrono::steady_clock::now());
      if (remaining_.load() == 0) {
        return;
      }
      std::this_thread::yield();
    }
  }
}

void TaskScheduler::execute(Deque& self, std::size_t index,
                            std::size_t participant) {
  try {
    (*job_)(participant, index);
  } catch (...) {
    const auto i = static_cast<std::int64_t>(index);
    if (self.first_error_index < 0 || i < self.first_error_index) {
      self.first_error_index = i;
      self.first_error = std::current_exception();
    }
  }
  ++self.tasks;
  remaining_.fetch_sub(1);
}

bool TaskScheduler::pop_own(Deque& d, std::size_t* out) noexcept {
  const std::int64_t b = d.bottom.load() - 1;
  d.bottom.store(b);
  std::int64_t t = d.top.load();
  if (t <= b) {
    *out = d.base + static_cast<std::size_t>(b);
    if (t == b) {
      // Last element: race one thief for it via the top CAS.
      const bool won = d.top.compare_exchange_strong(t, t + 1);
      d.bottom.store(b + 1);
      return won;
    }
    return true;
  }
  d.bottom.store(b + 1);  // deque was empty; undo the reservation
  return false;
}

bool TaskScheduler::steal_from(Deque& victim, std::size_t* out) noexcept {
  std::int64_t t = victim.top.load();
  const std::int64_t b = victim.bottom.load();
  if (t >= b) {
    return false;
  }
  // Slot t's index is derivable from base (nothing is pushed mid-batch, so
  // it cannot be overwritten); the CAS decides whether we actually own it.
  const std::size_t index = victim.base + static_cast<std::size_t>(t);
  if (!victim.top.compare_exchange_strong(t, t + 1)) {
    return false;
  }
  *out = index;
  return true;
}

}  // namespace carbon::common

#include "carbon/common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace carbon::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  RunningStats rs;
  for (double x : v) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = v.front();
  s.max = v.back();
  s.q1 = quantile_sorted(v, 0.25);
  s.median = quantile_sorted(v, 0.5);
  s.q3 = quantile_sorted(v, 0.75);
  return s;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

RankSumResult rank_sum_test(std::span<const double> a,
                            std::span<const double> b) {
  RankSumResult out;
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  if (na == 0 || nb == 0) return out;

  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(na + nb);
  for (double x : a) all.push_back({x, true});
  for (double x : b) all.push_back({x, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& l, const Tagged& r) { return l.value < r.value; });

  // Midranks with tie bookkeeping for the variance correction.
  const std::size_t n = all.size();
  std::vector<double> ranks(n);
  double tie_correction = 0.0;
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j + 1 < n && all[j + 1].value == all[i].value) ++j;
    const double midrank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[k] = midrank;
    const double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    i = j + 1;
  }

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (all[i].from_a) rank_sum_a += ranks[i];
  }

  const double dn_a = static_cast<double>(na);
  const double dn_b = static_cast<double>(nb);
  const double u_a = rank_sum_a - dn_a * (dn_a + 1.0) / 2.0;
  out.u_statistic = u_a;

  const double mu = dn_a * dn_b / 2.0;
  const double dn = dn_a + dn_b;
  double sigma2 = dn_a * dn_b / 12.0 *
                  ((dn + 1.0) - tie_correction / (dn * (dn - 1.0)));
  if (sigma2 <= 0.0) {
    // All observations tied: no evidence either way.
    out.z = 0.0;
    out.p_value = 1.0;
    out.rank_biserial = 0.0;
    return out;
  }
  const double sigma = std::sqrt(sigma2);
  // Continuity correction toward the mean.
  double num = u_a - mu;
  if (num > 0.5) {
    num -= 0.5;
  } else if (num < -0.5) {
    num += 0.5;
  } else {
    num = 0.0;
  }
  out.z = num / sigma;
  out.p_value = 2.0 * (1.0 - normal_cdf(std::abs(out.z)));
  out.p_value = std::clamp(out.p_value, 0.0, 1.0);
  out.rank_biserial = 2.0 * u_a / (dn_a * dn_b) - 1.0;
  return out;
}

}  // namespace carbon::common

#include "carbon/common/rng.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace carbon::common {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Selection sampling (Knuth 3.4.2 algorithm S): O(n), uniform.
    std::size_t seen = 0;
    std::size_t chosen = 0;
    for (std::size_t i = 0; i < n && chosen < k; ++i) {
      const auto remaining_pool = static_cast<double>(n - seen);
      const auto remaining_need = static_cast<double>(k - chosen);
      if (uniform() * remaining_pool < remaining_need) {
        out.push_back(i);
        ++chosen;
      }
      ++seen;
    }
    return out;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<std::size_t> picked;
  picked.reserve(k * 2);
  while (picked.size() < k) {
    picked.insert(static_cast<std::size_t>(below(n)));
  }
  out.assign(picked.begin(), picked.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace carbon::common

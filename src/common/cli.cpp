#include "carbon/common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace carbon::common {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

namespace {

[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("--" + name + ": expected " + expected +
                              ", got '" + value + "'");
}

}  // namespace

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& value = it->second;
  std::size_t consumed = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(value, &consumed);
  } catch (const std::exception&) {
    bad_value(name, value, "an integer");
  }
  // Require the whole token to parse: "--threads 4x" is an error, not 4.
  if (consumed != value.size()) bad_value(name, value, "an integer");
  return parsed;
}

long long CliArgs::get_positive_int(const std::string& name,
                                    long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;  // caller-chosen default is trusted
  const long long parsed = get_int(name, fallback);
  if (parsed <= 0) bad_value(name, it->second, "a positive integer");
  return parsed;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& value = it->second;
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    bad_value(name, value, "a number");
  }
  if (consumed != value.size()) bad_value(name, value, "a number");
  return parsed;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace carbon::common

#include "carbon/common/csv.hpp"

#include <iomanip>
#include <sstream>

namespace carbon::common {

bool CsvWriter::needs_quoting(std::string_view v) {
  return v.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string CsvWriter::quoted(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& n : names) field(n);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view value) {
  row_.emplace_back(needs_quoting(value) ? quoted(value) : std::string(value));
  return *this;
}

CsvWriter& CsvWriter::number(double value, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << value;
  row_.push_back(ss.str());
  return *this;
}

CsvWriter& CsvWriter::integer(long long value) {
  row_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  for (std::size_t i = 0; i < row_.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << row_[i];
  }
  *out_ << '\n';
  row_.clear();
}

}  // namespace carbon::common

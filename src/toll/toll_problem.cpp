#include "carbon/toll/toll_problem.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace carbon::toll {

Problem::Problem(graph::Digraph network, std::vector<graph::ArcId> tollable,
                 std::vector<Commodity> commodities, double toll_cap)
    : network_(std::move(network)),
      tollable_(std::move(tollable)),
      commodities_(std::move(commodities)),
      toll_cap_(toll_cap) {
  if (toll_cap_ < 0.0) {
    throw std::invalid_argument("toll::Problem: toll_cap must be >= 0");
  }
  for (const graph::ArcId a : tollable_) {
    if (a >= network_.num_arcs()) {
      throw std::invalid_argument("toll::Problem: tollable arc out of range");
    }
  }
  for (const Commodity& c : commodities_) {
    if (c.origin >= network_.num_nodes() ||
        c.destination >= network_.num_nodes()) {
      throw std::invalid_argument("toll::Problem: commodity endpoint bad");
    }
    if (c.demand <= 0.0) {
      throw std::invalid_argument("toll::Problem: demand must be > 0");
    }
  }
  bounds_.assign(tollable_.size(), ea::Bounds{0.0, toll_cap_});
}

Evaluation evaluate(const Problem& problem, std::span<const double> tolls) {
  if (tolls.size() != problem.tollable_arcs().size()) {
    throw std::invalid_argument("toll::evaluate: one toll per tollable arc");
  }

  // Tolled copy of the network. (Networks are small; copying keeps the
  // evaluation const-correct and thread-safe per caller.)
  graph::Digraph net = problem.network();
  std::unordered_map<graph::ArcId, std::size_t> toll_index;
  for (std::size_t i = 0; i < tolls.size(); ++i) {
    const graph::ArcId a = problem.tollable_arcs()[i];
    if (tolls[i] < 0.0) {
      throw std::invalid_argument("toll::evaluate: negative toll");
    }
    net.set_weight(a, problem.network().arc(a).weight + tolls[i]);
    toll_index.emplace(a, i);
  }

  Evaluation out;
  out.toll_arc_flow.assign(tolls.size(), 0.0);
  out.all_routable = true;

  // One Dijkstra per distinct origin (commodities often share origins).
  std::map<graph::NodeId, graph::ShortestPaths> by_origin;
  for (const Commodity& c : problem.commodities()) {
    auto it = by_origin.find(c.origin);
    if (it == by_origin.end()) {
      it = by_origin.emplace(c.origin, graph::dijkstra(net, c.origin)).first;
    }
    const graph::ShortestPaths& paths = it->second;
    if (!paths.reachable(c.destination)) {
      out.all_routable = false;
      continue;
    }
    out.travel_cost += c.demand * paths.distance[c.destination];
    for (const graph::ArcId a :
         graph::extract_path(paths, net, c.destination)) {
      const auto toll_it = toll_index.find(a);
      if (toll_it == toll_index.end()) continue;
      const std::size_t i = toll_it->second;
      out.revenue += c.demand * tolls[i];
      out.toll_arc_flow[i] += c.demand;
    }
  }
  return out;
}

Problem make_grid_problem(const GridConfig& config) {
  if (config.rows < 2 || config.cols < 2) {
    throw std::invalid_argument("make_grid_problem: grid at least 2x2");
  }
  common::Rng rng(config.seed);
  const std::size_t n = config.rows * config.cols;
  graph::Digraph g(n);
  const auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<graph::NodeId>(r * config.cols + c);
  };

  std::vector<graph::ArcId> all_arcs;
  const auto connect = [&](graph::NodeId a, graph::NodeId b) {
    const double w1 = rng.uniform(config.min_cost, config.max_cost);
    const double w2 = rng.uniform(config.min_cost, config.max_cost);
    all_arcs.push_back(g.add_arc(a, b, w1));
    all_arcs.push_back(g.add_arc(b, a, w2));
  };
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t c = 0; c < config.cols; ++c) {
      if (c + 1 < config.cols) connect(id(r, c), id(r, c + 1));
      if (r + 1 < config.rows) connect(id(r, c), id(r + 1, c));
    }
  }

  // Tollable subset (at least one arc).
  std::vector<graph::ArcId> tollable;
  for (const graph::ArcId a : all_arcs) {
    if (rng.chance(config.tollable_fraction)) tollable.push_back(a);
  }
  if (tollable.empty()) tollable.push_back(all_arcs.front());

  // Commodities with distinct random endpoints.
  std::vector<Commodity> commodities;
  for (std::size_t k = 0; k < config.num_commodities; ++k) {
    Commodity c;
    c.origin = static_cast<graph::NodeId>(rng.below(n));
    do {
      c.destination = static_cast<graph::NodeId>(rng.below(n));
    } while (c.destination == c.origin);
    c.demand = rng.uniform(config.min_demand, config.max_demand);
    commodities.push_back(c);
  }

  return Problem(std::move(g), std::move(tollable), std::move(commodities),
                 config.toll_cap);
}

GaResult solve_with_ga(const Problem& problem, const GaConfig& config) {
  if (config.population_size < 2) {
    throw std::invalid_argument("toll::solve_with_ga: population >= 2");
  }
  common::Rng rng(config.seed);
  const auto bounds = problem.toll_bounds();

  std::vector<std::vector<double>> pop;
  for (std::size_t i = 0; i < config.population_size; ++i) {
    pop.push_back(ea::random_real_vector(rng, bounds));
  }
  std::vector<double> fitness(pop.size(), 0.0);

  GaResult result;
  double best_revenue = -1.0;
  for (int gen = 0; gen < config.generations; ++gen) {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const Evaluation e = evaluate(problem, pop[i]);
      fitness[i] = e.revenue;
      if (e.revenue > best_revenue) {
        best_revenue = e.revenue;
        result.best_tolls = pop[i];
        result.best_evaluation = e;
      }
    }
    result.history.push_back(best_revenue);

    std::vector<std::vector<double>> next;
    next.reserve(pop.size());
    next.push_back(result.best_tolls);  // elitism
    while (next.size() < pop.size()) {
      const std::size_t ia = ea::binary_tournament(rng, fitness, true);
      const std::size_t ib = ea::binary_tournament(rng, fitness, true);
      std::vector<double> a = pop[ia];
      std::vector<double> b = pop[ib];
      if (rng.chance(config.crossover_prob)) {
        ea::sbx_crossover(rng, a, b, bounds, config.sbx);
      }
      if (rng.chance(config.mutation_prob)) {
        ea::polynomial_mutation(rng, a, bounds, config.mutation);
      }
      if (rng.chance(config.mutation_prob)) {
        ea::polynomial_mutation(rng, b, bounds, config.mutation);
      }
      next.push_back(std::move(a));
      if (next.size() < pop.size()) next.push_back(std::move(b));
    }
    pop = std::move(next);
  }
  return result;
}

}  // namespace carbon::toll

#include "carbon/cobra/cobra_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/ea/archive.hpp"

namespace carbon::cobra {

namespace {

struct ArchivedSolution {
  bcpop::Pricing pricing;
  std::vector<std::uint8_t> basket;
  bcpop::Evaluation evaluation;
};

using Basket = std::vector<std::uint8_t>;

}  // namespace

namespace {

void validate_config(const CobraConfig& cfg) {
  if (cfg.ul_population_size < 2 || cfg.ll_population_size < 2) {
    throw std::invalid_argument("CobraSolver: population sizes must be >= 2");
  }
  if (cfg.upper_phase_generations < 1 || cfg.lower_phase_generations < 1) {
    throw std::invalid_argument("CobraSolver: phase generations must be >= 1");
  }
}

}  // namespace

CobraSolver::CobraSolver(const bcpop::Instance& instance, CobraConfig config)
    : inst_(&instance), cfg_(std::move(config)) {
  validate_config(cfg_);
}

CobraSolver::CobraSolver(bcpop::EvaluatorInterface& evaluator,
                         CobraConfig config)
    : external_(&evaluator), cfg_(std::move(config)) {
  validate_config(cfg_);
}

core::RunResult CobraSolver::run() {
  if (external_ != nullptr) return run_with(*external_);
  if (cfg_.eval_threads != 1) {
    bcpop::ParallelEvaluator par(*inst_, cfg_.eval_threads);
    par.set_compiled_scoring(cfg_.compiled_scoring);
    return run_with(par);
  }
  bcpop::Evaluator own(*inst_);
  own.set_compiled_scoring(cfg_.compiled_scoring);
  return run_with(own);
}

core::RunResult CobraSolver::run_with(bcpop::EvaluatorInterface& eval) {
  common::Rng rng(cfg_.seed);
  const auto bounds = eval.price_bounds();
  const std::size_t num_bundles = eval.genome_length();
  const long long ul_start = eval.ul_evaluations();
  const long long ll_start = eval.ll_evaluations();

  // --- Initial populations (Algorithm 1 lines 1-3) ---
  std::vector<bcpop::Pricing> ul_pop;
  for (std::size_t i = 0; i < cfg_.ul_population_size; ++i) {
    ul_pop.push_back(ea::random_real_vector(rng, bounds));
  }
  std::vector<Basket> ll_pop;
  for (std::size_t i = 0; i < cfg_.ll_population_size; ++i) {
    ll_pop.push_back(
        ea::random_binary_vector(rng, num_bundles, cfg_.ll_init_density));
  }

  // Upper archive keyed by F (max); lower archive keyed by f (min) — the
  // paper extracts results from the lower archive.
  ea::Archive<ArchivedSolution> upper_archive(cfg_.ul_archive_size, true);
  ea::Archive<ArchivedSolution> lower_archive(cfg_.ll_archive_size, false);

  core::RunResult result;
  result.best_gap = std::numeric_limits<double>::infinity();
  result.best_ul_objective = -std::numeric_limits<double>::infinity();

  std::vector<double> ul_fitness(ul_pop.size(), 0.0);
  std::vector<double> ll_fitness(ll_pop.size(), 0.0);

  // Current champions used for pairing across levels.
  Basket paired_basket = ll_pop[0];
  bcpop::Pricing paired_pricing = ul_pop[0];

  const auto note_solution = [&](const bcpop::Pricing& x, const Basket& y,
                                 const bcpop::Evaluation& e) {
    upper_archive.add({x, y, e}, e.ul_objective);
    lower_archive.add({x, y, e}, e.ll_objective);
    if (e.ll_feasible) {
      result.best_gap = std::min(result.best_gap, e.gap_percent);
      if (e.ul_objective > result.best_ul_objective) {
        result.best_ul_objective = e.ul_objective;
        result.best_pricing = x;
        result.best_evaluation = e;
      }
    }
  };

  const auto budget_left = [&] {
    return eval.ul_evaluations() - ul_start < cfg_.ul_eval_budget &&
           eval.ll_evaluations() - ll_start < cfg_.ll_eval_budget;
  };

  const auto record = [&](int generation, const char* phase,
                          double current_best_ul, double current_mean_gap) {
    if (!cfg_.record_convergence) return;
    core::ConvergencePoint pt;
    pt.generation = generation;
    pt.ul_evaluations = eval.ul_evaluations() - ul_start;
    pt.ll_evaluations = eval.ll_evaluations() - ll_start;
    pt.best_ul_so_far = result.best_ul_objective;
    pt.best_gap_so_far = result.best_gap;
    pt.current_best_ul = current_best_ul;
    pt.current_mean_gap = current_mean_gap;
    pt.phase = phase;
    result.convergence.push_back(std::move(pt));
  };

  int generation = 0;
  while (budget_left()) {
    // ================= Upper improvement phase =================
    for (int g = 0; g < cfg_.upper_phase_generations && budget_left(); ++g) {
      double cur_best = -std::numeric_limits<double>::infinity();
      common::RunningStats gaps;
      std::vector<bcpop::SelectionJob> jobs;
      jobs.reserve(ul_pop.size());
      for (const bcpop::Pricing& x : ul_pop) {
        jobs.push_back({x, paired_basket, bcpop::EvalPurpose::kBoth});
      }
      std::vector<bcpop::Evaluation> evals =
          eval.evaluate_selection_batch(jobs);
      for (std::size_t i = 0; i < ul_pop.size(); ++i) {
        const bcpop::Evaluation& e = evals[i];
        ul_fitness[i] = e.ul_objective;
        cur_best = std::max(cur_best, e.ul_objective);
        gaps.add(e.gap_percent);
        note_solution(ul_pop[i], paired_basket, e);
      }
      record(generation, "upper", cur_best, gaps.mean());
      ++generation;

      // Selection + variation (same GA as CARBON's upper level).
      std::vector<bcpop::Pricing> next;
      next.reserve(ul_pop.size());
      while (next.size() < ul_pop.size()) {
        const std::size_t ia = ea::binary_tournament(rng, ul_fitness, true);
        const std::size_t ib = ea::binary_tournament(rng, ul_fitness, true);
        bcpop::Pricing a = ul_pop[ia];
        bcpop::Pricing b = ul_pop[ib];
        if (rng.chance(cfg_.ul_crossover_prob)) {
          ea::sbx_crossover(rng, a, b, bounds, cfg_.sbx);
        }
        if (rng.chance(cfg_.ul_mutation_prob)) {
          ea::polynomial_mutation(rng, a, bounds, cfg_.mutation);
        }
        if (rng.chance(cfg_.ul_mutation_prob)) {
          ea::polynomial_mutation(rng, b, bounds, cfg_.mutation);
        }
        next.push_back(std::move(a));
        if (next.size() < ul_pop.size()) next.push_back(std::move(b));
      }
      ul_pop = std::move(next);
    }
    // Champion pricing for the lower phase.
    if (!upper_archive.empty()) {
      paired_pricing = upper_archive.best().item.pricing;
    }

    // ================= Lower improvement phase =================
    for (int g = 0; g < cfg_.lower_phase_generations && budget_left(); ++g) {
      double cur_best = -std::numeric_limits<double>::infinity();
      common::RunningStats gaps;
      std::vector<bcpop::SelectionJob> jobs;
      jobs.reserve(ll_pop.size());
      for (const Basket& y : ll_pop) {
        jobs.push_back({paired_pricing, y, bcpop::EvalPurpose::kBoth});
      }
      std::vector<bcpop::Evaluation> evals =
          eval.evaluate_selection_batch(jobs);
      for (std::size_t i = 0; i < ll_pop.size(); ++i) {
        const bcpop::Evaluation& e = evals[i];
        ll_fitness[i] = e.ll_objective;  // minimize customer cost
        cur_best = std::max(cur_best, e.ul_objective);
        gaps.add(e.gap_percent);
        note_solution(paired_pricing, ll_pop[i], e);
      }
      record(generation, "lower", cur_best, gaps.mean());
      ++generation;

      std::vector<Basket> next;
      next.reserve(ll_pop.size());
      while (next.size() < ll_pop.size()) {
        const std::size_t ia = ea::binary_tournament(rng, ll_fitness, false);
        const std::size_t ib = ea::binary_tournament(rng, ll_fitness, false);
        Basket a = ll_pop[ia];
        Basket b = ll_pop[ib];
        if (rng.chance(cfg_.ll_crossover_prob)) {
          ea::two_point_crossover(rng, a, b);
        }
        ea::swap_mutation(rng, a, cfg_.ll_mutation_prob);
        ea::swap_mutation(rng, b, cfg_.ll_mutation_prob);
        next.push_back(std::move(a));
        if (next.size() < ll_pop.size()) next.push_back(std::move(b));
      }
      ll_pop = std::move(next);
    }
    // Champion basket for the next upper phase.
    if (!lower_archive.empty()) {
      paired_basket = lower_archive.best().item.basket;
    }

    // ================= Coevolution operator =================
    // Kept serial: the legacy loop re-checks budget_left() between
    // individual pairs, which a batch cannot replicate for an arbitrary
    // evaluator; the operator is only ~coevolution_pairs evals per round.
    if (budget_left()) {
      double cur_best = -std::numeric_limits<double>::infinity();
      common::RunningStats gaps;
      for (std::size_t p = 0; p < cfg_.coevolution_pairs && budget_left();
           ++p) {
        const bcpop::Pricing& x = ul_pop[rng.below(ul_pop.size())];
        const Basket& y = ll_pop[rng.below(ll_pop.size())];
        const bcpop::Evaluation e = eval.evaluate_with_selection(x, y);
        cur_best = std::max(cur_best, e.ul_objective);
        gaps.add(e.gap_percent);
        note_solution(x, y, e);
      }
      record(generation, "coevolution", cur_best, gaps.mean());
      ++generation;
    }

    // ================= Archive re-injection (line 9) =================
    const std::size_t ru =
        std::min({cfg_.archive_reinjection, upper_archive.size(),
                  ul_pop.size()});
    for (std::size_t r = 0; r < ru; ++r) {
      ul_pop[ul_pop.size() - 1 - r] = upper_archive.at(r).item.pricing;
    }
    const std::size_t rl =
        std::min({cfg_.archive_reinjection, lower_archive.size(),
                  ll_pop.size()});
    for (std::size_t r = 0; r < rl; ++r) {
      ll_pop[ll_pop.size() - 1 - r] = lower_archive.at(r).item.basket;
    }
  }

  result.generations = generation;
  result.ul_evaluations = eval.ul_evaluations() - ul_start;
  result.ll_evaluations = eval.ll_evaluations() - ll_start;
  if (!std::isfinite(result.best_ul_objective)) result.best_ul_objective = 0.0;
  if (!std::isfinite(result.best_gap)) result.best_gap = 1e9;
  return result;
}

}  // namespace carbon::cobra

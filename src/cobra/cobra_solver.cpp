#include "carbon/cobra/cobra_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/ea/archive.hpp"

namespace carbon::cobra {

namespace {

struct ArchivedSolution {
  bcpop::Pricing pricing;
  std::vector<std::uint8_t> basket;
  bcpop::Evaluation evaluation;
};

using Basket = std::vector<std::uint8_t>;

/// Backend counters accumulated since run() entry (the evaluator may be
/// external and carry history from earlier runs).
obs::JournalBackendStats backend_delta(const bcpop::BackendStats& now,
                                       const bcpop::BackendStats& start) {
  obs::JournalBackendStats d;
  d.relaxation_cache_hits =
      now.relaxation_cache_hits - start.relaxation_cache_hits;
  d.relaxation_cache_misses =
      now.relaxation_cache_misses - start.relaxation_cache_misses;
  d.relaxation_cache_evictions =
      now.relaxation_cache_evictions - start.relaxation_cache_evictions;
  d.heuristic_dedup_hits =
      now.heuristic_dedup_hits - start.heuristic_dedup_hits;
  d.score_cache_hits = now.score_cache_hits - start.score_cache_hits;
  d.score_cache_evictions =
      now.score_cache_evictions - start.score_cache_evictions;
  d.guard_trips = now.guard_trips - start.guard_trips;
  d.guard_degraded_evals =
      now.guard_degraded_evals - start.guard_degraded_evals;
  d.guard_budget_exhausted =
      now.guard_budget_exhausted - start.guard_budget_exhausted;
  d.lp_family_rebinds = now.lp_family_rebinds - start.lp_family_rebinds;
  d.lp_warm_start_rejects =
      now.lp_warm_start_rejects - start.lp_warm_start_rejects;
  d.lp_pool_hits = now.lp_pool_hits - start.lp_pool_hits;
  d.lp_pool_rejects = now.lp_pool_rejects - start.lp_pool_rejects;
  d.lp_pivots_saved = now.lp_pivots_saved - start.lp_pivots_saved;
  return d;
}

}  // namespace

namespace {

void validate_config(const CobraConfig& cfg) {
  if (cfg.ul_population_size < 2 || cfg.ll_population_size < 2) {
    throw std::invalid_argument("CobraSolver: population sizes must be >= 2");
  }
  if (cfg.upper_phase_generations < 1 || cfg.lower_phase_generations < 1) {
    throw std::invalid_argument("CobraSolver: phase generations must be >= 1");
  }
  if (cfg.checkpoint.every < 0) {
    throw std::invalid_argument("CobraSolver: checkpoint.every must be >= 0");
  }
  if (cfg.checkpoint.every > 0 && cfg.checkpoint.path.empty()) {
    throw std::invalid_argument(
        "CobraSolver: checkpoint.path required when checkpoint.every > 0");
  }
  guard::validate(cfg.guard);
}

}  // namespace

CobraSolver::CobraSolver(const bcpop::Instance& instance, CobraConfig config)
    : inst_(&instance), cfg_(std::move(config)) {
  validate_config(cfg_);
}

CobraSolver::CobraSolver(bcpop::EvaluatorInterface& evaluator,
                         CobraConfig config)
    : external_(&evaluator), cfg_(std::move(config)) {
  validate_config(cfg_);
}

core::RunResult CobraSolver::run() {
  if (external_ != nullptr) return run_with(*external_);
  // Pool mode always routes through the parallel evaluator — it owns the
  // staged basis-pool discipline — even at eval_threads == 1.
  if (cfg_.eval_threads != 1 || cfg_.lp_warm == bcpop::LpWarm::kPool) {
    // Two generations of UL pricing bases must fit, or mid-generation LRU
    // evictions reap the parents the rest of the batch is about to warm-
    // start from (see CarbonSolver::run for the full argument).
    const std::size_t pool_cap =
        std::max<std::size_t>(bcpop::BasisPool::kDefaultCapacity,
                              2 * cfg_.ul_population_size);
    bcpop::ParallelEvaluator par(
        *inst_,
        bcpop::ParallelEvaluator::Options{.threads = cfg_.eval_threads,
                                          .sched = cfg_.sched,
                                          .memo_xgen = cfg_.memo_xgen,
                                          .lp_warm = cfg_.lp_warm,
                                          .basis_pool_capacity = pool_cap});
    par.set_compiled_scoring(cfg_.compiled_scoring);
    return run_with(par);
  }
  bcpop::Evaluator own(*inst_);
  own.set_compiled_scoring(cfg_.compiled_scoring);
  own.set_memo_xgen(cfg_.memo_xgen);
  return run_with(own);
}

core::RunResult CobraSolver::run_with(bcpop::EvaluatorInterface& eval) {
  // Load (and fully validate) any resume checkpoint before touching solver
  // or telemetry state, so a bad file rejects with nothing applied.
  const bool resuming = !cfg_.checkpoint.resume_from.empty();
  core::CobraCheckpoint ck;
  if (resuming) {
    ck = core::CobraCheckpoint::load(cfg_.checkpoint.resume_from);
    if (ck.seed != cfg_.seed) {
      throw core::CheckpointError("checkpoint: seed mismatch (file " +
                                  std::to_string(ck.seed) + ", config " +
                                  std::to_string(cfg_.seed) + ")");
    }
    if (ck.ul_pop.size() != cfg_.ul_population_size ||
        ck.ll_pop.size() != cfg_.ll_population_size) {
      throw core::CheckpointError(
          "checkpoint: population shape does not match the configured run");
    }
  }

  common::Rng rng(cfg_.seed);
  const auto bounds = eval.price_bounds();
  const std::size_t num_bundles = eval.genome_length();
  long long ul_start = eval.ul_evaluations();
  long long ll_start = eval.ll_evaluations();

  // Telemetry is pure observation: nothing below reads it back, so the
  // trajectory is bit-identical whether or not sinks are attached.
  obs::MetricsRegistry* const metrics = cfg_.telemetry.metrics;
  obs::RunJournal* const journal = cfg_.telemetry.journal;
  if (metrics != nullptr) eval.set_metrics(metrics);
  bcpop::BackendStats backend_start = eval.backend_stats();
  if (journal != nullptr) {
    journal->begin_run("cobra", cfg_.seed, cfg_.eval_threads,
                       cfg_.compiled_scoring);
  }

  // --- Initial populations (Algorithm 1 lines 1-3; skipped on resume: the
  // checkpoint carries the populations and the RNG state that already
  // consumed this entropy) ---
  std::vector<bcpop::Pricing> ul_pop;
  std::vector<Basket> ll_pop;
  if (!resuming) {
    for (std::size_t i = 0; i < cfg_.ul_population_size; ++i) {
      ul_pop.push_back(ea::random_real_vector(rng, bounds));
    }
    for (std::size_t i = 0; i < cfg_.ll_population_size; ++i) {
      ll_pop.push_back(
          ea::random_binary_vector(rng, num_bundles, cfg_.ll_init_density));
    }
  } else {
    ul_pop = std::move(ck.ul_pop);
    ll_pop = std::move(ck.ll_pop);
  }

  // Upper archive keyed by F (max); lower archive keyed by f (min) — the
  // paper extracts results from the lower archive.
  ea::Archive<ArchivedSolution> upper_archive(cfg_.ul_archive_size, true);
  ea::Archive<ArchivedSolution> lower_archive(cfg_.ll_archive_size, false);

  core::RunResult result;
  result.best_gap = std::numeric_limits<double>::infinity();
  result.best_ul_objective = -std::numeric_limits<double>::infinity();

  std::vector<double> ul_fitness(ul_pop.size(), 0.0);
  std::vector<double> ll_fitness(ll_pop.size(), 0.0);

  // Current champions used for pairing across levels.
  Basket paired_basket = ll_pop[0];
  bcpop::Pricing paired_pricing = ul_pop[0];

  int generation = 0;
  if (resuming) {
    rng.set_state(ck.progress.rng);
    generation = ck.progress.generation;
    // Budgets and backend counters continue from the checkpoint: offset the
    // fresh evaluator's cumulative counters by what the original run had
    // consumed, so `now - start` spans both run segments.
    ul_start = eval.ul_evaluations() - ck.progress.consumed_ul;
    ll_start = eval.ll_evaluations() - ck.progress.consumed_ll;
    backend_start.relaxation_cache_hits -=
        ck.progress.backend.relaxation_cache_hits;
    backend_start.relaxation_cache_misses -=
        ck.progress.backend.relaxation_cache_misses;
    backend_start.relaxation_cache_evictions -=
        ck.progress.backend.relaxation_cache_evictions;
    backend_start.heuristic_dedup_hits -=
        ck.progress.backend.heuristic_dedup_hits;
    backend_start.score_cache_hits -= ck.progress.backend.score_cache_hits;
    backend_start.score_cache_evictions -=
        ck.progress.backend.score_cache_evictions;
    backend_start.guard_trips -= ck.progress.backend.guard_trips;
    backend_start.guard_degraded_evals -=
        ck.progress.backend.guard_degraded_evals;
    backend_start.guard_budget_exhausted -=
        ck.progress.backend.guard_budget_exhausted;
    backend_start.lp_family_rebinds -= ck.progress.backend.lp_family_rebinds;
    backend_start.lp_warm_start_rejects -=
        ck.progress.backend.lp_warm_start_rejects;
    backend_start.lp_pool_hits -= ck.progress.backend.lp_pool_hits;
    backend_start.lp_pool_rejects -= ck.progress.backend.lp_pool_rejects;
    backend_start.lp_pivots_saved -= ck.progress.backend.lp_pivots_saved;
    result = std::move(ck.progress.result);
    // Drop any cache state the (possibly reused) evaluator accumulated
    // before this resume: entries warmed by a different run segment — e.g.
    // under other guard limits or toggles — must not leak into the resumed
    // trajectory. Counters survive; the offsets above rely on them.
    eval.clear_caches();
    // Archives are stored best-first; re-adding in that order reproduces
    // the exact internal ordering (ties keep insertion order).
    for (core::ArchivedPairState& e : ck.upper_archive) {
      upper_archive.add(
          {std::move(e.pricing), std::move(e.basket), std::move(e.evaluation)},
          e.fitness);
    }
    for (core::ArchivedPairState& e : ck.lower_archive) {
      lower_archive.add(
          {std::move(e.pricing), std::move(e.basket), std::move(e.evaluation)},
          e.fitness);
    }
    paired_pricing = std::move(ck.paired_pricing);
    paired_basket = std::move(ck.paired_basket);
    if (journal != nullptr) {
      obs::ResumeRecord rec;
      rec.generation = generation;
      rec.ul_evals = ck.progress.consumed_ul;
      rec.ll_evals = ck.progress.consumed_ll;
      rec.checkpoint_path = cfg_.checkpoint.resume_from;
      journal->write_resume(rec);
    }
  }

  // Guard budgets + injection countdown. ll_start is the evaluator counter
  // reading at run-evaluation #0 (already offset by the resumed segment's
  // consumption), so an injection ordinal counts evaluations of the WHOLE
  // logical run: a trip injected before the checkpoint never re-fires after
  // resume, and one injected after it fires exactly once, at the same
  // evaluation as in the uninterrupted run.
  eval.set_guard(cfg_.guard, ll_start);

  const auto write_checkpoint = [&] {
    core::CobraCheckpoint out;
    out.seed = cfg_.seed;
    out.progress.rng = rng.state();
    out.progress.generation = generation;
    out.progress.consumed_ul = eval.ul_evaluations() - ul_start;
    out.progress.consumed_ll = eval.ll_evaluations() - ll_start;
    out.progress.backend = backend_delta(eval.backend_stats(), backend_start);
    out.progress.result = result;
    out.ul_pop = ul_pop;
    out.ll_pop = ll_pop;
    for (const auto& e : upper_archive.entries()) {
      out.upper_archive.push_back(
          {e.item.pricing, e.item.basket, e.item.evaluation, e.fitness});
    }
    for (const auto& e : lower_archive.entries()) {
      out.lower_archive.push_back(
          {e.item.pricing, e.item.basket, e.item.evaluation, e.fitness});
    }
    out.paired_pricing = paired_pricing;
    out.paired_basket = paired_basket;
    out.save(cfg_.checkpoint.path);
  };
  long long next_checkpoint =
      cfg_.checkpoint.every > 0 ? generation + cfg_.checkpoint.every : 0;

  const auto note_solution = [&](const bcpop::Pricing& x, const Basket& y,
                                 const bcpop::Evaluation& e) {
    upper_archive.add({x, y, e}, e.ul_objective);
    lower_archive.add({x, y, e}, e.ll_objective);
    if (e.ll_feasible) {
      result.best_gap = std::min(result.best_gap, e.gap_percent);
      if (e.ul_objective > result.best_ul_objective) {
        result.best_ul_objective = e.ul_objective;
        result.best_pricing = x;
        result.best_evaluation = e;
      }
    }
  };

  const auto budget_left = [&] {
    return eval.ul_evaluations() - ul_start < cfg_.ul_eval_budget &&
           eval.ll_evaluations() - ll_start < cfg_.ll_eval_budget;
  };

  const auto record = [&](int gen, const char* phase,
                          const common::RunningStats& uls,
                          const common::RunningStats& gaps) {
    if (cfg_.record_convergence) {
      core::ConvergencePoint pt;
      pt.generation = gen;
      pt.ul_evaluations = eval.ul_evaluations() - ul_start;
      pt.ll_evaluations = eval.ll_evaluations() - ll_start;
      pt.best_ul_so_far = result.best_ul_objective;
      pt.best_gap_so_far = result.best_gap;
      pt.current_best_ul = uls.max();
      pt.current_mean_gap = gaps.mean();
      pt.phase = phase;
      result.convergence.push_back(std::move(pt));
    }
    if (journal != nullptr) {
      obs::GenerationRecord rec;
      rec.generation = gen;
      rec.phase = phase;
      rec.best_ul = uls.max();
      rec.mean_ul = uls.mean();
      rec.std_ul = uls.stddev();
      rec.best_gap = gaps.min();
      rec.mean_gap = gaps.mean();
      rec.std_gap = gaps.stddev();
      rec.best_ul_so_far = result.best_ul_objective;
      rec.best_gap_so_far = result.best_gap;
      rec.archive_size = upper_archive.size();
      rec.ll_archive_size = lower_archive.size();
      rec.ul_evals = eval.ul_evaluations() - ul_start;
      rec.ll_evals = eval.ll_evaluations() - ll_start;
      rec.backend = backend_delta(eval.backend_stats(), backend_start);
      journal->write_generation(rec);
    }
  };

  while (budget_left()) {
    // ================= Upper improvement phase =================
    for (int g = 0; g < cfg_.upper_phase_generations && budget_left(); ++g) {
      common::RunningStats uls;
      common::RunningStats gaps;
      std::vector<bcpop::SelectionJob> jobs;
      jobs.reserve(ul_pop.size());
      for (const bcpop::Pricing& x : ul_pop) {
        jobs.push_back({x, paired_basket, bcpop::EvalPurpose::kBoth});
      }
      obs::ScopedTimer batch_timer(metrics, "time/eval_batch");
      std::vector<bcpop::Evaluation> evals =
          eval.evaluate_selection_batch(jobs);
      batch_timer.stop();
      for (std::size_t i = 0; i < ul_pop.size(); ++i) {
        const bcpop::Evaluation& e = evals[i];
        ul_fitness[i] = e.ul_objective;
        uls.add(e.ul_objective);
        gaps.add(e.gap_percent);
        note_solution(ul_pop[i], paired_basket, e);
      }
      record(generation, "upper", uls, gaps);
      ++generation;

      // Selection + variation (same GA as CARBON's upper level).
      std::vector<bcpop::Pricing> next;
      next.reserve(ul_pop.size());
      while (next.size() < ul_pop.size()) {
        obs::ScopedTimer sel_timer(metrics, "time/selection");
        const std::size_t ia = ea::binary_tournament(rng, ul_fitness, true);
        const std::size_t ib = ea::binary_tournament(rng, ul_fitness, true);
        sel_timer.stop();
        bcpop::Pricing a = ul_pop[ia];
        bcpop::Pricing b = ul_pop[ib];
        obs::ScopedTimer var_timer(metrics, "time/variation");
        if (rng.chance(cfg_.ul_crossover_prob)) {
          ea::sbx_crossover(rng, a, b, bounds, cfg_.sbx);
        }
        if (rng.chance(cfg_.ul_mutation_prob)) {
          ea::polynomial_mutation(rng, a, bounds, cfg_.mutation);
        }
        if (rng.chance(cfg_.ul_mutation_prob)) {
          ea::polynomial_mutation(rng, b, bounds, cfg_.mutation);
        }
        var_timer.stop();
        next.push_back(std::move(a));
        if (next.size() < ul_pop.size()) next.push_back(std::move(b));
      }
      ul_pop = std::move(next);
    }
    // Champion pricing for the lower phase.
    if (!upper_archive.empty()) {
      paired_pricing = upper_archive.best().item.pricing;
    }

    // ================= Lower improvement phase =================
    for (int g = 0; g < cfg_.lower_phase_generations && budget_left(); ++g) {
      common::RunningStats uls;
      common::RunningStats gaps;
      std::vector<bcpop::SelectionJob> jobs;
      jobs.reserve(ll_pop.size());
      for (const Basket& y : ll_pop) {
        jobs.push_back({paired_pricing, y, bcpop::EvalPurpose::kBoth});
      }
      obs::ScopedTimer batch_timer(metrics, "time/eval_batch");
      std::vector<bcpop::Evaluation> evals =
          eval.evaluate_selection_batch(jobs);
      batch_timer.stop();
      for (std::size_t i = 0; i < ll_pop.size(); ++i) {
        const bcpop::Evaluation& e = evals[i];
        ll_fitness[i] = e.ll_objective;  // minimize customer cost
        uls.add(e.ul_objective);
        gaps.add(e.gap_percent);
        note_solution(paired_pricing, ll_pop[i], e);
      }
      record(generation, "lower", uls, gaps);
      ++generation;

      std::vector<Basket> next;
      next.reserve(ll_pop.size());
      while (next.size() < ll_pop.size()) {
        obs::ScopedTimer sel_timer(metrics, "time/selection");
        const std::size_t ia = ea::binary_tournament(rng, ll_fitness, false);
        const std::size_t ib = ea::binary_tournament(rng, ll_fitness, false);
        sel_timer.stop();
        Basket a = ll_pop[ia];
        Basket b = ll_pop[ib];
        obs::ScopedTimer var_timer(metrics, "time/variation");
        if (rng.chance(cfg_.ll_crossover_prob)) {
          ea::two_point_crossover(rng, a, b);
        }
        ea::swap_mutation(rng, a, cfg_.ll_mutation_prob);
        ea::swap_mutation(rng, b, cfg_.ll_mutation_prob);
        var_timer.stop();
        next.push_back(std::move(a));
        if (next.size() < ll_pop.size()) next.push_back(std::move(b));
      }
      ll_pop = std::move(next);
    }
    // Champion basket for the next upper phase.
    if (!lower_archive.empty()) {
      paired_basket = lower_archive.best().item.basket;
    }

    // ================= Coevolution operator =================
    // Kept serial: the legacy loop re-checks budget_left() between
    // individual pairs, which a batch cannot replicate for an arbitrary
    // evaluator; the operator is only ~coevolution_pairs evals per round.
    if (budget_left()) {
      common::RunningStats uls;
      common::RunningStats gaps;
      for (std::size_t p = 0; p < cfg_.coevolution_pairs && budget_left();
           ++p) {
        const bcpop::Pricing& x = ul_pop[rng.below(ul_pop.size())];
        const Basket& y = ll_pop[rng.below(ll_pop.size())];
        obs::ScopedTimer pair_timer(metrics, "time/eval_batch");
        const bcpop::Evaluation e = eval.evaluate_with_selection(x, y);
        pair_timer.stop();
        uls.add(e.ul_objective);
        gaps.add(e.gap_percent);
        note_solution(x, y, e);
      }
      record(generation, "coevolution", uls, gaps);
      ++generation;
    }

    // ================= Archive re-injection (line 9) =================
    const std::size_t ru =
        std::min({cfg_.archive_reinjection, upper_archive.size(),
                  ul_pop.size()});
    for (std::size_t r = 0; r < ru; ++r) {
      ul_pop[ul_pop.size() - 1 - r] = upper_archive.at(r).item.pricing;
    }
    const std::size_t rl =
        std::min({cfg_.archive_reinjection, lower_archive.size(),
                  ll_pop.size()});
    for (std::size_t r = 0; r < rl; ++r) {
      ll_pop[ll_pop.size() - 1 - r] = lower_archive.at(r).item.basket;
    }

    // Checkpoint at the outer-round boundary: populations, archives, paired
    // champions, RNG and counters now fully determine the rest of the run.
    if (cfg_.checkpoint.every > 0 && generation >= next_checkpoint) {
      write_checkpoint();
      next_checkpoint = generation + cfg_.checkpoint.every;
      if (cfg_.checkpoint.stop_after_checkpoint &&
          cfg_.checkpoint.stop_after_checkpoint(generation)) {
        // Simulated preemption (fault-injection tests): everything after
        // the write is exactly what a real crash would lose.
        break;
      }
    }
  }

  result.generations = generation;
  result.ul_evaluations = eval.ul_evaluations() - ul_start;
  result.ll_evaluations = eval.ll_evaluations() - ll_start;
  if (!std::isfinite(result.best_ul_objective)) result.best_ul_objective = 0.0;
  if (!std::isfinite(result.best_gap)) result.best_gap = 1e9;
  if (journal != nullptr) {
    obs::RunSummary summary;
    summary.generations = result.generations;
    summary.ul_evals = result.ul_evaluations;
    summary.ll_evals = result.ll_evaluations;
    summary.best_ul = result.best_ul_objective;
    summary.best_gap = result.best_gap;
    summary.backend = backend_delta(eval.backend_stats(), backend_start);
    journal->finish_run(summary);
  }
  return result;
}

}  // namespace carbon::cobra

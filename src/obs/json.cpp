#include "carbon/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace carbon::obs {

// ---- JsonValue accessors ---------------------------------------------------

bool JsonValue::has(std::string_view key) const {
  return kind == Kind::kObject && object.find(std::string(key)) != object.end();
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (kind != Kind::kObject) {
    throw std::runtime_error("JsonValue::at: not an object");
  }
  const auto it = object.find(std::string(key));
  if (it == object.end()) {
    throw std::runtime_error("JsonValue::at: missing key '" +
                             std::string(key) + "'");
  }
  return it->second;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) {
    throw std::runtime_error("JsonValue: not a number");
  }
  return number;
}

long long JsonValue::as_integer() const {
  const double v = as_number();
  const auto i = static_cast<long long>(v);
  if (static_cast<double>(i) != v) {
    throw std::runtime_error("JsonValue: number is not an integer");
  }
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) {
    throw std::runtime_error("JsonValue: not a string");
  }
  return string;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) {
    throw std::runtime_error("JsonValue: not a bool");
  }
  return boolean;
}

// ---- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  /// Recursion limit for nested containers. Each level costs ~2 stack
  /// frames, so 256 keeps adversarial "[[[[..." inputs from overflowing the
  /// stack while being far beyond anything the journal/checkpoint schemas
  /// nest (depth <= 4).
  static constexpr int kMaxDepth = 256;

  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      // Duplicate keys are a schema violation, not a tiebreak: silently
      // keeping either value would let a corrupted or adversarial record
      // smuggle a second "sel"/"seed" past the readers.
      if (v.object.find(key) != v.object.end()) {
        fail("duplicate object key '" + key + "'");
      }
      v.object[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        --depth_;
        return v;
      }
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') {
        --depth_;
        return v;
      }
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // BMP code points only (no surrogate pairing) — the writer never
          // emits \u beyond control characters, this covers round-trips.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // JSON grammar: a digit must follow the optional minus. Without this,
    // strtod's leniency would admit "+1" or "-.5".
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("expected a value");
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    // The writer nulls non-finite doubles, so no valid producer emits a
    // literal that overflows to infinity ("1e999"); reject instead of
    // letting Inf/NaN leak into consumers that assume finite numbers.
    if (!std::isfinite(v)) fail("number out of range");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

// ---- Writer ----------------------------------------------------------------

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void JsonObjectWriter::key_prefix(std::string_view key) {
  if (!first_) buffer_.push_back(',');
  first_ = false;
  buffer_.push_back('"');
  append_json_escaped(buffer_, key);
  buffer_ += "\":";
}

JsonObjectWriter& JsonObjectWriter::field(std::string_view key,
                                          std::string_view value) {
  key_prefix(key);
  buffer_.push_back('"');
  append_json_escaped(buffer_, value);
  buffer_.push_back('"');
  return *this;
}

JsonObjectWriter& JsonObjectWriter::field(std::string_view key, double value) {
  if (!std::isfinite(value)) return null_field(key);
  key_prefix(key);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  buffer_ += buf;
  return *this;
}

JsonObjectWriter& JsonObjectWriter::field(std::string_view key,
                                          long long value) {
  key_prefix(key);
  buffer_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::field(std::string_view key,
                                          unsigned long long value) {
  key_prefix(key);
  buffer_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  buffer_ += value ? "true" : "false";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::null_field(std::string_view key) {
  key_prefix(key);
  buffer_ += "null";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::object_field(std::string_view key,
                                                 JsonObjectWriter inner) {
  key_prefix(key);
  buffer_ += inner.finish();
  return *this;
}

JsonObjectWriter& JsonObjectWriter::raw_field(std::string_view key,
                                              std::string_view raw) {
  key_prefix(key);
  buffer_ += raw;
  return *this;
}

std::string JsonObjectWriter::finish() {
  buffer_.push_back('}');
  return std::move(buffer_);
}

void JsonArrayWriter::separator() {
  if (!first_) buffer_.push_back(',');
  first_ = false;
}

JsonArrayWriter& JsonArrayWriter::item(std::string_view value) {
  separator();
  buffer_.push_back('"');
  append_json_escaped(buffer_, value);
  buffer_.push_back('"');
  return *this;
}

JsonArrayWriter& JsonArrayWriter::raw_item(std::string_view raw) {
  separator();
  buffer_ += raw;
  return *this;
}

std::string JsonArrayWriter::finish() {
  buffer_.push_back(']');
  return std::move(buffer_);
}

}  // namespace carbon::obs

#include "carbon/obs/run_journal.hpp"

#include <stdexcept>
#include <utility>

#include "carbon/obs/json.hpp"

namespace carbon::obs {

RunJournal::RunJournal(const std::string& path, const MetricsRegistry* metrics)
    : owned_file_(std::make_unique<std::ofstream>(path, std::ios::app)),
      out_(owned_file_.get()),
      metrics_(metrics) {
  if (!*owned_file_) {
    throw std::runtime_error("RunJournal: cannot open '" + path + "'");
  }
}

RunJournal::RunJournal(std::ostream& out, const MetricsRegistry* metrics)
    : out_(&out), metrics_(metrics) {}

void RunJournal::emit(std::string line) {
  line.push_back('\n');
  std::lock_guard lock(mutex_);
  *out_ << line;
  out_->flush();
  ++records_written_;
}

namespace {

void append_backend(JsonObjectWriter& w, const JournalBackendStats& b) {
  JsonObjectWriter inner;
  inner.field("relax_cache_hits", b.relaxation_cache_hits)
      .field("relax_cache_misses", b.relaxation_cache_misses)
      .field("relax_cache_evictions", b.relaxation_cache_evictions)
      .field("dedup_hits", b.heuristic_dedup_hits)
      .field("xgen_hits", b.score_cache_hits)
      .field("xgen_evictions", b.score_cache_evictions)
      .field("guard_trips", b.guard_trips)
      .field("guard_degraded", b.guard_degraded_evals)
      .field("guard_exhausted", b.guard_budget_exhausted)
      .field("lp_family_rebinds", b.lp_family_rebinds)
      .field("lp_warm_rejects", b.lp_warm_start_rejects)
      .field("lp_pool_hits", b.lp_pool_hits)
      .field("lp_pool_rejects", b.lp_pool_rejects)
      .field("lp_pivots_saved", b.lp_pivots_saved);
  w.object_field("backend", std::move(inner));
}

}  // namespace

void RunJournal::append_timings(JsonObjectWriter& w, bool cumulative) {
  JsonObjectWriter inner;
  if (metrics_ != nullptr) {
    MetricsRegistry::Snapshot now = metrics_->snapshot();
    const MetricsRegistry::Snapshot& base =
        cumulative ? run_start_snapshot_ : last_snapshot_;
    for (const auto& [name, t] : now.timers) {
      double total = t.total_seconds;
      const auto it = base.timers.find(name);
      if (it != base.timers.end()) total -= it->second.total_seconds;
      inner.field(name, total);
    }
    if (!cumulative) last_snapshot_ = std::move(now);
  }
  w.object_field("timings_s", std::move(inner));
}

void RunJournal::begin_run(std::string_view algo, std::uint64_t seed,
                           std::size_t eval_threads, bool compiled_scoring) {
  algo_ = std::string(algo);
  run_clock_.reset();
  if (metrics_ != nullptr) {
    run_start_snapshot_ = metrics_->snapshot();
    last_snapshot_ = run_start_snapshot_;
  }
  JsonObjectWriter w;
  w.field("type", "run_start")
      .field("v", 1)
      .field("algo", algo)
      .field("seed", static_cast<unsigned long long>(seed))
      .field("eval_threads", eval_threads)
      .field("compiled_scoring", compiled_scoring);
  emit(w.finish());
}

void RunJournal::write_resume(const ResumeRecord& rec) {
  JsonObjectWriter w;
  w.field("type", "resume")
      .field("algo", algo_)
      .field("generation", rec.generation)
      .field("ul_evals", rec.ul_evals)
      .field("ll_evals", rec.ll_evals)
      .field("from", rec.checkpoint_path);
  emit(w.finish());
}

void RunJournal::write_generation(const GenerationRecord& rec) {
  JsonObjectWriter w;
  w.field("type", "generation")
      .field("algo", algo_)
      .field("generation", rec.generation)
      .field("phase", rec.phase)
      .field("best_ul", rec.best_ul)
      .field("mean_ul", rec.mean_ul)
      .field("std_ul", rec.std_ul)
      .field("best_gap", rec.best_gap)
      .field("mean_gap", rec.mean_gap)
      .field("std_gap", rec.std_gap)
      .field("best_ul_so_far", rec.best_ul_so_far)
      .field("best_gap_so_far", rec.best_gap_so_far)
      .field("archive_size", rec.archive_size)
      .field("ll_archive_size", rec.ll_archive_size)
      .field("ul_evals", rec.ul_evals)
      .field("ll_evals", rec.ll_evals);
  append_backend(w, rec.backend);
  append_timings(w, /*cumulative=*/false);
  emit(w.finish());
}

void RunJournal::finish_run(const RunSummary& summary) {
  JsonObjectWriter w;
  w.field("type", "summary")
      .field("algo", algo_)
      .field("generations", summary.generations)
      .field("ul_evals", summary.ul_evals)
      .field("ll_evals", summary.ll_evals)
      .field("best_ul", summary.best_ul)
      .field("best_gap", summary.best_gap)
      .field("wall_s", run_clock_.seconds());
  append_backend(w, summary.backend);
  append_timings(w, /*cumulative=*/true);
  emit(w.finish());
}

}  // namespace carbon::obs

#include "carbon/obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <thread>

namespace carbon::obs {

MetricsRegistry::MetricsRegistry(std::size_t num_shards) {
  num_shards = std::max<std::size_t>(num_shards, 1);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() noexcept {
  if (shards_.size() == 1) return *shards_.front();
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  // Multiply-shift finalizer: std::hash on thread ids is often the identity
  // over a pointer-like value, whose low bits carry the allocator's
  // alignment, not the thread.
  return *shards_[(h * 0x9E3779B97F4A7C15ULL >> 32) % shards_.size()];
}

void MetricsRegistry::add_counter(std::string_view name, long long delta) {
  Shard& s = shard_for_this_thread();
  std::lock_guard lock(s.mutex);
  const auto it = s.counters.find(name);
  if (it == s.counters.end()) {
    s.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::uint64_t seq =
      gauge_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& s = shard_for_this_thread();
  std::lock_guard lock(s.mutex);
  const auto it = s.gauges.find(name);
  if (it == s.gauges.end()) {
    s.gauges.emplace(std::string(name), GaugeSlot{seq, value});
  } else if (seq > it->second.sequence) {
    it->second = GaugeSlot{seq, value};
  }
}

void MetricsRegistry::record_timer(std::string_view name, double seconds) {
  Shard& s = shard_for_this_thread();
  std::lock_guard lock(s.mutex);
  auto it = s.timers.find(name);
  if (it == s.timers.end()) {
    it = s.timers.emplace(std::string(name), TimerStat{}).first;
  }
  TimerStat& t = it->second;
  ++t.count;
  t.total_seconds += seconds;
  t.max_seconds = std::max(t.max_seconds, seconds);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  // Gauge merge needs the write sequence, which the snapshot drops; track
  // the winning sequence per name locally while merging.
  std::map<std::string, std::uint64_t> gauge_seq;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const auto& [name, v] : shard->counters) out.counters[name] += v;
    for (const auto& [name, slot] : shard->gauges) {
      auto& seq = gauge_seq[name];
      if (slot.sequence >= seq) {
        seq = slot.sequence;
        out.gauges[name] = slot.value;
      }
    }
    for (const auto& [name, t] : shard->timers) {
      TimerStat& dst = out.timers[name];
      dst.count += t.count;
      dst.total_seconds += t.total_seconds;
      dst.max_seconds = std::max(dst.max_seconds, t.max_seconds);
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->counters.clear();
    shard->gauges.clear();
    shard->timers.clear();
  }
}

}  // namespace carbon::obs

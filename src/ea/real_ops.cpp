#include "carbon/ea/real_ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace carbon::ea {

std::vector<double> random_real_vector(common::Rng& rng,
                                       std::span<const Bounds> bounds) {
  std::vector<double> out(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    out[i] = rng.uniform(bounds[i].lo, bounds[i].hi);
  }
  return out;
}

void clamp_to_bounds(std::span<double> genome, std::span<const Bounds> bounds) {
  assert(genome.size() == bounds.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    genome[i] = std::clamp(genome[i], bounds[i].lo, bounds[i].hi);
  }
}

void sbx_crossover(common::Rng& rng, std::span<double> a, std::span<double> b,
                   std::span<const Bounds> bounds, const SbxConfig& cfg) {
  assert(a.size() == b.size() && a.size() == bounds.size());
  constexpr double kEps = 1e-14;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!rng.chance(cfg.per_gene_probability)) continue;
    double x1 = a[i];
    double x2 = b[i];
    if (std::abs(x1 - x2) < kEps) continue;
    if (x1 > x2) std::swap(x1, x2);

    const double lo = bounds[i].lo;
    const double hi = bounds[i].hi;
    const double u = rng.uniform();

    // Bounded SBX (Deb & Agrawal 1995, with the boundary-respecting beta).
    const auto child = [&](double beta_bound) {
      const double alpha = 2.0 - std::pow(beta_bound, -(cfg.eta + 1.0));
      double betaq;
      if (u <= 1.0 / alpha) {
        betaq = std::pow(u * alpha, 1.0 / (cfg.eta + 1.0));
      } else {
        betaq = std::pow(1.0 / (2.0 - u * alpha), 1.0 / (cfg.eta + 1.0));
      }
      return betaq;
    };

    const double dist = x2 - x1;
    const double beta1 = 1.0 + 2.0 * (x1 - lo) / dist;
    const double beta2 = 1.0 + 2.0 * (hi - x2) / dist;
    const double betaq1 = child(beta1);
    const double betaq2 = child(beta2);

    double c1 = 0.5 * ((x1 + x2) - betaq1 * dist);
    double c2 = 0.5 * ((x1 + x2) + betaq2 * dist);
    c1 = std::clamp(c1, lo, hi);
    c2 = std::clamp(c2, lo, hi);
    if (rng.chance(0.5)) std::swap(c1, c2);
    a[i] = c1;
    b[i] = c2;
  }
}

void polynomial_mutation(common::Rng& rng, std::span<double> genome,
                         std::span<const Bounds> bounds,
                         const PolynomialMutationConfig& cfg) {
  assert(genome.size() == bounds.size());
  if (genome.empty()) return;
  const double p = cfg.per_gene_probability >= 0.0
                       ? cfg.per_gene_probability
                       : 1.0 / static_cast<double>(genome.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.chance(p)) continue;
    const double lo = bounds[i].lo;
    const double hi = bounds[i].hi;
    const double range = hi - lo;
    if (range <= 0.0) continue;
    const double x = genome[i];
    const double d1 = (x - lo) / range;
    const double d2 = (hi - x) / range;
    const double u = rng.uniform();
    const double mut_pow = 1.0 / (cfg.eta + 1.0);
    double deltaq;
    if (u < 0.5) {
      const double xy = 1.0 - d1;
      const double val =
          2.0 * u + (1.0 - 2.0 * u) * std::pow(xy, cfg.eta + 1.0);
      deltaq = std::pow(val, mut_pow) - 1.0;
    } else {
      const double xy = 1.0 - d2;
      const double val = 2.0 * (1.0 - u) +
                         2.0 * (u - 0.5) * std::pow(xy, cfg.eta + 1.0);
      deltaq = 1.0 - std::pow(val, mut_pow);
    }
    genome[i] = std::clamp(x + deltaq * range, lo, hi);
  }
}

std::size_t tournament_select(common::Rng& rng,
                              std::span<const double> fitness, std::size_t k,
                              bool maximize) {
  assert(!fitness.empty() && k >= 1);
  std::size_t best = rng.below(fitness.size());
  for (std::size_t i = 1; i < k; ++i) {
    const std::size_t challenger = rng.below(fitness.size());
    const bool better = maximize ? fitness[challenger] > fitness[best]
                                 : fitness[challenger] < fitness[best];
    if (better) best = challenger;
  }
  return best;
}

}  // namespace carbon::ea

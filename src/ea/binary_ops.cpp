#include "carbon/ea/binary_ops.hpp"

#include <algorithm>
#include <cassert>

namespace carbon::ea {

std::vector<std::uint8_t> random_binary_vector(common::Rng& rng,
                                               std::size_t size,
                                               double density) {
  std::vector<std::uint8_t> out(size);
  for (auto& g : out) g = rng.chance(density) ? 1 : 0;
  return out;
}

void two_point_crossover(common::Rng& rng, std::span<std::uint8_t> a,
                         std::span<std::uint8_t> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return;
  std::size_t p1 = rng.below(n);
  std::size_t p2 = rng.below(n);
  if (p1 > p2) std::swap(p1, p2);
  for (std::size_t i = p1; i <= p2; ++i) std::swap(a[i], b[i]);
}

void swap_mutation(common::Rng& rng, std::span<std::uint8_t> genome,
                   double per_gene_probability) {
  const std::size_t n = genome.size();
  if (n < 2) return;
  const double p = per_gene_probability >= 0.0
                       ? per_gene_probability
                       : 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.chance(p)) continue;
    const std::size_t j = rng.below(n);
    std::swap(genome[i], genome[j]);
  }
}

void flip_mutation(common::Rng& rng, std::span<std::uint8_t> genome,
                   double per_gene_probability) {
  const std::size_t n = genome.size();
  if (n == 0) return;
  const double p = per_gene_probability >= 0.0
                       ? per_gene_probability
                       : 1.0 / static_cast<double>(n);
  for (auto& g : genome) {
    if (rng.chance(p)) g = static_cast<std::uint8_t>(1 - g);
  }
}

}  // namespace carbon::ea

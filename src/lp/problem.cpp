#include "carbon/lp/problem.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace carbon::lp {

std::size_t Problem::num_nonzeros() const noexcept {
  std::size_t total = 0;
  for (const SparseColumn& col : columns) total += col.nnz();
  return total;
}

double Problem::coefficient(std::size_t row, std::size_t col) const {
  const SparseColumn& c = columns[col];
  const auto it = std::lower_bound(c.rows.begin(), c.rows.end(),
                                   static_cast<std::int32_t>(row));
  if (it == c.rows.end() || *it != static_cast<std::int32_t>(row)) return 0.0;
  return c.values[static_cast<std::size_t>(it - c.rows.begin())];
}

std::size_t Problem::add_variable(double cost, double lo, double hi) {
  objective.push_back(cost);
  lower.push_back(lo);
  upper.push_back(hi);
  columns.emplace_back();
  return num_vars() - 1;
}

std::size_t Problem::add_constraint(const std::vector<double>& row,
                                    RowSense s, double b) {
  const auto r = static_cast<std::int32_t>(num_rows());
  for (std::size_t j = 0; j < num_vars() && j < row.size(); ++j) {
    if (row[j] != 0.0) columns[j].push_back(r, row[j]);
  }
  rhs.push_back(b);
  sense.push_back(s);
  return num_rows() - 1;
}

std::size_t Problem::add_constraint(std::span<const RowEntry> entries,
                                    RowSense s, double b) {
  const auto r = static_cast<std::int32_t>(num_rows());
  for (const RowEntry& e : entries) {
    if (e.value != 0.0 && e.column < num_vars()) {
      columns[e.column].push_back(r, e.value);
    }
  }
  rhs.push_back(b);
  sense.push_back(s);
  return num_rows() - 1;
}

std::string Problem::validate() const {
  std::ostringstream err;
  const std::size_t n = num_vars();
  const std::size_t m = num_rows();
  if (lower.size() != n || upper.size() != n) {
    err << "bounds arrays must match num_vars";
    return err.str();
  }
  if (sense.size() != m) {
    err << "sense array must match num_rows";
    return err.str();
  }
  if (columns.size() != n) {
    err << "columns array must match num_vars";
    return err.str();
  }
  for (std::size_t j = 0; j < n; ++j) {
    const SparseColumn& col = columns[j];
    if (col.rows.size() != col.values.size()) {
      err << "column " << j << " has " << col.rows.size() << " row indices but "
          << col.values.size() << " values";
      return err.str();
    }
    for (std::size_t k = 0; k < col.rows.size(); ++k) {
      if (col.rows[k] < 0 || static_cast<std::size_t>(col.rows[k]) >= m) {
        err << "column " << j << " references row " << col.rows[k]
            << ", but the problem has " << m << " rows";
        return err.str();
      }
      if (k > 0 && col.rows[k] <= col.rows[k - 1]) {
        err << "column " << j << " row indices are not strictly increasing";
        return err.str();
      }
    }
    if (!std::isfinite(lower[j])) {
      err << "variable " << j << " must have a finite lower bound";
      return err.str();
    }
    if (upper[j] < lower[j]) {
      err << "variable " << j << " has upper < lower";
      return err.str();
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!std::isfinite(rhs[i])) {
      err << "rhs " << i << " is not finite";
      return err.str();
    }
  }
  return {};
}

const char* to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

}  // namespace carbon::lp

#include "carbon/lp/problem.hpp"

#include <cmath>
#include <sstream>

namespace carbon::lp {

std::size_t Problem::add_variable(double cost, double lo, double hi) {
  objective.push_back(cost);
  lower.push_back(lo);
  upper.push_back(hi);
  columns.emplace_back(num_rows(), 0.0);
  return num_vars() - 1;
}

std::size_t Problem::add_constraint(const std::vector<double>& row,
                                    RowSense s, double b) {
  for (std::size_t j = 0; j < num_vars(); ++j) {
    columns[j].push_back(j < row.size() ? row[j] : 0.0);
  }
  rhs.push_back(b);
  sense.push_back(s);
  return num_rows() - 1;
}

std::string Problem::validate() const {
  std::ostringstream err;
  const std::size_t n = num_vars();
  const std::size_t m = num_rows();
  if (lower.size() != n || upper.size() != n) {
    err << "bounds arrays must match num_vars";
    return err.str();
  }
  if (sense.size() != m) {
    err << "sense array must match num_rows";
    return err.str();
  }
  if (columns.size() != n) {
    err << "columns array must match num_vars";
    return err.str();
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (columns[j].size() != m) {
      err << "column " << j << " has " << columns[j].size() << " rows, want "
          << m;
      return err.str();
    }
    if (!std::isfinite(lower[j])) {
      err << "variable " << j << " must have a finite lower bound";
      return err.str();
    }
    if (upper[j] < lower[j]) {
      err << "variable " << j << " has upper < lower";
      return err.str();
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!std::isfinite(rhs[i])) {
      err << "rhs " << i << " is not finite";
      return err.str();
    }
  }
  return {};
}

const char* to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

}  // namespace carbon::lp

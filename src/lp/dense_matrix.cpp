#include "carbon/lp/dense_matrix.hpp"

#include <cmath>
#include <numeric>

namespace carbon::lp {

void DenseMatrix::multiply(std::span<const double> v,
                           std::span<double> out) const {
  assert(v.size() == cols_ && out.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * v[c];
    out[r] = acc;
  }
}

void DenseMatrix::multiply_transposed(std::span<const double> v,
                                      std::span<double> out) const {
  assert(v.size() == rows_ && out.size() == cols_);
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += vr * row_ptr[c];
  }
}

bool DenseMatrix::invert(double pivot_tolerance) {
  assert(rows_ == cols_);
  const std::size_t n = rows_;
  DenseMatrix inv = identity(n);
  DenseMatrix work = *this;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest |entry| in this column.
    std::size_t pivot_row = col;
    double best = std::abs(work(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(work(r, col));
      if (cand > best) {
        best = cand;
        pivot_row = r;
      }
    }
    if (best < pivot_tolerance) return false;

    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work(pivot_row, c), work(col, c));
        std::swap(inv(pivot_row, c), inv(col, c));
      }
    }

    const double pivot = work(col, col);
    const double inv_pivot = 1.0 / pivot;
    for (std::size_t c = 0; c < n; ++c) {
      work(col, c) *= inv_pivot;
      inv(col, c) *= inv_pivot;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = work(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work(r, c) -= factor * work(col, c);
        inv(r, c) -= factor * inv(col, c);
      }
    }
  }
  *this = std::move(inv);
  return true;
}

}  // namespace carbon::lp

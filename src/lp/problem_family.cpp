#include "carbon/lp/problem_family.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace carbon::lp {

ProblemFamily::ProblemFamily(Problem problem) : p_(std::move(problem)) {
  const std::string err = p_.validate();
  if (!err.empty()) {
    throw std::invalid_argument("lp::ProblemFamily: malformed problem: " +
                                err);
  }
}

void ProblemFamily::rebind(std::span<const double> c) {
  if (c.size() > p_.objective.size()) {
    throw std::invalid_argument(
        "lp::ProblemFamily::rebind: cost vector longer than objective");
  }
  std::copy(c.begin(), c.end(), p_.objective.begin());
  ++rebinds_;
}

}  // namespace carbon::lp

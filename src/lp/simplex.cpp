#include "carbon/lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace carbon::lp {

Solution solve(const Problem& problem, const SimplexOptions& options,
               Basis* warm) {
  const std::string err = problem.validate();
  if (!err.empty()) {
    throw std::invalid_argument("lp::solve: malformed problem: " + err);
  }
  detail::SimplexSolver solver(problem, options);
  return solver.run(warm);
}

Solution solve(const ProblemFamily& family, const SimplexOptions& options,
               Basis* warm, SolveScratch* scratch) {
  // ProblemFamily validated at construction; no per-solve validation.
  detail::SimplexSolver solver(family.problem(), options, scratch);
  return solver.run(warm);
}

namespace detail {

SimplexSolver::SimplexSolver(const Problem& problem,
                             const SimplexOptions& options,
                             SolveScratch* scratch)
    : p_(problem),
      opt_(options),
      cost_(scratch ? scratch->cost : own_.cost),
      lower_(scratch ? scratch->lower : own_.lower),
      upper_(scratch ? scratch->upper : own_.upper),
      slack_sign_(scratch ? scratch->slack_sign : own_.slack_sign),
      art_sign_(scratch ? scratch->art_sign : own_.art_sign),
      col_scratch_(scratch ? scratch->col : own_.col),
      status_(scratch ? scratch->status : own_.status),
      basis_(scratch ? scratch->basis : own_.basis),
      binv_(scratch ? scratch->binv : own_.binv),
      xb_(scratch ? scratch->xb : own_.xb),
      status_cand_(scratch ? scratch->status_cand : own_.status_cand),
      mark_(scratch ? scratch->mark : own_.mark),
      refactor_(scratch ? scratch->refactor : own_.refactor),
      y_(scratch ? scratch->y : own_.y),
      alpha_(scratch ? scratch->alpha : own_.alpha),
      work_(scratch ? scratch->work : own_.work),
      work2_(scratch ? scratch->work2 : own_.work2) {
  n_struct_ = p_.num_vars();
  m_ = p_.num_rows();
  n_total_ = n_struct_ + 2 * m_;
  if (opt_.max_iterations <= 0) {
    opt_.max_iterations = 50 * static_cast<int>(m_ + n_total_) + 200;
  }

  lower_.assign(n_total_, 0.0);
  upper_.assign(n_total_, kInfinity);
  slack_sign_.assign(m_, 1.0);
  art_sign_.assign(m_, 1.0);

  for (std::size_t j = 0; j < n_struct_; ++j) {
    lower_[j] = p_.lower[j];
    upper_[j] = p_.upper[j];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t sj = n_struct_ + i;
    switch (p_.sense[i]) {
      case RowSense::kLessEqual:
        slack_sign_[i] = 1.0;
        lower_[sj] = 0.0;
        upper_[sj] = kInfinity;
        break;
      case RowSense::kGreaterEqual:
        slack_sign_[i] = -1.0;
        lower_[sj] = 0.0;
        upper_[sj] = kInfinity;
        break;
      case RowSense::kEqual:
        slack_sign_[i] = 1.0;
        lower_[sj] = 0.0;
        upper_[sj] = 0.0;  // fixed slack: row is an equality
        break;
    }
  }

  if (opt_.use_dense_kernels) {
    // Materialize the structural columns with their zeros — the layout (and
    // memory traffic) of the pre-sparse implementation.
    dense_cols_.assign(n_struct_, std::vector<double>(m_, 0.0));
    for (std::size_t j = 0; j < n_struct_; ++j) {
      const SparseColumn& col = p_.columns[j];
      for (std::size_t k = 0; k < col.nnz(); ++k) {
        dense_cols_[j][static_cast<std::size_t>(col.rows[k])] = col.values[k];
      }
    }
  }
}

void SimplexSolver::full_column(std::size_t j, std::vector<double>& out) const {
  out.assign(m_, 0.0);
  if (j < n_struct_) {
    if (opt_.use_dense_kernels) {
      const auto& col = dense_cols_[j];
      std::copy(col.begin(), col.end(), out.begin());
    } else {
      const SparseColumn& col = p_.columns[j];
      for (std::size_t k = 0; k < col.nnz(); ++k) {
        out[static_cast<std::size_t>(col.rows[k])] = col.values[k];
      }
    }
  } else if (j < n_struct_ + m_) {
    out[j - n_struct_] = slack_sign_[j - n_struct_];
  } else {
    out[j - n_struct_ - m_] = art_sign_[j - n_struct_ - m_];
  }
}

double SimplexSolver::column_dot(std::size_t j,
                                 const std::vector<double>& y) const {
  if (j < n_struct_) {
    if (opt_.use_dense_kernels) {
      const auto& col = dense_cols_[j];
      double acc = 0.0;
      for (std::size_t i = 0; i < m_; ++i) acc += col[i] * y[i];
      return acc;
    }
    // Skipped terms are exact zeros (0.0 * y_i adds +-0.0, which never
    // changes a sum that starts at +0.0), so this is bit-identical to the
    // dense loop.
    const SparseColumn& col = p_.columns[j];
    const std::size_t nnz = col.nnz();
    double acc = 0.0;
    for (std::size_t k = 0; k < nnz; ++k) {
      acc += col.values[k] * y[static_cast<std::size_t>(col.rows[k])];
    }
    return acc;
  }
  if (j < n_struct_ + m_) {
    return slack_sign_[j - n_struct_] * y[j - n_struct_];
  }
  return art_sign_[j - n_struct_ - m_] * y[j - n_struct_ - m_];
}

void SimplexSolver::axpy_column(std::size_t j, double scale,
                                std::vector<double>& out) const {
  if (j < n_struct_) {
    if (opt_.use_dense_kernels) {
      const auto& col = dense_cols_[j];
      for (std::size_t i = 0; i < m_; ++i) out[i] += scale * col[i];
      return;
    }
    const SparseColumn& col = p_.columns[j];
    const std::size_t nnz = col.nnz();
    for (std::size_t k = 0; k < nnz; ++k) {
      out[static_cast<std::size_t>(col.rows[k])] += scale * col.values[k];
    }
  } else if (j < n_struct_ + m_) {
    out[j - n_struct_] += scale * slack_sign_[j - n_struct_];
  } else {
    out[j - n_struct_ - m_] += scale * art_sign_[j - n_struct_ - m_];
  }
}

void SimplexSolver::ftran(std::size_t j, std::vector<double>& alpha) {
  if (opt_.use_dense_kernels) {
    full_column(j, col_scratch_);
    for (std::size_t i = 0; i < m_; ++i) {
      double acc = 0.0;
      const auto brow = binv_.row(i);
      for (std::size_t r = 0; r < m_; ++r) acc += brow[r] * col_scratch_[r];
      alpha[i] = acc;
    }
    return;
  }
  if (j < n_struct_) {
    const SparseColumn& col = p_.columns[j];
    const std::size_t nnz = col.nnz();
    for (std::size_t i = 0; i < m_; ++i) {
      double acc = 0.0;
      const auto brow = binv_.row(i);
      for (std::size_t k = 0; k < nnz; ++k) {
        acc += brow[static_cast<std::size_t>(col.rows[k])] * col.values[k];
      }
      alpha[i] = acc;
    }
    ftran_skipped_ +=
        static_cast<long long>(m_) * static_cast<long long>(m_ - nnz);
  } else {
    const bool slack = j < n_struct_ + m_;
    const std::size_t r = slack ? j - n_struct_ : j - n_struct_ - m_;
    const double sign = slack ? slack_sign_[r] : art_sign_[r];
    for (std::size_t i = 0; i < m_; ++i) alpha[i] = binv_(i, r) * sign;
    ftran_skipped_ +=
        static_cast<long long>(m_) * static_cast<long long>(m_ - 1);
  }
}

double SimplexSolver::binv_row_dot_column(std::size_t i, std::size_t j) const {
  const auto brow = binv_.row(i);
  if (j >= n_struct_ || opt_.use_dense_kernels) {
    double acc = 0.0;
    if (j >= n_struct_) {
      const bool slack = j < n_struct_ + m_;
      const std::size_t r = slack ? j - n_struct_ : j - n_struct_ - m_;
      return brow[r] * (slack ? slack_sign_[r] : art_sign_[r]);
    }
    const auto& col = dense_cols_[j];
    for (std::size_t r = 0; r < m_; ++r) acc += brow[r] * col[r];
    return acc;
  }
  const SparseColumn& col = p_.columns[j];
  const std::size_t nnz = col.nnz();
  double acc = 0.0;
  for (std::size_t k = 0; k < nnz; ++k) {
    acc += brow[static_cast<std::size_t>(col.rows[k])] * col.values[k];
  }
  return acc;
}

void SimplexSolver::compute_duals(std::vector<double>& y) const {
  if (opt_.use_dense_kernels) {
    // Reference kernel: column-strided walk of B^-1, no zero-cost skip.
    for (std::size_t i = 0; i < m_; ++i) {
      double acc = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        acc += cost_[basis_[r]] * binv_(r, i);
      }
      y[i] = acc;
    }
    return;
  }
  // Transposed accumulation: per y[i] the terms arrive in the same ascending
  // r order as the reference loop, minus exact-zero cB terms, so the result
  // is bit-identical — but B^-1 is now streamed row-major, and rows whose
  // basic variable has zero cost (all of Phase 1's non-artificials, every
  // slack-basic row of Phase 2) are skipped outright.
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < m_; ++r) {
    const double cr = cost_[basis_[r]];
    if (cr == 0.0) continue;
    const auto brow = binv_.row(r);
    for (std::size_t i = 0; i < m_; ++i) y[i] += cr * brow[i];
  }
}

double SimplexSolver::nonbasic_value(std::size_t j) const {
  return status_[j] == VarStatus::kAtUpper ? upper_[j] : lower_[j];
}

void SimplexSolver::setup_phase1() {
  status_.assign(n_total_, VarStatus::kAtLower);
  // Variables with infinite "lower preference" do not occur (finite lower
  // bounds are enforced by Problem::validate); start everything at lower.
  // Fixed slacks (equality rows) also sit at their lower (= upper = 0).

  // Residual of each row at the nonbasic point.
  std::vector<double>& residual = work_;
  residual.assign(p_.rhs.begin(), p_.rhs.end());
  for (std::size_t j = 0; j < n_struct_ + m_; ++j) {
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    axpy_column(j, -v, residual);
  }

  basis_.resize(m_);
  xb_.assign(m_, 0.0);
  binv_.set_identity(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    art_sign_[i] = residual[i] >= 0.0 ? 1.0 : -1.0;
    const std::size_t aj = n_struct_ + m_ + i;
    basis_[i] = aj;
    status_[aj] = VarStatus::kBasic;
    xb_[i] = std::abs(residual[i]);
    binv_(i, i) = art_sign_[i];  // inverse of diag(+-1) is itself
  }

  cost_.assign(n_total_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) cost_[n_struct_ + m_ + i] = 1.0;
}

bool SimplexSolver::try_warm_start(const Basis& warm) {
  if (warm.basic_vars.size() != m_ ||
      warm.status.size() != n_struct_ + m_) {
    return false;
  }
  std::vector<VarStatus>& status = status_cand_;
  status.assign(n_total_, VarStatus::kAtLower);
  std::vector<unsigned char>& is_basic = mark_;
  is_basic.assign(n_total_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t bj = warm.basic_vars[i];
    if (bj >= n_struct_ + m_ || is_basic[bj]) return false;
    is_basic[bj] = 1;
  }
  for (std::size_t j = 0; j < n_struct_ + m_; ++j) {
    switch (warm.status[j]) {
      case 0:
        status[j] = VarStatus::kAtLower;
        break;
      case 1:
        if (!std::isfinite(upper_[j])) return false;
        status[j] = VarStatus::kAtUpper;
        break;
      case 2:
        if (!is_basic[j]) return false;
        status[j] = VarStatus::kBasic;
        break;
      default:
        return false;
    }
    if (is_basic[j] && status[j] != VarStatus::kBasic) return false;
  }

  std::swap(status_, status);
  basis_.assign(warm.basic_vars.begin(), warm.basic_vars.end());
  xb_.assign(m_, 0.0);
  binv_.set_identity(m_);
  if (!refactorize()) return false;
  // Cost changes keep the basis primal-feasible, but verify anyway (the
  // caller may hand us a basis from a different problem by mistake).
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t bj = basis_[i];
    const double scale = 1.0 + std::abs(xb_[i]);
    if (xb_[i] < lower_[bj] - opt_.feasibility_tol * scale) return false;
    if (std::isfinite(upper_[bj]) &&
        xb_[i] > upper_[bj] + opt_.feasibility_tol * scale) {
      return false;
    }
  }
  return true;
}

void SimplexSolver::save_basis(Basis& out) const {
  out.status.assign(n_struct_ + m_, 0);
  for (std::size_t j = 0; j < n_struct_ + m_; ++j) {
    switch (status_[j]) {
      case VarStatus::kAtLower:
        out.status[j] = 0;
        break;
      case VarStatus::kAtUpper:
        out.status[j] = 1;
        break;
      case VarStatus::kBasic:
        out.status[j] = 2;
        break;
    }
  }
  out.basic_vars.assign(basis_.begin(), basis_.end());
}

bool SimplexSolver::try_crash_start(bool structural_at_upper) {
  std::vector<VarStatus>& status = status_cand_;
  status.assign(n_total_, VarStatus::kAtLower);
  if (structural_at_upper) {
    for (std::size_t j = 0; j < n_struct_; ++j) {
      if (std::isfinite(upper_[j])) status[j] = VarStatus::kAtUpper;
    }
  }

  // Row activity at the candidate nonbasic point.
  std::vector<double>& activity = work_;
  activity.assign(m_, 0.0);
  for (std::size_t j = 0; j < n_struct_; ++j) {
    const double v =
        status[j] == VarStatus::kAtUpper ? upper_[j] : lower_[j];
    if (v == 0.0) continue;
    axpy_column(j, v, activity);
  }

  // Slack i value solving (Ax)_i + sign_i * s_i = b_i.
  std::vector<double>& slack = work2_;
  slack.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double s = slack_sign_[i] * (p_.rhs[i] - activity[i]);
    const std::size_t sj = n_struct_ + i;
    const double scale = 1.0 + std::abs(p_.rhs[i]);
    if (s < lower_[sj] - opt_.feasibility_tol * scale ||
        s > upper_[sj] + opt_.feasibility_tol * scale) {
      return false;
    }
    slack[i] = s;
  }

  std::swap(status_, status);
  basis_.resize(m_);
  xb_.resize(m_);
  binv_.set_identity(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    basis_[i] = n_struct_ + i;
    status_[n_struct_ + i] = VarStatus::kBasic;
    xb_[i] = slack[i];
    binv_(i, i) = slack_sign_[i];  // inverse of diag(+-1) is itself
  }
  return true;
}

void SimplexSolver::enter_phase2() {
  cost_.assign(n_total_, 0.0);
  for (std::size_t j = 0; j < n_struct_; ++j) cost_[j] = p_.objective[j];
  // Artificials must never re-enter: pin them to zero.
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t aj = n_struct_ + m_ + i;
    lower_[aj] = 0.0;
    upper_[aj] = 0.0;
    if (status_[aj] != VarStatus::kBasic) status_[aj] = VarStatus::kAtLower;
  }
}

bool SimplexSolver::refactorize() {
  ++refactorizations_;
  DenseMatrix& b = refactor_;
  b.reset(m_, m_);
  if (opt_.use_dense_kernels) {
    std::vector<double>& col = col_scratch_;
    for (std::size_t i = 0; i < m_; ++i) {
      full_column(basis_[i], col);
      for (std::size_t r = 0; r < m_; ++r) b(r, i) = col[r];
    }
  } else {
    // Scatter only the nonzeros; b starts zero-filled, so the assembled
    // matrix is bit-identical to the dense copy above.
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = basis_[i];
      if (j < n_struct_) {
        const SparseColumn& col = p_.columns[j];
        for (std::size_t k = 0; k < col.nnz(); ++k) {
          b(static_cast<std::size_t>(col.rows[k]), i) = col.values[k];
        }
      } else if (j < n_struct_ + m_) {
        b(j - n_struct_, i) = slack_sign_[j - n_struct_];
      } else {
        b(j - n_struct_ - m_, i) = art_sign_[j - n_struct_ - m_];
      }
    }
  }
  if (!b.invert(opt_.pivot_tol)) return false;
  std::swap(binv_, b);
  recompute_basic_values();
  return true;
}

void SimplexSolver::recompute_basic_values() {
  // xB = B^-1 (b - N xN)
  std::vector<double>& rhs = work_;
  rhs.assign(p_.rhs.begin(), p_.rhs.end());
  for (std::size_t j = 0; j < n_total_; ++j) {
    if (status_[j] == VarStatus::kBasic) continue;
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    axpy_column(j, -v, rhs);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    double acc = 0.0;
    const auto brow = binv_.row(i);
    for (std::size_t r = 0; r < m_; ++r) acc += brow[r] * rhs[r];
    xb_[i] = acc;
  }
}

SolveStatus SimplexSolver::iterate(bool phase1) {
  std::vector<double>& y = y_;
  y.assign(m_, 0.0);
  std::vector<double>& alpha = alpha_;
  alpha.assign(m_, 0.0);
  int phase_iterations = 0;

  for (;;) {
    if (iterations_ >= opt_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    if (opt_.refactor_interval > 0 && iterations_ > 0 &&
        iterations_ % opt_.refactor_interval == 0) {
      if (!refactorize()) return SolveStatus::kNumericalFailure;
    }

    // Duals: y^T = cB^T B^-1.
    compute_duals(y);

    // Pricing. Entering direction sigma: +1 when increasing from lower,
    // -1 when decreasing from upper.
    const bool bland = phase_iterations >= opt_.bland_threshold;
    std::size_t entering = n_total_;
    double entering_sigma = 0.0;
    double best_score = opt_.optimality_tol;
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (lower_[j] == upper_[j]) continue;  // fixed variable
      const double d = cost_[j] - column_dot(j, y);
      double score = 0.0;
      double sigma = 0.0;
      if (status_[j] == VarStatus::kAtLower && d < -opt_.optimality_tol) {
        score = -d;
        sigma = 1.0;
      } else if (status_[j] == VarStatus::kAtUpper &&
                 d > opt_.optimality_tol) {
        score = d;
        sigma = -1.0;
      } else {
        continue;
      }
      if (bland) {  // first eligible index
        entering = j;
        entering_sigma = sigma;
        break;
      }
      if (score > best_score) {
        best_score = score;
        entering = j;
        entering_sigma = sigma;
      }
    }
    if (entering == n_total_) {
      return SolveStatus::kOptimal;  // no improving direction
    }

    // FTRAN: alpha = B^-1 A_entering.
    ftran(entering, alpha);

    // Ratio test. Basic value change: xB_i -= sigma * alpha_i * t, t >= 0.
    double t_max = upper_[entering] - lower_[entering];  // bound flip
    std::size_t leaving_row = m_;   // m_ => bound flip
    bool leaving_to_upper = false;  // where the leaving basic variable lands
    for (std::size_t i = 0; i < m_; ++i) {
      const double rate = -entering_sigma * alpha[i];  // d(xB_i)/dt
      const std::size_t bj = basis_[i];
      if (rate < -opt_.pivot_tol) {
        // Basic variable decreases toward its lower bound.
        if (lower_[bj] == -kInfinity) continue;
        const double room = xb_[i] - lower_[bj];
        const double t = std::max(0.0, room) / (-rate);
        if (t < t_max - opt_.pivot_tol ||
            (bland && t <= t_max + opt_.pivot_tol && leaving_row != m_ &&
             bj < basis_[leaving_row])) {
          t_max = t;
          leaving_row = i;
          leaving_to_upper = false;
        }
      } else if (rate > opt_.pivot_tol) {
        // Basic variable increases toward its upper bound.
        if (upper_[bj] == kInfinity) continue;
        const double room = upper_[bj] - xb_[i];
        const double t = std::max(0.0, room) / rate;
        if (t < t_max - opt_.pivot_tol ||
            (bland && t <= t_max + opt_.pivot_tol && leaving_row != m_ &&
             bj < basis_[leaving_row])) {
          t_max = t;
          leaving_row = i;
          leaving_to_upper = true;
        }
      }
    }

    if (t_max == kInfinity || !std::isfinite(t_max)) {
      return phase1 ? SolveStatus::kNumericalFailure : SolveStatus::kUnbounded;
    }

    ++iterations_;
    ++phase_iterations;

    if (leaving_row == m_) {
      // Bound flip: the entering variable crosses to its opposite bound.
      for (std::size_t i = 0; i < m_; ++i) {
        xb_[i] -= entering_sigma * alpha[i] * t_max;
      }
      status_[entering] = entering_sigma > 0.0 ? VarStatus::kAtUpper
                                               : VarStatus::kAtLower;
      continue;
    }

    const double pivot = alpha[leaving_row];
    if (std::abs(pivot) < opt_.pivot_tol) {
      // Retry from a fresh factorization once; otherwise give up.
      if (!refactorize()) return SolveStatus::kNumericalFailure;
      if (numerical_failure_) return SolveStatus::kNumericalFailure;
      numerical_failure_ = true;
      continue;
    }
    numerical_failure_ = false;

    // Update basic values.
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      xb_[i] -= entering_sigma * alpha[i] * t_max;
    }
    const std::size_t leaving_var = basis_[leaving_row];
    status_[leaving_var] =
        leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    xb_[leaving_row] = nonbasic_value(entering) + entering_sigma * t_max;
    basis_[leaving_row] = entering;
    status_[entering] = VarStatus::kBasic;

    // Product-form update of B^-1. A rank-1 update row whose pivot-column
    // entry is exactly zero is skipped — the update would add 0 * row, which
    // is the identity, so skipping it is IEEE-exact.
    const double inv_pivot = 1.0 / pivot;
    for (std::size_t c = 0; c < m_; ++c) binv_(leaving_row, c) *= inv_pivot;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const double factor = alpha[i];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < m_; ++c) {
        binv_(i, c) -= factor * binv_(leaving_row, c);
      }
    }
  }
}

void SimplexSolver::purge_artificials() {
  std::vector<double>& alpha = alpha_;
  alpha.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    if (basis_[i] < n_struct_ + m_) continue;  // not artificial
    // Degenerate pivot: replace the artificial with any non-artificial column
    // that has a nonzero entry in this row of the simplex tableau.
    bool replaced = false;
    for (std::size_t j = 0; j < n_struct_ + m_ && !replaced; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double entry = binv_row_dot_column(i, j);
      if (std::abs(entry) < 1e-7) continue;
      // t = 0 pivot (the artificial is at value 0, so nothing moves).
      const std::size_t art = basis_[i];
      status_[art] = VarStatus::kAtLower;
      basis_[i] = j;
      status_[j] = VarStatus::kBasic;
      const double inv_pivot = 1.0 / entry;
      // alpha = B^-1 A_j for the binv update.
      ftran(j, alpha);
      for (std::size_t c = 0; c < m_; ++c) binv_(i, c) *= inv_pivot;
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == i) continue;
        const double factor = alpha[r];
        if (factor == 0.0) continue;
        for (std::size_t c = 0; c < m_; ++c) {
          binv_(r, c) -= factor * binv_(i, c);
        }
      }
      recompute_basic_values();
      replaced = true;
    }
    // If no replacement exists the row is redundant; the artificial stays
    // basic, pinned at zero by its [0,0] bounds in phase 2.
  }
}

void SimplexSolver::export_stats(Solution& sol) const {
  sol.iterations = iterations_;
  sol.refactorizations = refactorizations_;
  sol.warm_start_used = warm_start_used_;
  sol.warm_start_rejected = warm_start_rejected_;
  sol.ftran_nnz_skipped = ftran_skipped_;
}

Solution SimplexSolver::run(Basis* warm) {
  Solution sol;

  const bool warm_requested = warm != nullptr && !warm->empty();
  warm_start_used_ = warm_requested && try_warm_start(*warm);
  warm_start_rejected_ = warm_requested && !warm_start_used_;
  bool started = warm_start_used_;
  if (!started) {
    started = try_crash_start(/*structural_at_upper=*/false) ||
              try_crash_start(/*structural_at_upper=*/true);
  }
  if (!started) {
    setup_phase1();
    SolveStatus phase1_status = iterate(/*phase1=*/true);
    if (phase1_status == SolveStatus::kIterationLimit ||
        phase1_status == SolveStatus::kNumericalFailure) {
      sol.status = phase1_status;
      export_stats(sol);
      return sol;
    }
    // Phase-1 objective = sum of artificial values.
    double infeas = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= n_struct_ + m_) infeas += std::abs(xb_[i]);
    }
    if (infeas > opt_.feasibility_tol * (1.0 + std::abs(infeas))) {
      sol.status = SolveStatus::kInfeasible;
      export_stats(sol);
      return sol;
    }
    purge_artificials();
  }

  enter_phase2();
  SolveStatus st;
  recompute_basic_values();
  st = iterate(/*phase1=*/false);
  sol.status = st;
  export_stats(sol);
  if (st != SolveStatus::kOptimal) return sol;

  // Extract the primal point.
  sol.x.assign(n_struct_, 0.0);
  for (std::size_t j = 0; j < n_struct_; ++j) {
    if (status_[j] != VarStatus::kBasic) sol.x[j] = nonbasic_value(j);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    if (basis_[i] < n_struct_) {
      // Clamp tiny bound violations from accumulated rounding.
      const std::size_t j = basis_[i];
      sol.x[j] = std::clamp(xb_[i], lower_[j],
                            std::isfinite(upper_[j]) ? upper_[j] : xb_[i]);
    }
  }

  sol.objective = 0.0;
  for (std::size_t j = 0; j < n_struct_; ++j) {
    sol.objective += p_.objective[j] * sol.x[j];
  }

  // Duals and reduced costs.
  sol.duals.assign(m_, 0.0);
  compute_duals(sol.duals);
  sol.reduced_costs.assign(n_struct_, 0.0);
  for (std::size_t j = 0; j < n_struct_; ++j) {
    sol.reduced_costs[j] = p_.objective[j] - column_dot(j, sol.duals);
  }
  // Basis contains no artificials here unless a redundant row pinned one;
  // such a basis still warm-starts correctly (the artificial is fixed at 0),
  // but we only export clean bases to keep the contract simple.
  if (warm != nullptr) {
    const bool clean = std::all_of(basis_.begin(), basis_.end(),
                                   [&](std::size_t b) { return b < n_struct_ + m_; });
    if (clean) {
      save_basis(*warm);
      sol.basis_saved = true;
    }
  }
  return sol;
}

}  // namespace detail
}  // namespace carbon::lp

#!/usr/bin/env bash
# Builds and runs the microbenchmarks, leaving their results at the
# repository root: BENCH_gp_eval.json (GP scoring-tree evaluation) and
# BENCH_lp_simplex.json (dense-vs-sparse simplex kernels + end-to-end
# warm-started relaxation batch).
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON
cmake --build "${BUILD_DIR}" -j --target micro_gp_eval micro_lp_simplex
"./${BUILD_DIR}/bench/micro_gp_eval" BENCH_gp_eval.json
"./${BUILD_DIR}/bench/micro_lp_simplex" BENCH_lp_simplex.json

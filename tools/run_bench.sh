#!/usr/bin/env bash
# Builds and runs the microbenchmarks, leaving their results at the
# repository root: BENCH_gp_eval.json (GP scoring-tree evaluation:
# interpreter vs compiled-scalar vs compiled-SIMD kernels, plus the
# incremental-greedy rescoring fractions) and BENCH_lp_simplex.json
# (dense-vs-sparse simplex kernels + end-to-end warm-started relaxation
# batch) and BENCH_parallel_eval.json (work-stealing TaskScheduler vs the
# barriered ThreadPool::parallel_for on skewed job-cost grids, plus the
# ParallelEvaluator replay across sched x memo_xgen).
#
# After regenerating, each BENCH_*.json is diffed against the committed
# baseline (warn-only: timing drift across machines is expected; the diff
# is a prompt to eyeball speedup ratios, not a gate).
#
# BENCH_gp_eval.json records the machine's SIMD situation in its "simd"
# block (cpu_avx2, compiled_avx2, dispatched kernel, lanes), so a checked-in
# result is always attributable to the hardware and build that produced it;
# the script echoes the same report plus the host CPU feature flags.
#
# Usage: tools/run_bench.sh [--commit] [build-dir]   (default: build)
#   --commit  git-commits the regenerated BENCH_*.json files.
set -euo pipefail

cd "$(dirname "$0")/.."

COMMIT=0
BUILD_DIR=build
for arg in "$@"; do
  case "${arg}" in
    --commit) COMMIT=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

if [[ -r /proc/cpuinfo ]]; then
  echo "cpu: $(grep -m1 'model name' /proc/cpuinfo | cut -d: -f2- | sed 's/^ //')"
  echo "simd flags: $(grep -m1 '^flags' /proc/cpuinfo |
    tr ' ' '\n' | grep -E '^(sse2|sse4_1|sse4_2|avx|avx2|fma|avx512f)$' |
    tr '\n' ' ')"
fi

RESULTS=(BENCH_gp_eval.json BENCH_lp_simplex.json BENCH_parallel_eval.json)

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON
cmake --build "${BUILD_DIR}" -j \
  --target micro_gp_eval micro_lp_simplex micro_parallel_eval
"./${BUILD_DIR}/bench/micro_gp_eval" BENCH_gp_eval.json
"./${BUILD_DIR}/bench/micro_lp_simplex" BENCH_lp_simplex.json
"./${BUILD_DIR}/bench/micro_parallel_eval" BENCH_parallel_eval.json

for result in "${RESULTS[@]}"; do
  if git cat-file -e "HEAD:${result}" 2>/dev/null; then
    if ! git diff --quiet -- "${result}"; then
      echo "WARN: ${result} drifted from the committed baseline:"
      git --no-pager diff --stat -- "${result}"
    fi
  else
    echo "WARN: ${result} has no committed baseline yet."
  fi
done

if ((COMMIT)); then
  git add "${RESULTS[@]}"
  git commit -m "Regenerate benchmark results"
fi

#!/usr/bin/env bash
# Builds and runs the GP-evaluation microbenchmark, leaving its results in
# BENCH_gp_eval.json at the repository root.
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DCARBON_BUILD_BENCH=ON
cmake --build "${BUILD_DIR}" -j --target micro_gp_eval
"./${BUILD_DIR}/bench/micro_gp_eval" BENCH_gp_eval.json

#!/usr/bin/env bash
# Tiered test runner over the ctest labels declared in tests/CMakeLists.txt.
#
# Usage: tools/run_tests.sh [tier] [build-dir]
#   tier: unit | integration | sanitizer-critical | bench-smoke | all
#         (default: all)
#   build-dir: defaults to ./build (configured+built if missing)
#
# Tiers:
#   unit               — fast single-subsystem tests; the inner-loop tier
#   integration        — whole-solver runs (reproduction, umbrella, CLI
#                        incl. the checkpoint/resume smoke,
#                        golden-trajectory)
#   sanitizer-critical — the concurrency surface plus the checkpoint
#                        kill/resume harness; tools/run_sanitizers.sh
#                        runs the same set again under TSan/ASan
#   bench-smoke        — microbenchmarks (micro_lp_simplex, micro_gp_eval)
#                        with tiny iteration counts: exercises their
#                        bit-exactness guards and JSON output, not timings
#   all                — every registered test
set -euo pipefail

cd "$(dirname "$0")/.."

TIER="${1:-all}"
BUILD_DIR="${2:-build}"

case "${TIER}" in
  unit|integration|sanitizer-critical|bench-smoke|all) ;;
  *)
    echo "usage: tools/run_tests.sh [unit|integration|sanitizer-critical|bench-smoke|all] [build-dir]" >&2
    exit 1
    ;;
esac

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j

CTEST_ARGS=(--output-on-failure -j)
if [[ "${TIER}" != "all" ]]; then
  CTEST_ARGS+=(-L "^${TIER}$")
fi

echo "=== ctest tier: ${TIER} ==="
ctest --test-dir "${BUILD_DIR}" "${CTEST_ARGS[@]}"

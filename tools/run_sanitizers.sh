#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
# With --asan, additionally runs the same tests under Address+UB sanitizers.
#
# Usage: tools/run_sanitizers.sh [--asan]
set -euo pipefail

cd "$(dirname "$0")/.."

# The tests that exercise shared-state code paths: the thread pool, the
# sharded relaxation cache, the parallel evaluator (including the
# capacity-1 eviction churn, the thread-count-invariance runs, and the
# compiled-scoring batch memo), and the compiled-program fuzz (per-context
# register scratch must stay thread-private).
TESTS=(thread_pool_test bcpop_evaluator_test parallel_evaluator_test
       gp_compiled_test)

run_flavor() {
  local name="$1" flags="$2" dir="build-$1"
  echo "=== ${name}: configuring ${dir} ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${flags} -g -O1 -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="${flags}" \
    -DCARBON_BUILD_BENCH=OFF \
    -DCARBON_BUILD_EXAMPLES=OFF \
    -DCARBON_BUILD_TOOLS=OFF
  echo "=== ${name}: building ${TESTS[*]} ==="
  cmake --build "${dir}" -j --target "${TESTS[@]}"
  for t in "${TESTS[@]}"; do
    echo "=== ${name}: ${t} ==="
    "./${dir}/tests/${t}"
  done
}

run_flavor tsan "-fsanitize=thread"

if [[ "${1:-}" == "--asan" ]]; then
  run_flavor asan "-fsanitize=address,undefined"
fi

echo "=== sanitizer runs passed ==="

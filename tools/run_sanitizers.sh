#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
# With --asan, additionally runs the same tests under Address+UB sanitizers.
#
# Every suite in every flavor runs even after a failure; the script exits
# nonzero if any of them failed and lists the failures at the end.
#
# Usage: tools/run_sanitizers.sh [--asan]
set -euo pipefail

cd "$(dirname "$0")/.."

# The tests that exercise shared-state code paths: the thread pool, the
# work-stealing task scheduler (Chase-Lev-style deques probed by the
# determinism fuzz: 500 seeds of skewed job durations across worker counts
# 1/2/4/8, where TSan sees every owner-pop vs thief-CAS interleaving), the
# cross-generation score cache (sharded LRU under concurrent mixed
# lookup/insert traffic at eviction pressure), the
# sharded relaxation cache (direct eviction/pinning contention), the
# parallel evaluator (including the capacity-1 eviction churn, the
# thread-count-invariance runs, and the compiled-scoring batch memo), the
# compiled-program fuzz (per-context register scratch must stay
# thread-private), the metrics registry (sharded counters/timers
# hammered from pool workers while a reader snapshots), and the LP
# dense-vs-sparse differential suite (the sparse kernels index through
# CSC arrays in every inner loop; ASan/UBSan verify those accesses on
# randomized degenerate/infeasible/unbounded instances), the
# checkpoint kill/resume harness (checkpoints are written mid-run while
# the parallel evaluator is live; the bit-identical-resume assertions run
# at eval_threads 4, so TSan sees the full snapshot-under-concurrency
# path), the SIMD scalar-vs-AVX2 differential fuzz (the 4-wide kernels
# stride raw register rows — ASan/UBSan check every ragged tail, TSan the
# lazy dispatch slot resolved from concurrent evaluations), and the
# incremental-greedy differential (the dirty-set gather/scatter indexes
# compacted sub-batch columns; ASan validates the bounds and the
# scratch-reuse runs catch state leaking between solves), and the guard
# suites (budget degradation and fault injection run whole solvers at
# eval_threads 4, so TSan sees the injection-ordinal accounting and the
# cap-degraded relaxations crossing the sharded cache), and the LP
# warm-start pool suites (basis_pool_test pins the pool's deterministic
# selection/eviction/clear contract; pool_golden_test runs pool-mode
# solvers at eval_threads 4 where every select/insert must stay on the
# batch-submitting thread — TSan sees any stage-B worker touching the
# pool, and ASan checks the copied-basis lifetime across the fan-out).
# This is the same set labeled `sanitizer-critical` in
# tests/CMakeLists.txt.
TESTS=(thread_pool_test task_scheduler_test metrics_test
       relaxation_cache_test score_cache_test
       bcpop_evaluator_test parallel_evaluator_test gp_compiled_test
       simplex_differential_test checkpoint_resume_test
       gp_simd_eval_test greedy_incremental_test
       guard_test guard_degradation_test
       basis_pool_test pool_golden_test)

FAILED=()

run_flavor() {
  local name="$1" flags="$2" dir="build-$1"
  echo "=== ${name}: configuring ${dir} ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${flags} -g -O1 -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="${flags}" \
    -DCARBON_BUILD_BENCH=OFF \
    -DCARBON_BUILD_EXAMPLES=OFF \
    -DCARBON_BUILD_TOOLS=OFF
  echo "=== ${name}: building ${TESTS[*]} ==="
  cmake --build "${dir}" -j --target "${TESTS[@]}"
  for t in "${TESTS[@]}"; do
    echo "=== ${name}: ${t} ==="
    if ! "./${dir}/tests/${t}"; then
      FAILED+=("${name}/${t}")
    fi
  done
}

run_flavor tsan "-fsanitize=thread"

if [[ "${1:-}" == "--asan" ]]; then
  run_flavor asan "-fsanitize=address,undefined"
fi

if ((${#FAILED[@]})); then
  echo "=== sanitizer runs FAILED: ${FAILED[*]} ==="
  exit 1
fi
echo "=== sanitizer runs passed ==="

// carbon — command-line front end for the library.
//
//   carbon generate --bundles M --services N [--tightness T] [--density D]
//                   [--seed S] --out FILE
//       Writes a covering instance in the OR-library text format.
//
//   carbon relax --in FILE
//       LP relaxation: lower bound, simplex iterations, dual values.
//
//   carbon exact --in FILE [--max-nodes N]
//       LP-based branch & bound (small instances).
//
//   carbon greedy --in FILE [--score ce|dual | --tree "(div QCOV COST)"]
//       Greedy cover with a built-in or hand-written scoring function.
//
//   carbon solve --in FILE --owned L --algo carbon|cobra|biga|codba|nested
//                [--ul-budget U] [--ll-budget L] [--pop P] [--seed S]
//                [--threads T] [--convergence OUT.csv] [--memetic]
//                [--journal OUT.jsonl] [--metrics]
//                [--checkpoint FILE --checkpoint-every N] [--resume FILE]
//                [--guard-lp-iters N] [--guard-rounds N] [--guard-nodes N]
//                [--guard-watchdog SECONDS]
//                [--sched stealing|parallel_for] [--memo-xgen on|off]
//                [--lp-warm baseline|pool]
//       Treats the first L bundles as the leader's and solves the bi-level
//       pricing problem. --journal appends one JSON record per generation
//       plus a run summary (schema: docs/ALGORITHMS.md §9); --metrics
//       prints counter/timer totals after the run. Telemetry never alters
//       the trajectory (carbon and cobra only). --checkpoint/--checkpoint-
//       every write crash-safe solver state every N generations; --resume
//       continues bit-identically from such a file (carbon and cobra only;
//       schema: docs/ALGORITHMS.md §11). --guard-* set deterministic
//       per-evaluation budgets (simplex iterations, greedy rounds, total LL
//       nodes) with a fixed degradation ladder, plus an opt-in wall-clock
//       watchdog (carbon and cobra only; docs/ALGORITHMS.md §13).
//       --sched picks the parallel evaluator's fan-out engine and
//       --memo-xgen toggles cross-generation score memoization; both are
//       trajectory-neutral knobs for benchmarking and differential testing
//       (carbon and cobra only; docs/ALGORITHMS.md §14). --lp-warm picks
//       the LL relaxation warm-start policy: baseline (default, the fixed
//       base-cost basis — historical trajectories bit for bit) or pool
//       (nearest pooled basis; deterministic for any --threads but a
//       DIFFERENT golden axis — carbon and cobra only;
//       docs/ALGORITHMS.md §15).
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "carbon/baselines/biga.hpp"
#include "carbon/baselines/codba.hpp"
#include "carbon/baselines/nested_ga.hpp"
#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/common/cli.hpp"
#include "carbon/common/csv.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/core/checkpoint.hpp"
#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/orlib_io.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/obs/metrics.hpp"
#include "carbon/obs/run_journal.hpp"

namespace {

using namespace carbon;

int usage() {
  std::fprintf(stderr,
               "usage: carbon <generate|relax|exact|greedy|solve> [flags]\n"
               "run with a command and no flags for its required arguments\n");
  return 1;
}

cover::Instance load(const common::CliArgs& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) {
    throw std::runtime_error("--in FILE is required");
  }
  return cover::load_orlib(path);
}

int cmd_generate(const common::CliArgs& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out FILE is required\n");
    return 1;
  }
  cover::GeneratorConfig cfg;
  cfg.num_bundles = static_cast<std::size_t>(args.get_int("bundles", 100));
  cfg.num_services = static_cast<std::size_t>(args.get_int("services", 5));
  cfg.tightness = args.get_double("tightness", cfg.tightness);
  cfg.density = args.get_double("density", cfg.density);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const cover::Instance inst = cover::generate(cfg);
  cover::save_orlib(out, inst);
  std::printf("wrote %s: %s\n", out.c_str(), inst.describe().c_str());
  return 0;
}

int cmd_relax(const common::CliArgs& args) {
  const cover::Instance inst = load(args);
  const cover::Relaxation r = cover::relax(inst);
  if (!r.feasible) {
    std::printf("infeasible: demands exceed market supply\n");
    return 0;
  }
  std::printf("lower bound: %.6f\n", r.lower_bound);
  std::printf("duals:");
  for (double d : r.duals) std::printf(" %.4f", d);
  std::printf("\n");
  return 0;
}

int cmd_exact(const common::CliArgs& args) {
  const cover::Instance inst = load(args);
  cover::ExactOptions opts;
  opts.max_nodes =
      static_cast<std::size_t>(args.get_int("max-nodes", 200'000));
  const cover::ExactResult r = cover::exact_solve(inst, opts);
  if (!r.feasible) {
    std::printf("infeasible\n");
    return 0;
  }
  std::printf("value: %.6f (%s, %zu nodes)\n", r.value,
              r.proven_optimal ? "proven optimal" : "node budget hit",
              r.nodes_explored);
  std::printf("selection:");
  for (std::size_t j = 0; j < r.selection.size(); ++j) {
    if (r.selection[j]) std::printf(" %zu", j);
  }
  std::printf("\n");
  return 0;
}

int cmd_greedy(const common::CliArgs& args) {
  const cover::Instance inst = load(args);
  const cover::Relaxation rel = cover::relax(inst);
  if (!rel.feasible) {
    std::printf("infeasible\n");
    return 0;
  }
  cover::SolveResult r;
  std::string how;
  if (args.has("tree")) {
    const gp::Tree tree = gp::parse(args.get("tree", ""));
    r = cover::greedy_solve(inst, gp::make_score_function(tree), rel.duals,
                            rel.relaxed_x);
    how = tree.to_string();
  } else {
    const std::string score = args.get("score", "ce");
    if (score == "ce") {
      r = cover::greedy_solve(inst, cover::cost_effectiveness_score,
                              rel.duals, rel.relaxed_x);
      how = "cost-effectiveness";
    } else if (score == "dual") {
      r = cover::greedy_solve(inst, cover::dual_score, rel.duals,
                              rel.relaxed_x);
      how = "dual score";
    } else {
      std::fprintf(stderr, "greedy: unknown --score '%s' (ce|dual)\n",
                   score.c_str());
      return 1;
    }
  }
  if (!r.feasible) {
    std::printf("instance cannot be covered\n");
    return 0;
  }
  std::printf("heuristic: %s\n", how.c_str());
  std::printf("value: %.6f  lower bound: %.6f  gap: %.4f%%\n", r.value,
              rel.lower_bound,
              100.0 * (r.value - rel.lower_bound) /
                  std::max(rel.lower_bound, 1.0));
  return 0;
}

int cmd_solve(const common::CliArgs& args) {
  const cover::Instance market = load(args);
  const auto owned = static_cast<std::size_t>(
      args.get_int("owned", static_cast<long long>(market.num_bundles() / 10)));
  const bcpop::Instance inst(market, owned);

  const std::string algo = args.get("algo", "carbon");
  // Counts land in unsigned config fields: reject zero/negative here, with
  // the flag named, instead of letting the cast wrap to a huge value.
  const auto pop = static_cast<std::size_t>(args.get_positive_int("pop", 30));
  const long long ul_budget = args.get_positive_int("ul-budget", 1'000);
  const long long ll_budget = args.get_positive_int("ll-budget", 3'000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads =
      static_cast<std::size_t>(args.get_positive_int("threads", 1));

  // Checkpoint/resume wiring (carbon and cobra only).
  core::CheckpointConfig checkpoint;
  checkpoint.path = args.get("checkpoint", "");
  checkpoint.every = args.get_positive_int("checkpoint-every", 0);
  checkpoint.resume_from = args.get("resume", "");
  if (checkpoint.every > 0 && checkpoint.path.empty()) {
    std::fprintf(stderr,
                 "solve: --checkpoint-every requires --checkpoint FILE\n");
    return 1;
  }
  if (!checkpoint.path.empty() && checkpoint.every == 0) {
    std::fprintf(stderr,
                 "solve: --checkpoint requires --checkpoint-every N\n");
    return 1;
  }
  const bool want_checkpoint =
      checkpoint.every > 0 || !checkpoint.resume_from.empty();
  if (want_checkpoint && algo != "carbon" && algo != "cobra") {
    std::fprintf(stderr,
                 "solve: --checkpoint/--resume require --algo carbon|cobra\n");
    return 1;
  }

  // Resource-budget guardrails (carbon and cobra only). 0 = unlimited.
  guard::GuardConfig guard_cfg;
  guard_cfg.limits.lp_iteration_cap = args.get_positive_int("guard-lp-iters", 0);
  guard_cfg.limits.construction_round_cap =
      args.get_positive_int("guard-rounds", 0);
  guard_cfg.limits.ll_node_cap = args.get_positive_int("guard-nodes", 0);
  guard_cfg.limits.watchdog_seconds = args.get_double("guard-watchdog", 0.0);
  if (guard_cfg.limits.watchdog_seconds < 0.0) {
    std::fprintf(stderr, "solve: --guard-watchdog must be >= 0\n");
    return 1;
  }
  if (guard_cfg.enabled() && algo != "carbon" && algo != "cobra") {
    std::fprintf(stderr, "solve: --guard-* require --algo carbon|cobra\n");
    return 1;
  }

  // Evaluator knobs (trajectory-neutral; docs/ALGORITHMS.md §14).
  const std::string sched_str = args.get("sched", "stealing");
  common::SchedKind sched = common::SchedKind::kStealing;
  if (sched_str == "parallel_for") {
    sched = common::SchedKind::kParallelFor;
  } else if (sched_str != "stealing") {
    std::fprintf(stderr, "solve: --sched must be stealing|parallel_for\n");
    return 1;
  }
  const std::string memo_str = args.get("memo-xgen", "on");
  if (memo_str != "on" && memo_str != "off") {
    std::fprintf(stderr, "solve: --memo-xgen must be on|off\n");
    return 1;
  }
  const bool memo_xgen = memo_str == "on";
  const std::string lp_warm_str = args.get("lp-warm", "baseline");
  bcpop::LpWarm lp_warm = bcpop::LpWarm::kBaseline;
  if (lp_warm_str == "pool") {
    lp_warm = bcpop::LpWarm::kPool;
  } else if (lp_warm_str != "baseline") {
    std::fprintf(stderr, "solve: --lp-warm must be baseline|pool\n");
    return 1;
  }
  if ((args.has("sched") || args.has("memo-xgen") || args.has("lp-warm")) &&
      algo != "carbon" && algo != "cobra") {
    std::fprintf(stderr,
                 "solve: --sched/--memo-xgen/--lp-warm require "
                 "--algo carbon|cobra\n");
    return 1;
  }

  // Optional telemetry sinks (outlive the solver run below).
  const std::string journal_path = args.get("journal", "");
  const bool want_metrics = args.get_bool("metrics");
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::RunJournal> journal;
  obs::TelemetryConfig telemetry;
  if (want_metrics || !journal_path.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    telemetry.metrics = metrics.get();
  }
  if (!journal_path.empty()) {
    journal = std::make_unique<obs::RunJournal>(journal_path, metrics.get());
    telemetry.journal = journal.get();
  }
  if (telemetry.enabled() && algo != "carbon" && algo != "cobra") {
    std::fprintf(stderr,
                 "solve: --journal/--metrics require --algo carbon|cobra\n");
    return 1;
  }

  core::RunResult result;
  std::string heuristic_repr;
  if (algo == "carbon") {
    core::CarbonConfig cfg;
    cfg.ul_population_size = pop;
    cfg.gp_population_size = pop;
    cfg.ul_eval_budget = ul_budget;
    cfg.ll_eval_budget = ll_budget;
    cfg.memetic_polish = args.get_bool("memetic");
    cfg.seed = seed;
    cfg.eval_threads = threads;
    cfg.sched = sched;
    cfg.memo_xgen = memo_xgen;
    cfg.lp_warm = lp_warm;
    cfg.telemetry = telemetry;
    cfg.checkpoint = checkpoint;
    cfg.guard = guard_cfg;
    const core::CarbonResult r = core::CarbonSolver(inst, cfg).run();
    heuristic_repr = gp::simplify(r.best_heuristic).to_string();
    result = r;
  } else if (algo == "cobra") {
    cobra::CobraConfig cfg;
    cfg.ul_population_size = pop;
    cfg.ll_population_size = pop;
    cfg.ul_eval_budget = ul_budget;
    cfg.ll_eval_budget = ll_budget;
    cfg.seed = seed;
    cfg.eval_threads = threads;
    cfg.sched = sched;
    cfg.memo_xgen = memo_xgen;
    cfg.lp_warm = lp_warm;
    cfg.telemetry = telemetry;
    cfg.checkpoint = checkpoint;
    cfg.guard = guard_cfg;
    result = cobra::CobraSolver(inst, cfg).run();
  } else if (algo == "biga") {
    baselines::BigaConfig cfg;
    cfg.population_size = pop;
    cfg.ul_eval_budget = ul_budget;
    cfg.ll_eval_budget = ll_budget;
    cfg.seed = seed;
    result = baselines::BigaSolver(inst, cfg).run();
  } else if (algo == "codba") {
    baselines::CodbaConfig cfg;
    cfg.ul_population_size = pop;
    cfg.ul_eval_budget = ul_budget;
    cfg.ll_eval_budget = ll_budget;
    cfg.seed = seed;
    result = baselines::CodbaSolver(inst, cfg).run();
  } else if (algo == "nested") {
    baselines::NestedGaConfig cfg;
    cfg.population_size = pop;
    cfg.ul_eval_budget = ul_budget;
    cfg.ll_eval_budget = ll_budget;
    cfg.seed = seed;
    result = baselines::NestedGaSolver(inst, cfg).run();
  } else {
    std::fprintf(stderr,
                 "solve: unknown --algo '%s' "
                 "(carbon|cobra|biga|codba|nested)\n",
                 algo.c_str());
    return 1;
  }

  std::printf("algorithm: %s\n", algo.c_str());
  if (!checkpoint.resume_from.empty()) {
    std::printf("resumed from: %s\n", checkpoint.resume_from.c_str());
  }
  if (checkpoint.every > 0) {
    std::printf("checkpointing to %s every %lld generations\n",
                checkpoint.path.c_str(), checkpoint.every);
  }
  std::printf("generations: %d  UL evals: %lld  LL evals: %lld\n",
              result.generations, result.ul_evaluations,
              result.ll_evaluations);
  std::printf("best leader revenue F: %.4f\n", result.best_ul_objective);
  std::printf("best %%-gap: %.4f\n", result.best_gap);
  if (!heuristic_repr.empty()) {
    std::printf("follower model: %s\n", heuristic_repr.c_str());
  }
  std::printf("best prices:");
  for (double p : result.best_pricing) std::printf(" %.2f", p);
  std::printf("\n");

  const std::string conv = args.get("convergence", "");
  if (!conv.empty()) {
    std::ofstream f(conv);
    if (!f) {
      std::fprintf(stderr, "solve: cannot write %s\n", conv.c_str());
      return 2;
    }
    common::CsvWriter csv(f);
    csv.header({"generation", "phase", "ul_evals", "ll_evals", "best_ul",
                "best_gap", "pop_best_ul", "pop_mean_gap"});
    for (const auto& pt : result.convergence) {
      csv.integer(pt.generation)
          .field(pt.phase)
          .integer(pt.ul_evaluations)
          .integer(pt.ll_evaluations)
          .number(pt.best_ul_so_far)
          .number(pt.best_gap_so_far)
          .number(pt.current_best_ul)
          .number(pt.current_mean_gap);
      csv.end_row();
    }
    std::printf("convergence written to %s (%zu rows)\n", conv.c_str(),
                result.convergence.size());
  }
  if (journal != nullptr) {
    std::printf("journal written to %s (%lld records)\n", journal_path.c_str(),
                journal->records_written());
  }
  if (want_metrics) {
    const obs::MetricsRegistry::Snapshot snap = metrics->snapshot();
    std::printf("metrics:\n");
    for (const auto& [name, value] : snap.counters) {
      std::printf("  %s: %lld\n", name.c_str(), value);
    }
    for (const auto& [name, value] : snap.gauges) {
      std::printf("  %s: %.6g\n", name.c_str(), value);
    }
    for (const auto& [name, t] : snap.timers) {
      std::printf("  %s: %.4fs over %lld intervals (max %.4fs)\n",
                  name.c_str(), t.total_seconds, t.count, t.max_seconds);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const common::CliArgs args(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "relax") return cmd_relax(args);
    if (command == "exact") return cmd_exact(args);
    if (command == "greedy") return cmd_greedy(args);
    if (command == "solve") return cmd_solve(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "carbon %s: %s\n", command.c_str(), e.what());
    return 2;
  }
}

// Multi-follower extension of the BCPOP — the paper's stated future work
// ("multiple-level problems with deeper nested structure"; the simplest
// realistic variant is several independent customers reacting to one
// pricing).
//
// K customers shop on the same market (same bundles, same leader prices) but
// each has its own service requirements b_f. The leader's revenue is the sum
// over customers; each customer independently solves its own covering
// instance. CARBON carries over unchanged: a scoring heuristic applies to
// *any* covering instance, so one predator population models all customers
// at once — exactly the property that breaks the nested structure in the
// single-follower case.
//
// Aggregate semantics (documented so the gap stays an Eq.-(1) quantity):
//   F       = Σ_f  revenue from customer f
//   A(x)    = Σ_f  customer f's basket cost
//   LB(x)   = Σ_f  LP bound of customer f's instance
//   %-gap   = 100 (A − LB) / max(LB, 1)          (gap of the summed system)
//   genome  = concatenation of the K per-customer baskets (for COBRA).
#pragma once

#include <memory>
#include <vector>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"

namespace carbon::bcpop {

class MultiFollowerProblem {
 public:
  /// `market` supplies bundles, competitor prices and the demands of
  /// follower 0; `extra_follower_demands` adds one follower per entry (each
  /// a vector of num_services demands).
  MultiFollowerProblem(Instance market,
                       std::vector<std::vector<int>> extra_follower_demands);

  [[nodiscard]] std::size_t num_followers() const noexcept {
    return followers_.size();
  }
  [[nodiscard]] const Instance& follower(std::size_t f) const {
    return followers_[f];
  }
  [[nodiscard]] std::span<const ea::Bounds> price_bounds() const noexcept {
    return followers_.front().price_bounds();
  }
  [[nodiscard]] std::size_t num_bundles() const noexcept {
    return followers_.front().num_bundles();
  }

 private:
  std::vector<Instance> followers_;
};

/// Derives a K-follower problem from a paper-class market by perturbing the
/// base demands per follower (deterministic in `seed`).
[[nodiscard]] MultiFollowerProblem make_multi_follower(
    Instance market, std::size_t num_followers, std::uint64_t seed = 1);

class MultiFollowerEvaluator final : public EvaluatorInterface {
 public:
  using EvaluatorInterface::evaluate_with_heuristic;
  using EvaluatorInterface::evaluate_with_selection;

  explicit MultiFollowerEvaluator(const MultiFollowerProblem& problem);

  Evaluation evaluate_with_heuristic(std::span<const double> pricing,
                                     const gp::Tree& heuristic,
                                     EvalPurpose purpose) override;
  Evaluation evaluate_with_selection(std::span<const double> pricing,
                                     std::span<const std::uint8_t> selection,
                                     EvalPurpose purpose) override;

  [[nodiscard]] std::span<const ea::Bounds> price_bounds() const override {
    return problem_.price_bounds();
  }
  /// Concatenated per-follower baskets.
  [[nodiscard]] std::size_t genome_length() const override {
    return problem_.num_bundles() * problem_.num_followers();
  }
  [[nodiscard]] long long ul_evaluations() const override { return ul_evals_; }
  /// One LL evaluation per follower solve (cost scales with K).
  [[nodiscard]] long long ll_evaluations() const override { return ll_evals_; }

  /// Per-follower breakdown of the most recent evaluation.
  [[nodiscard]] const std::vector<Evaluation>& last_breakdown() const {
    return last_breakdown_;
  }

  /// Sum of the per-follower evaluators' cache/memo statistics.
  [[nodiscard]] BackendStats backend_stats() const override;

  /// Forwards the registry to every per-follower evaluator.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept override;

  /// Forwards the guard config to every per-follower evaluator. Each
  /// follower meters its own injection countdown against its own ll
  /// counter, so `eval_base` is forwarded as-is.
  void set_guard(const guard::GuardConfig& config,
                 long long eval_base) noexcept override;

  /// Drops every per-follower evaluator's caches (counters kept).
  void clear_caches() noexcept override;

 private:
  Evaluation aggregate(std::span<const double> pricing, EvalPurpose purpose);

  const MultiFollowerProblem& problem_;
  std::vector<std::unique_ptr<Evaluator>> per_follower_;
  std::vector<Evaluation> last_breakdown_;
  long long ul_evals_ = 0;
  long long ll_evals_ = 0;
};

}  // namespace carbon::bcpop

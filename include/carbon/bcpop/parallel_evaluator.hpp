// Parallel batch evaluation of BCPOP pricings.
//
// A generation of CARBON or COBRA evaluates hundreds of independent
// (pricing × heuristic) or (pricing × genome) pairs before any reduction
// happens — the hottest path of the whole system (Table II allots 10^5
// evaluations per run). ParallelEvaluator fans those batches across a
// work-stealing common::TaskScheduler (default) or the barriered
// common::ThreadPool reference path (Options::sched):
//
//   * each worker evaluates with its OWN EvalContext (market copy, LP,
//     fixed warm-start basis) — no shared mutable state on the solve path;
//   * relaxations are shared through a sharded, mutex-per-shard LRU cache
//     (ShardedRelaxationCache) with once-semantics, so a pricing reused
//     across jobs, threads, and generations is solved exactly once;
//   * finished heuristic Evaluations are memoized ACROSS generations in a
//     bounded ScoreCache (hits still charge the Table II budgets, so the
//     trajectory is untouched — docs/ALGORITHMS.md §14);
//   * budget counters are atomics, aggregated per job;
//   * batch results are returned in submission order.
//
// Determinism: every Evaluation is a pure function of its job inputs (the
// relaxation solve warm-starts from a fixed baseline basis; greedy, repair
// and scoring are deterministic; evaluation consumes no RNG), and solvers
// reduce batch results in submission order — so a run with N threads is
// bit-identical to the serial path for a fixed seed, for any N.
//
// Pool mode (Options::lp_warm = LpWarm::kPool, docs/ALGORITHMS.md §15):
// relaxation solves warm-start from the nearest pooled basis instead of the
// fixed baseline. Batches then run a staged discipline — cache probes and
// pool selections on the calling thread in submission order, LP solves
// fanned out with pre-copied start bases, commits back on the calling
// thread in submission order — so the pool, the (1-shard) caches and every
// counter evolve identically for any thread count and either engine. A
// rejected pooled basis is re-solved from the fixed baseline, making the
// result bit-identical to a pool miss. Scalar entry points in pool mode run
// the same staging inline and are NOT safe to call concurrently (the
// solvers only call them from their main loop); the wall-clock watchdog
// skip is not applied on pooled batch solves (it is explicitly
// non-deterministic and suspends the score memo anyway).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "carbon/bcpop/basis_pool.hpp"
#include "carbon/bcpop/eval_core.hpp"
#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"
#include "carbon/bcpop/relaxation_cache.hpp"
#include "carbon/bcpop/score_cache.hpp"
#include "carbon/common/task_scheduler.hpp"
#include "carbon/common/thread_pool.hpp"
#include "carbon/obs/metrics.hpp"

namespace carbon::bcpop {

class ParallelEvaluator final : public EvaluatorInterface {
 public:
  using EvaluatorInterface::evaluate_with_heuristic;
  using EvaluatorInterface::evaluate_with_selection;

  struct Options {
    std::size_t threads = 0;  ///< 0 = hardware concurrency
    std::size_t relaxation_cache_capacity = 4096;
    std::size_t cache_shards = 16;
    /// Fan-out engine: the work-stealing TaskScheduler (default) or the
    /// barriered ThreadPool::parallel_for reference path. Bit-identical
    /// results either way; stealing overlaps a slow relaxation-miss job
    /// with the rest of the batch instead of idling behind chunk barriers.
    common::SchedKind sched = common::SchedKind::kStealing;
    /// Cross-generation score memoization (docs/ALGORITHMS.md §14).
    bool memo_xgen = true;
    std::size_t score_cache_capacity = 4096;
    std::size_t score_cache_shards = 16;
    /// Warm-start policy for the LL relaxation solves. kPool switches the
    /// evaluator to the staged pool discipline (see the header comment) and
    /// forces both caches to ONE shard so their eviction order matches the
    /// serial LRU exactly; kBaseline (default) leaves PR-1 behavior — and
    /// every existing golden trajectory — bit-for-bit intact.
    LpWarm lp_warm = LpWarm::kBaseline;
    /// Bound on the basis pool (pool mode only).
    std::size_t basis_pool_capacity = BasisPool::kDefaultCapacity;
  };

  ParallelEvaluator(const Instance& instance, Options options);
  /// Convenience: `threads` workers, default cache geometry and engine.
  ParallelEvaluator(const Instance& instance, std::size_t threads)
      : ParallelEvaluator(instance, Options{.threads = threads}) {}

  /// Fans the jobs across the pool; results[i] answers jobs[i]. Heuristic
  /// batches first deduplicate through the per-batch score memo (planned on
  /// the calling thread, so the evaluated set — and therefore the result
  /// bits — is independent of the thread count); duplicates still charge
  /// the Table II budget.
  std::vector<Evaluation> evaluate_heuristic_batch(
      std::span<const HeuristicJob> jobs) override;
  std::vector<Evaluation> evaluate_selection_batch(
      std::span<const SelectionJob> jobs) override;

  /// Scalar entry points run on the calling thread (they still share the
  /// relaxation cache and counters, and are safe to call concurrently).
  Evaluation evaluate_with_heuristic(std::span<const double> pricing,
                                     const gp::Tree& heuristic,
                                     EvalPurpose purpose) override;
  Evaluation evaluate_with_selection(std::span<const double> pricing,
                                     std::span<const std::uint8_t> selection,
                                     EvalPurpose purpose) override;

  /// Toggling drops the cross-generation score cache (entries were computed
  /// under the other setting). Configure between batches.
  void set_polish(bool enabled) noexcept {
    if (enabled != polish_) xgen_.clear();
    polish_ = enabled;
  }
  [[nodiscard]] bool polish() const noexcept { return polish_; }

  /// When enabled (the default), scoring trees are compiled into batched
  /// SoA bytecode (one compile per distinct genome per batch) instead of
  /// being re-interpreted per bundle — bit-identical results, see
  /// gp::CompiledProgram. Configure before submitting work; not
  /// synchronized against in-flight batches. Toggling drops the
  /// cross-generation score cache (the backends key by different node
  /// forms: canonical vs raw).
  void set_compiled_scoring(bool enabled) noexcept {
    if (enabled != compiled_scoring_) xgen_.clear();
    compiled_scoring_ = enabled;
  }
  [[nodiscard]] bool compiled_scoring() const noexcept {
    return compiled_scoring_;
  }

  [[nodiscard]] std::span<const ea::Bounds> price_bounds() const override {
    return inst_.price_bounds();
  }
  [[nodiscard]] std::size_t genome_length() const override {
    return inst_.num_bundles();
  }
  [[nodiscard]] const Instance& instance() const noexcept { return inst_; }
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }
  /// Warm-start policy this evaluator was built with (immutable: switching
  /// would invalidate cached relaxations computed under the other policy).
  [[nodiscard]] LpWarm lp_warm() const noexcept { return lp_warm_; }
  /// The warm-start basis pool (empty and untouched under kBaseline).
  [[nodiscard]] const BasisPool& basis_pool() const noexcept {
    return basis_pool_;
  }
  /// Which fan-out engine batches run on.
  [[nodiscard]] common::SchedKind sched() const noexcept { return sched_kind_; }
  /// Scheduler-side counters (tasks/steals/idle); all-zero under the
  /// ThreadPool engine. Timing-dependent — observability only.
  [[nodiscard]] common::TaskScheduler::Stats sched_stats() const noexcept {
    return scheduler_ ? scheduler_->stats() : common::TaskScheduler::Stats{};
  }

  [[nodiscard]] long long ul_evaluations() const override {
    return ul_evals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long ll_evaluations() const override {
    return ll_evals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long long relaxations_solved() const noexcept {
    return cache_.solves();
  }
  [[nodiscard]] long long relaxation_cache_hits() const noexcept {
    return cache_.hits();
  }
  [[nodiscard]] const ShardedRelaxationCache& cache() const noexcept {
    return cache_;
  }
  /// Batch heuristic jobs answered by the per-batch score memo instead of a
  /// fresh greedy solve (still charged to the budget).
  [[nodiscard]] long long heuristic_dedup_hits() const noexcept {
    return dedup_hits_.load(std::memory_order_relaxed);
  }

  /// Cross-generation score memoization (docs/ALGORITHMS.md §14): finished
  /// heuristic Evaluations are cached across batches and generations. Hits
  /// still charge the Table II budgets, so trajectories are bit-identical
  /// either way. Suspended automatically while the wall-clock watchdog is
  /// armed. Configure between batches.
  void set_memo_xgen(bool enabled) noexcept {
    if (!enabled) xgen_.clear();
    memo_xgen_ = enabled;
  }
  [[nodiscard]] bool memo_xgen() const noexcept { return memo_xgen_; }
  [[nodiscard]] const ScoreCache& score_cache() const noexcept {
    return xgen_;
  }

  /// Uniform telemetry snapshot (cache + memo counters).
  [[nodiscard]] BackendStats backend_stats() const override;

  /// Attaches a metrics registry; workers then time LP-relaxation solves
  /// ("time/lp_relaxation") and LL greedy solves ("time/ll_solve") from
  /// their own threads (the registry is thread-sharded). Configure between
  /// batches, like the other toggles; trajectory-neutral.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept override {
    metrics_ = metrics;
  }

  /// Installs deterministic per-evaluation budgets + the injection hook on
  /// every context. Injection ordinals are assigned in submission order
  /// (batch job i gets ordinal base+i, planned before fan-out), so the trip
  /// lands on the same evaluation for any thread count. Configure between
  /// batches. Changing the LIMITS drops both caches — entries warmed under
  /// other limits would serve stale degradation rungs.
  void set_guard(const guard::GuardConfig& config,
                 long long eval_base) noexcept override;

  /// Drops the relaxation cache and the cross-generation score cache
  /// (counters kept). Called by solvers on checkpoint resume.
  void clear_caches() noexcept override;

 private:
  using RelaxationPtr = ShardedRelaxationCache::RelaxationPtr;

  /// RAII lease of one evaluation context from the free list.
  class ContextLease;
  /// RAII block of per-participant context leases for a scheduler batch
  /// (acquired lazily: a participant that never runs a job never leases).
  class BatchLeases;

  /// Engine dispatch: runs body(ctx, i) for every i in [0, n) on the
  /// configured fan-out engine, handing each invocation a leased context.
  /// Under the work-stealing engine one context is leased per PARTICIPANT
  /// for the whole batch (≤ threads+1 free-list round trips per batch,
  /// instead of one per job) and sched/{tasks,steals,idle_ns} deltas are
  /// pushed to the metrics registry at the barrier.
  void for_each(std::size_t n,
                const std::function<void(EvalContext&, std::size_t)>& body);

  /// True when the cross-generation cache may serve/absorb results right
  /// now (armed watchdog makes evaluations wall-clock-dependent).
  [[nodiscard]] bool xgen_active() const noexcept {
    return memo_xgen_ && guard_.limits.watchdog_seconds <= 0.0;
  }

  /// Free-list primitives behind ContextLease/BatchLeases.
  [[nodiscard]] EvalContext* acquire_context();
  void release_context(EvalContext* ctx) noexcept;

  /// Solve + finalize, WITHOUT charging (batch/scalar callers charge per
  /// submitted job so memo hits still pay). Null `program` = interpreter.
  /// `injected` forces the guard trip (fresh, cache-bypassing relaxation).
  Evaluation evaluate_heuristic_job(EvalContext& ctx, const HeuristicJob& job,
                                    const gp::CompiledProgram* program,
                                    bool injected);
  /// Charges, then solves + finalizes + counts guard outcomes.
  Evaluation evaluate_one(EvalContext& ctx, const SelectionJob& job,
                          bool injected);
  /// Pool-mode variant of evaluate_one: the relaxation was already resolved
  /// by the staged pass, only the construction stage runs here.
  Evaluation evaluate_one_with(EvalContext& ctx, const SelectionJob& job,
                               const cover::Relaxation& relax);
  /// Pool-mode staged relaxation resolution: stage A probes the cache and
  /// selects (copying) pooled start bases on the calling thread in
  /// submission order; stage B fans the misses out through
  /// solve_relaxation_pooled (a rejected pooled basis is re-solved from the
  /// fixed baseline); stage C — again the calling thread, in submission
  /// order — records metrics and pool counters, commits final bases to the
  /// pool and inserts results into the cache. Returns one pinned relaxation
  /// per input pricing (duplicates share a solve).
  [[nodiscard]] std::vector<RelaxationPtr> resolve_pooled(
      std::span<const std::span<const double>> pricings);
  /// Construction stage under the guard plan (skip-or-solve + finalize).
  Evaluation finish_heuristic(EvalContext& ctx, const cover::Relaxation& relax,
                              const HeuristicJob& job,
                              const gp::CompiledProgram* program);
  void charge(EvalPurpose purpose) noexcept;
  void count_guard(const Evaluation& evaluation) noexcept;
  [[nodiscard]] bool inject_now(long long ordinal) const noexcept {
    return inject_at_ >= 0 && ordinal == inject_at_;
  }

  template <typename Job>
  std::vector<Evaluation> run_batch(std::span<const Job> jobs);

  const Instance& inst_;
  std::size_t threads_;
  common::SchedKind sched_kind_;
  LpWarm lp_warm_;
  // Exactly one engine is constructed, per Options::sched.
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<common::TaskScheduler> scheduler_;
  ShardedRelaxationCache cache_;
  ScoreCache xgen_;
  bool memo_xgen_;
  // threads + 1 contexts: every worker plus the caller thread (scalar calls
  // and the tail of a batch the caller may help with never starve).
  std::vector<std::unique_ptr<EvalContext>> contexts_;
  std::vector<EvalContext*> free_contexts_;
  std::mutex free_mutex_;
  std::condition_variable free_cv_;
  std::atomic<long long> ul_evals_{0};
  std::atomic<long long> ll_evals_{0};
  std::atomic<long long> dedup_hits_{0};
  std::atomic<long long> guard_trips_{0};
  std::atomic<long long> guard_degraded_{0};
  std::atomic<long long> guard_exhausted_{0};
  /// Warm-start bases the solver rejected (any mode; workers count their
  /// own baseline-mode solves, hence atomic).
  std::atomic<long long> warm_rejects_{0};
  // Pool-mode state. The pool and these counters are only ever touched on
  // the batch-submitting thread (stage A/C of resolve_pooled), in
  // submission order — which is the determinism argument for plain fields.
  BasisPool basis_pool_;
  long long pool_hits_ = 0;
  long long pool_rejects_ = 0;
  long long pivots_saved_ = 0;
  /// Running mean inputs for the pivots_saved estimate: iterations of
  /// baseline-start, full-rung, feasible solves seen so far. Reset with the
  /// pool (clear_caches / limit changes) so a resumed segment estimates
  /// from its own history only.
  long long base_iter_sum_ = 0;
  long long base_iter_count_ = 0;
  bool polish_ = false;
  bool compiled_scoring_ = true;
  obs::MetricsRegistry* metrics_ = nullptr;
  guard::GuardConfig guard_{};
  long long inject_at_ = -1;  ///< Absolute ll ordinal to trip; -1 = never.
};

}  // namespace carbon::bcpop

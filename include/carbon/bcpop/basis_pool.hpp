// Deterministic warm-start basis pool for the LL relaxation hot path.
//
// Within a run every relaxation LP shares one constraint matrix — only the
// cost vector moves with the UL pricing — so ANY basis that was optimal for
// one pricing stays primal-feasible for every other pricing. The pool keeps
// a small bounded set of (pricing -> optimal Basis) entries and hands each
// new solve the basis of the NEAREST previously seen pricing, which for an
// evolutionary population (offspring are perturbations of parents) is
// usually a handful of pivots away from optimal, versus hundreds from the
// fixed baseline basis.
//
// Determinism contract: selection uses a quantized distance — the squared
// Euclidean distance accumulated in doubles over ascending indices, then
// cast to float — with ties broken by the LOWEST insertion ordinal, and
// eviction removes the least-recently-used entry (ties again by lowest
// ordinal). Given the same sequence of select()/insert() calls the pool is
// therefore a pure function of its history, with no dependence on memory
// addresses or hash-map iteration order. The pool is NOT thread-safe: the
// pool-mode evaluator performs every select/insert on the batch-submitting
// thread in submission order (see docs/ALGORITHMS.md §15).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "carbon/lp/simplex.hpp"

namespace carbon::bcpop {

/// Warm-start policy for the LL relaxation solves (config/CLI axis).
enum class LpWarm : unsigned char {
  /// Every solve warm-starts from the fixed base-cost basis. This is the
  /// PR-1 behavior, bit for bit: existing golden trajectories hold.
  kBaseline,
  /// Solves warm-start from the nearest pooled basis (falling back to the
  /// baseline on miss/rejection). A new golden axis: degenerate LPs with
  /// alternate optima can surface different — equally optimal — duals/x̄
  /// depending on the start basis, so trajectories differ from baseline
  /// while remaining deterministic across threads/sched/compiled_scoring.
  kPool
};

[[nodiscard]] const char* to_string(LpWarm w) noexcept;

class BasisPool {
 public:
  explicit BasisPool(std::size_t capacity = kDefaultCapacity);

  /// Returns the entry whose pricing key minimizes the quantized distance
  /// to `pricing` (ties: lowest insertion ordinal), touching its recency;
  /// nullptr when the pool is empty. The pointer is invalidated by the next
  /// insert()/clear() — callers copy the basis before fanning out.
  [[nodiscard]] const lp::Basis* select(std::span<const double> pricing);

  /// Commits `basis` under `pricing`: an entry with the exact same key is
  /// replaced in place (keeping its insertion ordinal); otherwise a new
  /// entry is appended, evicting the least-recently-used entry when full.
  void insert(std::span<const double> pricing, const lp::Basis& basis);

  /// Drops every entry AND resets the ordinal/recency clocks, so a cleared
  /// pool is indistinguishable from a fresh one (the resume discipline:
  /// a resumed segment must never consume another segment's pooled bases).
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] long long evictions() const noexcept { return evictions_; }

  static constexpr std::size_t kDefaultCapacity = 32;

 private:
  struct Entry {
    std::vector<double> key;
    lp::Basis basis;
    std::uint64_t ordinal = 0;   ///< insertion order, never reused
    std::uint64_t last_use = 0;  ///< recency clock at last select/insert
  };

  std::vector<Entry> entries_;
  std::size_t capacity_;
  std::uint64_t next_ordinal_ = 0;
  std::uint64_t clock_ = 0;
  long long evictions_ = 0;
};

}  // namespace carbon::bcpop

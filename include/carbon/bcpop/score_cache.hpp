// Cross-generation memo of completed heuristic evaluations.
//
// The per-batch score memo (eval_core's HeuristicBatchPlan) collapses
// duplicate (tree × pricing × purpose) jobs WITHIN one batch, but GP
// reproduction/elitism and archive re-evaluation repeat the same pairs
// ACROSS generations — and each repeat re-pays the full relaxation-miss +
// greedy cost. ScoreCache closes that gap: a bounded, sharded LRU from the
// evaluation's exact inputs to its finished Evaluation.
//
// Keying: (scoring-tree nodes × pricing × purpose), hashed FNV-1a over the
// raw bit patterns and always re-verified bitwise on lookup — a hash
// collision costs a comparison, never a wrong result. With compiled scoring
// the caller keys by the CANONICAL program nodes, so syntactically different
// genomes that simplify to the same program share one entry (the same merge
// rule the per-batch plan applies); with the interpreter it keys by the raw
// tree. Everything else an Evaluation depends on (guard limits, the polish
// toggle, the scoring backend) is held fixed by the owning evaluator, which
// clears the cache whenever one of them changes — see Evaluator::set_guard.
//
// Budget neutrality: the cache stores RESULTS, not budget charges. Callers
// charge the Table II UL/LL counters for every submitted job, hit or miss,
// so a cached run walks the exact generation/injection schedule of an
// uncached one (docs/ALGORITHMS.md §14).
//
// Unlike ShardedRelaxationCache there are no in-flight placeholders: the
// batch path probes and inserts from the calling thread only (outside the
// fan-out), so once-semantics adds nothing, and the scalar paths tolerate a
// rare duplicated solve (both compute identical bits).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::bcpop {

class ScoreCache {
 public:
  /// `capacity` bounds the total cached evaluations, split evenly across
  /// `num_shards` (each shard keeps at least one). One shard degenerates to
  /// a classic mutex-protected LRU with exact eviction order — what the
  /// serial evaluator uses.
  explicit ScoreCache(std::size_t capacity, std::size_t num_shards = 16);

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Copies the cached Evaluation for this key into `*out` and refreshes
  /// its LRU position. Returns false (counting a miss) when absent.
  bool lookup(std::span<const gp::Node> nodes, std::span<const double> pricing,
              EvalPurpose purpose, Evaluation* out);

  /// Inserts (or refreshes) the evaluation for this key, evicting
  /// least-recently-used entries beyond the shard capacity. Callers must
  /// only insert results that are pure functions of the key — injected
  /// (ordinal-dependent) and watchdog-skipped (wall-clock-dependent)
  /// evaluations never belong here.
  void insert(std::span<const gp::Node> nodes, std::span<const double> pricing,
              EvalPurpose purpose, const Evaluation& result);

  /// Lookups answered from the cache.
  [[nodiscard]] long long hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Lookups that found nothing.
  [[nodiscard]] long long misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped by the per-shard capacity bound (clear() not included).
  [[nodiscard]] long long evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Currently cached entries, summed over shards.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shard_capacity_;
  }

  /// Drops every entry (counters are kept: they are lifetime totals that
  /// checkpoint/resume offsets rely on).
  void clear();

 private:
  struct Entry {
    std::vector<gp::Node> nodes;
    std::vector<double> pricing;
    EvalPurpose purpose;
    Evaluation value;
  };

  struct Shard {
    std::mutex mutex;
    /// front = most recently used; iterators are stable across splices.
    std::list<Entry> lru;
    /// FNV hash -> entries with that hash (collisions verified bitwise).
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        chains;
  };

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace carbon::bcpop

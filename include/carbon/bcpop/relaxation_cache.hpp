// Thread-safe sharded LRU cache of LP relaxations, keyed by pricing.
//
// This replaces the evaluator's former single-map memo whose eviction policy
// was a wholesale clear(): that policy invalidated `const Relaxation&`
// handles still held by callers mid-evaluation, and a single map cannot be
// shared across evaluation threads without serializing every lookup.
//
// Design:
//   * entries are handed out as shared_ptr<const Relaxation>, so an entry a
//     caller holds stays valid no matter what the cache evicts afterwards
//     ("pinning");
//   * the key space is split across S shards, each with its own mutex and a
//     bounded LRU list, so concurrent lookups of different pricings contend
//     only when they hash to the same shard;
//   * a miss inserts an in-flight placeholder before solving, so concurrent
//     requests for the SAME pricing block on the one solve instead of
//     duplicating it (once-semantics). This keeps relaxations_solved() equal
//     to the number of distinct pricings when no eviction occurs, and makes
//     the invariant  hits() + solves() == lookups  hold under any schedule;
//   * eviction removes least-recently-used entries beyond the per-shard
//     capacity but never the entry being handed out by the current call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "carbon/cover/relaxation.hpp"

namespace carbon::bcpop {

/// FNV-1a over the raw bit patterns; exact-match keying is what we want
/// because identical genomes produce bit-identical prices.
struct PricingHash {
  std::size_t operator()(const std::vector<double>& v) const noexcept;
};

class ShardedRelaxationCache {
 public:
  using RelaxationPtr = std::shared_ptr<const cover::Relaxation>;
  using SolveFn = std::function<cover::Relaxation(std::span<const double>)>;

  /// `capacity` bounds the total number of cached relaxations (split evenly
  /// across `num_shards`, each shard keeping at least one entry). One shard
  /// degenerates to a classic mutex-protected LRU, which is what the serial
  /// evaluator uses so its eviction order stays exact.
  explicit ShardedRelaxationCache(std::size_t capacity,
                                  std::size_t num_shards = 16);

  ShardedRelaxationCache(const ShardedRelaxationCache&) = delete;
  ShardedRelaxationCache& operator=(const ShardedRelaxationCache&) = delete;

  /// Returns the cached relaxation for `pricing`, or invokes `solve` (outside
  /// any lock) to compute, cache, and return it. Concurrent callers with the
  /// same pricing wait for the in-flight solve instead of re-solving. The
  /// returned pointer stays valid for as long as the caller holds it.
  RelaxationPtr get_or_compute(std::span<const double> pricing,
                               const SolveFn& solve);

  /// Staged-batch probe (pool-mode evaluator): returns the ready entry for
  /// `pricing` — counting a hit and touching its recency — or null on a
  /// miss, counting nothing; the caller solves outside the cache and
  /// insert()s the result, which books the solve. In-flight placeholders
  /// read as misses (the staged discipline never runs concurrently with
  /// get_or_compute on the same cache).
  [[nodiscard]] RelaxationPtr lookup(std::span<const double> pricing);

  /// Staged-batch completion: caches an externally computed relaxation,
  /// counting one solve and applying the LRU bound. Overwrites any existing
  /// entry for the key.
  void insert(std::span<const double> pricing, RelaxationPtr value);

  /// Completed solves (cache misses that ran the solver).
  [[nodiscard]] long long solves() const noexcept {
    return solves_.load(std::memory_order_relaxed);
  }
  /// Lookups served from the cache, including waits on an in-flight solve.
  [[nodiscard]] long long hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Ready entries dropped by the per-shard capacity bound. Pinned entries
  /// (shared_ptrs held by callers) stay valid past their eviction; this
  /// counts only the cache-side drops, so absent clear() the invariant
  /// size() == solves() - evictions() holds under any schedule.
  [[nodiscard]] long long evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Currently cached (ready) entries, summed over shards.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shard_capacity_;
  }

  /// Drops every ready entry (in-flight solves complete and self-insert).
  void clear();

 private:
  using Key = std::vector<double>;

  struct Entry {
    RelaxationPtr value;              ///< null while the solve is in flight
    std::list<Key>::iterator lru_pos; ///< valid only when value != nullptr
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable ready_cv;
    std::unordered_map<Key, Entry, PricingHash> map;
    std::list<Key> lru;  ///< front = most recently used; ready entries only
  };

  Shard& shard_for(std::span<const double> pricing) noexcept;

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<long long> solves_{0};
  std::atomic<long long> hits_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace carbon::bcpop

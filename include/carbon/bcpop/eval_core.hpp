// Evaluation core shared by the serial and parallel BCPOP evaluators.
//
// Everything here is a pure function of (context, inputs): no counters, no
// caches, no hidden state that depends on call history. That property is
// what makes parallel batch evaluation bit-deterministic — a relaxation or a
// greedy solve computes the same bits no matter which thread runs it, in
// what order, or whether a cache hit short-circuited it on another run.
//
// EvalContext owns the mutable scratch one evaluation thread needs: a
// working copy of the market (leader prices are substituted in place), the
// relaxation LP, and a FIXED warm-start basis. The basis is the optimal
// basis of the base-market LP, computed once at construction: it stays
// primal-feasible for every pricing (only objective coefficients change),
// so every solve still skips Phase 1, but — unlike the previous
// carry-the-last-basis scheme — the pivot sequence for a pricing no longer
// depends on which pricing happened to be evaluated before it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/guard/guard.hpp"
#include "carbon/gp/compiled.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::obs {
class MetricsRegistry;
}  // namespace carbon::obs

namespace carbon::bcpop {

/// Per-thread mutable evaluation state for one market.
struct EvalContext {
  /// Builds (and validates, and baseline-solves) the relaxation family for
  /// this context alone.
  explicit EvalContext(const Instance& instance);
  /// Clones the relaxation structure from a shared, already-validated
  /// family — the parallel evaluator builds ONE RelaxationFamily and stamps
  /// out per-thread contexts from it, so the matrix is built/validated and
  /// the baseline LP solved once per evaluator instead of once per thread.
  EvalContext(const Instance& instance, const cover::RelaxationFamily& shared);

  const Instance* inst;
  cover::Instance ll;  ///< Working copy; leader prices substituted.
  /// Relaxation LP family: constraint matrix/bounds frozen, validated once;
  /// only the objective moves via rebind(). Replaces the per-evaluation
  /// rebuild/re-validate of a plain lp::Problem.
  lp::ProblemFamily ll_family;
  /// Reusable simplex working memory bound to every solve of this context.
  lp::SolveScratch lp_scratch;
  lp::Basis baseline_basis;  ///< Optimal basis of the base-market LP.
  /// Per-solve working copy of baseline_basis. Assigned (not constructed)
  /// each call, so the two basis vectors keep their capacity and the hot
  /// path stops paying two heap allocations per evaluation.
  lp::Basis basis_scratch;
  // Evaluation scratch, reused across solves so the hot path never
  // allocates: the interpreter's operand stack (trees > 64 nodes), the
  // compiled program's register file (num_registers x bundles doubles),
  // the batched greedy's working memory (residuals, feature columns, score
  // buffer, dirty set), and the static fast path's score column.
  std::vector<double> op_scratch;
  std::vector<double> reg_scratch;
  cover::GreedyScratch greedy_scratch;
  std::vector<double> static_scores;
  /// Per-evaluation resource budgets (default: unlimited, which makes every
  /// guarded entry point bitwise-identical to its historical unguarded
  /// form). Owned per context but always set uniformly by the evaluator, so
  /// evaluations stay pure functions of (pricing, limits).
  guard::Limits guard{};
};

/// Solves the LP relaxation of LL(pricing), warm-started from the context's
/// fixed baseline basis. Pure in `pricing`: identical pricings produce
/// bit-identical relaxations in any context of the same instance. Throws
/// std::runtime_error on solver failure (not on infeasibility).
[[nodiscard]] cover::Relaxation solve_relaxation(
    EvalContext& ctx, std::span<const double> pricing);

/// Budget-guarded relaxation: walks the degradation ladder under
/// ctx.guard's deterministic limits. With unlimited limits and no forced
/// trip this IS solve_relaxation (bitwise). Otherwise rung 0 runs the
/// simplex under an iteration cap; a capped-out (or force-tripped) solve
/// falls to the rung-1 Lagrangian subgradient bound, and past that to the
/// rung-2 greedy-only bound (LB = 0, empty duals/x̄). The result — rung,
/// trip, and node charge included — is a pure function of (pricing,
/// ctx.guard, force_trip, force_rung), so cap-induced degradations are
/// safely cacheable; forced (injected) ones are eval-ordinal-dependent and
/// must bypass the relaxation cache.
[[nodiscard]] cover::Relaxation solve_relaxation_guarded(
    EvalContext& ctx, std::span<const double> pricing,
    guard::Trip force_trip = guard::Trip::kNone,
    guard::Rung force_rung = guard::Rung::kLagrangian);

/// Pool-mode relaxation kernel: like solve_relaxation_guarded without the
/// forced-trip branch (injected evaluations bypass the pool entirely), but
/// warm-starting from an EXPLICIT basis instead of the context's fixed
/// baseline. Pass an empty `warm` to crash-start. When `final_basis` is
/// non-null and the rung-0 simplex finished optimal with an artificial-free
/// basis, that basis is copied out for the caller to commit to its pool;
/// degraded rungs (cap trips) never export one. Pure in (pricing, warm,
/// ctx.guard) like the other kernels.
[[nodiscard]] cover::Relaxation solve_relaxation_pooled(
    EvalContext& ctx, std::span<const double> pricing, const lp::Basis& warm,
    lp::Basis* final_basis);

/// Construction-stage budget derived from the limits and the node charge
/// the bound already consumed. When `skip` is set the whole node budget is
/// gone: score the evaluation via skipped_evaluation without running the
/// greedy at all.
struct ConstructionBudget {
  bool skip = false;
  cover::GreedyOptions options{};
};

[[nodiscard]] ConstructionBudget plan_construction(
    const guard::Limits& limits, const cover::Relaxation& relax);

/// Assembles the Evaluation for a construction stage that never ran (node
/// budget exhausted before the greedy, or the wall-clock watchdog fired):
/// infeasible, sentinel gap, all-zero selection, budget_exhausted set.
/// `trip` overrides the relaxation's own trip when that is kNone.
[[nodiscard]] Evaluation skipped_evaluation(const Instance& inst,
                                            std::span<const double> pricing,
                                            const cover::Relaxation& relax,
                                            guard::Trip trip,
                                            EvalPurpose purpose);

/// Records the solver-effort counters of a freshly computed relaxation into
/// `metrics` (lp/iterations, lp/refactorizations, lp/warm_start_hits,
/// lp/warm_start_rejects, lp/ftran_nnz_skipped). Null-safe; call only on
/// cache MISSES so the counters measure actual simplex work, not cache hits.
void record_lp_metrics(obs::MetricsRegistry* metrics,
                       const cover::Relaxation& relax);

/// Greedy driven by a GP scoring tree; takes the sort-based static fast path
/// when the tree ignores residual-dependent terminals. When `polish` is set,
/// feasible covers are improved with cover::local_search (memetic variant).
/// `greedy` carries the construction-stage budget (from plan_construction);
/// the default is unlimited and reproduces the historical behavior exactly.
[[nodiscard]] cover::SolveResult solve_with_heuristic(
    EvalContext& ctx, const cover::Relaxation& relax,
    std::span<const double> pricing, const gp::Tree& heuristic, bool polish,
    const cover::GreedyOptions& greedy = {});

/// Greedy driven by a compiled GP program, batch-scored in SoA layout
/// through the incremental cover::greedy_solve_batched: round 1 scores
/// every bundle, later rounds rescore only the dirty set the last selection
/// invalidated (none at all when the program ignores BRES and QCOV; every
/// bundle when it reads BRES). Programs that are static *after*
/// simplification (CompiledProgram::is_static — catches trees like
/// (sub QCOV QCOV) that the syntactic check misses) take the sort-based
/// fast path. Produces bit-identical covers to solve_with_heuristic on the
/// same tree (the CompiledProgram equivalence contract; finite features
/// only, which the solve path guarantees). When `metrics` is non-null the
/// rescoring effort is recorded as greedy/rounds, greedy/bundles_rescored,
/// greedy/rescore_slots counters and a greedy/rescored_frac gauge.
[[nodiscard]] cover::SolveResult solve_with_program(
    EvalContext& ctx, const cover::Relaxation& relax,
    std::span<const double> pricing, const gp::CompiledProgram& program,
    bool polish, obs::MetricsRegistry* metrics = nullptr,
    const cover::GreedyOptions& greedy = {});

/// Per-batch score memo: jobs whose (scoring tree, pricing, purpose) key
/// repeats within one heuristic batch are evaluated once and the result is
/// scattered to every duplicate. With compiled scoring on, trees are keyed
/// by their CANONICAL form, so genomes that differ syntactically but
/// simplify to the same program (common after a few GP generations) also
/// collapse; each unique tree is compiled exactly once per batch. The plan
/// is computed before any fan-out, so deduplication is lock-free and
/// thread-count independent.
struct HeuristicBatchPlan {
  struct Unique {
    std::size_t job_index;  ///< Representative job for this key.
    /// Program compiled from the representative's tree; null when compiled
    /// scoring is off (the interpreter path is used instead).
    std::shared_ptr<const gp::CompiledProgram> program;
  };
  std::vector<Unique> uniques;
  /// result_of[i] indexes `uniques` for jobs[i]; duplicates share an entry.
  std::vector<std::size_t> result_of;

  [[nodiscard]] std::size_t duplicates() const noexcept {
    return result_of.size() - uniques.size();
  }
};

[[nodiscard]] HeuristicBatchPlan plan_heuristic_batch(
    std::span<const HeuristicJob> jobs, bool compiled_scoring);

/// Greedy driven by an arbitrary scoring function (baselines, tests).
[[nodiscard]] cover::SolveResult solve_with_score(
    EvalContext& ctx, const cover::Relaxation& relax,
    std::span<const double> pricing, const cover::ScoreFunction& score,
    const cover::GreedyOptions& greedy = {});

/// Repairs a binary customer genome to cover feasibility (cheapest useful
/// coverage per cost first); the genome is respected otherwise. The round
/// cap in `greedy` bounds repair ADDITIONS (bundles already set in the
/// genome are free — the budget meters work, not genome content).
[[nodiscard]] cover::SolveResult solve_with_selection(
    EvalContext& ctx, const cover::Relaxation& relax,
    std::span<const double> pricing, std::span<const std::uint8_t> selection,
    const cover::GreedyOptions& greedy = {});

/// Assembles the Evaluation from a solved lower level. Leader revenue (the
/// UL objective F) is computed only for EvalPurpose::kBoth — computing F is
/// exactly what the Table II UL budget charges for, so an evaluation must
/// never obtain it under a purpose that does not pay (the caller mirrors
/// this rule when incrementing its counters). Also folds the relaxation's
/// guard bookkeeping and the construction round-cap flag into the
/// Evaluation's guard::Outcome.
[[nodiscard]] Evaluation finalize_evaluation(const Instance& inst,
                                             std::span<const double> pricing,
                                             const cover::SolveResult& solved,
                                             const cover::Relaxation& relax,
                                             EvalPurpose purpose);

}  // namespace carbon::bcpop

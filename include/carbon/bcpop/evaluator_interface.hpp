// Abstraction over bi-level evaluation backends.
//
// CARBON and COBRA only need four things from the problem: the leader's
// decision box, the length of a binary follower genome, and the two
// evaluation entry points (heuristic-driven and genome-driven). Putting that
// behind an interface lets the same solvers run on the single-customer BCPOP
// (bcpop::Evaluator) and on extensions such as the multi-follower market
// (bcpop::MultiFollowerEvaluator) — the direction the paper's conclusion
// names as future work.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/guard/guard.hpp"

namespace carbon::obs {
class MetricsRegistry;
}  // namespace carbon::obs

namespace carbon::bcpop {

/// What an evaluation is being used for — determines which budget counters
/// it charges (Table II tracks UL and LL fitness evaluations separately)
/// and which objectives are computed. kLowerOnly evaluations never compute
/// the leader revenue F: computing F is what the UL budget charges for, so
/// an uncharged purpose must not produce it.
enum class EvalPurpose : unsigned char {
  kLowerOnly,  ///< heuristic-fitness evaluation (CARBON predators)
  kBoth,       ///< complete bi-level evaluation (prey fitness, COBRA pairs)
};

/// The result of one bi-level evaluation.
struct Evaluation {
  bool ll_feasible = false;
  double ul_objective = 0.0;  ///< F(x, y): leader revenue (kBoth only).
  double ll_objective = 0.0;  ///< f(x, y) = A(x): follower cost (minimized).
  double lower_bound = 0.0;   ///< LB(x): relaxation optimum.
  double gap_percent = 0.0;   ///< Eq. (1).
  std::vector<std::uint8_t> selection;  ///< Follower decision vector.
  /// Where on the guard degradation ladder this evaluation ran (default:
  /// full fidelity, untripped). See carbon/guard/guard.hpp.
  guard::Outcome guard{};

  /// Field-wise (bitwise for doubles) equality; the checkpoint round-trip
  /// tests rely on this being exact.
  bool operator==(const Evaluation&) const = default;
};

/// One heuristic-driven evaluation request in a batch. The referenced
/// pricing and tree must outlive the batch call.
struct HeuristicJob {
  std::span<const double> pricing;
  const gp::Tree* heuristic = nullptr;
  EvalPurpose purpose = EvalPurpose::kBoth;
};

/// One genome-driven evaluation request in a batch.
struct SelectionJob {
  std::span<const double> pricing;
  std::span<const std::uint8_t> selection;
  EvalPurpose purpose = EvalPurpose::kBoth;
};

/// Uniform backend-statistics surface for telemetry (run journal records,
/// CLI --metrics). Counters are cumulative over the evaluator's lifetime;
/// backends without a given mechanism report 0 for it. This replaces the
/// former pattern of per-backend getters that every observer had to know
/// about individually.
struct BackendStats {
  long long relaxation_cache_hits = 0;
  /// Lookups that ran the LP solver (== relaxations solved).
  long long relaxation_cache_misses = 0;
  /// Entries dropped by the LRU capacity bound (pinned entries held by
  /// callers survive eviction; this counts cache-side drops only).
  long long relaxation_cache_evictions = 0;
  /// Batch heuristic jobs answered by the per-batch score memo.
  long long heuristic_dedup_hits = 0;
  /// Heuristic evaluations answered by the cross-generation score cache
  /// (still charged to the Table II budgets — the cache saves wall-clock,
  /// never evaluations; see docs/ALGORITHMS.md §14).
  long long score_cache_hits = 0;
  /// Cross-generation score-cache entries dropped by the LRU bound.
  long long score_cache_evictions = 0;
  /// Charged evaluations whose guard outcome recorded a budget trip.
  long long guard_trips = 0;
  /// Charged evaluations that ran degraded (off-rung bound, capped or
  /// skipped construction) — a superset of guard_trips' effects.
  long long guard_degraded_evals = 0;
  /// Charged evaluations whose node budget ran out before construction.
  long long guard_budget_exhausted = 0;
  // LP family / warm-start-pool counters (docs/ALGORITHMS.md §15). All zero
  // for evaluators that do not implement pool mode.
  /// Cost-only rebind() calls on per-context problem families (== rung-0
  /// simplex attempts; replaces the per-evaluation problem rebuild).
  long long lp_family_rebinds = 0;
  /// Warm-start bases rejected by the solver (fell back to a crash start).
  long long lp_warm_start_rejects = 0;
  /// Solves warm-started from a pooled (nearest-pricing) basis.
  long long lp_pool_hits = 0;
  /// Pooled bases the solver rejected (re-solved from the fixed baseline).
  long long lp_pool_rejects = 0;
  /// Estimated pivots avoided by pooled warm starts: for each accepted
  /// pooled solve, max(0, round(mean baseline-start iterations) - actual
  /// iterations), accumulated in submission order (deterministic).
  long long lp_pivots_saved = 0;
};

class EvaluatorInterface {
 public:
  virtual ~EvaluatorInterface() = default;

  /// Box bounds of the leader's decision vector.
  [[nodiscard]] virtual std::span<const ea::Bounds> price_bounds() const = 0;

  /// Length of a binary lower-level genome (COBRA's encoding).
  [[nodiscard]] virtual std::size_t genome_length() const = 0;

  /// Evaluates a pricing with a GP scoring heuristic driving the follower.
  virtual Evaluation evaluate_with_heuristic(std::span<const double> pricing,
                                             const gp::Tree& heuristic,
                                             EvalPurpose purpose) = 0;

  /// Evaluates a pricing with a binary follower genome (repaired if needed).
  virtual Evaluation evaluate_with_selection(
      std::span<const double> pricing,
      std::span<const std::uint8_t> selection, EvalPurpose purpose) = 0;

  /// Evaluates a generation's worth of heuristic jobs, returning results in
  /// submission order (results[i] answers jobs[i] — solvers rely on that for
  /// deterministic reduction). The default runs the jobs serially in order,
  /// so a solver written against the batch API behaves bit-identically to
  /// one written against the scalar calls; ParallelEvaluator overrides this
  /// to fan the jobs across a thread pool.
  virtual std::vector<Evaluation> evaluate_heuristic_batch(
      std::span<const HeuristicJob> jobs) {
    std::vector<Evaluation> results;
    results.reserve(jobs.size());
    for (const HeuristicJob& job : jobs) {
      results.push_back(
          evaluate_with_heuristic(job.pricing, *job.heuristic, job.purpose));
    }
    return results;
  }

  /// Batch counterpart for genome-driven evaluations; same ordering
  /// guarantee and serial default as evaluate_heuristic_batch.
  virtual std::vector<Evaluation> evaluate_selection_batch(
      std::span<const SelectionJob> jobs) {
    std::vector<Evaluation> results;
    results.reserve(jobs.size());
    for (const SelectionJob& job : jobs) {
      results.push_back(
          evaluate_with_selection(job.pricing, job.selection, job.purpose));
    }
    return results;
  }

  /// Convenience overloads defaulting to a complete bi-level evaluation.
  Evaluation evaluate_with_heuristic(std::span<const double> pricing,
                                     const gp::Tree& heuristic) {
    return evaluate_with_heuristic(pricing, heuristic, EvalPurpose::kBoth);
  }
  Evaluation evaluate_with_selection(std::span<const double> pricing,
                                     std::span<const std::uint8_t> selection) {
    return evaluate_with_selection(pricing, selection, EvalPurpose::kBoth);
  }

  [[nodiscard]] virtual long long ul_evaluations() const = 0;
  [[nodiscard]] virtual long long ll_evaluations() const = 0;

  /// Cumulative backend statistics snapshot; the default (for backends with
  /// no caches or memos) is all-zero. Must be safe to call between batches.
  [[nodiscard]] virtual BackendStats backend_stats() const { return {}; }

  /// Attaches a metrics registry for instrumentation (per-phase timers);
  /// null detaches. Instrumentation must be trajectory-neutral — attaching
  /// a registry may never change evaluation results — so the default is to
  /// ignore it. Configure between batches, not during one.
  virtual void set_metrics(obs::MetricsRegistry* /*metrics*/) noexcept {}

  /// Installs per-evaluation resource budgets and the fault-injection hook
  /// (see carbon/guard/guard.hpp). `eval_base` is this evaluator's
  /// ll_evaluations() reading that corresponds to run-evaluation #0, so the
  /// injection fires when ll_evaluations() == eval_base + inject.at_eval —
  /// solvers pass their post-resume offset, which makes an injection that
  /// already fired before a checkpoint land below the current counter and
  /// never re-fire after resume. Backends without guard support ignore the
  /// call (their evaluations always run full fidelity). Configure between
  /// batches, not during one.
  virtual void set_guard(const guard::GuardConfig& /*config*/,
                         long long /*eval_base*/) noexcept {}

  /// Drops every cached intermediate (relaxations, cross-generation score
  /// entries) while keeping the budget counters. Solvers call this when
  /// resuming from a checkpoint: a caller-owned evaluator may have been
  /// warmed under a different configuration (other guard limits, another
  /// run's pricings), and resume must reproduce the uninterrupted run from
  /// cold caches, not inherit stale entries. No-op for backends without
  /// caches. Call between batches, not during one.
  virtual void clear_caches() noexcept {}
};

}  // namespace carbon::bcpop

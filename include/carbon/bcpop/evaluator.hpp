// Evaluation pipeline for BCPOP upper-level decisions.
//
// Every pricing x induces a fresh lower-level covering instance LL(x). The
// evaluator
//   1. substitutes the leader's prices into the market,
//   2. solves (and memoizes) the LP relaxation -> LB(x), duals d_k, x̄,
//   3. obtains a customer decision y: either by running a (GP-evolved)
//      greedy heuristic, or by repairing a binary genome (COBRA's encoding),
//   4. reports F (leader revenue), f = A(x) (customer cost) and the %-gap.
//
// It also keeps the UL/LL evaluation counters used as the stopping criterion
// (Table II allots 50 000 evaluations to each level).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::bcpop {

class Evaluator final : public EvaluatorInterface {
 public:
  using EvaluatorInterface::evaluate_with_heuristic;
  using EvaluatorInterface::evaluate_with_selection;

  explicit Evaluator(const Instance& instance,
                     std::size_t relaxation_cache_capacity = 4096);

  /// Greedy driven by a GP scoring tree (CARBON's lower level). Scoring
  /// trees without residual-dependent terminals take the sort-based
  /// cover::greedy_solve_static fast path automatically.
  Evaluation evaluate_with_heuristic(std::span<const double> pricing,
                                     const gp::Tree& heuristic,
                                     EvalPurpose purpose) override;

  /// Greedy driven by an arbitrary scoring function (baselines, tests).
  Evaluation evaluate_with_score(std::span<const double> pricing,
                                 const cover::ScoreFunction& score,
                                 EvalPurpose purpose = EvalPurpose::kBoth);

  /// Binary customer genome (COBRA's lower level). Infeasible selections are
  /// greedily repaired (cheapest effective bundle first); redundant bundles
  /// are NOT removed, the genome is respected otherwise.
  Evaluation evaluate_with_selection(std::span<const double> pricing,
                                     std::span<const std::uint8_t> selection,
                                     EvalPurpose purpose) override;

  /// When enabled, heuristic-built covers are polished with
  /// cover::local_search (drop + swap descent) before scoring — the memetic
  /// variant evaluated by bench/ablation_memetic. Off by default: the paper's
  /// CARBON scores the raw greedy output.
  void set_polish(bool enabled) noexcept { polish_ = enabled; }
  [[nodiscard]] bool polish() const noexcept { return polish_; }

  [[nodiscard]] std::span<const ea::Bounds> price_bounds() const override {
    return inst_.price_bounds();
  }
  [[nodiscard]] std::size_t genome_length() const override {
    return inst_.num_bundles();
  }

  /// LP relaxation of LL(pricing), memoized. Reference valid until the next
  /// cache eviction (capacity overflow) — copy if you must keep it.
  const cover::Relaxation& relaxation(std::span<const double> pricing);

  [[nodiscard]] const Instance& instance() const noexcept { return inst_; }

  /// Number of F computations so far.
  [[nodiscard]] long long ul_evaluations() const noexcept override {
    return ul_evals_;
  }
  /// Number of LL solution constructions so far (heuristic applications or
  /// genome evaluations).
  [[nodiscard]] long long ll_evaluations() const noexcept override {
    return ll_evals_;
  }
  [[nodiscard]] long long relaxations_solved() const noexcept {
    return relaxations_solved_;
  }
  [[nodiscard]] long long relaxation_cache_hits() const noexcept {
    return cache_hits_;
  }

 private:
  struct PricingHash {
    std::size_t operator()(const std::vector<double>& v) const noexcept;
  };

  /// Points `ll_` at the LL instance for this pricing.
  void load_pricing(std::span<const double> pricing);
  Evaluation finalize(std::span<const double> pricing,
                      const cover::SolveResult& solved,
                      const cover::Relaxation& relax, EvalPurpose purpose);

  const Instance& inst_;
  cover::Instance ll_;  ///< Mutable working copy of the market.
  lp::Problem ll_lp_;   ///< Relaxation LP; only leader costs change per call.
  lp::Basis warm_basis_;  ///< Optimal basis reused across pricings.
  std::size_t cache_capacity_;
  std::unordered_map<std::vector<double>, cover::Relaxation, PricingHash>
      cache_;
  bool polish_ = false;
  long long ul_evals_ = 0;
  long long ll_evals_ = 0;
  long long relaxations_solved_ = 0;
  long long cache_hits_ = 0;
};

}  // namespace carbon::bcpop

// Evaluation pipeline for BCPOP upper-level decisions.
//
// Every pricing x induces a fresh lower-level covering instance LL(x). The
// evaluator
//   1. substitutes the leader's prices into the market,
//   2. solves (and memoizes) the LP relaxation -> LB(x), duals d_k, x̄,
//   3. obtains a customer decision y: either by running a (GP-evolved)
//      greedy heuristic, or by repairing a binary genome (COBRA's encoding),
//   4. reports F (leader revenue), f = A(x) (customer cost) and the %-gap.
//
// It also keeps the UL/LL evaluation counters used as the stopping criterion
// (Table II allots 50 000 evaluations to each level).
//
// This class is the SERIAL evaluator: one evaluation context, one-shard LRU
// memo, deterministic call-order semantics. The evaluation arithmetic lives
// in eval_core.hpp and is shared with bcpop::ParallelEvaluator, which fans
// batches across threads and produces bit-identical Evaluations.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "carbon/bcpop/eval_core.hpp"
#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"
#include "carbon/bcpop/relaxation_cache.hpp"
#include "carbon/bcpop/score_cache.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/obs/metrics.hpp"

namespace carbon::bcpop {

class Evaluator final : public EvaluatorInterface {
 public:
  using EvaluatorInterface::evaluate_with_heuristic;
  using EvaluatorInterface::evaluate_with_selection;
  using RelaxationPtr = ShardedRelaxationCache::RelaxationPtr;

  explicit Evaluator(const Instance& instance,
                     std::size_t relaxation_cache_capacity = 4096,
                     std::size_t score_cache_capacity = 4096);

  /// Greedy driven by a GP scoring tree (CARBON's lower level). Scoring
  /// trees without residual-dependent terminals take the sort-based
  /// cover::greedy_solve_static fast path automatically.
  Evaluation evaluate_with_heuristic(std::span<const double> pricing,
                                     const gp::Tree& heuristic,
                                     EvalPurpose purpose) override;

  /// Greedy driven by an arbitrary scoring function (baselines, tests).
  Evaluation evaluate_with_score(std::span<const double> pricing,
                                 const cover::ScoreFunction& score,
                                 EvalPurpose purpose = EvalPurpose::kBoth);

  /// Binary customer genome (COBRA's lower level). Infeasible selections are
  /// greedily repaired (cheapest effective bundle first); redundant bundles
  /// are NOT removed, the genome is respected otherwise.
  Evaluation evaluate_with_selection(std::span<const double> pricing,
                                     std::span<const std::uint8_t> selection,
                                     EvalPurpose purpose) override;

  /// Heuristic batches deduplicate via the per-batch score memo: jobs with
  /// an identical (tree, pricing, purpose) key — canonical tree form when
  /// compiled scoring is on — are evaluated once and the result is copied
  /// to every duplicate. Duplicates still charge the Table II budget, so
  /// trajectories are bit-identical to the scalar path.
  std::vector<Evaluation> evaluate_heuristic_batch(
      std::span<const HeuristicJob> jobs) override;

  /// When enabled, heuristic-built covers are polished with
  /// cover::local_search (drop + swap descent) before scoring — the memetic
  /// variant evaluated by bench/ablation_memetic. Off by default: the paper's
  /// CARBON scores the raw greedy output. Toggling drops the cross-generation
  /// score cache (its entries were computed under the other setting).
  void set_polish(bool enabled) noexcept {
    if (enabled != polish_) xgen_.clear();
    polish_ = enabled;
  }
  [[nodiscard]] bool polish() const noexcept { return polish_; }

  /// When enabled (the default), scoring trees are compiled once per
  /// evaluation (once per batch per distinct genome) into batched SoA
  /// bytecode instead of being re-interpreted per bundle — bit-identical
  /// results, see gp::CompiledProgram. Off = the reference interpreter.
  /// Toggling drops the cross-generation score cache (the two backends key
  /// by different node forms: canonical vs raw).
  void set_compiled_scoring(bool enabled) noexcept {
    if (enabled != compiled_scoring_) xgen_.clear();
    compiled_scoring_ = enabled;
  }
  [[nodiscard]] bool compiled_scoring() const noexcept {
    return compiled_scoring_;
  }

  [[nodiscard]] std::span<const ea::Bounds> price_bounds() const override {
    return inst_.price_bounds();
  }
  [[nodiscard]] std::size_t genome_length() const override {
    return inst_.num_bundles();
  }

  /// LP relaxation of LL(pricing), memoized in a bounded LRU. The returned
  /// entry is pinned: it stays valid for as long as the caller holds the
  /// pointer, no matter what the cache evicts afterwards.
  [[nodiscard]] RelaxationPtr relaxation(std::span<const double> pricing);

  [[nodiscard]] const Instance& instance() const noexcept { return inst_; }

  /// Number of charged UL fitness evaluations (F computations) so far.
  [[nodiscard]] long long ul_evaluations() const noexcept override {
    return ul_evals_;
  }
  /// Number of LL solution constructions so far (heuristic applications or
  /// genome evaluations).
  [[nodiscard]] long long ll_evaluations() const noexcept override {
    return ll_evals_;
  }
  [[nodiscard]] long long relaxations_solved() const noexcept {
    return cache_.solves();
  }
  [[nodiscard]] long long relaxation_cache_hits() const noexcept {
    return cache_.hits();
  }
  /// Batch heuristic jobs answered by the per-batch score memo instead of a
  /// fresh greedy solve (still charged to the budget).
  [[nodiscard]] long long heuristic_dedup_hits() const noexcept {
    return dedup_hits_;
  }

  /// Cross-generation score memoization (docs/ALGORITHMS.md §14): finished
  /// heuristic Evaluations are cached across batches and generations, keyed
  /// by (tree nodes × pricing × purpose). Hits still charge the Table II
  /// budgets, so the trajectory is bit-identical either way; off = every
  /// repeat re-solves. Disabled automatically while the (explicitly
  /// non-deterministic) wall-clock watchdog is armed.
  void set_memo_xgen(bool enabled) noexcept {
    if (!enabled) xgen_.clear();
    memo_xgen_ = enabled;
  }
  [[nodiscard]] bool memo_xgen() const noexcept { return memo_xgen_; }
  [[nodiscard]] const ScoreCache& score_cache() const noexcept {
    return xgen_;
  }

  /// Uniform telemetry snapshot (cache + memo counters).
  [[nodiscard]] BackendStats backend_stats() const override;

  /// Attaches a metrics registry: LP-relaxation solves and LL greedy solves
  /// are then timed under "time/lp_relaxation" and "time/ll_solve".
  /// Trajectory-neutral — results are bit-identical with or without it.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept override {
    metrics_ = metrics;
  }

  /// Installs deterministic per-evaluation budgets + the injection hook.
  /// Cap-induced degradations are pure functions of (pricing, limits) and
  /// ride the caches; changing the LIMITS therefore drops both the
  /// relaxation cache and the cross-generation score cache (entries warmed
  /// under other limits would serve stale rungs). Injected trips depend on
  /// the evaluation ordinal and always bypass both caches.
  void set_guard(const guard::GuardConfig& config,
                 long long eval_base) noexcept override;

  /// Drops the relaxation cache and the cross-generation score cache
  /// (counters kept). Called by solvers on checkpoint resume.
  void clear_caches() noexcept override;

 private:
  /// Charges the budget counters for one evaluation of `purpose`.
  void charge(EvalPurpose purpose) noexcept;
  /// Folds one charged evaluation's guard outcome into the trip counters
  /// (and the obs guard/* counters when a registry is attached).
  void count_guard(const Evaluation& evaluation) noexcept;
  /// True when the evaluation with this ll ordinal must be force-tripped.
  [[nodiscard]] bool inject_now(long long ordinal) const noexcept {
    return inject_at_ >= 0 && ordinal == inject_at_;
  }
  /// Construction stage + scoring under the guard plan for `relax`:
  /// skip-or-solve, then finalize. `program` (optional) supplies an already
  /// compiled form of `heuristic`.
  Evaluation finish_heuristic(const cover::Relaxation& relax,
                              std::span<const double> pricing,
                              const gp::Tree& heuristic,
                              const gp::CompiledProgram* program,
                              EvalPurpose purpose);
  Evaluation finish_selection(const cover::Relaxation& relax,
                              std::span<const double> pricing,
                              std::span<const std::uint8_t> selection,
                              EvalPurpose purpose);

  /// True when the cross-generation cache may serve/absorb results right
  /// now (armed watchdog makes evaluations wall-clock-dependent, so it
  /// suspends the cache).
  [[nodiscard]] bool xgen_active() const noexcept {
    return memo_xgen_ && guard_.limits.watchdog_seconds <= 0.0;
  }

  const Instance& inst_;
  EvalContext ctx_;
  ShardedRelaxationCache cache_;
  ScoreCache xgen_;
  bool memo_xgen_ = true;
  bool polish_ = false;
  bool compiled_scoring_ = true;
  obs::MetricsRegistry* metrics_ = nullptr;
  guard::GuardConfig guard_{};
  long long inject_at_ = -1;  ///< Absolute ll ordinal to trip; -1 = never.
  long long ul_evals_ = 0;
  long long ll_evals_ = 0;
  long long dedup_hits_ = 0;
  /// Fresh LP solves whose warm-start basis the solver rejected. The serial
  /// evaluator is baseline-only (no basis pool), so the pool counters in
  /// BackendStats stay zero here.
  long long warm_rejects_ = 0;
  long long guard_trips_ = 0;
  long long guard_degraded_ = 0;
  long long guard_exhausted_ = 0;
};

}  // namespace carbon::bcpop

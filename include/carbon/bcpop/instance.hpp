// The Bi-level Cloud Pricing Optimization Problem (Program 2 of the paper).
//
//   max   F = sum_{j<=L} c_j x_j                     (CSP revenue)
//   s.t.  min  f = sum_{j<=M} c_j x_j                (CSC total cost)
//         s.t. sum_j q_jk x_j >= b_k  for all k      (service coverage)
//              x_j in {0,1}
//         c_j >= 0 for j <= L                        (leader's prices)
//
// The market holds M bundles; the first L belong to the leader (the Cloud
// Service Provider) and their prices are the upper-level decision vector.
// The remaining M-L bundles are competitor offers with fixed prices. Every
// pricing induces a fresh lower-level covering instance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "carbon/cover/instance.hpp"
#include "carbon/ea/real_ops.hpp"

namespace carbon::bcpop {

/// An upper-level decision: prices for the leader's L bundles.
using Pricing = std::vector<double>;

class Instance {
 public:
  /// The first `num_owned` bundles of `market` become the leader's; their
  /// initial costs are ignored. Price bounds default to
  /// [0, price_cap_factor * mean competitor price].
  Instance(cover::Instance market, std::size_t num_owned,
           double price_cap_factor = 2.0);

  [[nodiscard]] const cover::Instance& market() const noexcept {
    return market_;
  }
  [[nodiscard]] std::size_t num_owned() const noexcept { return num_owned_; }
  [[nodiscard]] std::size_t num_bundles() const noexcept {
    return market_.num_bundles();
  }
  [[nodiscard]] std::size_t num_services() const noexcept {
    return market_.num_services();
  }

  /// Box bounds for the pricing decision vector (size num_owned).
  [[nodiscard]] std::span<const ea::Bounds> price_bounds() const noexcept {
    return price_bounds_;
  }

  /// Mean price of the competitor (non-owned) bundles.
  [[nodiscard]] double mean_competitor_price() const noexcept {
    return mean_competitor_price_;
  }

  /// The lower-level covering instance induced by `pricing`: the market with
  /// the leader's prices substituted.
  [[nodiscard]] cover::Instance lower_level_instance(
      std::span<const double> pricing) const;

  /// Leader revenue for a given pricing and customer selection.
  [[nodiscard]] double leader_revenue(
      std::span<const double> pricing,
      std::span<const std::uint8_t> selection) const;

 private:
  cover::Instance market_;
  std::size_t num_owned_;
  std::vector<ea::Bounds> price_bounds_;
  double mean_competitor_price_ = 0.0;
};

/// Convenience: builds the paper-class BCPOP instance (class_index 0..8,
/// L = num_bundles / 10 owned bundles).
[[nodiscard]] Instance make_paper_bcpop(std::size_t class_index,
                                        std::uint64_t run = 0);

}  // namespace carbon::bcpop

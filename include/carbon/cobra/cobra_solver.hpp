// COBRA — co-evolutionary bi-level algorithm of Legillon, Liefooghe & Talbi
// (CEC 2012), the paper's baseline (Algorithm 1).
//
// Two populations evolve the two decision vectors directly:
//   * upper population: pricings (real-coded GA, same operators as CARBON);
//   * lower population: customer baskets as binary genomes over the M market
//     bundles (two-point crossover, swap mutation), greedily repaired to
//     cover feasibility before evaluation.
//
// Each outer round runs an *upper improvement* phase (several GA generations
// on the pricings, each paired with the best current basket), then a *lower
// improvement* phase (several GA generations on the baskets against the best
// current pricing), then a coevolution operator that evaluates random
// cross-population pairs, then re-injects archive elites. Because baskets are
// evolved against one particular pricing, they transfer poorly to the next
// upper phase — the see-saw convergence of Fig. 5 and the inflated upper
// objective of Table IV both stem from this coupling.
#pragma once

#include <cstdint>

#include "carbon/bcpop/basis_pool.hpp"
#include "carbon/bcpop/evaluator.hpp"
#include "carbon/common/task_scheduler.hpp"
#include "carbon/core/checkpoint.hpp"
#include "carbon/core/result.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/obs/run_journal.hpp"

namespace carbon::cobra {

struct CobraConfig {
  // --- Upper level (pricings; Table II column "COBRA") ---
  std::size_t ul_population_size = 100;
  std::size_t ul_archive_size = 100;
  double ul_crossover_prob = 0.85;
  double ul_mutation_prob = 0.01;
  ea::SbxConfig sbx{};
  ea::PolynomialMutationConfig mutation{};

  // --- Lower level (binary baskets) ---
  std::size_t ll_population_size = 100;
  std::size_t ll_archive_size = 100;
  double ll_crossover_prob = 0.85;
  /// Per-gene swap probability; <0 means 1/#variables (Table II).
  double ll_mutation_prob = -1.0;
  /// Density of ones in the initial random baskets.
  double ll_init_density = 0.3;

  // --- Improvement-phase schedule ---
  int upper_phase_generations = 5;
  int lower_phase_generations = 5;
  /// Random cross-population pairs evaluated by the coevolution operator.
  std::size_t coevolution_pairs = 20;
  std::size_t archive_reinjection = 5;

  // --- Budgets ---
  long long ul_eval_budget = 50'000;
  long long ll_eval_budget = 50'000;

  /// Worker threads for batch evaluation (when the solver owns its
  /// evaluator); same semantics as CarbonConfig::eval_threads.
  std::size_t eval_threads = 1;

  /// Fan-out engine for the parallel evaluator; same semantics as
  /// CarbonConfig::sched.
  common::SchedKind sched = common::SchedKind::kStealing;

  /// Cross-generation score memoization; same semantics as
  /// CarbonConfig::memo_xgen (only the heuristic path consults it).
  bool memo_xgen = true;

  /// Warm-start policy for the LL relaxation LPs; same semantics as
  /// CarbonConfig::lp_warm (kPool routes evaluation through the parallel
  /// evaluator even when eval_threads == 1).
  bcpop::LpWarm lp_warm = bcpop::LpWarm::kBaseline;

  /// Compile GP scoring trees to batched bytecode (relevant only when a
  /// heuristic-driven path is exercised through this solver's evaluator);
  /// same semantics as CarbonConfig::compiled_scoring.
  bool compiled_scoring = true;

  std::uint64_t seed = 1;
  bool record_convergence = true;

  /// Optional run telemetry; same semantics (borrowed sinks, bit-identical
  /// trajectories either way) as CarbonConfig::telemetry.
  obs::TelemetryConfig telemetry{};

  /// Crash-safe checkpoint/resume; same semantics as
  /// CarbonConfig::checkpoint, except checkpoints land on the first
  /// outer-round boundary at or past each multiple of `every`.
  core::CheckpointConfig checkpoint{};

  /// Deterministic per-evaluation resource budgets + degradation ladder;
  /// same semantics (unlimited defaults, bit-identical trajectories) as
  /// CarbonConfig::guard.
  guard::GuardConfig guard{};
};

class CobraSolver {
 public:
  /// Solves the single-customer BCPOP (creates its own Evaluator).
  CobraSolver(const bcpop::Instance& instance, CobraConfig config);

  /// Solves against any bi-level evaluation backend; budgets are counted
  /// relative to the evaluator's state at run() entry.
  CobraSolver(bcpop::EvaluatorInterface& evaluator, CobraConfig config);

  /// Runs Algorithm 1 until either budget is exhausted (checked between
  /// phases and between generations inside a phase).
  core::RunResult run();

 private:
  core::RunResult run_with(bcpop::EvaluatorInterface& eval);

  const bcpop::Instance* inst_ = nullptr;
  bcpop::EvaluatorInterface* external_ = nullptr;
  CobraConfig cfg_;
};

}  // namespace carbon::cobra

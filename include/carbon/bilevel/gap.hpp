// The lower-level optimality gap (Eq. 1 of the paper):
//
//   %-gap(x) = 100 * (A(x) - LB(x)) / LB(x)
//
// where A(x) is the lower-level objective reached by some algorithm A on the
// LL instance induced by upper-level decision x, and LB(x) is a lower bound
// (here: the LP relaxation optimum). The gap makes LL solution quality
// comparable *across different upper-level decisions*, which is the key
// device that lets CARBON break the nested structure.
#pragma once

namespace carbon::bilevel {

/// Eq. (1). `lower_bound` is guarded against division by ~0 with a floor of
/// 1.0, which matches how gaps behave on priced instances (costs >= 0 and
/// an LB of 0 means the follower pays nothing either way).
[[nodiscard]] double percent_gap(double achieved, double lower_bound) noexcept;

}  // namespace carbon::bilevel

// Two-variable linear bi-level problems, used to reproduce the paper's
// pedagogical example (Program 3 / the Mersha & Dempe instance behind Fig. 1):
//
//   min  F(x,y) = -x - 2y          (leader)
//   s.t. 2x - 3y >= -12
//        x + y  <= 14
//        min  f(y) = -y            (follower)
//        s.t. -3x + y <= -3
//              3x + y <= 30
//        x, y >= 0
//
// The follower ignores the leader's constraints, so the rational reaction at
// x = 6 is y = 12 — which violates 2x - 3y >= -12 and leaves the leader
// without a feasible solution. The inducible region is discontinuous.
#pragma once

#include <optional>
#include <vector>

namespace carbon::bilevel {

/// a*x + b*y <= rhs
struct LinearConstraint {
  double a = 0.0;
  double b = 0.0;
  double rhs = 0.0;

  [[nodiscard]] bool satisfied(double x, double y,
                               double tol = 1e-9) const noexcept {
    return a * x + b * y <= rhs + tol;
  }
};

struct LinearBilevel {
  // Leader: min Fx*x + Fy*y subject to upper constraints.
  double upper_cost_x = 0.0;
  double upper_cost_y = 0.0;
  std::vector<LinearConstraint> upper;
  // Follower: min fy*y subject to lower constraints (parametrized by x).
  double lower_cost_y = 0.0;
  std::vector<LinearConstraint> lower;
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;

  [[nodiscard]] double upper_objective(double x, double y) const noexcept {
    return upper_cost_x * x + upper_cost_y * y;
  }
  [[nodiscard]] double lower_objective(double y) const noexcept {
    return lower_cost_y * y;
  }
};

/// The follower's feasible interval for y at a fixed x; nullopt when empty.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] std::optional<Interval> follower_feasible_interval(
    const LinearBilevel& p, double x);

/// The rational reaction set P(x). For a linear objective over an interval it
/// is one endpoint (or the whole interval when lower_cost_y == 0; then the
/// optimistic convention picks the endpoint minimizing F).
[[nodiscard]] std::optional<double> rational_reaction(const LinearBilevel& p,
                                                      double x);

/// Checks all upper-level constraints at (x, y).
[[nodiscard]] bool upper_feasible(const LinearBilevel& p, double x, double y);

/// A point of the inducible region with its leader value.
struct BilevelPoint {
  double x = 0.0;
  double y = 0.0;
  double upper_value = 0.0;
};

/// Reference solver: scans x on a uniform grid, applies the rational reaction
/// and keeps the best upper-feasible point. Exposes the discontinuous
/// inducible region directly (every grid x where the reaction is
/// upper-infeasible is a hole).
struct GridSolveResult {
  std::optional<BilevelPoint> best;
  std::size_t feasible_points = 0;
  std::size_t infeasible_points = 0;  ///< rational reaction violates UL
  std::size_t empty_points = 0;       ///< follower infeasible at this x
};
[[nodiscard]] GridSolveResult solve_by_grid(const LinearBilevel& p,
                                            std::size_t resolution);

/// The paper's Program 3 instance.
[[nodiscard]] LinearBilevel program3();

}  // namespace carbon::bilevel

// Binary-genome GA operators used by COBRA's lower-level population
// (Table II: two-point crossover, swap mutation with rate 1/#variables).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "carbon/common/rng.hpp"

namespace carbon::ea {

/// Random 0/1 genome with the given density of ones.
[[nodiscard]] std::vector<std::uint8_t> random_binary_vector(
    common::Rng& rng, std::size_t size, double density = 0.5);

/// Two-point crossover, in place on both parents.
void two_point_crossover(common::Rng& rng, std::span<std::uint8_t> a,
                         std::span<std::uint8_t> b);

/// Swap mutation: each gene, with probability `per_gene_probability`
/// (<0 = 1/size), exchanges its value with another uniformly chosen gene.
void swap_mutation(common::Rng& rng, std::span<std::uint8_t> genome,
                   double per_gene_probability = -1.0);

/// Bit-flip mutation (extension operator; useful for tests and ablations).
void flip_mutation(common::Rng& rng, std::span<std::uint8_t> genome,
                   double per_gene_probability = -1.0);

}  // namespace carbon::ea

// Real-coded GA operators used by the upper-level population of both CARBON
// and COBRA (paper Table II): simulated binary crossover (SBX, Deb &
// Agrawal), polynomial mutation (Deb & Goyal) and tournament selection.
#pragma once

#include <span>
#include <vector>

#include "carbon/common/rng.hpp"

namespace carbon::ea {

/// Per-gene box bounds.
struct Bounds {
  double lo = 0.0;
  double hi = 1.0;
};

/// Uniform random vector inside the bounds.
[[nodiscard]] std::vector<double> random_real_vector(
    common::Rng& rng, std::span<const Bounds> bounds);

/// Clamps every gene into its bounds (in place).
void clamp_to_bounds(std::span<double> genome, std::span<const Bounds> bounds);

struct SbxConfig {
  double eta = 15.0;              ///< Distribution index (larger = children closer to parents).
  double per_gene_probability = 0.5;  ///< Chance each gene actually recombines.
};

/// Simulated binary crossover, in place on both parents.
void sbx_crossover(common::Rng& rng, std::span<double> a, std::span<double> b,
                   std::span<const Bounds> bounds, const SbxConfig& config = {});

struct PolynomialMutationConfig {
  double eta = 20.0;  ///< Distribution index.
  /// Per-gene mutation probability; <0 means 1/num_genes.
  double per_gene_probability = -1.0;
};

/// Polynomial (bounded) mutation, in place.
void polynomial_mutation(common::Rng& rng, std::span<double> genome,
                         std::span<const Bounds> bounds,
                         const PolynomialMutationConfig& config = {});

/// k-tournament over a fitness array. Returns the index of the winner.
/// `maximize` selects the comparison direction.
[[nodiscard]] std::size_t tournament_select(common::Rng& rng,
                                            std::span<const double> fitness,
                                            std::size_t k, bool maximize);

/// Binary tournament (k = 2), the paper's UL selection operator.
[[nodiscard]] inline std::size_t binary_tournament(
    common::Rng& rng, std::span<const double> fitness, bool maximize) {
  return tournament_select(rng, fitness, 2, maximize);
}

}  // namespace carbon::ea

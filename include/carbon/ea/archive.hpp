// Bounded elitist archive. Both CARBON and COBRA keep 100-slot archives at
// each level (Table II); the archive stores the best individuals seen so far
// and can re-inject them into the population.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "carbon/common/rng.hpp"

namespace carbon::ea {

template <typename T>
class Archive {
 public:
  struct Entry {
    T item;
    double fitness = 0.0;
  };

  /// `maximize` picks the comparison direction; capacity bounds the size.
  Archive(std::size_t capacity, bool maximize)
      : capacity_(capacity), maximize_(maximize) {}

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Inserts if the archive has room or the candidate beats the worst entry.
  /// Returns true when the candidate was stored.
  bool add(T item, double fitness) {
    if (capacity_ == 0) return false;
    if (entries_.size() < capacity_) {
      entries_.push_back({std::move(item), fitness});
      bubble_up(entries_.size() - 1);
      return true;
    }
    // entries_ is kept sorted best-first; the worst is at the back.
    if (!better(fitness, entries_.back().fitness)) return false;
    entries_.back() = {std::move(item), fitness};
    bubble_up(entries_.size() - 1);
    return true;
  }

  /// Best entry. Precondition: not empty.
  [[nodiscard]] const Entry& best() const { return entries_.front(); }

  /// Entry at sorted rank i (0 = best).
  [[nodiscard]] const Entry& at(std::size_t i) const { return entries_[i]; }

  /// Uniformly random archived entry. Precondition: not empty.
  [[nodiscard]] const Entry& sample(common::Rng& rng) const {
    return entries_[rng.below(entries_.size())];
  }

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  [[nodiscard]] bool better(double a, double b) const noexcept {
    return maximize_ ? a > b : a < b;
  }

  void bubble_up(std::size_t i) {
    while (i > 0 && better(entries_[i].fitness, entries_[i - 1].fitness)) {
      std::swap(entries_[i], entries_[i - 1]);
      --i;
    }
  }

  std::size_t capacity_;
  bool maximize_;
  std::vector<Entry> entries_;  // sorted best-first
};

}  // namespace carbon::ea

// Deterministic per-evaluation resource budgets with a fixed degradation
// ladder for the lower-level solve pipeline.
//
// A production deployment cannot let one pathological instance stall a whole
// experiment, but the repo's core guarantee — bit-identical trajectories for
// any eval_threads × compiled_scoring × SIMD path — rules out wall-clock
// limits as the default mechanism. Budgets are therefore counted in
// deterministic work units (simplex iterations, subgradient iterations,
// greedy selection rounds), and tripping a budget degrades the evaluation
// along a fixed ladder instead of aborting it:
//
//   rung 0  kFullLp      capped sparse revised simplex (exact LB on success)
//   rung 1  kLagrangian  subgradient Lagrangian bound (valid LB, cheaper)
//   rung 2  kGreedyOnly  greedy-only scoring, LB = 0 (always terminates)
//
// Every degraded evaluation stays a *valid* evaluation — the lower bound only
// weakens, so the %-gap (Eq. 1) stays a correct optimistic measure — which is
// what lets a guarded run keep the same trajectory contract as an unguarded
// one: the ladder position is itself a pure function of (pricing, limits),
// never of thread interleaving.
//
// `GuardConfig::inject` is the fault hook: force a budget trip at lower-level
// evaluation #k (deterministic ordinal, counted in charge order) so the
// ladder is testable end-to-end the same way `stop_after_checkpoint` made
// crash-safety testable.
#pragma once

#include <stdexcept>

namespace carbon::guard {

/// Degradation-ladder position of a lower-level relaxation/bound.
enum class Rung : unsigned char {
  kFullLp = 0,      ///< Exact LP relaxation (possibly iteration-capped).
  kLagrangian = 1,  ///< Subgradient Lagrangian lower bound.
  kGreedyOnly = 2,  ///< No bound at all (LB = 0); greedy scoring only.
};

/// Why an evaluation left the full-fidelity path (error taxonomy).
enum class Trip : unsigned char {
  kNone = 0,         ///< Full-fidelity evaluation.
  kLpIterationCap,   ///< Simplex hit its deterministic iteration cap.
  kConstructionCap,  ///< Greedy/GRASP hit its selection-round cap.
  kNodeBudget,       ///< Per-evaluation LL node budget exhausted.
  kInjected,         ///< Forced by GuardConfig::inject (fault hook).
  kWatchdog,         ///< Opt-in wall-clock watchdog fired (non-deterministic).
};

[[nodiscard]] constexpr const char* to_string(Rung r) noexcept {
  switch (r) {
    case Rung::kFullLp: return "full_lp";
    case Rung::kLagrangian: return "lagrangian";
    case Rung::kGreedyOnly: return "greedy_only";
  }
  return "invalid";
}

[[nodiscard]] constexpr const char* to_string(Trip t) noexcept {
  switch (t) {
    case Trip::kNone: return "none";
    case Trip::kLpIterationCap: return "lp_iteration_cap";
    case Trip::kConstructionCap: return "construction_cap";
    case Trip::kNodeBudget: return "node_budget";
    case Trip::kInjected: return "injected";
    case Trip::kWatchdog: return "watchdog";
  }
  return "invalid";
}

/// Structured outcome of one guarded lower-level evaluation (the issue's
/// `GuardOutcome`). Part of bcpop::Evaluation, so it rides the checkpoint
/// format and the journal like every other evaluation field.
struct Outcome {
  Rung rung = Rung::kFullLp;  ///< Ladder position the bound came from.
  Trip trip = Trip::kNone;    ///< First budget event, kNone if untripped.
  /// Greedy/GRASP construction was cut short by a round cap; the reported
  /// selection may be infeasible (treated like any uncoverable outcome).
  bool construction_capped = false;
  /// The whole node budget was consumed before construction could start;
  /// the evaluation was scored as infeasible without running greedy.
  bool budget_exhausted = false;

  [[nodiscard]] bool degraded() const noexcept {
    return rung != Rung::kFullLp || construction_capped || budget_exhausted;
  }
  [[nodiscard]] bool tripped() const noexcept { return trip != Trip::kNone; }

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

/// Deterministic per-evaluation budget limits. 0 always means "unlimited";
/// with every field at its default the guarded path is bitwise-identical to
/// the historical unguarded one.
struct Limits {
  /// Simplex iteration cap for the rung-0 LP solve.
  long long lp_iteration_cap = 0;
  /// Subgradient iteration cap for the rung-1 Lagrangian bound. Setting this
  /// to 0 while a trip is active skips rung 1 entirely (straight to rung 2).
  long long lagrangian_iteration_cap = 50;
  /// Greedy/GRASP selection-round cap for the construction stage.
  long long construction_round_cap = 0;
  /// Total deterministic node budget per evaluation: LP/subgradient
  /// iterations spent on the bound plus greedy selection rounds.
  long long ll_node_cap = 0;
  /// Opt-in wall-clock watchdog (seconds; 0 disables). Checked only at
  /// stage boundaries and NEVER affects the cached relaxation — explicitly
  /// non-deterministic, for service deployments that prefer liveness over
  /// reproducibility.
  double watchdog_seconds = 0.0;

  [[nodiscard]] bool unlimited() const noexcept {
    return lp_iteration_cap == 0 && construction_round_cap == 0 &&
           ll_node_cap == 0 && watchdog_seconds == 0.0;
  }

  friend bool operator==(const Limits&, const Limits&) = default;
};

/// Fault-injection hook: force a budget trip at lower-level evaluation
/// #`at_eval` (0-based, in deterministic charge order). -1 disables.
struct Inject {
  long long at_eval = -1;
  Rung degrade_to = Rung::kLagrangian;  ///< Ladder rung the trip lands on.

  friend bool operator==(const Inject&, const Inject&) = default;
};

struct GuardConfig {
  Limits limits{};
  Inject inject{};

  [[nodiscard]] bool enabled() const noexcept {
    return !limits.unlimited() || inject.at_eval >= 0;
  }

  friend bool operator==(const GuardConfig&, const GuardConfig&) = default;
};

/// Rejects malformed configurations (negative caps, negative watchdog,
/// injection ordinal below -1). Shared by the solvers' config validation
/// and the CLI.
inline void validate(const GuardConfig& cfg) {
  const Limits& l = cfg.limits;
  if (l.lp_iteration_cap < 0 || l.lagrangian_iteration_cap < 0 ||
      l.construction_round_cap < 0 || l.ll_node_cap < 0) {
    throw std::invalid_argument("guard: budget caps must be >= 0");
  }
  if (l.watchdog_seconds < 0.0) {
    throw std::invalid_argument("guard: watchdog_seconds must be >= 0");
  }
  if (cfg.inject.at_eval < -1) {
    throw std::invalid_argument("guard: inject.at_eval must be >= -1");
  }
}

/// Min-combines two caps where 0 means unlimited.
[[nodiscard]] constexpr long long combine_caps(long long a,
                                               long long b) noexcept {
  if (a <= 0) return b <= 0 ? 0 : b;
  if (b <= 0) return a;
  return a < b ? a : b;
}

}  // namespace carbon::guard

// Dense row-major matrix with just the operations the simplex solver needs.
// Constraint counts in this project reach m = 400 in the benchmark grid
// (BENCH_lp_simplex.json sweeps m in {50, 200, 400}), and the dense kernels
// only beat the sparse CSC kernels once column density reaches ~0.75 — below
// that crossover the sparse path wins at every measured size. The solver
// therefore prices/FTRANs sparsely and keeps dense storage only where it is
// structurally dense: the basis inverse and its O(m^3) refactorization.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace carbon::lp {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Identity matrix of size n.
  [[nodiscard]] static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Reshape to rows x cols and zero-fill, reusing the existing allocation
  /// when capacity allows. Equivalent to assigning DenseMatrix(rows, cols).
  void reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Reshape to the n x n identity in place (see reset()).
  void set_identity(std::size_t n) {
    reset(n, n);
    for (std::size_t i = 0; i < n; ++i) data_[i * n + i] = 1.0;
  }

  /// out = this * v  (rows() results).
  void multiply(std::span<const double> v, std::span<double> out) const;

  /// out = v^T * this  (cols() results).
  void multiply_transposed(std::span<const double> v,
                           std::span<double> out) const;

  /// In-place Gauss-Jordan inversion with partial pivoting.
  /// Returns false when the matrix is (numerically) singular.
  [[nodiscard]] bool invert(double pivot_tolerance = 1e-11);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace carbon::lp

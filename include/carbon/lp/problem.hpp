// Linear program container:   min c'x   s.t.  A x {<=,=,>=} b,  l <= x <= u.
//
// Columns are stored sparsely (CSC-style: per column, the sorted nonzero
// (row, value) pairs). The covering relaxations this project solves are
// sparse — most bundles cover few services — and the simplex works
// column-wise, so sparse columns shrink both the memory footprint and the
// pricing/FTRAN inner loops. Infinite upper bounds are expressed with
// `kInfinity`; every variable must have a finite lower bound, which covers
// all LPs arising in this project (covering relaxations, tests, examples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace carbon::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowSense : unsigned char {
  kLessEqual,
  kEqual,
  kGreaterEqual,
};

/// One sparse matrix column: parallel arrays of strictly-increasing row
/// indices and the nonzero values stored at them.
struct SparseColumn {
  std::vector<std::int32_t> rows;
  std::vector<double> values;

  [[nodiscard]] std::size_t nnz() const noexcept { return rows.size(); }
  void push_back(std::int32_t row, double value) {
    rows.push_back(row);
    values.push_back(value);
  }
};

/// One nonzero of a constraint row, addressed by variable index.
struct RowEntry {
  std::size_t column;
  double value;
};

struct Problem {
  /// Objective coefficients, one per structural variable (minimization).
  std::vector<double> objective;
  /// Sparse column-major constraint matrix; columns[j] holds the nonzeros
  /// of A(:, j) with strictly-increasing row indices.
  std::vector<SparseColumn> columns;
  std::vector<double> rhs;
  std::vector<RowSense> sense;
  std::vector<double> lower;
  std::vector<double> upper;

  [[nodiscard]] std::size_t num_vars() const noexcept {
    return objective.size();
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rhs.size(); }
  /// Total stored nonzeros across all columns.
  [[nodiscard]] std::size_t num_nonzeros() const noexcept;

  /// A(row, col); zero when the entry is not stored.
  [[nodiscard]] double coefficient(std::size_t row, std::size_t col) const;

  /// Appends a variable; returns its index.
  std::size_t add_variable(double cost, double lo, double hi);
  /// Appends a constraint with the given dense row (zeros are not stored);
  /// returns its index.
  std::size_t add_constraint(const std::vector<double>& row, RowSense s,
                             double b);
  /// Appends a constraint from its nonzeros only; each referenced column
  /// must appear at most once and be < num_vars(). Returns the row index.
  std::size_t add_constraint(std::span<const RowEntry> entries, RowSense s,
                             double b);

  /// Validates dimensions, column structure (sorted in-range row indices)
  /// and bound sanity; returns a diagnostic message or an empty string when
  /// the problem is well-formed.
  [[nodiscard]] std::string validate() const;
};

enum class SolveStatus : unsigned char {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

[[nodiscard]] const char* to_string(SolveStatus s) noexcept;

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  /// Primal values for the structural variables.
  std::vector<double> x;
  /// Dual values (one per row). Sign convention: for a minimization problem,
  /// duals of >= rows are >= 0, duals of <= rows are <= 0.
  std::vector<double> duals;
  /// Reduced costs for the structural variables.
  std::vector<double> reduced_costs;
  int iterations = 0;
  /// How many times the basis inverse was rebuilt from scratch.
  int refactorizations = 0;
  /// True when a caller-provided warm-start basis was accepted (the solve
  /// skipped the crash/Phase-1 start entirely).
  bool warm_start_used = false;
  /// True when a caller-provided (non-empty) warm-start basis was REJECTED —
  /// wrong size, duplicate/invalid statuses, singular after refactorization,
  /// or primal-infeasible — and the solve fell back to a crash/Phase-1 start.
  bool warm_start_rejected = false;
  /// True when the final optimal basis was clean (artificial-free) and was
  /// written back through the caller's `warm` pointer. Distinguishes "the
  /// basis out-parameter holds the solve's result" from "it still holds the
  /// caller's input" for basis-pool commits.
  bool basis_saved = false;
  /// Multiply-accumulate operations the sparse FTRAN kernel skipped because
  /// the entering column entry was structurally zero. Zero when the solve
  /// ran with SimplexOptions::use_dense_kernels.
  long long ftran_nnz_skipped = 0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::kOptimal;
  }
};

}  // namespace carbon::lp

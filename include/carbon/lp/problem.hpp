// Linear program container:   min c'x   s.t.  A x {<=,=,>=} b,  l <= x <= u.
//
// Columns are stored explicitly (the simplex works column-wise and the
// constraint counts are small). Infinite upper bounds are expressed with
// `kInfinity`; every variable must have a finite lower bound, which covers
// all LPs arising in this project (covering relaxations, tests, examples).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace carbon::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowSense : unsigned char {
  kLessEqual,
  kEqual,
  kGreaterEqual,
};

struct Problem {
  /// Objective coefficients, one per structural variable (minimization).
  std::vector<double> objective;
  /// Column-major constraint matrix: columns[j][i] = A(i, j).
  std::vector<std::vector<double>> columns;
  std::vector<double> rhs;
  std::vector<RowSense> sense;
  std::vector<double> lower;
  std::vector<double> upper;

  [[nodiscard]] std::size_t num_vars() const noexcept {
    return objective.size();
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rhs.size(); }

  /// Appends a variable; returns its index.
  std::size_t add_variable(double cost, double lo, double hi);
  /// Appends a constraint with the given dense row; returns its index.
  std::size_t add_constraint(const std::vector<double>& row, RowSense s,
                             double b);

  /// Validates dimensions and bound sanity; returns a diagnostic message or
  /// an empty string when the problem is well-formed.
  [[nodiscard]] std::string validate() const;
};

enum class SolveStatus : unsigned char {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

[[nodiscard]] const char* to_string(SolveStatus s) noexcept;

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  /// Primal values for the structural variables.
  std::vector<double> x;
  /// Dual values (one per row). Sign convention: for a minimization problem,
  /// duals of >= rows are >= 0, duals of <= rows are <= 0.
  std::vector<double> duals;
  /// Reduced costs for the structural variables.
  std::vector<double> reduced_costs;
  int iterations = 0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::kOptimal;
  }
};

}  // namespace carbon::lp

// A "problem family" is an LP whose constraint matrix, senses, rhs and bounds
// are frozen for its lifetime while the objective vector is re-bound per
// solve. Within a CARBON/COBRA run every LL relaxation shares one constraint
// matrix — only the UL pricing moves the costs — so validating, copying and
// re-allocating the whole lp::Problem on every evaluation is pure waste.
// ProblemFamily validates once at construction and exposes a cost-only
// rebind(); lp::solve(family, ...) then skips per-solve validation entirely.
#pragma once

#include <span>

#include "carbon/lp/problem.hpp"

namespace carbon::lp {

class ProblemFamily {
 public:
  /// Takes ownership of `problem` and validates it once, throwing
  /// std::invalid_argument on a malformed problem exactly like lp::solve.
  /// Copying a family does NOT re-validate (the invariant is preserved).
  explicit ProblemFamily(Problem problem);

  /// Copies share the validated problem but start their own rebind count —
  /// each EvalContext clones the shared prototype and counts locally.
  ProblemFamily(const ProblemFamily& other) : p_(other.p_) {}
  ProblemFamily& operator=(const ProblemFamily& other) {
    p_ = other.p_;
    rebinds_ = 0;
    return *this;
  }
  ProblemFamily(ProblemFamily&&) = default;
  ProblemFamily& operator=(ProblemFamily&&) = default;

  /// Cost-only rebind: copies `c` over the first c.size() objective
  /// coefficients; trailing coefficients keep their current values (the
  /// pricing-prefix convention of the LL relaxation, where only owned
  /// services are re-priced). Throws std::invalid_argument when `c` is
  /// longer than the objective. Constraint data is untouched, so any basis
  /// saved from a previous solve of this family stays primal-feasible.
  void rebind(std::span<const double> c);

  [[nodiscard]] const Problem& problem() const noexcept { return p_; }

  /// Number of rebind() calls since this object was constructed or copied
  /// (feeds the lp/family_rebinds backend counter).
  [[nodiscard]] long long rebinds() const noexcept { return rebinds_; }

 private:
  Problem p_;
  long long rebinds_ = 0;
};

}  // namespace carbon::lp

// Bounded-variable revised primal simplex over sparse (CSC) columns.
//
// Two phases: Phase 1 drives artificial variables out of an all-artificial
// start basis, Phase 2 optimizes the real objective. Variables carry explicit
// [l, u] bounds so binary relaxations (x in [0,1]) never inflate the row
// count — the basis stays m x m with m = #constraints, which is what makes
// per-evaluation LP bounds affordable inside an evolutionary loop.
//
// The inverse basis is maintained densely with product-form pivot updates and
// periodic refactorization (Gauss-Jordan with partial pivoting), but every
// kernel that touches constraint columns — pricing (column_dot), FTRAN
// column formation, crash/residual accumulation, basis assembly — iterates
// only the stored nonzeros. Skipping a `+= 0.0` term (and transposing a loop
// whose skipped terms are exact zeros) is IEEE-exact, so the pivot sequence,
// duals and primal values are bit-for-bit identical to the dense reference
// kernels; SimplexOptions::use_dense_kernels keeps that reference path alive
// for differential tests and benchmarks. Pricing is Dantzig's rule with an
// automatic switch to Bland's rule after a stall threshold, which guarantees
// termination.
#pragma once

#include <cstddef>
#include <vector>

#include "carbon/lp/dense_matrix.hpp"
#include "carbon/lp/problem.hpp"
#include "carbon/lp/problem_family.hpp"

namespace carbon::lp {

struct SimplexOptions {
  /// Hard cap on pivots across both phases; 0 means `50 * (rows + vars)`.
  int max_iterations = 0;
  /// Switch from Dantzig to Bland pricing after this many pivots in a phase.
  int bland_threshold = 2000;
  /// Refactorize the basis inverse every this many pivots.
  int refactor_interval = 100;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  double pivot_tol = 1e-9;
  /// Route pricing/FTRAN/accumulation through dense reference kernels that
  /// materialize every column (the pre-sparse implementation). Produces
  /// bit-identical solutions to the sparse kernels; exists for differential
  /// tests and the dense-vs-sparse microbenchmark.
  bool use_dense_kernels = false;
};

/// An optimal basis snapshot usable to warm-start a subsequent solve of a
/// problem with the SAME constraint matrix/rhs/bounds but possibly different
/// objective coefficients (primal feasibility of the basis is preserved
/// under cost changes). Statuses cover structural variables then slacks.
struct Basis {
  std::vector<unsigned char> status;      ///< 0 = at lower, 1 = at upper, 2 = basic
  std::vector<std::size_t> basic_vars;    ///< one per row
  [[nodiscard]] bool empty() const noexcept { return basic_vars.empty(); }
};

namespace detail {
/// Nonbasic/basic marker for every column (structural, slack, artificial).
enum class VarStatus : unsigned char { kAtLower, kAtUpper, kBasic };
}  // namespace detail

/// Reusable per-solve working memory for the simplex. A fresh SimplexSolver
/// allocates about a dozen vectors plus an m x m matrix per solve (and
/// another per refactorization); binding one SolveScratch to consecutive
/// solves of the same ProblemFamily reuses those allocations instead. Every
/// buffer is fully re-assigned before its first read each solve, so a
/// scratch-backed solve is bit-identical to a fresh-solver solve. NOT
/// thread-safe: one SolveScratch per thread (EvalContext owns one).
struct SolveScratch {
  std::vector<double> cost, lower, upper, slack_sign, art_sign;
  std::vector<detail::VarStatus> status, status_cand;
  std::vector<unsigned char> mark;
  std::vector<std::size_t> basis;
  std::vector<double> xb, y, alpha, work, work2, col;
  DenseMatrix binv, refactor;
};

/// Solves `problem` (minimization). The problem must pass validate().
/// When `warm` is non-null and holds a compatible basis, the solve starts
/// from it (skipping Phase 1); on optimal exit the basis is written back.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {},
                             Basis* warm = nullptr);

/// Family fast path: skips validation (done once by ProblemFamily) and, when
/// `scratch` is non-null, reuses its buffers instead of allocating. Results
/// are bit-identical to solve(family.problem(), options, warm).
[[nodiscard]] Solution solve(const ProblemFamily& family,
                             const SimplexOptions& options = {},
                             Basis* warm = nullptr,
                             SolveScratch* scratch = nullptr);

namespace detail {

/// Internal solver exposed for white-box testing.
class SimplexSolver {
 public:
  SimplexSolver(const Problem& problem, const SimplexOptions& options,
                SolveScratch* scratch = nullptr);
  Solution run(Basis* warm = nullptr);

 private:
  // Column j of the full (structural + slack + artificial) matrix, densely.
  void full_column(std::size_t j, std::vector<double>& out) const;
  double column_dot(std::size_t j, const std::vector<double>& y) const;
  /// out[i] += scale * A(i, j) over the stored nonzeros of column j.
  void axpy_column(std::size_t j, double scale, std::vector<double>& out) const;
  /// alpha = B^-1 A_j (the simplex FTRAN); tracks skipped MACs.
  void ftran(std::size_t j, std::vector<double>& alpha);
  /// (row i of B^-1) . A_j.
  double binv_row_dot_column(std::size_t i, std::size_t j) const;
  /// y^T = cB^T B^-1.
  void compute_duals(std::vector<double>& y) const;

  void setup_phase1();
  /// Tries an all-slack "crash" basis with structural variables parked at
  /// their lower (or upper) bounds. Returns true and installs the basis when
  /// it is primal-feasible, letting the solve skip Phase 1 entirely. This is
  /// always possible for covering relaxations started at x = u.
  bool try_crash_start(bool structural_at_upper);
  /// Installs a caller-provided basis (refactorizes; rejects singular or
  /// primal-infeasible bases). Returns success.
  bool try_warm_start(const Basis& warm);
  void save_basis(Basis& out) const;
  void enter_phase2();
  /// Returns final status of the phase iteration loop.
  SolveStatus iterate(bool phase1);
  bool refactorize();
  void recompute_basic_values();
  double nonbasic_value(std::size_t j) const;
  /// Drives remaining basic artificials out (or pins redundant rows).
  void purge_artificials();
  void export_stats(Solution& sol) const;

  const Problem& p_;
  SimplexOptions opt_;

  std::size_t n_struct_ = 0;  // structural variables
  std::size_t m_ = 0;         // rows == slacks == artificials
  std::size_t n_total_ = 0;   // struct + slack + artificial

  // Working memory lives in a SolveScratch — caller-provided (reused across
  // solves) or the solver's own. Every buffer is fully re-assigned by the
  // constructor or by the start-basis installation before its first read,
  // so reuse cannot leak state between solves. The reference members below
  // bind to whichever scratch is active, keeping the solver body identical
  // either way.
  SolveScratch own_;

  std::vector<double>& cost_;        // current phase objective (size n_total_)
  std::vector<double>& lower_;       // bounds for all variables
  std::vector<double>& upper_;
  std::vector<double>& slack_sign_;  // +1 for <=/=, -1 for >=
  std::vector<double>& art_sign_;    // chosen at phase-1 setup

  // Dense reference path only: structural columns materialized with their
  // zeros, exactly as the pre-sparse Problem stored them.
  std::vector<std::vector<double>> dense_cols_;
  std::vector<double>& col_scratch_;

  std::vector<VarStatus>& status_;
  std::vector<std::size_t>& basis_;  // basis_[i] = variable basic in row i
  DenseMatrix& binv_;
  std::vector<double>& xb_;          // values of basic variables

  // Start-basis candidates and per-phase temporaries (see SolveScratch).
  std::vector<VarStatus>& status_cand_;
  std::vector<unsigned char>& mark_;
  DenseMatrix& refactor_;
  std::vector<double>& y_;
  std::vector<double>& alpha_;
  std::vector<double>& work_;
  std::vector<double>& work2_;

  int iterations_ = 0;
  int refactorizations_ = 0;
  long long ftran_skipped_ = 0;
  bool warm_start_used_ = false;
  bool warm_start_rejected_ = false;
  bool numerical_failure_ = false;
};

}  // namespace detail
}  // namespace carbon::lp

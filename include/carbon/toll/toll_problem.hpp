// The toll-setting problem — the first application domain the paper's
// related-work section cites for bi-level optimization (Brotcorne et al.'s
// "bilevel model for toll optimization on a multicommodity transportation
// network").
//
//   leader:   set tolls t_a in [0, cap_a] on the tollable arcs to maximize
//             collected revenue  Σ_commodities Σ_{a in path} t_a * demand
//   follower: each commodity routes its demand along a cheapest path under
//             cost_a + t_a (rational, exactly computable via Dijkstra)
//
// Unlike the BCPOP, the follower here is solvable in polynomial time, so
// this domain exercises the *exact* lower-level regime: bi-level feasibility
// is free, and the optimistic/pessimistic distinction appears as tie-breaks
// on equal-cost paths. We adopt the optimistic convention (ties resolved in
// path order found by Dijkstra) as the paper does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/graph/graph.hpp"

namespace carbon::toll {

struct Commodity {
  graph::NodeId origin = 0;
  graph::NodeId destination = 0;
  double demand = 1.0;  ///< travellers per unit time
};

class Problem {
 public:
  /// `base_costs` are the fixed travel costs per arc; `tollable` lists the
  /// arcs the leader prices; `toll_cap` bounds every toll.
  Problem(graph::Digraph network, std::vector<graph::ArcId> tollable,
          std::vector<Commodity> commodities, double toll_cap);

  [[nodiscard]] const graph::Digraph& network() const noexcept {
    return network_;
  }
  [[nodiscard]] std::span<const graph::ArcId> tollable_arcs() const noexcept {
    return tollable_;
  }
  [[nodiscard]] std::span<const Commodity> commodities() const noexcept {
    return commodities_;
  }
  [[nodiscard]] std::span<const ea::Bounds> toll_bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] double toll_cap() const noexcept { return toll_cap_; }

 private:
  graph::Digraph network_;
  std::vector<graph::ArcId> tollable_;
  std::vector<Commodity> commodities_;
  std::vector<ea::Bounds> bounds_;
  double toll_cap_;
};

/// Outcome of evaluating one toll vector.
struct Evaluation {
  bool all_routable = false;   ///< every commodity found a path
  double revenue = 0.0;        ///< leader objective (maximize)
  double travel_cost = 0.0;    ///< total follower cost (incl. tolls paid)
  /// Demand-weighted usage of each tollable arc.
  std::vector<double> toll_arc_flow;
};

/// Evaluates tolls exactly: one Dijkstra per distinct origin.
[[nodiscard]] Evaluation evaluate(const Problem& problem,
                                  std::span<const double> tolls);

/// Grid-network generator: an R x C road grid with bidirected arcs, random
/// congestion costs, a random subset of tollable arcs and K commodities.
struct GridConfig {
  std::size_t rows = 5;
  std::size_t cols = 5;
  double min_cost = 1.0;
  double max_cost = 10.0;
  double tollable_fraction = 0.3;
  std::size_t num_commodities = 4;
  double min_demand = 1.0;
  double max_demand = 10.0;
  double toll_cap = 20.0;
  std::uint64_t seed = 1;
};

[[nodiscard]] Problem make_grid_problem(const GridConfig& config);

/// Nested GA over toll vectors (the follower is exact, so the NSQ scheme is
/// the right tool here — every fitness evaluation embeds the true rational
/// reaction).
struct GaConfig {
  std::size_t population_size = 40;
  int generations = 60;
  double crossover_prob = 0.85;
  double mutation_prob = 0.10;
  ea::SbxConfig sbx{};
  ea::PolynomialMutationConfig mutation{};
  std::uint64_t seed = 1;
};

struct GaResult {
  std::vector<double> best_tolls;
  Evaluation best_evaluation;
  /// Best revenue per generation (for convergence inspection).
  std::vector<double> history;
};

[[nodiscard]] GaResult solve_with_ga(const Problem& problem,
                                     const GaConfig& config = {});

}  // namespace carbon::toll

// JSONL run journal: one machine-readable record per solver generation plus
// a final run summary, written as newline-delimited JSON.
//
// The journal is the uniform observability surface the solvers write to —
// per-generation population statistics, budget spend, backend cache
// behavior, and per-phase wall-clock — so a perf or trajectory regression
// can be bisected by diffing two journal files instead of re-instrumenting
// code. The full field-by-field schema is documented in
// docs/ALGORITHMS.md §9.
//
// Record types ("type" field):
//   "run_start"   — one per begin_run(): algorithm, seed, config echo.
//   "resume"      — one per write_resume(): emitted right after
//                   "run_start" when a run restarts from a checkpoint;
//                   carries the resume generation and the budget already
//                   consumed, so journal consumers can splice trajectories.
//   "generation"  — one per recorded generation (write_generation()).
//   "summary"     — one per finish_run(): totals and final bests.
//
// When constructed with a MetricsRegistry, each generation record carries
// the *delta* of every timer since the previous record under "timings_s"
// (seconds) — per-phase cost of that generation — and the summary carries
// cumulative totals. Without a registry those objects are empty.
//
// Writing is trajectory-neutral by construction: the journal only ever
// reads solver state, and all writes happen on the solver thread between
// generations (a mutex still serializes emit() so diagnostic use from
// several threads cannot interleave lines).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "carbon/common/stopwatch.hpp"
#include "carbon/obs/metrics.hpp"

namespace carbon::obs {

/// Backend (evaluator) statistics carried by generation and summary
/// records. Values are cumulative since the run's first evaluation.
struct JournalBackendStats {
  long long relaxation_cache_hits = 0;
  long long relaxation_cache_misses = 0;
  long long relaxation_cache_evictions = 0;
  long long heuristic_dedup_hits = 0;
  // Cross-generation score-memo counters (docs/ALGORITHMS.md §14).
  long long score_cache_hits = 0;
  long long score_cache_evictions = 0;
  // Guard-rail counters (docs/ALGORITHMS.md §13): budget trips, evaluations
  // that left the full-fidelity path, and evaluations skipped outright.
  long long guard_trips = 0;
  long long guard_degraded_evals = 0;
  long long guard_budget_exhausted = 0;
  // LP family / warm-start-pool counters (docs/ALGORITHMS.md §15).
  long long lp_family_rebinds = 0;
  long long lp_warm_start_rejects = 0;
  long long lp_pool_hits = 0;
  long long lp_pool_rejects = 0;
  long long lp_pivots_saved = 0;

  bool operator==(const JournalBackendStats&) const = default;
};

/// One generation's worth of observable state. Population statistics are
/// over whatever population the recording solver evaluated that
/// generation (see docs/ALGORITHMS.md §9 for the per-solver meaning).
struct GenerationRecord {
  int generation = 0;
  std::string_view phase;  ///< "carbon" | "upper" | "lower" | "coevolution"

  // Upper-level objective F over the evaluated population.
  double best_ul = 0.0;
  double mean_ul = 0.0;
  double std_ul = 0.0;
  // %-gap over the evaluated population.
  double best_gap = 0.0;
  double mean_gap = 0.0;
  double std_gap = 0.0;
  // Monotone best-so-far values (match the convergence trace).
  double best_ul_so_far = 0.0;
  double best_gap_so_far = 0.0;

  std::size_t archive_size = 0;     ///< primary (upper/solution) archive
  std::size_t ll_archive_size = 0;  ///< secondary archive (heuristics/baskets)

  // Budget spent since run start (Table II accounting).
  long long ul_evals = 0;
  long long ll_evals = 0;

  JournalBackendStats backend;
};

/// State restored from a checkpoint, for the "resume" record.
struct ResumeRecord {
  int generation = 0;            ///< generation the run resumes at
  long long ul_evals = 0;        ///< UL budget already consumed
  long long ll_evals = 0;        ///< LL budget already consumed
  std::string_view checkpoint_path;  ///< file the state came from
};

/// Final run totals for the "summary" record.
struct RunSummary {
  int generations = 0;
  long long ul_evals = 0;
  long long ll_evals = 0;
  double best_ul = 0.0;
  double best_gap = 0.0;
  JournalBackendStats backend;
};

class RunJournal {
 public:
  /// Appends to `path` (created if absent). Throws std::runtime_error when
  /// the file cannot be opened. `metrics` (optional, borrowed) supplies the
  /// per-generation timing deltas.
  explicit RunJournal(const std::string& path,
                      const MetricsRegistry* metrics = nullptr);
  /// Writes to a caller-owned stream (tests, in-memory capture).
  explicit RunJournal(std::ostream& out,
                      const MetricsRegistry* metrics = nullptr);

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Emits the "run_start" record and resets the per-run state (timing
  /// baseline, wall clock). Solvers call this at run() entry.
  void begin_run(std::string_view algo, std::uint64_t seed,
                 std::size_t eval_threads, bool compiled_scoring);

  /// Emits one "resume" record (call after begin_run when restoring a
  /// checkpoint).
  void write_resume(const ResumeRecord& rec);

  /// Emits one "generation" record.
  void write_generation(const GenerationRecord& rec);

  /// Emits the "summary" record for the current run.
  void finish_run(const RunSummary& summary);

  /// Lines emitted so far (all record types).
  [[nodiscard]] long long records_written() const noexcept {
    return records_written_;
  }

 private:
  void emit(std::string line);
  /// Timer totals since begin_run, and the delta since the last call.
  void append_timings(class JsonObjectWriter& w, bool cumulative);

  std::unique_ptr<std::ofstream> owned_file_;
  std::ostream* out_;
  const MetricsRegistry* metrics_;
  std::mutex mutex_;
  std::string algo_;
  common::Stopwatch run_clock_;
  MetricsRegistry::Snapshot last_snapshot_;
  MetricsRegistry::Snapshot run_start_snapshot_;
  long long records_written_ = 0;
};

/// Borrowed telemetry sinks handed to a solver via its config. Both are
/// optional and independent; the caller owns their lifetime (they must
/// outlive run()). Telemetry never alters trajectories: runs are
/// bit-identical with any combination of sinks attached.
struct TelemetryConfig {
  MetricsRegistry* metrics = nullptr;
  RunJournal* journal = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || journal != nullptr;
  }
};

}  // namespace carbon::obs

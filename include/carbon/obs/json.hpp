// Minimal JSON support for the run journal: a one-line object writer and a
// strict recursive-descent parser.
//
// The writer produces exactly the subset the journal schema needs — flat or
// nested objects with string/number/bool/null values — one record per line
// (JSONL). Doubles are printed with round-trip precision ("%.17g");
// non-finite doubles become `null` (JSON has no Inf/NaN). The parser reads
// that subset back (plus arrays, for forward compatibility) so tests can
// round-trip every emitted record and tools can diff two journals without
// an external dependency.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace carbon::obs {

/// A parsed JSON value. Only the variant member matching `kind` is
/// meaningful; accessors throw std::runtime_error on kind mismatch so
/// schema violations fail loudly in tests.
struct JsonValue {
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// True if the value is an object containing `key`.
  [[nodiscard]] bool has(std::string_view key) const;
  /// Member access; throws if not an object or the key is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Typed accessors; throw on kind mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] long long as_integer() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::runtime_error with a position on error.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Appends `text` JSON-escaped (quotes, backslash, control characters) to
/// `out`, without surrounding quotes.
void append_json_escaped(std::string& out, std::string_view text);

/// Incremental single-object writer:
///
///   JsonObjectWriter w;
///   w.field("type", "generation").field("gen", 3).field("best", 1.5);
///   journal << w.finish();   // {"type":"generation","gen":3,"best":1.5}
///
/// Nested objects are added with object_field() (a prebuilt writer) — depth
/// one is all the journal schema uses.
class JsonObjectWriter {
 public:
  JsonObjectWriter() : buffer_("{") {}

  JsonObjectWriter& field(std::string_view key, std::string_view value);
  JsonObjectWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObjectWriter& field(std::string_view key, double value);
  JsonObjectWriter& field(std::string_view key, long long value);
  JsonObjectWriter& field(std::string_view key, unsigned long long value);
  JsonObjectWriter& field(std::string_view key, int value) {
    return field(key, static_cast<long long>(value));
  }
  JsonObjectWriter& field(std::string_view key, std::size_t value) {
    return field(key, static_cast<unsigned long long>(value));
  }
  JsonObjectWriter& field(std::string_view key, bool value);
  JsonObjectWriter& null_field(std::string_view key);
  /// Embeds `inner` (a finished writer) as a nested object value.
  JsonObjectWriter& object_field(std::string_view key,
                                 JsonObjectWriter inner);
  /// Embeds `raw` verbatim as the value — it must already be valid JSON
  /// (e.g. a finished JsonArrayWriter). No escaping is applied.
  JsonObjectWriter& raw_field(std::string_view key, std::string_view raw);

  /// Closes the object and returns it. The writer is spent afterwards.
  [[nodiscard]] std::string finish();

 private:
  void key_prefix(std::string_view key);

  std::string buffer_;
  bool first_ = true;
};

/// Incremental array writer, the sequence counterpart of JsonObjectWriter.
/// Used by the checkpoint serializer for populations and archives:
///
///   JsonArrayWriter a;
///   a.item("3ff0..").raw_item(entry.finish());
///   w.raw_field("ul_pop", a.finish());   // ["3ff0..",{...}]
class JsonArrayWriter {
 public:
  JsonArrayWriter() : buffer_("[") {}

  /// Appends a quoted, escaped string element.
  JsonArrayWriter& item(std::string_view value);
  /// Appends `raw` verbatim — it must already be valid JSON (a finished
  /// object/array writer, a number, ...).
  JsonArrayWriter& raw_item(std::string_view raw);

  /// Closes the array and returns it. The writer is spent afterwards.
  [[nodiscard]] std::string finish();

 private:
  void separator();

  std::string buffer_;
  bool first_ = true;
};

}  // namespace carbon::obs

// Run-telemetry metrics: a thread-safe registry of named counters, gauges
// and wall-clock timers.
//
// Design goals, in order:
//   1. Trajectory neutrality. Telemetry observes; it never participates.
//      Nothing here consumes RNG, allocates on behalf of the solve path
//      while disabled, or feeds values back into any algorithm.
//   2. Zero cost when disabled. Every instrumentation site takes a
//      `MetricsRegistry*`; a null pointer short-circuits before any clock
//      read or string hash (see the free helpers and ScopedTimer below).
//   3. Cheap under concurrency. Writes land in one of S shards selected by
//      the calling thread's id, so two evaluation workers almost never
//      contend on the same mutex. Reads (snapshot()) merge all shards —
//      the slow path runs once per generation, not once per evaluation.
//
// Counters accumulate (sum-merged), gauges keep the most recent write
// (merged by a global write sequence), timers accumulate count / total /
// max seconds. Names are plain strings; the convention used by the
// evaluators and solvers is "<area>/<what>", e.g. "time/lp_relaxation".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace carbon::obs {

class MetricsRegistry {
 public:
  /// Aggregate of one named timer: how many intervals were recorded, their
  /// total duration, and the longest single interval.
  struct TimerStat {
    long long count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
  };

  /// Merged view of every shard at one point in time. Maps are ordered so
  /// snapshots print and compare deterministically.
  struct Snapshot {
    std::map<std::string, long long> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerStat> timers;
  };

  explicit MetricsRegistry(std::size_t num_shards = 16);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (creating it at zero).
  void add_counter(std::string_view name, long long delta = 1);
  /// Sets the named gauge; concurrent writers race benignly — the write
  /// with the highest global sequence number wins at merge time.
  void set_gauge(std::string_view name, double value);
  /// Records one timed interval under the named timer.
  void record_timer(std::string_view name, double seconds);

  /// Merge-on-read over all shards. Safe to call concurrently with writes;
  /// each shard is internally consistent, the snapshot as a whole is a
  /// point-in-time-per-shard view.
  [[nodiscard]] Snapshot snapshot() const;

  /// Drops every metric in every shard.
  void reset();

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

 private:
  struct GaugeSlot {
    std::uint64_t sequence = 0;
    double value = 0.0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, long long, std::less<>> counters;
    std::map<std::string, GaugeSlot, std::less<>> gauges;
    std::map<std::string, TimerStat, std::less<>> timers;
  };

  [[nodiscard]] Shard& shard_for_this_thread() noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> gauge_sequence_{0};
};

// ---- Null-safe instrumentation helpers ------------------------------------
// Instrumented code holds a MetricsRegistry* that is null when telemetry is
// off; these helpers make the disabled path a single pointer test.

inline void count(MetricsRegistry* m, std::string_view name,
                  long long delta = 1) {
  if (m != nullptr) m->add_counter(name, delta);
}

inline void gauge(MetricsRegistry* m, std::string_view name, double value) {
  if (m != nullptr) m->set_gauge(name, value);
}

/// RAII wall-clock interval recorded into a timer on destruction (or on an
/// explicit stop()). With a null registry neither constructor nor destructor
/// reads the clock.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name)
      : registry_(registry), name_(name) {
    if (registry_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the interval now; subsequent stop() calls are no-ops.
  void stop() {
    if (registry_ == nullptr) return;
    const double s =
        std::chrono::duration<double>(Clock::now() - start_).count();
    registry_->record_timer(name_, s);
    registry_ = nullptr;
  }

 private:
  using Clock = std::chrono::steady_clock;
  MetricsRegistry* registry_;
  std::string_view name_;
  Clock::time_point start_{};
};

}  // namespace carbon::obs

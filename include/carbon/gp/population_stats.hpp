// Diversity and size statistics over a GP population.
//
// Competitive co-evolution degenerates when the predator population
// converges structurally (every heuristic the same tree): the arms race
// stalls. These metrics let experiments monitor that — mean/max size and
// depth, the number of structurally distinct trees, and terminal usage
// frequencies (which terminals the population has "discovered").
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "carbon/gp/tree.hpp"

namespace carbon::gp {

struct PopulationStats {
  std::size_t population = 0;
  double mean_size = 0.0;
  std::size_t max_size = 0;
  double mean_depth = 0.0;
  int max_depth = 0;
  /// Structurally distinct individuals (exact node-sequence equality).
  std::size_t unique_structures = 0;
  /// Fraction of individuals reading each terminal.
  std::array<double, kNumTerminals> terminal_usage{};
  /// Fraction of individuals whose score ignores the residual (static
  /// heuristics take the sorted greedy fast path).
  double static_fraction = 0.0;
};

[[nodiscard]] PopulationStats analyze_population(std::span<const Tree> trees);

}  // namespace carbon::gp

// The protected-operator arithmetic shared by every GP evaluation backend.
//
// Tree::evaluate (the prefix-walking interpreter) and gp::CompiledProgram
// (the linearized batch evaluator) must produce bit-identical doubles for
// the same expression — the compiled path is only usable because this file
// is the single definition of what each opcode computes. Keep these inline
// and branch-compatible: any change here changes *every* score the system
// has ever produced.
#pragma once

#include <cmath>

#include "carbon/gp/tree.hpp"

namespace carbon::gp::detail {

/// Operands at or below this magnitude trigger the protected semantics of
/// division (-> 1) and modulo (-> 0).
inline constexpr double kProtectTol = 1e-9;
/// Operator results are clamped into [-kValueCap, kValueCap]; NaN -> 0.
inline constexpr double kValueCap = 1e12;

[[nodiscard]] inline double clamp_finite(double v) noexcept {
  if (std::isnan(v)) return 0.0;
  if (v > kValueCap) return kValueCap;
  if (v < -kValueCap) return -kValueCap;
  return v;
}

[[nodiscard]] inline double apply_op(OpCode op, double a, double b) noexcept {
  switch (op) {
    case OpCode::kAdd:
      return clamp_finite(a + b);
    case OpCode::kSub:
      return clamp_finite(a - b);
    case OpCode::kMul:
      return clamp_finite(a * b);
    case OpCode::kDiv:
      return std::abs(b) < kProtectTol ? 1.0 : clamp_finite(a / b);
    case OpCode::kMod:
      return std::abs(b) < kProtectTol ? 0.0 : clamp_finite(std::fmod(a, b));
    default:
      return 0.0;
  }
}

}  // namespace carbon::gp::detail

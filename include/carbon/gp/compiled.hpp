// Compiled GP scoring programs: linear bytecode evaluated over bundle
// batches in SoA layout.
//
// Tree::evaluate walks the prefix node vector once per (bundle, round) —
// with a per-bundle feature-struct gather and, for large trees, a heap
// operand stack. CompiledProgram front-loads all per-tree work into a
// one-time compile:
//
//   canonicalize -> constant-fold + algebraic simplify -> CSE -> linearize
//
// and then evaluates the resulting register program *batched*: every
// instruction is an elementwise loop over the whole bundle axis (contiguous
// arrays, no std::function, no per-bundle struct, no per-call allocation
// once the caller-owned scratch is warm). A tree evaluated M times per
// greedy round thus costs |program| tight loops instead of M interpreter
// walks.
//
// Equivalence contract: for terminal features that are finite and within
// ±detail::kValueCap, a compiled program produces bit-identical doubles to
// Tree::evaluate on the source tree, with or without simplification (the
// rewrites are exact under the *protected* operator semantics; commutative
// reordering is exact because IEEE-754 + and * are commutative). With
// simplification disabled the equivalence extends to non-finite features up
// to NaN identity (payloads may differ; cover::detail::sanitize_score maps
// both to the same value). tests/gp/compiled_program_test.cpp fuzzes this
// contract against the interpreter.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "carbon/gp/tree.hpp"

namespace carbon::gp {

struct CompileOptions {
  /// Apply canonicalization (commutative operand ordering), constant
  /// folding, and the protected-semantics algebraic identities. Off = a
  /// linearization of the source tree as-is. Common subexpression
  /// elimination always runs (it is value-exact by construction).
  bool simplify = true;
};

class CompiledProgram {
 public:
  CompiledProgram() = default;

  [[nodiscard]] static CompiledProgram compile(const Tree& tree,
                                               const CompileOptions& options =
                                                   {});

  /// One SoA feature batch: columns[t] holds the value of terminal t for
  /// every element of the batch. A column of size 1 broadcasts its single
  /// value across the batch (used for BRES, which is shared by every bundle
  /// within a greedy round); otherwise it must have exactly `count` values.
  struct TerminalBatch {
    std::array<std::span<const double>, kNumTerminals> columns;
    std::size_t count = 0;
  };

  /// Scalar evaluation (reference semantics of Tree::evaluate).
  [[nodiscard]] double evaluate(
      std::span<const double, kNumTerminals> features) const;

  /// Scalar evaluation with a caller-owned register file (no allocation
  /// once `scratch` has grown to num_registers()).
  [[nodiscard]] double evaluate(std::span<const double, kNumTerminals> features,
                                std::vector<double>& scratch) const;

  /// Batched evaluation: out[i] = program(batch element i). `out` must have
  /// batch.count elements; `scratch` is the register file (resized to
  /// num_registers() * batch.count, reused across calls).
  void evaluate_batch(const TerminalBatch& batch, std::span<double> out,
                      std::vector<double>& scratch) const;

  /// True when the program reads terminal t *after* simplification — e.g.
  /// (sub QCOV QCOV) folds to 0 and reads nothing.
  [[nodiscard]] bool uses_terminal(Terminal t) const noexcept {
    return (terminal_mask_ & (1u << static_cast<unsigned>(t))) != 0;
  }

  /// True when no residual-dependent terminal (QCOV, BRES) survives
  /// simplification: scores are then invariant across greedy rounds and the
  /// sort-based cover::greedy_solve_static fast path applies. Catches
  /// strictly more trees than the syntactic gp::is_static_heuristic check.
  [[nodiscard]] bool is_static() const noexcept {
    return !uses_terminal(Terminal::kQcov) && !uses_terminal(Terminal::kBres);
  }

  /// FNV-1a hash of the canonical (simplified, operand-ordered) form. Trees
  /// with equal canonical forms — e.g. (add COST QSUM) and (add QSUM COST)
  /// — share a hash and compile to identical programs, which is what the
  /// evaluators' duplicate-genome memo keys on (with canonical_nodes() as
  /// the exact tiebreaker).
  [[nodiscard]] std::uint64_t canonical_hash() const noexcept { return hash_; }

  /// Canonical form as a prefix node sequence (exact-equality key).
  [[nodiscard]] const std::vector<Node>& canonical_nodes() const noexcept {
    return canonical_;
  }

  [[nodiscard]] std::size_t num_instructions() const noexcept {
    return code_.size();
  }
  [[nodiscard]] std::size_t num_registers() const noexcept {
    return num_regs_;
  }
  [[nodiscard]] bool empty() const noexcept { return code_.empty(); }

 private:
  struct Instr {
    OpCode op = OpCode::kConst;
    std::uint16_t dst = 0;
    std::uint16_t a = 0;  ///< operand register; terminal index for kTerminal
    std::uint16_t b = 0;
    double value = 0.0;   ///< payload for kConst
  };

  std::vector<Instr> code_;
  std::vector<Node> canonical_;
  std::uint64_t hash_ = 0;
  std::uint16_t num_regs_ = 0;
  std::uint16_t result_reg_ = 0;
  std::uint8_t terminal_mask_ = 0;
};

/// Canonical form used by the compiler: simplify(tree) with the operands of
/// commutative operators (+, *) put into a deterministic structural order.
/// Exposed for tests and for hashing without building a full program.
[[nodiscard]] Tree canonicalize(const Tree& tree);

}  // namespace carbon::gp

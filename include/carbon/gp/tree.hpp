// GP syntax trees for scoring-function hyper-heuristics.
//
// Trees implement the paper's Table I primitive set: binary operators
// {+, -, *, protected /, protected mod} over the terminal features a greedy
// scoring function can observe (see cover::BundleFeatures), plus optional
// ephemeral random constants.
//
// Storage is a flat prefix-order (preorder) node vector. That keeps trees
// contiguous (cache-friendly evaluation — they are evaluated millions of
// times per run), makes subtree extraction a simple range copy, and avoids
// per-node allocations entirely.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace carbon::gp {

enum class OpCode : std::uint8_t {
  kAdd,       ///< a + b
  kSub,       ///< a - b
  kMul,       ///< a * b
  kDiv,       ///< protected division: b ~ 0 -> 1
  kMod,       ///< protected modulo:   b ~ 0 -> 0, else fmod(a, b)
  kTerminal,  ///< feature lookup (payload: terminal index)
  kConst,     ///< ephemeral constant (payload: value)
};

/// Terminals, matching Table I of the paper (per-service entries aggregated
/// over services as documented in DESIGN.md §5.1).
enum class Terminal : std::uint8_t {
  kCost,  ///< c_j
  kQsum,  ///< Σ_k q_jk
  kQcov,  ///< Σ_k min(q_jk, residual_k)
  kBres,  ///< Σ_k residual_k
  kDual,  ///< Σ_k d_k q_jk
  kXbar,  ///< x̄_j
  kCount,
};

inline constexpr std::size_t kNumTerminals =
    static_cast<std::size_t>(Terminal::kCount);

[[nodiscard]] const char* terminal_name(Terminal t) noexcept;
[[nodiscard]] const char* opcode_name(OpCode op) noexcept;
[[nodiscard]] int opcode_arity(OpCode op) noexcept;

struct Node {
  OpCode op = OpCode::kConst;
  std::uint8_t terminal = 0;  ///< valid when op == kTerminal
  double value = 0.0;         ///< valid when op == kConst

  [[nodiscard]] bool is_leaf() const noexcept {
    return op == OpCode::kTerminal || op == OpCode::kConst;
  }
  bool operator==(const Node&) const = default;
};

/// Expression tree in prefix order. Invariant: nodes_ encodes exactly one
/// complete expression (checked by `valid()`).
class Tree {
 public:
  Tree() = default;
  explicit Tree(std::vector<Node> prefix) : nodes_(std::move(prefix)) {}

  /// Leaf constructors.
  [[nodiscard]] static Tree terminal(Terminal t);
  [[nodiscard]] static Tree constant(double v);
  /// Applies a binary operator to two subtrees.
  [[nodiscard]] static Tree apply(OpCode op, const Tree& lhs, const Tree& rhs);

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// One-past-the-end index of the subtree rooted at `pos`.
  [[nodiscard]] std::size_t subtree_end(std::size_t pos) const;

  /// Depth of the whole tree (single node = 1).
  [[nodiscard]] int depth() const;

  /// Depth of the node at `pos` within the tree (root = 1).
  [[nodiscard]] int node_depth(std::size_t pos) const;

  /// Copy of the subtree rooted at `pos` as a standalone tree.
  [[nodiscard]] Tree subtree(std::size_t pos) const;

  /// Replaces the subtree rooted at `pos` with `replacement`.
  void replace_subtree(std::size_t pos, const Tree& replacement);

  /// Evaluates against a terminal feature vector (size kNumTerminals).
  /// Never returns NaN/inf: non-finite intermediate results are clamped.
  /// Trees over 64 nodes allocate a heap operand stack per call; hot
  /// callers should use the scratch-buffer overload instead.
  [[nodiscard]] double evaluate(
      std::span<const double, kNumTerminals> features) const;

  /// Same evaluation, but large trees spill the operand stack into the
  /// caller-owned `scratch` (grown as needed, reused across calls) instead
  /// of allocating. bcpop::EvalContext owns one such buffer per thread.
  [[nodiscard]] double evaluate(std::span<const double, kNumTerminals> features,
                                std::vector<double>& scratch) const;

  /// Structural validity: every operator has its operands, exactly one root.
  [[nodiscard]] bool valid() const;

  /// True when any node reads the given terminal.
  [[nodiscard]] bool uses_terminal(Terminal t) const noexcept;

  /// S-expression rendering, e.g. "(add COST (div DUAL QCOV))".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Tree&) const = default;

 private:
  std::vector<Node> nodes_;
};

/// Parses the `to_string` format. Throws std::runtime_error on bad input.
[[nodiscard]] Tree parse(const std::string& text);

/// Constant folding plus always-valid algebraic identities under the
/// *protected* operator semantics (x/x == 1, x-x == 0, mod(x,x) == 0).
[[nodiscard]] Tree simplify(const Tree& tree);

}  // namespace carbon::gp

// Random tree generation: full, grow, and ramped half-and-half (Koza).
#pragma once

#include "carbon/common/rng.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::gp {

struct GenerateConfig {
  int min_depth = 2;  ///< ramped half-and-half minimum depth
  int max_depth = 4;  ///< ramped half-and-half maximum depth
  /// Probability of placing a terminal at a non-forced position in `grow`.
  double terminal_probability = 0.3;
  /// Include ephemeral random constants in the terminal pool. The paper's
  /// Table I has no constants, so this defaults to off.
  bool use_constants = false;
  double constant_min = -10.0;
  double constant_max = 10.0;
};

/// Every path reaches exactly `depth` levels (operators until the last).
[[nodiscard]] Tree generate_full(common::Rng& rng, int depth,
                                 const GenerateConfig& config = {});

/// Paths may stop early with `terminal_probability`; max depth `depth`.
[[nodiscard]] Tree generate_grow(common::Rng& rng, int depth,
                                 const GenerateConfig& config = {});

/// Koza's ramped half-and-half over [min_depth, max_depth].
[[nodiscard]] Tree generate_ramped(common::Rng& rng,
                                   const GenerateConfig& config = {});

/// Uniformly random terminal leaf (respecting use_constants).
[[nodiscard]] Tree random_leaf(common::Rng& rng,
                               const GenerateConfig& config = {});

}  // namespace carbon::gp

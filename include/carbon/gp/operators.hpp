// GP variation operators used by CARBON's predator population (Table II):
// one-point subtree crossover, uniform (subtree-replacement) mutation, and
// reproduction. Depth limits follow the DEAP convention the paper's
// implementation used: an offspring exceeding the static limit is discarded
// and replaced by a copy of its (first) parent.
#pragma once

#include <utility>

#include "carbon/common/rng.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::gp {

struct OperatorConfig {
  /// Static depth limit applied after crossover/mutation.
  int max_depth = 10;
  /// Bias toward internal nodes when picking crossover/mutation points
  /// (Koza's 90/10 rule).
  double internal_bias = 0.9;
  /// Depth range of the freshly grown subtree in uniform mutation.
  int mutation_min_depth = 1;
  int mutation_max_depth = 3;
  GenerateConfig generate;
};

/// Picks a node index, biased toward internal nodes per `internal_bias`.
[[nodiscard]] std::size_t pick_node(common::Rng& rng, const Tree& tree,
                                    double internal_bias);

/// One-point subtree exchange. Returns the two offspring; an offspring whose
/// depth exceeds the limit is replaced by a copy of the corresponding parent.
[[nodiscard]] std::pair<Tree, Tree> subtree_crossover(
    common::Rng& rng, const Tree& a, const Tree& b,
    const OperatorConfig& config = {});

/// Uniform mutation: replaces a random subtree by a freshly grown one.
[[nodiscard]] Tree uniform_mutation(common::Rng& rng, const Tree& tree,
                                    const OperatorConfig& config = {});

/// Point mutation: re-draws a single node with the same arity (cheap local
/// change; used by tests and as an extension operator).
[[nodiscard]] Tree point_mutation(common::Rng& rng, const Tree& tree,
                                  const OperatorConfig& config = {});

}  // namespace carbon::gp

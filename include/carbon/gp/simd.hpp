// Runtime-dispatched multi-lane kernels for the compiled GP bytecode
// interpreter (gp::CompiledProgram::evaluate_batch).
//
// Every bytecode instruction is an ELEMENTWISE loop over the batch axis —
// there are no reductions, no fused multiply-adds, and no order-dependent
// accumulations. IEEE-754 +, -, *, / are deterministic per element, the
// protected-operator branches (see gp/eval_ops.hpp) map one-to-one onto
// compare+blend masks, and fmod is an exactly-rounded libm operation. A
// 4-wide AVX2 lane therefore computes, per element, the *same bits* as the
// scalar loop: vector width is a pure throughput knob, never a semantics
// knob. That is what lets the SIMD path slot under the golden-trajectory
// harness without regenerating a single baseline.
//
// Dispatch model: one kernel table is selected per process, on first use,
// from the CARBON_SIMD environment variable —
//   CARBON_SIMD=auto    pick AVX2 when compiled in and the CPU reports it
//                       (the default)
//   CARBON_SIMD=scalar  force the portable scalar loops
//   CARBON_SIMD=avx2    force AVX2 (falls back to scalar, observable via
//                       path_name(), when the build or CPU lacks it)
// select_path() overrides the choice programmatically at any time — safe
// precisely because all paths are bit-identical (tests flip paths mid-
// process to run the scalar-vs-SIMD differential fuzz).
//
// The AVX2 table lives in its own translation unit (src/gp/simd_avx2.cpp)
// compiled with -mavx2; nothing outside that TU executes AVX2 instructions,
// so the binary stays runnable on pre-AVX2 hardware.
#pragma once

#include <cstddef>
#include <string_view>

namespace carbon::gp::simd {

enum class Path { kScalar, kAvx2 };

/// One batched kernel per bytecode operation. `n` is the batch length; all
/// pointers are rows of the SoA register file (dst may alias a and/or b —
/// every kernel reads element i before writing element i).
struct Kernels {
  using BinFn = void (*)(const double* a, const double* b, double* dst,
                         std::size_t n);
  using SplatFn = void (*)(double value, double* dst, std::size_t n);
  using CopyFn = void (*)(const double* src, double* dst, std::size_t n);

  BinFn add = nullptr;
  BinFn sub = nullptr;
  BinFn mul = nullptr;
  BinFn div = nullptr;  ///< protected: |b| < kProtectTol -> 1
  BinFn mod = nullptr;  ///< protected: |b| < kProtectTol -> 0
  SplatFn splat = nullptr;  ///< kConst and size-1 broadcast columns
  CopyFn copy = nullptr;    ///< full-size terminal column loads

  Path path = Path::kScalar;
  std::size_t lanes = 1;       ///< doubles per hardware iteration
  const char* name = "scalar";
};

/// The active kernel table. First call resolves CARBON_SIMD (subsequent
/// calls are one atomic load); never fails — the scalar table always exists.
[[nodiscard]] const Kernels& kernels() noexcept;

[[nodiscard]] Path active_path() noexcept;
[[nodiscard]] const char* path_name() noexcept;
/// Lane width of the active table (1 scalar, 4 AVX2).
[[nodiscard]] std::size_t lanes() noexcept;

/// True when this CPU reports AVX2 support.
[[nodiscard]] bool cpu_supports_avx2() noexcept;
/// True when the AVX2 kernels were compiled into this binary AND the CPU
/// supports them — i.e. select_path(Path::kAvx2) would actually take effect.
[[nodiscard]] bool avx2_kernels_available() noexcept;

/// Forces the active path; returns what is actually active afterwards
/// (forcing AVX2 without hardware/build support falls back to scalar).
/// Value-safe at any time: every path computes identical bits.
Path select_path(Path path) noexcept;
/// String form: "auto", "scalar", or "avx2" (anything else reads as auto).
Path select_path(std::string_view name) noexcept;

namespace detail {
/// AVX2 table, or nullptr when the build lacks the -mavx2 TU. Defined in
/// src/gp/simd_avx2.cpp; callers must still check cpu_supports_avx2().
[[nodiscard]] const Kernels* avx2_table() noexcept;
/// Scalar reference table (always available; used directly by tests).
[[nodiscard]] const Kernels& scalar_table() noexcept;
}  // namespace detail

}  // namespace carbon::gp::simd

// Bridge from GP trees / compiled programs to the greedy solver's scoring
// interfaces (per-bundle and batched-SoA).
#pragma once

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "carbon/cover/greedy.hpp"
#include "carbon/gp/compiled.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::gp {

/// Lays out BundleFeatures in Terminal order.
[[nodiscard]] inline std::array<double, kNumTerminals> features_to_array(
    const cover::BundleFeatures& f) noexcept {
  return {f.cost, f.qsum, f.qcov, f.bres, f.dual, f.xbar};
}

/// Lays out a cover::BatchFeatureView as a compiled program's terminal
/// batch (Terminal order; BRES broadcasts its round-scalar). The returned
/// batch aliases `view` — keep the view alive while evaluating.
[[nodiscard]] inline CompiledProgram::TerminalBatch view_to_batch(
    const cover::BatchFeatureView& view) noexcept {
  CompiledProgram::TerminalBatch batch;
  batch.columns[static_cast<std::size_t>(Terminal::kCost)] = view.cost;
  batch.columns[static_cast<std::size_t>(Terminal::kQsum)] = view.qsum;
  batch.columns[static_cast<std::size_t>(Terminal::kQcov)] = view.qcov;
  batch.columns[static_cast<std::size_t>(Terminal::kBres)] = {&view.bres, 1};
  batch.columns[static_cast<std::size_t>(Terminal::kDual)] = view.dual;
  batch.columns[static_cast<std::size_t>(Terminal::kXbar)] = view.xbar;
  batch.count = view.count;
  return batch;
}

/// True when the tree reads neither QCOV nor BRES — its score for a bundle
/// is then invariant across greedy rounds, enabling the sort-based
/// cover::greedy_solve_static fast path. This is the *syntactic* check;
/// CompiledProgram::is_static() additionally catches trees whose dynamic
/// terminals simplify away (e.g. (sub QCOV QCOV)).
[[nodiscard]] inline bool is_static_heuristic(const Tree& tree) noexcept {
  return !tree.uses_terminal(Terminal::kQcov) &&
         !tree.uses_terminal(Terminal::kBres);
}

/// Wraps a tree (copied) as a greedy scoring function.
[[nodiscard]] inline cover::ScoreFunction make_score_function(Tree tree) {
  return [t = std::move(tree)](const cover::BundleFeatures& f) {
    const auto arr = features_to_array(f);
    return t.evaluate(std::span<const double, kNumTerminals>(arr));
  };
}

/// Dependency-aware batch scorer over a compiled program — the scorer type
/// the incremental cover::greedy_solve_batched is designed for (it models
/// cover::TerminalAwareBatchScorer). The dependency answers come from the
/// CANONICAL program, so a tree whose BRES/QCOV reads simplify away — e.g.
/// (sub BRES BRES) — correctly reports them unread and unlocks the dirty-set
/// rescoring path. Holds references only: keep `program` and `reg_scratch`
/// alive for the scorer's lifetime (bcpop::EvalContext owns both).
class CompiledBatchScorer {
 public:
  CompiledBatchScorer(const CompiledProgram& program,
                      std::vector<double>& reg_scratch) noexcept
      : program_(&program), scratch_(&reg_scratch) {}

  void operator()(const cover::BatchFeatureView& view,
                  std::span<double> out) const {
    program_->evaluate_batch(view_to_batch(view), out, *scratch_);
  }

  [[nodiscard]] bool depends_on_bres() const noexcept {
    return program_->uses_terminal(Terminal::kBres);
  }
  [[nodiscard]] bool depends_on_qcov() const noexcept {
    return program_->uses_terminal(Terminal::kQcov);
  }

 private:
  const CompiledProgram* program_;
  std::vector<double>* scratch_;
};

/// Wraps a compiled program (shared) as a type-erased batch scorer for
/// cover::grasp_solve and other BatchScoreFunction consumers. The closure
/// owns its register scratch, so repeated rounds do not allocate.
[[nodiscard]] inline cover::BatchScoreFunction make_batch_score_function(
    std::shared_ptr<const CompiledProgram> program) {
  return [program = std::move(program),
          scratch = std::make_shared<std::vector<double>>()](
             const cover::BatchFeatureView& view, std::span<double> out) {
    program->evaluate_batch(view_to_batch(view), out, *scratch);
  };
}

}  // namespace carbon::gp

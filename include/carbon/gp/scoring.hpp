// Bridge from GP trees to the greedy solver's scoring interface.
#pragma once

#include <array>

#include "carbon/cover/greedy.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::gp {

/// Lays out BundleFeatures in Terminal order.
[[nodiscard]] inline std::array<double, kNumTerminals> features_to_array(
    const cover::BundleFeatures& f) noexcept {
  return {f.cost, f.qsum, f.qcov, f.bres, f.dual, f.xbar};
}

/// True when the tree reads neither QCOV nor BRES — its score for a bundle
/// is then invariant across greedy rounds, enabling the sort-based
/// cover::greedy_solve_static fast path.
[[nodiscard]] inline bool is_static_heuristic(const Tree& tree) noexcept {
  return !tree.uses_terminal(Terminal::kQcov) &&
         !tree.uses_terminal(Terminal::kBres);
}

/// Wraps a tree (copied) as a greedy scoring function.
[[nodiscard]] inline cover::ScoreFunction make_score_function(Tree tree) {
  return [t = std::move(tree)](const cover::BundleFeatures& f) {
    const auto arr = features_to_array(f);
    return t.evaluate(std::span<const double, kNumTerminals>(arr));
  };
}

}  // namespace carbon::gp

// Directed-graph substrate with shortest paths.
//
// Built for the toll-setting domain (the first application area the paper's
// related-work section lists): the follower there is a shortest-path
// computation over leader-priced arcs. Kept generic — adjacency lists,
// non-negative arc weights, Dijkstra with predecessor extraction.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace carbon::graph {

using NodeId = std::uint32_t;
using ArcId = std::uint32_t;

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct Arc {
  NodeId from = 0;
  NodeId to = 0;
  double weight = 0.0;  ///< must be >= 0 for Dijkstra
};

class Digraph {
 public:
  explicit Digraph(std::size_t num_nodes = 0) : out_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return arcs_.size(); }

  /// Adds an arc and returns its id. Throws on bad endpoints or negative
  /// weight.
  ArcId add_arc(NodeId from, NodeId to, double weight);

  [[nodiscard]] const Arc& arc(ArcId a) const { return arcs_[a]; }
  [[nodiscard]] std::span<const ArcId> out_arcs(NodeId n) const {
    return out_[n];
  }

  /// Updates an arc's weight (>= 0). Used by the toll leader.
  void set_weight(ArcId a, double weight);

 private:
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> out_;
};

/// Single-source shortest paths (Dijkstra, binary heap).
struct ShortestPaths {
  std::vector<double> distance;     ///< kUnreachable when no path
  std::vector<ArcId> incoming_arc;  ///< arc used to reach each node
  static constexpr ArcId kNoArc = std::numeric_limits<ArcId>::max();

  [[nodiscard]] bool reachable(NodeId n) const {
    return distance[n] != kUnreachable;
  }
};

[[nodiscard]] ShortestPaths dijkstra(const Digraph& g, NodeId source);

/// Arc ids of the shortest source->target path (empty when target equals
/// source or is unreachable). `paths` must come from dijkstra(g, source).
[[nodiscard]] std::vector<ArcId> extract_path(const ShortestPaths& paths,
                                              const Digraph& g,
                                              NodeId target);

}  // namespace carbon::graph

// Nested-sequential baseline (the NSQ/CST category of the paper's taxonomy,
// Fig. 2): a plain GA over pricings where every fitness evaluation solves the
// induced lower-level instance with a fixed hand-written greedy (classic
// cost-effectiveness scoring). This is the "legacy approach" CARBON is
// designed to beat: the follower model never improves, so its gap is whatever
// the fixed heuristic delivers.
#pragma once

#include <cstdint>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/core/result.hpp"
#include "carbon/ea/real_ops.hpp"

namespace carbon::baselines {

struct NestedGaConfig {
  std::size_t population_size = 100;
  std::size_t archive_size = 100;
  double crossover_prob = 0.85;
  double mutation_prob = 0.01;
  ea::SbxConfig sbx{};
  ea::PolynomialMutationConfig mutation{};
  std::size_t archive_reinjection = 5;
  long long ul_eval_budget = 50'000;
  long long ll_eval_budget = 50'000;
  std::uint64_t seed = 1;
  bool record_convergence = true;
};

class NestedGaSolver {
 public:
  NestedGaSolver(const bcpop::Instance& instance, NestedGaConfig config);
  core::RunResult run();

 private:
  const bcpop::Instance& inst_;
  NestedGaConfig cfg_;
};

}  // namespace carbon::baselines

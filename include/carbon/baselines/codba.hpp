// CODBA-style co-evolutionary decomposition (Chaabani, Bechikh & Ben Said
// 2015), the third related algorithm the paper discusses: from the
// upper-level population, spawn one lower-level subpopulation per selected
// pricing, evolve each subpopulation briefly against its own induced
// instance (mating with the best archived baskets), and feed the best pairs
// back. The paper's critique — that this "reduces to a simple nested
// optimization algorithm" — is directly observable here: LL effort is spent
// per-pricing and does not transfer.
#pragma once

#include <cstdint>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/core/result.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/ea/real_ops.hpp"

namespace carbon::baselines {

struct CodbaConfig {
  std::size_t ul_population_size = 30;
  std::size_t archive_size = 30;
  /// Pricings that get their own LL subpopulation each generation.
  std::size_t decomposition_width = 4;
  std::size_t ll_subpopulation_size = 10;
  int ll_subpopulation_generations = 3;
  double ul_crossover_prob = 0.85;
  double ul_mutation_prob = 0.01;
  ea::SbxConfig sbx{};
  ea::PolynomialMutationConfig mutation{};
  double ll_crossover_prob = 0.85;
  double ll_mutation_prob = -1.0;
  double ll_init_density = 0.3;
  long long ul_eval_budget = 50'000;
  long long ll_eval_budget = 50'000;
  std::uint64_t seed = 1;
  bool record_convergence = true;
};

class CodbaSolver {
 public:
  CodbaSolver(const bcpop::Instance& instance, CodbaConfig config);
  CodbaSolver(bcpop::EvaluatorInterface& evaluator, CodbaConfig config);
  core::RunResult run();

 private:
  core::RunResult run_with(bcpop::EvaluatorInterface& eval);

  const bcpop::Instance* inst_ = nullptr;
  bcpop::EvaluatorInterface* external_ = nullptr;
  CodbaConfig cfg_;
};

}  // namespace carbon::baselines

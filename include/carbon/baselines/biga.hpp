// BIGA-style co-evolution (Oduguwa & Roy 2002) — the algorithm COBRA is
// "largely inspired by" (paper §III). Two populations evolve complete
// solution halves *simultaneously* each generation (no improvement phases):
// pricings are selected by leader revenue F, baskets by follower cost f,
// and individuals are paired index-wise for evaluation. Provided as the
// second reference point of the COE category in the paper's taxonomy
// (Fig. 2): it shows what COBRA's phase schedule adds, and what CARBON's
// heuristic populations add on top of both.
#pragma once

#include <cstdint>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/core/result.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/ea/real_ops.hpp"

namespace carbon::baselines {

struct BigaConfig {
  std::size_t population_size = 100;  ///< both halves
  std::size_t archive_size = 100;
  double ul_crossover_prob = 0.85;
  double ul_mutation_prob = 0.01;
  ea::SbxConfig sbx{};
  ea::PolynomialMutationConfig mutation{};
  double ll_crossover_prob = 0.85;
  double ll_mutation_prob = -1.0;  ///< <0 = 1/#variables
  double ll_init_density = 0.3;
  std::size_t archive_reinjection = 5;
  long long ul_eval_budget = 50'000;
  long long ll_eval_budget = 50'000;
  std::uint64_t seed = 1;
  bool record_convergence = true;
};

class BigaSolver {
 public:
  BigaSolver(const bcpop::Instance& instance, BigaConfig config);
  BigaSolver(bcpop::EvaluatorInterface& evaluator, BigaConfig config);
  core::RunResult run();

 private:
  core::RunResult run_with(bcpop::EvaluatorInterface& eval);

  const bcpop::Instance* inst_ = nullptr;
  bcpop::EvaluatorInterface* external_ = nullptr;
  BigaConfig cfg_;
};

}  // namespace carbon::baselines

// Umbrella header: everything the library exports.
//
//   #include "carbon/carbon.hpp"
//
// pulls in the full public API. Individual subsystem headers remain the
// preferred includes for library code; this exists for quick experiments,
// examples and downstream prototyping.
//
// Subsystem map (see README.md and docs/ALGORITHMS.md):
//   common/    RNG, statistics, thread pool, CSV, CLI parsing
//   lp/        bounded-variable revised simplex
//   cover/     multicover instances, bounds, greedy/exact/local search
//   gp/        GP hyper-heuristic engine (trees over Table I primitives)
//   ea/        GA operators and archives
//   bilevel/   %-gap metric, linear bi-level examples
//   bcpop/     the Bi-level Cloud Pricing problem (+ multi-follower)
//   guard/     deterministic resource budgets + degradation ladder
//   obs/       run telemetry: metrics registry, JSONL run journal
//   core/      CARBON and the experiment harness
//   cobra/     the COBRA baseline
//   baselines/ nested GA, BIGA, CODBA
//   graph/     digraph + Dijkstra substrate
//   toll/      toll-setting domain (second application from the paper)
#pragma once

#include "carbon/baselines/biga.hpp"
#include "carbon/baselines/codba.hpp"
#include "carbon/baselines/nested_ga.hpp"
#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"
#include "carbon/bcpop/multi_follower.hpp"
#include "carbon/bilevel/gap.hpp"
#include "carbon/bilevel/linear.hpp"
#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/common/cli.hpp"
#include "carbon/common/csv.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/common/stopwatch.hpp"
#include "carbon/common/task_scheduler.hpp"
#include "carbon/common/thread_pool.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/core/checkpoint.hpp"
#include "carbon/core/config.hpp"
#include "carbon/core/experiment.hpp"
#include "carbon/core/result.hpp"
#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/grasp.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/instance.hpp"
#include "carbon/cover/lagrangian.hpp"
#include "carbon/cover/local_search.hpp"
#include "carbon/cover/orlib_io.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/ea/archive.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/operators.hpp"
#include "carbon/gp/population_stats.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/graph/graph.hpp"
#include "carbon/guard/guard.hpp"
#include "carbon/lp/problem.hpp"
#include "carbon/lp/simplex.hpp"
#include "carbon/obs/json.hpp"
#include "carbon/obs/metrics.hpp"
#include "carbon/obs/run_journal.hpp"
#include "carbon/toll/toll_problem.hpp"

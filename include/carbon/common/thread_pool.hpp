// Minimal work-stealing-free thread pool used to run independent experiment
// replications in parallel. Independent runs carry their own RNG streams
// (see Rng::spawn), so results are identical regardless of scheduling.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace carbon::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future delivers its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n), blocking until all complete. Exceptions from
  /// the body are rethrown (lowest index wins). Every future is drained
  /// before rethrowing: an early rethrow would return to the caller while
  /// later tasks still run against `fn`, which is captured by reference and
  /// dangles the moment the caller's frame unwinds.
  ///
  /// Trivial batches (n <= 1, or a single-worker pool that would serialize
  /// the caller behind one thread anyway) run inline on the calling thread —
  /// no lock, no queue, no wake-up. Larger batches are enqueued under ONE
  /// lock acquisition and wake exactly min(n, size()) workers with targeted
  /// notify_one calls: per-task submit() used to take the lock and notify n
  /// times, stampeding every worker at the mutex for work only a few of
  /// them could claim.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (n == 1 || size() == 1) {
      std::exception_ptr first;
      for (std::size_t i = 0; i < n; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!first) first = std::current_exception();
        }
      }
      if (first) std::rethrow_exception(first);
      return;
    }
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::parallel_for after shutdown");
      }
      for (std::size_t i = 0; i < n; ++i) {
        auto task = std::make_shared<std::packaged_task<void()>>(
            [&fn, i] { fn(i); });
        futs.push_back(task->get_future());
        tasks_.emplace([task] { (*task)(); });
      }
    }
    for (std::size_t w = std::min(n, size()); w > 0; --w) {
      cv_.notify_one();
    }
    std::exception_ptr first;
    for (auto& f : futs) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace carbon::common

// Wall-clock timing helper for the benchmark harnesses.
#pragma once

#include <chrono>

namespace carbon::common {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace carbon::common

// Deterministic work-stealing task scheduler for index-space batches.
//
// ThreadPool::parallel_for pushes one heap-allocated packaged_task per index
// through a single mutex-guarded queue and joins a future per task — fine
// for a handful of experiment replications, but measurable overhead when a
// CARBON generation fans out hundreds of sub-millisecond evaluation jobs,
// and a single slow job (an LP-relaxation cache miss) parks every worker on
// the final barrier while the queue sits empty. TaskScheduler replaces that
// with the classic work-stealing design:
//
//   * each PARTICIPANT (the calling thread plus `workers()` persistent
//     threads) owns a Chase-Lev-style deque of job indices. A batch
//     pre-splits [0, n) into contiguous blocks, one per participant, before
//     any worker wakes — so during execution the owner only pops from the
//     bottom and thieves only steal from the top (no concurrent push);
//   * a participant that drains its own block steals from victims chosen by
//     a per-participant xorshift sequence (seeded by participant id, so the
//     victim order is reproducible even though the interleaving is not);
//   * the caller participates instead of blocking, so a batch never idles
//     the submitting core and `threads + 1` contexts are all doing work.
//
// Determinism: the scheduler itself makes NO ordering promises — steals
// interleave however the hardware likes. Bit-identical trajectories come
// from the commit discipline instead: every job i is executed exactly once,
// by some participant, and commits its result into slot i of a
// caller-provided array. Jobs that are pure functions of their inputs (the
// eval_core contract) therefore produce an identical result array for any
// thread count and any steal schedule — the same argument ThreadPool's
// parallel_for relies on, minus the per-task queue/future traffic. The
// scheduler-level counters (tasks, steals, idle time) are timing-dependent
// and surface only through observability, never through results.
//
// Exceptions: every job runs even if an earlier one threw (results must not
// dangle, same rationale as ThreadPool::parallel_for); afterwards the
// lowest-index exception is rethrown on the calling thread, which makes the
// failure choice deterministic too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace carbon::common {

/// Which engine an evaluator fans batches out with. kParallelFor is the
/// PR 1 ThreadPool path (kept as the reference implementation and for
/// differential benchmarks); kStealing is the work-stealing scheduler.
/// Both produce bit-identical results; they differ only in wall-clock.
enum class SchedKind : unsigned char {
  kParallelFor,
  kStealing,
};

class TaskScheduler {
 public:
  /// Cumulative scheduler-side counters (timing-dependent; observability
  /// only). `tasks` counts executed jobs, `steals` successful steals (a job
  /// executed by a participant other than the one whose deque it was dealt
  /// to), `idle_ns` time participants spent failing to find work before the
  /// batch drained.
  struct Stats {
    long long tasks = 0;
    long long steals = 0;
    long long idle_ns = 0;
  };

  /// Spawns `threads` persistent workers (0 = hardware concurrency, at
  /// least 1). A batch is executed by `threads + 1` participants: the
  /// calling thread helps instead of blocking.
  explicit TaskScheduler(std::size_t threads = 0);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Worker threads owned by the scheduler (excludes the caller).
  [[nodiscard]] std::size_t workers() const noexcept {
    return workers_.size();
  }
  /// Executors of a batch: workers plus the calling thread.
  [[nodiscard]] std::size_t participants() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs fn(participant, i) for every i in [0, n), blocking until all
  /// complete. `participant` is in [0, participants()) and is stable for
  /// the duration of one job — participant 0 is always the calling thread —
  /// so callers can index per-participant scratch without locks (two jobs
  /// never observe the same participant id concurrently). Jobs may run in
  /// any order on any participant; the lowest-index exception is rethrown
  /// after every job has run. Not reentrant: one batch at a time.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cumulative counters since construction (merged at each batch barrier,
  /// so reads between batches need no synchronization).
  [[nodiscard]] Stats stats() const noexcept { return stats_; }

 private:
  /// One participant's deque of job indices plus its scratch counters,
  /// padded so owners and thieves on different deques never share a line.
  struct alignas(64) Deque {
    // Chase-Lev top/bottom over this participant's block: bottom is
    // owner-private except for the last-element race, top is CAS-advanced
    // by thieves. The block holds the contiguous indices
    // [base, base + bottom0), so slot p simply IS index base + p — no ring
    // storage needed because nothing is pushed mid-batch.
    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::size_t base = 0;
    // Per-participant batch-local counters, merged under the barrier.
    long long tasks = 0;
    long long steals = 0;
    long long idle_ns = 0;
    std::int64_t first_error_index = -1;
    std::exception_ptr first_error;
    std::uint64_t rng;  ///< xorshift state for victim selection
  };

  void worker_loop(std::size_t participant);
  /// Executes jobs until the batch drains: own deque first, then steal
  /// sweeps over the other participants.
  void run_participant(std::size_t participant);
  void execute(Deque& self, std::size_t index, std::size_t participant);
  /// Pops from the bottom of the participant's own deque.
  [[nodiscard]] bool pop_own(Deque& d, std::size_t* out) noexcept;
  /// Steals from the top of a victim's deque.
  [[nodiscard]] bool steal_from(Deque& victim, std::size_t* out) noexcept;

  std::vector<std::thread> workers_;
  std::vector<Deque> deques_;  ///< one per participant; [0] = caller

  // Batch state, published under mutex_ before workers wake.
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::size_t> active_{0};  ///< workers still inside the batch
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;

  Stats stats_{};  ///< cumulative, merged at batch barriers (caller only)
};

}  // namespace carbon::common

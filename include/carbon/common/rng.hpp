// Deterministic, splittable random number generation.
//
// Evolutionary experiments need (a) bit-level reproducibility given a seed and
// (b) statistically independent streams for parallel runs. We implement
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// recommended seeding procedure for the xoshiro family. Each independent run
// derives its own stream with `Rng::spawn(run_index)` so results do not depend
// on scheduling order.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

namespace carbon::common {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state. Also a fine
/// standalone generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Raw generator state, for checkpointing. Restoring the exact words via
  /// set_state() resumes the identical draw sequence.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump function: equivalent to 2^128 calls; used to derive non-overlapping
  /// parallel streams.
  void jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_ = {s0, s1, s2, s3};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Complete serializable state of an Rng: the four xoshiro words plus the
/// spawn() mixing word. Saving this and restoring it into any Rng resumes
/// the identical draw (and child-stream) sequence — the contract the
/// checkpoint/resume subsystem relies on (docs/ALGORITHMS.md §11).
struct RngState {
  std::array<std::uint64_t, 4> xoshiro{};
  std::uint64_t seed_mix = 0;

  bool operator==(const RngState&) const = default;
};

/// Convenience facade over Xoshiro256StarStar with the distributions the
/// library actually uses. All methods are deterministic given the seed.
class Rng {
 public:
  using result_type = Xoshiro256StarStar::result_type;

  explicit Rng(std::uint64_t seed = 0xC0FFEEULL) noexcept : gen_(seed) {}

  /// Snapshot / restore of the full generator state (bit-exact resume).
  [[nodiscard]] RngState state() const noexcept {
    return {gen_.state(), seed_mix_};
  }
  void set_state(const RngState& s) noexcept {
    gen_.set_state(s.xoshiro);
    seed_mix_ = s.seed_mix;
  }

  static constexpr result_type min() noexcept { return Xoshiro256StarStar::min(); }
  static constexpr result_type max() noexcept { return Xoshiro256StarStar::max(); }
  result_type operator()() noexcept { return gen_(); }

  /// Independent child stream for run/thread `index`. Children with distinct
  /// indices never overlap (distinct SplitMix64 expansions + jumps).
  [[nodiscard]] Rng spawn(std::uint64_t index) const noexcept {
    SplitMix64 sm(0x9E3779B97F4A7C15ULL ^ seed_mix_ ^ (index * 0xA24BAED4963EE407ULL));
    Rng child(sm.next());
    child.seed_mix_ = sm.next();
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53-bit mantissa trick: exact uniform on the representable grid.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) for n >= 1. Uses Lemire's unbiased method.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Debiased multiply-shift (Lemire 2019).
    std::uint64_t x = gen_();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = gen_();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (no state caching; simple and correct).
  double gauss() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double gauss(double mean, double sd) noexcept { return mean + sd * gauss(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n). O(n) selection sampling
  /// when k is large relative to n, rejection otherwise.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  Xoshiro256StarStar gen_;
  std::uint64_t seed_mix_ = 0;
};

}  // namespace carbon::common

// Descriptive statistics and the nonparametric tests used by the experiment
// harness. The paper reports results over 30 independent runs and claims
// statistical ordering of the two algorithms; we expose the machinery to
// verify such claims (summary statistics + Wilcoxon rank-sum / Mann-Whitney U).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace carbon::common {

/// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Computes a Summary. The input is copied (it must be sorted internally).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolation quantile of a *sorted* sample, q in [0,1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Result of a two-sided Wilcoxon rank-sum (Mann-Whitney U) test.
struct RankSumResult {
  double u_statistic = 0.0;   ///< U for the first sample.
  double z = 0.0;             ///< Normal approximation (tie-corrected).
  double p_value = 1.0;       ///< Two-sided p under the normal approximation.
  double rank_biserial = 0.0; ///< Effect size in [-1, 1]; >0 means a > b.
};

/// Wilcoxon rank-sum test comparing samples a and b (two-sided, normal
/// approximation with tie correction and continuity correction). Suitable for
/// run counts >= ~8 per group, which matches our experiment protocol.
[[nodiscard]] RankSumResult rank_sum_test(std::span<const double> a,
                                          std::span<const double> b);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

}  // namespace carbon::common

// Tiny CSV emitter used by the benchmark harnesses to dump convergence series
// and table rows for external plotting. Quotes fields only when needed.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace carbon::common {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a header row. Call at most once, before any data rows.
  void header(const std::vector<std::string>& names);

  /// Starts accumulating a row; call field()/number() then end_row().
  CsvWriter& field(std::string_view value);
  CsvWriter& number(double value, int precision = 6);
  CsvWriter& integer(long long value);
  void end_row();

 private:
  static bool needs_quoting(std::string_view v);
  static std::string quoted(std::string_view v);

  std::ostream* out_;
  std::vector<std::string> row_;
};

}  // namespace carbon::common

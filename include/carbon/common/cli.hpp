// Very small command-line flag parser shared by the examples and benchmark
// harnesses. Supports `--name value`, `--name=value` and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace carbon::common {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace carbon::common

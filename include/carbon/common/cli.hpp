// Very small command-line flag parser shared by the examples and benchmark
// harnesses. Supports `--name value`, `--name=value` and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace carbon::common {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  /// Strict numeric accessors: the whole value must parse (trailing garbage
  /// such as "--threads 4x" is rejected, not truncated to 4). Throw
  /// std::invalid_argument naming the flag and the offending value.
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// Like get_int, but additionally requires the value to be strictly
  /// positive — for counts (threads, budgets, cadences) stored in unsigned
  /// or size-typed config fields, where a negative value would wrap.
  [[nodiscard]] long long get_positive_int(const std::string& name,
                                           long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace carbon::common

// Synthetic instance generator.
//
// The paper takes OR-library Multi-dimensional Knapsack (MKP) instances and
// flips their <= constraints to >= to obtain covering instances with
// non-binary coefficients. OR-library MKP instances follow the Chu & Beasley
// scheme: coefficients uniform in {0..999} (with a density knob), right-hand
// sides set to a fixed *tightness* fraction of the column sums, and costs
// correlated with the coefficient mass plus noise. We reproduce that scheme
// directly for >= covering, which yields the same structural statistics
// without network access (substitution documented in DESIGN.md §3).
#pragma once

#include <cstdint>

#include "carbon/common/rng.hpp"
#include "carbon/cover/instance.hpp"

namespace carbon::cover {

struct GeneratorConfig {
  std::size_t num_bundles = 100;   ///< M (decision variables)
  std::size_t num_services = 5;    ///< N (constraints)
  /// Demand b_k = tightness * sum_j q_jk; smaller = easier covers.
  double tightness = 0.25;
  /// Probability that q_jk is nonzero (Chu & Beasley use dense matrices;
  /// lowering this makes bundles more specialized).
  double density = 0.75;
  int max_quantity = 999;
  /// Cost c_j = correlation * (sum_k q_jk) / N + noise * U(0,1) + base.
  double cost_correlation = 1.0;
  double cost_noise = 500.0;
  double cost_base = 1.0;
  std::uint64_t seed = 42;
};

/// Generates a coverable instance (demands never exceed total supply by
/// construction). Deterministic in the seed.
[[nodiscard]] Instance generate(const GeneratorConfig& config);

/// The 9 instance classes of the paper's Table III/IV:
/// n (bundles) in {100, 250, 500} x m (services) in {5, 10, 30}.
struct PaperClass {
  std::size_t num_bundles;
  std::size_t num_services;
};

[[nodiscard]] const std::vector<PaperClass>& paper_classes();

/// Instance for paper class index (0..8), replication `run` (affects seed).
[[nodiscard]] Instance make_paper_instance(std::size_t class_index,
                                           std::uint64_t run = 0);

/// Named instance families probing robustness beyond the paper's nine
/// classes: constraint tightness, matrix density and cost correlation all
/// change which heuristics work, so a follower model must adapt — exactly
/// what the predator population is for.
struct NamedFamily {
  const char* name;
  const char* description;
  GeneratorConfig config;
};

[[nodiscard]] const std::vector<NamedFamily>& instance_families();

}  // namespace carbon::cover

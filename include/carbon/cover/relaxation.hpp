// Continuous relaxation of a covering instance.
//
// The relaxation plays three roles in the paper: it supplies the lower bound
// LB(x) that defines the %-gap (Eq. 1), and its dual values d_k and relaxed
// solution x̄_j feed the GP terminal set (Table I). We solve it with the
// bounded-variable simplex, so the basis size is the (small) service count.
#pragma once

#include <vector>

#include "carbon/cover/instance.hpp"
#include "carbon/lp/problem.hpp"

namespace carbon::cover {

struct Relaxation {
  bool feasible = false;
  double lower_bound = 0.0;          ///< LP optimum = LB(x).
  std::vector<double> duals;         ///< One per service (>= 0).
  std::vector<double> relaxed_x;     ///< One per bundle, in [0, 1].
};

/// Builds the LP  min c'x, Qx >= b, 0 <= x <= 1  for the instance.
[[nodiscard]] lp::Problem build_relaxation_lp(const Instance& instance);

/// Solves the relaxation. Throws std::runtime_error on solver failure
/// (iteration limit / numerical breakdown), which indicates a bug rather
/// than a property of the instance.
[[nodiscard]] Relaxation relax(const Instance& instance);

}  // namespace carbon::cover

// Continuous relaxation of a covering instance.
//
// The relaxation plays three roles in the paper: it supplies the lower bound
// LB(x) that defines the %-gap (Eq. 1), and its dual values d_k and relaxed
// solution x̄_j feed the GP terminal set (Table I). We solve it with the
// bounded-variable simplex, so the basis size is the (small) service count.
#pragma once

#include <memory>
#include <vector>

#include "carbon/cover/instance.hpp"
#include "carbon/guard/guard.hpp"
#include "carbon/lp/problem.hpp"
#include "carbon/lp/problem_family.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::cover {

/// Solver-side counters from the simplex run that produced a Relaxation.
/// Consumed by the obs layer (lp/* metrics); never part of the trajectory.
struct LpStats {
  int iterations = 0;
  int refactorizations = 0;
  bool warm_start_used = false;
  bool warm_start_rejected = false;
  /// The final clean optimal basis was written back through `warm` (basis
  /// pool commits key off this, never off the raw out-parameter content).
  bool basis_saved = false;
  long long ftran_nnz_skipped = 0;
};

struct Relaxation {
  bool feasible = false;
  double lower_bound = 0.0;          ///< LP optimum = LB(x).
  std::vector<double> duals;         ///< One per service (>= 0).
  std::vector<double> relaxed_x;     ///< One per bundle, in [0, 1].
  LpStats stats;                     ///< Solve-effort counters (observability).
  // Guard bookkeeping. A budget-capped relaxation is still a pure function
  // of (pricing, limits), so these travel with cached entries: a cache hit
  // charges exactly the same node budget and lands on the same ladder rung
  // as a fresh solve would, regardless of eviction order under threading.
  guard::Rung guard_rung = guard::Rung::kFullLp;  ///< Ladder position.
  guard::Trip guard_trip = guard::Trip::kNone;    ///< Cap event, if any.
  long long guard_nodes = 0;  ///< Deterministic node units spent on the bound.
};

/// Builds the LP  min c'x, Qx >= b, 0 <= x <= 1  for the instance, emitting
/// only the nonzero coefficients (via the instance's supplier index).
[[nodiscard]] lp::Problem build_relaxation_lp(const Instance& instance);

/// Shared per-instance relaxation structure: the constraint matrix, slack
/// layout and bounds of the relaxation LP are identical across every solve
/// of a run — only the cost vector moves with the UL pricing — so build and
/// validate them once, then clone the (cheap-to-copy, never re-validated)
/// ProblemFamily into each EvalContext and rebind() costs per evaluation.
struct RelaxationFamily {
  /// Validated prototype with the instance's base costs as the objective.
  lp::ProblemFamily family;
  /// Optimal basis of the base-cost LP; empty when that solve was not
  /// optimal. Cost-only rebinding keeps it primal-feasible, so it is the
  /// fixed warm-start fallback for every evaluation.
  lp::Basis baseline_basis;

  explicit RelaxationFamily(const Instance& instance);

  [[nodiscard]] static std::shared_ptr<const RelaxationFamily> make(
      const Instance& instance) {
    return std::make_shared<const RelaxationFamily>(instance);
  }
};

/// Solves a relaxation LP (as built by build_relaxation_lp, possibly with a
/// different objective) into a Relaxation. This is the one kernel path shared
/// by cover::relax() and bcpop's per-evaluation solve: warm-started when
/// `warm` is non-null, crash-started otherwise. Throws std::runtime_error on
/// solver failure (iteration limit / numerical breakdown), which indicates a
/// bug rather than a property of the instance.
[[nodiscard]] Relaxation solve_relaxation_lp(const lp::Problem& problem,
                                             const lp::SimplexOptions& options,
                                             lp::Basis* warm);

/// Family fast path of solve_relaxation_lp: skips validation and reuses the
/// caller's SolveScratch. Bit-identical to the Problem overload on
/// family.problem().
[[nodiscard]] Relaxation solve_relaxation_lp(const lp::ProblemFamily& family,
                                             const lp::SimplexOptions& options,
                                             lp::Basis* warm,
                                             lp::SolveScratch* scratch);

/// Budget-capped variant of solve_relaxation_lp: an iteration-limited solve
/// comes back as a Relaxation with guard_trip = kLpIterationCap (infeasible,
/// so callers fall down the degradation ladder) instead of throwing. All
/// other failure statuses still throw — they indicate bugs, not budgets.
[[nodiscard]] Relaxation solve_relaxation_lp_capped(
    const lp::Problem& problem, const lp::SimplexOptions& options,
    lp::Basis* warm);

/// Family fast path of solve_relaxation_lp_capped (see above).
[[nodiscard]] Relaxation solve_relaxation_lp_capped(
    const lp::ProblemFamily& family, const lp::SimplexOptions& options,
    lp::Basis* warm, lp::SolveScratch* scratch);

/// Solves the relaxation of `instance` from scratch via the shared kernel.
[[nodiscard]] Relaxation relax(const Instance& instance);

}  // namespace carbon::cover

// Score-driven greedy multicover heuristic — the algorithm template whose
// scoring function the GP population evolves (paper §IV-B).
//
// The greedy repeatedly scores every not-yet-selected bundle that still adds
// useful coverage, picks the highest-scoring one, and stops when all demands
// are met. An optional reverse pass then drops redundant bundles (most
// expensive first). Features exposed to the scoring function implement the
// paper's terminal set (Table I) with the per-service terminals aggregated
// over services, as discussed in DESIGN.md §5.1.
//
// The core is a template over the scorer so that hot callers (the GP tree
// evaluator, which runs inside the innermost loop of every fitness
// evaluation) pay no std::function indirection; `greedy_solve` is the
// type-erased convenience wrapper.
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <type_traits>
#include <vector>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

/// Everything a scoring function may look at when scoring bundle j.
/// All values are recomputed against the *residual* demand each round.
struct BundleFeatures {
  double cost = 0.0;       ///< c_j — price of the bundle.
  double qsum = 0.0;       ///< Σ_k q_jk — raw service mass of the bundle.
  double qcov = 0.0;       ///< Σ_k min(q_jk, residual_k) — useful coverage now.
  double bres = 0.0;       ///< Σ_k residual_k — outstanding demand.
  double dual = 0.0;       ///< Σ_k d_k q_jk — LP-dual-weighted coverage.
  double xbar = 0.0;       ///< x̄_j — value of bundle j in the LP relaxation.
};

/// Scores one bundle; the greedy selects the maximal score each round.
using ScoreFunction = std::function<double(const BundleFeatures&)>;

/// SoA view of the features of EVERY bundle for one greedy round: one
/// contiguous column per BundleFeatures field (bres is a scalar — the
/// outstanding demand is shared by all bundles within a round). Batch
/// scorers (gp::CompiledProgram via gp::make_batch_score_function) fill
/// `out[j]` for all j in one sweep of elementwise loops instead of being
/// called M times with per-bundle structs.
struct BatchFeatureView {
  std::span<const double> cost;  ///< c_j
  std::span<const double> qsum;  ///< Σ_k q_jk
  std::span<const double> qcov;  ///< Σ_k min(q_jk, residual_k)
  std::span<const double> dual;  ///< Σ_k d_k q_jk
  std::span<const double> xbar;  ///< x̄_j
  double bres = 0.0;             ///< Σ_k residual_k (broadcast)
  std::size_t count = 0;         ///< number of bundles (size of each column)
};

/// Scores every bundle of one round: writes out[j] for j in [0, count).
/// Entries of selected / zero-coverage bundles are ignored by the caller.
using BatchScoreFunction =
    std::function<void(const BatchFeatureView&, std::span<double>)>;

struct GreedyOptions {
  /// Drop redundant bundles after reaching feasibility.
  bool eliminate_redundancy = true;
  /// Deterministic cap on selection rounds (0 = unlimited). A solve that
  /// still has outstanding demand when the cap is reached returns
  /// feasible=false with SolveResult::rounds_capped set, and skips the
  /// redundancy pass (the partial selection is not a cover).
  long long max_rounds = 0;
};

namespace detail {

/// NaN/inf scores would otherwise poison the argmax.
inline double sanitize_score(double score) noexcept {
  return std::isfinite(score) ? score : -std::numeric_limits<double>::max();
}

/// Reverse pass shared by every constructive solver here: try to drop
/// selected bundles, most expensive first, keeping feasibility.
void eliminate_redundancy(const Instance& instance,
                          std::vector<std::uint8_t>& selection);

/// Per-bundle static masses (independent of the residual): qsum[j] and the
/// dual-weighted coverage dual_mass[j], accumulated in service order so the
/// batched and per-bundle paths sum in the same sequence.
void static_masses(const Instance& instance, std::span<const double> duals,
                   std::vector<double>& qsum, std::vector<double>& dual_mass);

}  // namespace detail

/// Runs the greedy with an arbitrary callable scorer (inlined at the call
/// site). `duals` and `relaxed_x` may be empty, in which case the
/// corresponding features read as 0 (the GP population then learns to ignore
/// them). Returns feasible=false only when the instance itself cannot be
/// covered.
template <typename Score>
[[nodiscard]] SolveResult greedy_solve_with(const Instance& instance,
                                            Score&& score,
                                            std::span<const double> duals = {},
                                            std::span<const double> relaxed_x =
                                                {},
                                            const GreedyOptions& options = {}) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  SolveResult result;
  result.selection.assign(m, 0);

  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  // Per-bundle static features (do not depend on the residual).
  std::vector<double> qsum;
  std::vector<double> dual_mass;
  detail::static_masses(instance, duals, qsum, dual_mass);

  // Incrementally maintained useful coverage: useful[j] = Σ_k min(q_jk, r_k).
  std::vector<double> useful(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double u = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      u += std::min(row[k], residual[k]);
    }
    useful[j] = u;
  }

  long long rounds = 0;
  while (outstanding > 0) {
    if (options.max_rounds > 0 && rounds >= options.max_rounds) {
      result.feasible = false;
      result.rounds_capped = true;
      result.value = instance.selection_cost(result.selection);
      return result;
    }
    ++rounds;
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_j = m;
    const double bres = static_cast<double>(outstanding);

    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) continue;
      if (useful[j] <= 0.0) continue;  // adds nothing: never select

      BundleFeatures f;
      f.cost = instance.cost(j);
      f.qsum = qsum[j];
      f.qcov = useful[j];
      f.bres = bres;
      f.dual = dual_mass[j];
      f.xbar = j < relaxed_x.size() ? relaxed_x[j] : 0.0;

      const double s = detail::sanitize_score(score(f));
      if (s > best_score) {
        best_score = s;
        best_j = j;
      }
    }

    if (best_j == m) {
      // No bundle adds coverage yet demand remains: instance not coverable.
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      return result;
    }

    result.selection[best_j] = 1;
    const auto chosen = instance.bundle(best_j);
    for (std::size_t k = 0; k < n; ++k) {
      const int r_old = residual[k];
      if (r_old <= 0 || chosen[k] <= 0) continue;
      const int used = std::min(chosen[k], r_old);
      const int r_new = r_old - used;
      residual[k] = r_new;
      outstanding -= used;
      // Update useful coverage of the unselected bundles for this service.
      // Iterates only the suppliers of service k (CSR index, contiguous).
      const auto idx = instance.suppliers(k);
      const auto qty = instance.supplier_quantities(k);
      for (std::size_t t = 0; t < idx.size(); ++t) {
        const std::size_t j = idx[t];
        if (result.selection[j]) continue;
        const int q = qty[t];
        useful[j] -= std::min(q, r_old) - std::min(q, r_new);
      }
    }
  }

  if (options.eliminate_redundancy) {
    detail::eliminate_redundancy(instance, result.selection);
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  return result;
}

/// Batch scorers that can report which residual-dependent terminals they
/// read (gp::CompiledBatchScorer queries the CANONICAL compiled program, so
/// terminals that simplify away do not count). The batched greedy uses the
/// answers to skip rescoring work; scorers without these members are
/// conservatively rescored dense every round.
template <typename S>
concept TerminalAwareBatchScorer = requires(const std::remove_cvref_t<S>& s) {
  { s.depends_on_bres() } -> std::convertible_to<bool>;
  { s.depends_on_qcov() } -> std::convertible_to<bool>;
};

/// Caller-owned working memory for greedy_solve_batched. Hot callers (one
/// per bcpop::EvalContext, mirroring the per-context lp::Basis scratch) keep
/// one across evaluations so the ~10^5 greedy solves per run stop paying a
/// dozen heap allocations each; every vector is assign()ed at entry, so a
/// reused scratch never leaks state between solves.
struct GreedyScratch {
  std::vector<int> residual;
  std::vector<double> qsum;
  std::vector<double> dual_mass;
  std::vector<double> xbar;
  std::vector<double> useful;
  std::vector<double> scores;
  std::vector<std::uint32_t> dirty;      ///< bundles whose qcov changed
  std::vector<std::uint8_t> dirty_flag;  ///< dirty_flag[j] == j in `dirty`
  /// Compacted feature columns + results for dirty-only rescoring.
  std::vector<double> sub_cost;
  std::vector<double> sub_qsum;
  std::vector<double> sub_qcov;
  std::vector<double> sub_dual;
  std::vector<double> sub_xbar;
  std::vector<double> sub_out;
};

/// Rescoring effort of one batched greedy solve. The dense baseline scores
/// every bundle every round (rescore_slots); the dirty-set greedy only
/// recomputes bundles_rescored of them, so rescored_frac < 1 measures the
/// work the incremental path avoided.
struct GreedyBatchStats {
  std::size_t rounds = 0;
  std::size_t bundles_rescored = 0;
  std::size_t rescore_slots = 0;  ///< rounds * num_bundles

  [[nodiscard]] double rescored_frac() const noexcept {
    return rescore_slots == 0
               ? 0.0
               : static_cast<double>(bundles_rescored) /
                     static_cast<double>(rescore_slots);
  }
};

/// Batch-scoring variant of greedy_solve_with: semantically identical (same
/// selections, same tie-breaks) for any batch scorer that computes, per
/// bundle, the same double the per-bundle scorer would.
///
/// Scoring is LAZY: a bundle's score is a pure function of its feature row,
/// and selecting a bundle only changes qcov for bundles sharing a service
/// whose residual moved (tracked through the instance's service→bundle CSR
/// index) and bres for all of them. So after the first dense round, a
/// TerminalAwareBatchScorer that ignores BRES is re-evaluated only on that
/// dirty set — gathered into a compact sub-batch, scored, and scattered
/// back. Every rescore recomputes exactly the double a dense sweep would
/// (kernel ops are elementwise, so batch composition cannot change any
/// element's bits), hence the argmax and its index tie-breaks are identical
/// to the dense greedy. Scorers that read BRES — or type-erased scorers
/// that cannot say — are rescored dense every round, which is the old
/// behavior exactly.
///
/// `scratch` (optional) supplies caller-owned working memory; `stats`
/// (optional) receives the rescoring effort of this solve.
template <typename BatchScore>
[[nodiscard]] SolveResult greedy_solve_batched(
    const Instance& instance, BatchScore&& batch_score,
    std::span<const double> duals = {}, std::span<const double> relaxed_x = {},
    const GreedyOptions& options = {}, GreedyScratch* scratch = nullptr,
    GreedyBatchStats* stats = nullptr) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  GreedyScratch local;
  GreedyScratch& s = scratch != nullptr ? *scratch : local;
  GreedyBatchStats st;

  SolveResult result;
  result.selection.assign(m, 0);

  s.residual.assign(instance.demands().begin(), instance.demands().end());
  long long outstanding =
      std::accumulate(s.residual.begin(), s.residual.end(), 0LL);

  detail::static_masses(instance, duals, s.qsum, s.dual_mass);

  // xbar column: pad/truncate to exactly m entries (absent -> 0), matching
  // the per-bundle path's `j < relaxed_x.size() ? relaxed_x[j] : 0`.
  s.xbar.assign(m, 0.0);
  for (std::size_t j = 0; j < m && j < relaxed_x.size(); ++j) {
    s.xbar[j] = relaxed_x[j];
  }

  s.useful.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double u = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      u += std::min(row[k], s.residual[k]);
    }
    s.useful[j] = u;
  }

  // Round-invariance of the scorer decides the rescoring regime once.
  bool rescore_all = true;
  bool track_dirty = false;
  if constexpr (TerminalAwareBatchScorer<BatchScore>) {
    rescore_all = batch_score.depends_on_bres();
    track_dirty = !rescore_all && batch_score.depends_on_qcov();
  }
  // Cleared unconditionally: a reused scratch may carry a dirty list from a
  // previous solve (possibly of a LARGER instance), which must never leak
  // into this one.
  s.dirty.clear();
  if (track_dirty) {
    s.dirty_flag.assign(m, 0);
  }

  s.scores.assign(m, 0.0);
  BatchFeatureView view;
  view.cost = instance.costs();
  view.qsum = s.qsum;
  view.qcov = s.useful;
  view.dual = s.dual_mass;
  view.xbar = s.xbar;
  view.count = m;

  bool first_round = true;
  long long rounds = 0;
  while (outstanding > 0) {
    if (options.max_rounds > 0 && rounds >= options.max_rounds) {
      result.feasible = false;
      result.rounds_capped = true;
      result.value = instance.selection_cost(result.selection);
      if (stats != nullptr) *stats = st;
      return result;
    }
    ++rounds;
    view.bres = static_cast<double>(outstanding);
    if (first_round || rescore_all) {
      batch_score(view, std::span<double>(s.scores));
      st.bundles_rescored += m;
    } else if (track_dirty && !s.dirty.empty()) {
      // Gather the still-eligible dirty bundles into a compact sub-batch
      // (bundles that dropped to zero useful coverage can never be selected
      // again, so their stale scores are never read).
      std::size_t d = 0;
      s.sub_cost.resize(s.dirty.size());
      s.sub_qsum.resize(s.dirty.size());
      s.sub_qcov.resize(s.dirty.size());
      s.sub_dual.resize(s.dirty.size());
      s.sub_xbar.resize(s.dirty.size());
      s.sub_out.resize(s.dirty.size());
      for (const std::uint32_t j : s.dirty) {
        if (result.selection[j] || s.useful[j] <= 0.0) continue;
        s.sub_cost[d] = view.cost[j];
        s.sub_qsum[d] = s.qsum[j];
        s.sub_qcov[d] = s.useful[j];
        s.sub_dual[d] = s.dual_mass[j];
        s.sub_xbar[d] = s.xbar[j];
        s.dirty[d] = j;  // keep the surviving index for the scatter
        ++d;
      }
      if (d > 0) {
        BatchFeatureView sub;
        sub.cost = std::span<const double>(s.sub_cost.data(), d);
        sub.qsum = std::span<const double>(s.sub_qsum.data(), d);
        sub.qcov = std::span<const double>(s.sub_qcov.data(), d);
        sub.dual = std::span<const double>(s.sub_dual.data(), d);
        sub.xbar = std::span<const double>(s.sub_xbar.data(), d);
        sub.bres = view.bres;
        sub.count = d;
        batch_score(sub, std::span<double>(s.sub_out.data(), d));
        for (std::size_t t = 0; t < d; ++t) {
          s.scores[s.dirty[t]] = s.sub_out[t];
        }
      }
      st.bundles_rescored += d;
    }
    if (track_dirty && !first_round) {
      for (const std::uint32_t j : s.dirty) s.dirty_flag[j] = 0;
      s.dirty.clear();
    }
    first_round = false;
    st.rounds += 1;
    st.rescore_slots += m;

    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_j = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) continue;
      if (s.useful[j] <= 0.0) continue;
      const double sc = detail::sanitize_score(s.scores[j]);
      if (sc > best_score) {
        best_score = sc;
        best_j = j;
      }
    }

    if (best_j == m) {
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      if (stats != nullptr) *stats = st;
      return result;
    }

    result.selection[best_j] = 1;
    const auto chosen = instance.bundle(best_j);
    for (std::size_t k = 0; k < n; ++k) {
      const int r_old = s.residual[k];
      if (r_old <= 0 || chosen[k] <= 0) continue;
      const int used = std::min(chosen[k], r_old);
      const int r_new = r_old - used;
      s.residual[k] = r_new;
      outstanding -= used;
      const auto idx = instance.suppliers(k);
      const auto qty = instance.supplier_quantities(k);
      for (std::size_t t = 0; t < idx.size(); ++t) {
        const std::size_t j = idx[t];
        if (result.selection[j]) continue;
        const int q = qty[t];
        const int delta = std::min(q, r_old) - std::min(q, r_new);
        if (delta == 0) continue;  // qcov untouched: score still exact
        s.useful[j] -= delta;
        if (track_dirty && !s.dirty_flag[j]) {
          s.dirty_flag[j] = 1;
          s.dirty.push_back(static_cast<std::uint32_t>(j));
        }
      }
    }
  }

  if (options.eliminate_redundancy) {
    detail::eliminate_redundancy(instance, result.selection);
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  if (stats != nullptr) *stats = st;
  return result;
}

/// Fast path for *static* scorers (scores independent of the residual
/// demand): one score per bundle, computed up front. Semantically identical
/// to greedy_solve_with for any scorer that ignores qcov/bres: useful
/// coverage only ever decreases, so the argmax sequence equals the
/// score-descending sweep (ties broken by index in both). Complexity drops
/// from O(steps * M * score) to O(M log M + M * N).
[[nodiscard]] SolveResult greedy_solve_static(
    const Instance& instance, std::span<const double> scores,
    const GreedyOptions& options = {});

/// Type-erased convenience wrapper over greedy_solve_with.
[[nodiscard]] SolveResult greedy_solve(const Instance& instance,
                                       const ScoreFunction& score,
                                       std::span<const double> duals = {},
                                       std::span<const double> relaxed_x = {},
                                       const GreedyOptions& options = {});

/// Classic baseline score: useful-coverage per unit cost (cost-effectiveness).
[[nodiscard]] double cost_effectiveness_score(const BundleFeatures& f);

/// Baseline score using LP duals: dual-weighted coverage minus cost
/// (the LP "attractiveness" of the column).
[[nodiscard]] double dual_score(const BundleFeatures& f);

}  // namespace carbon::cover

// Score-driven greedy multicover heuristic — the algorithm template whose
// scoring function the GP population evolves (paper §IV-B).
//
// The greedy repeatedly scores every not-yet-selected bundle that still adds
// useful coverage, picks the highest-scoring one, and stops when all demands
// are met. An optional reverse pass then drops redundant bundles (most
// expensive first). Features exposed to the scoring function implement the
// paper's terminal set (Table I) with the per-service terminals aggregated
// over services, as discussed in DESIGN.md §5.1.
//
// The core is a template over the scorer so that hot callers (the GP tree
// evaluator, which runs inside the innermost loop of every fitness
// evaluation) pay no std::function indirection; `greedy_solve` is the
// type-erased convenience wrapper.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <vector>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

/// Everything a scoring function may look at when scoring bundle j.
/// All values are recomputed against the *residual* demand each round.
struct BundleFeatures {
  double cost = 0.0;       ///< c_j — price of the bundle.
  double qsum = 0.0;       ///< Σ_k q_jk — raw service mass of the bundle.
  double qcov = 0.0;       ///< Σ_k min(q_jk, residual_k) — useful coverage now.
  double bres = 0.0;       ///< Σ_k residual_k — outstanding demand.
  double dual = 0.0;       ///< Σ_k d_k q_jk — LP-dual-weighted coverage.
  double xbar = 0.0;       ///< x̄_j — value of bundle j in the LP relaxation.
};

/// Scores one bundle; the greedy selects the maximal score each round.
using ScoreFunction = std::function<double(const BundleFeatures&)>;

/// SoA view of the features of EVERY bundle for one greedy round: one
/// contiguous column per BundleFeatures field (bres is a scalar — the
/// outstanding demand is shared by all bundles within a round). Batch
/// scorers (gp::CompiledProgram via gp::make_batch_score_function) fill
/// `out[j]` for all j in one sweep of elementwise loops instead of being
/// called M times with per-bundle structs.
struct BatchFeatureView {
  std::span<const double> cost;  ///< c_j
  std::span<const double> qsum;  ///< Σ_k q_jk
  std::span<const double> qcov;  ///< Σ_k min(q_jk, residual_k)
  std::span<const double> dual;  ///< Σ_k d_k q_jk
  std::span<const double> xbar;  ///< x̄_j
  double bres = 0.0;             ///< Σ_k residual_k (broadcast)
  std::size_t count = 0;         ///< number of bundles (size of each column)
};

/// Scores every bundle of one round: writes out[j] for j in [0, count).
/// Entries of selected / zero-coverage bundles are ignored by the caller.
using BatchScoreFunction =
    std::function<void(const BatchFeatureView&, std::span<double>)>;

struct GreedyOptions {
  /// Drop redundant bundles after reaching feasibility.
  bool eliminate_redundancy = true;
};

namespace detail {

/// NaN/inf scores would otherwise poison the argmax.
inline double sanitize_score(double score) noexcept {
  return std::isfinite(score) ? score : -std::numeric_limits<double>::max();
}

/// Reverse pass shared by every constructive solver here: try to drop
/// selected bundles, most expensive first, keeping feasibility.
void eliminate_redundancy(const Instance& instance,
                          std::vector<std::uint8_t>& selection);

/// Per-bundle static masses (independent of the residual): qsum[j] and the
/// dual-weighted coverage dual_mass[j], accumulated in service order so the
/// batched and per-bundle paths sum in the same sequence.
void static_masses(const Instance& instance, std::span<const double> duals,
                   std::vector<double>& qsum, std::vector<double>& dual_mass);

}  // namespace detail

/// Runs the greedy with an arbitrary callable scorer (inlined at the call
/// site). `duals` and `relaxed_x` may be empty, in which case the
/// corresponding features read as 0 (the GP population then learns to ignore
/// them). Returns feasible=false only when the instance itself cannot be
/// covered.
template <typename Score>
[[nodiscard]] SolveResult greedy_solve_with(const Instance& instance,
                                            Score&& score,
                                            std::span<const double> duals = {},
                                            std::span<const double> relaxed_x =
                                                {},
                                            const GreedyOptions& options = {}) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  SolveResult result;
  result.selection.assign(m, 0);

  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  // Per-bundle static features (do not depend on the residual).
  std::vector<double> qsum;
  std::vector<double> dual_mass;
  detail::static_masses(instance, duals, qsum, dual_mass);

  // Incrementally maintained useful coverage: useful[j] = Σ_k min(q_jk, r_k).
  std::vector<double> useful(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double u = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      u += std::min(row[k], residual[k]);
    }
    useful[j] = u;
  }

  while (outstanding > 0) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_j = m;
    const double bres = static_cast<double>(outstanding);

    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) continue;
      if (useful[j] <= 0.0) continue;  // adds nothing: never select

      BundleFeatures f;
      f.cost = instance.cost(j);
      f.qsum = qsum[j];
      f.qcov = useful[j];
      f.bres = bres;
      f.dual = dual_mass[j];
      f.xbar = j < relaxed_x.size() ? relaxed_x[j] : 0.0;

      const double s = detail::sanitize_score(score(f));
      if (s > best_score) {
        best_score = s;
        best_j = j;
      }
    }

    if (best_j == m) {
      // No bundle adds coverage yet demand remains: instance not coverable.
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      return result;
    }

    result.selection[best_j] = 1;
    const auto chosen = instance.bundle(best_j);
    for (std::size_t k = 0; k < n; ++k) {
      const int r_old = residual[k];
      if (r_old <= 0 || chosen[k] <= 0) continue;
      const int used = std::min(chosen[k], r_old);
      const int r_new = r_old - used;
      residual[k] = r_new;
      outstanding -= used;
      // Update useful coverage of the unselected bundles for this service.
      // Iterates only the suppliers of service k (CSR index, contiguous).
      const auto idx = instance.suppliers(k);
      const auto qty = instance.supplier_quantities(k);
      for (std::size_t t = 0; t < idx.size(); ++t) {
        const std::size_t j = idx[t];
        if (result.selection[j]) continue;
        const int q = qty[t];
        useful[j] -= std::min(q, r_old) - std::min(q, r_new);
      }
    }
  }

  if (options.eliminate_redundancy) {
    detail::eliminate_redundancy(instance, result.selection);
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  return result;
}

/// Batch-scoring variant of greedy_solve_with: semantically identical (same
/// selections, same tie-breaks) for any batch scorer that computes, per
/// bundle, the same double the per-bundle scorer would. Each round scores
/// the whole bundle axis in ONE call — useful coverage is maintained
/// incrementally through the instance's service→bundle (CSR) inverted
/// index, so only bundles touched by the last selection change between
/// rounds — then takes the argmax over unselected bundles that still add
/// coverage. This is the hot path for compiled GP scoring programs.
template <typename BatchScore>
[[nodiscard]] SolveResult greedy_solve_batched(
    const Instance& instance, BatchScore&& batch_score,
    std::span<const double> duals = {}, std::span<const double> relaxed_x = {},
    const GreedyOptions& options = {}) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  SolveResult result;
  result.selection.assign(m, 0);

  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  std::vector<double> qsum;
  std::vector<double> dual_mass;
  detail::static_masses(instance, duals, qsum, dual_mass);

  // xbar column: pad/truncate to exactly m entries (absent -> 0), matching
  // the per-bundle path's `j < relaxed_x.size() ? relaxed_x[j] : 0`.
  std::vector<double> xbar(m, 0.0);
  for (std::size_t j = 0; j < m && j < relaxed_x.size(); ++j) {
    xbar[j] = relaxed_x[j];
  }

  std::vector<double> useful(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double u = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      u += std::min(row[k], residual[k]);
    }
    useful[j] = u;
  }

  std::vector<double> scores(m, 0.0);
  BatchFeatureView view;
  view.cost = instance.costs();
  view.qsum = qsum;
  view.qcov = useful;
  view.dual = dual_mass;
  view.xbar = xbar;
  view.count = m;

  while (outstanding > 0) {
    view.bres = static_cast<double>(outstanding);
    batch_score(view, std::span<double>(scores));

    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_j = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) continue;
      if (useful[j] <= 0.0) continue;
      const double s = detail::sanitize_score(scores[j]);
      if (s > best_score) {
        best_score = s;
        best_j = j;
      }
    }

    if (best_j == m) {
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      return result;
    }

    result.selection[best_j] = 1;
    const auto chosen = instance.bundle(best_j);
    for (std::size_t k = 0; k < n; ++k) {
      const int r_old = residual[k];
      if (r_old <= 0 || chosen[k] <= 0) continue;
      const int used = std::min(chosen[k], r_old);
      const int r_new = r_old - used;
      residual[k] = r_new;
      outstanding -= used;
      const auto idx = instance.suppliers(k);
      const auto qty = instance.supplier_quantities(k);
      for (std::size_t t = 0; t < idx.size(); ++t) {
        const std::size_t j = idx[t];
        if (result.selection[j]) continue;
        const int q = qty[t];
        useful[j] -= std::min(q, r_old) - std::min(q, r_new);
      }
    }
  }

  if (options.eliminate_redundancy) {
    detail::eliminate_redundancy(instance, result.selection);
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  return result;
}

/// Fast path for *static* scorers (scores independent of the residual
/// demand): one score per bundle, computed up front. Semantically identical
/// to greedy_solve_with for any scorer that ignores qcov/bres: useful
/// coverage only ever decreases, so the argmax sequence equals the
/// score-descending sweep (ties broken by index in both). Complexity drops
/// from O(steps * M * score) to O(M log M + M * N).
[[nodiscard]] SolveResult greedy_solve_static(
    const Instance& instance, std::span<const double> scores,
    const GreedyOptions& options = {});

/// Type-erased convenience wrapper over greedy_solve_with.
[[nodiscard]] SolveResult greedy_solve(const Instance& instance,
                                       const ScoreFunction& score,
                                       std::span<const double> duals = {},
                                       std::span<const double> relaxed_x = {},
                                       const GreedyOptions& options = {});

/// Classic baseline score: useful-coverage per unit cost (cost-effectiveness).
[[nodiscard]] double cost_effectiveness_score(const BundleFeatures& f);

/// Baseline score using LP duals: dual-weighted coverage minus cost
/// (the LP "attractiveness" of the column).
[[nodiscard]] double dual_score(const BundleFeatures& f);

}  // namespace carbon::cover

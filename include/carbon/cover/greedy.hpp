// Score-driven greedy multicover heuristic — the algorithm template whose
// scoring function the GP population evolves (paper §IV-B).
//
// The greedy repeatedly scores every not-yet-selected bundle that still adds
// useful coverage, picks the highest-scoring one, and stops when all demands
// are met. An optional reverse pass then drops redundant bundles (most
// expensive first). Features exposed to the scoring function implement the
// paper's terminal set (Table I) with the per-service terminals aggregated
// over services, as discussed in DESIGN.md §5.1.
//
// The core is a template over the scorer so that hot callers (the GP tree
// evaluator, which runs inside the innermost loop of every fitness
// evaluation) pay no std::function indirection; `greedy_solve` is the
// type-erased convenience wrapper.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <vector>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

/// Everything a scoring function may look at when scoring bundle j.
/// All values are recomputed against the *residual* demand each round.
struct BundleFeatures {
  double cost = 0.0;       ///< c_j — price of the bundle.
  double qsum = 0.0;       ///< Σ_k q_jk — raw service mass of the bundle.
  double qcov = 0.0;       ///< Σ_k min(q_jk, residual_k) — useful coverage now.
  double bres = 0.0;       ///< Σ_k residual_k — outstanding demand.
  double dual = 0.0;       ///< Σ_k d_k q_jk — LP-dual-weighted coverage.
  double xbar = 0.0;       ///< x̄_j — value of bundle j in the LP relaxation.
};

/// Scores one bundle; the greedy selects the maximal score each round.
using ScoreFunction = std::function<double(const BundleFeatures&)>;

struct GreedyOptions {
  /// Drop redundant bundles after reaching feasibility.
  bool eliminate_redundancy = true;
};

namespace detail {

/// NaN/inf scores would otherwise poison the argmax.
inline double sanitize_score(double score) noexcept {
  return std::isfinite(score) ? score : -std::numeric_limits<double>::max();
}

}  // namespace detail

/// Runs the greedy with an arbitrary callable scorer (inlined at the call
/// site). `duals` and `relaxed_x` may be empty, in which case the
/// corresponding features read as 0 (the GP population then learns to ignore
/// them). Returns feasible=false only when the instance itself cannot be
/// covered.
template <typename Score>
[[nodiscard]] SolveResult greedy_solve_with(const Instance& instance,
                                            Score&& score,
                                            std::span<const double> duals = {},
                                            std::span<const double> relaxed_x =
                                                {},
                                            const GreedyOptions& options = {}) {
  const std::size_t m = instance.num_bundles();
  const std::size_t n = instance.num_services();

  SolveResult result;
  result.selection.assign(m, 0);

  std::vector<int> residual(instance.demands().begin(),
                            instance.demands().end());
  long long outstanding =
      std::accumulate(residual.begin(), residual.end(), 0LL);

  // Per-bundle static features (do not depend on the residual).
  std::vector<double> qsum(m, 0.0);
  std::vector<double> dual_mass(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double s = 0.0;
    double d = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      s += row[k];
      if (k < duals.size()) d += duals[k] * row[k];
    }
    qsum[j] = s;
    dual_mass[j] = d;
  }

  // Incrementally maintained useful coverage: useful[j] = Σ_k min(q_jk, r_k).
  std::vector<double> useful(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const auto row = instance.bundle(j);
    double u = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      u += std::min(row[k], residual[k]);
    }
    useful[j] = u;
  }

  while (outstanding > 0) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_j = m;
    const double bres = static_cast<double>(outstanding);

    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) continue;
      if (useful[j] <= 0.0) continue;  // adds nothing: never select

      BundleFeatures f;
      f.cost = instance.cost(j);
      f.qsum = qsum[j];
      f.qcov = useful[j];
      f.bres = bres;
      f.dual = dual_mass[j];
      f.xbar = j < relaxed_x.size() ? relaxed_x[j] : 0.0;

      const double s = detail::sanitize_score(score(f));
      if (s > best_score) {
        best_score = s;
        best_j = j;
      }
    }

    if (best_j == m) {
      // No bundle adds coverage yet demand remains: instance not coverable.
      result.feasible = false;
      result.value = instance.selection_cost(result.selection);
      return result;
    }

    result.selection[best_j] = 1;
    const auto chosen = instance.bundle(best_j);
    for (std::size_t k = 0; k < n; ++k) {
      const int r_old = residual[k];
      if (r_old <= 0 || chosen[k] <= 0) continue;
      const int used = std::min(chosen[k], r_old);
      const int r_new = r_old - used;
      residual[k] = r_new;
      outstanding -= used;
      // Update useful coverage of the unselected bundles for this service.
      // Iterates only the suppliers of service k (CSR index, contiguous).
      const auto idx = instance.suppliers(k);
      const auto qty = instance.supplier_quantities(k);
      for (std::size_t t = 0; t < idx.size(); ++t) {
        const std::size_t j = idx[t];
        if (result.selection[j]) continue;
        const int q = qty[t];
        useful[j] -= std::min(q, r_old) - std::min(q, r_new);
      }
    }
  }

  if (options.eliminate_redundancy) {
    // Coverage including slack (residual may be over-covered).
    std::vector<long long> covered(n, 0);
    for (std::size_t j = 0; j < m; ++j) {
      if (!result.selection[j]) continue;
      const auto row = instance.bundle(j);
      for (std::size_t k = 0; k < n; ++k) covered[k] += row[k];
    }
    // Try to drop selected bundles, most expensive first.
    std::vector<std::size_t> chosen;
    for (std::size_t j = 0; j < m; ++j) {
      if (result.selection[j]) chosen.push_back(j);
    }
    std::sort(chosen.begin(), chosen.end(),
              [&](std::size_t a, std::size_t b) {
                return instance.cost(a) > instance.cost(b);
              });
    for (std::size_t j : chosen) {
      const auto row = instance.bundle(j);
      bool droppable = true;
      for (std::size_t k = 0; k < n; ++k) {
        if (covered[k] - row[k] < instance.demand(k)) {
          droppable = false;
          break;
        }
      }
      if (!droppable) continue;
      result.selection[j] = 0;
      for (std::size_t k = 0; k < n; ++k) covered[k] -= row[k];
    }
  }

  result.feasible = true;
  result.value = instance.selection_cost(result.selection);
  return result;
}

/// Fast path for *static* scorers (scores independent of the residual
/// demand): one score per bundle, computed up front. Semantically identical
/// to greedy_solve_with for any scorer that ignores qcov/bres: useful
/// coverage only ever decreases, so the argmax sequence equals the
/// score-descending sweep (ties broken by index in both). Complexity drops
/// from O(steps * M * score) to O(M log M + M * N).
[[nodiscard]] SolveResult greedy_solve_static(
    const Instance& instance, std::span<const double> scores,
    const GreedyOptions& options = {});

/// Type-erased convenience wrapper over greedy_solve_with.
[[nodiscard]] SolveResult greedy_solve(const Instance& instance,
                                       const ScoreFunction& score,
                                       std::span<const double> duals = {},
                                       std::span<const double> relaxed_x = {},
                                       const GreedyOptions& options = {});

/// Classic baseline score: useful-coverage per unit cost (cost-effectiveness).
[[nodiscard]] double cost_effectiveness_score(const BundleFeatures& f);

/// Baseline score using LP duals: dual-weighted coverage minus cost
/// (the LP "attractiveness" of the column).
[[nodiscard]] double dual_score(const BundleFeatures& f);

}  // namespace carbon::cover

// OR-library-style text I/O for covering instances.
//
// Format (whitespace separated, mirrors OR-library MKP files with the
// constraint sense flipped to >= as the paper does):
//
//   M N                      num_bundles num_services
//   c_1 ... c_M              bundle costs
//   q_11 ... q_M1            N rows of M coefficients (service-major)
//   ...
//   q_1N ... q_MN
//   b_1 ... b_N              demands
//
// This lets users convert genuine OR-library MKP files offline and feed them
// to the solvers.
#pragma once

#include <iosfwd>
#include <string>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

/// Serializes an instance. Throws std::ios_base::failure on stream errors.
void write_orlib(std::ostream& out, const Instance& instance);

/// Parses an instance. Throws std::runtime_error on malformed input.
[[nodiscard]] Instance read_orlib(std::istream& in);

/// File-path conveniences.
void save_orlib(const std::string& path, const Instance& instance);
[[nodiscard]] Instance load_orlib(const std::string& path);

}  // namespace carbon::cover

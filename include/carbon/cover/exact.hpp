// Exact branch & bound for small covering instances.
//
// LP-bound-driven depth-first branch & bound over the binary bundle
// variables. It exists so tests and the relaxation-ordering ablation
// (Eq. 3 of the paper: w(x) <= A_carbon(x) <= A_cobra(x)) can compute the
// *true* lower-level optimum w(x) on instances small enough to enumerate.
#pragma once

#include <cstddef>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

struct ExactOptions {
  /// Node budget; when exhausted the incumbent is returned with
  /// proven_optimal = false.
  std::size_t max_nodes = 200'000;
  /// Nodes whose LP bound is within this of the incumbent are pruned.
  double bound_tolerance = 1e-6;
};

struct ExactResult {
  bool feasible = false;
  bool proven_optimal = false;
  double value = 0.0;
  std::vector<std::uint8_t> selection;
  std::size_t nodes_explored = 0;
};

[[nodiscard]] ExactResult exact_solve(const Instance& instance,
                                      const ExactOptions& options = {});

}  // namespace carbon::cover

// Lagrangian relaxation bound for the covering problem.
//
// Relaxing the coverage constraints of  min c'x, Qx >= b, x in {0,1}^M  with
// multipliers λ >= 0 gives
//
//   L(λ) = λ'b + Σ_j min(0, c_j − λ'Q_j),
//
// a valid lower bound for every λ; the inner minimization decomposes per
// bundle (buy iff the λ-reduced cost is negative). Because the inner problem
// has the integrality property, max_λ L(λ) equals the LP relaxation bound —
// this module therefore offers (a) an independent cross-check of the simplex
// bound used by the %-gap, and (b) a bound usable without an LP solver, at
// the price of approximate convergence. Maximization is by the standard
// subgradient method with Polyak step sizes and step-halving on stagnation.
#pragma once

#include <cstddef>
#include <vector>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

struct LagrangianOptions {
  std::size_t max_iterations = 200;
  /// Initial Polyak step scale μ (step = μ (UB − L)/‖g‖²).
  double step_scale = 2.0;
  /// Halve μ after this many iterations without bound improvement.
  std::size_t stall_limit = 10;
  /// Stop when μ falls below this.
  double min_step_scale = 1e-4;
};

struct LagrangianResult {
  double lower_bound = 0.0;          ///< best L(λ) found
  std::vector<double> multipliers;   ///< λ achieving it (>= 0, one per service)
  /// Inner solution at the best λ (NOT generally feasible for the cover).
  std::vector<std::uint8_t> inner_selection;
  std::size_t iterations = 0;
};

/// Maximizes L(λ) by subgradient ascent. `upper_bound` should be the value
/// of any feasible cover (e.g. from the greedy); it calibrates the Polyak
/// steps. Deterministic.
[[nodiscard]] LagrangianResult lagrangian_bound(
    const Instance& instance, double upper_bound,
    const LagrangianOptions& options = {});

}  // namespace carbon::cover

// Local search polish for covering solutions.
//
// The paper notes that large covering instances "are generally tackled using
// heuristics or metaheuristics"; the GP-evolved greedy is the fast
// constructive side. This module adds the improvement side: a first-improve
// descent over two neighbourhoods,
//
//   DROP   — remove a selected bundle whose removal keeps feasibility
//            (always improving: costs are non-negative);
//   SWAP   — replace one selected bundle with one cheaper unselected bundle
//            when coverage stays feasible;
//
// used by the memetic CARBON ablation (polish the heuristic's cover before
// scoring) and available to users as a standalone refinement step.
#pragma once

#include <cstddef>

#include "carbon/cover/instance.hpp"

namespace carbon::cover {

struct LocalSearchOptions {
  /// Stop after this many improving moves (0 = unlimited).
  std::size_t max_moves = 0;
  bool enable_drop = true;
  bool enable_swap = true;
};

struct LocalSearchResult {
  double value = 0.0;
  std::size_t drops = 0;
  std::size_t swaps = 0;
};

/// Improves `selection` in place (must be a feasible cover; throws
/// std::invalid_argument otherwise). Returns the final cost and move counts.
/// Deterministic: neighbourhoods are scanned in index order, first improve.
LocalSearchResult local_search(const Instance& instance,
                               std::vector<std::uint8_t>& selection,
                               const LocalSearchOptions& options = {});

}  // namespace carbon::cover

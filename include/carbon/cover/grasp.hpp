// GRASP-style randomized greedy for covering (semi-greedy construction).
//
// Instead of always taking the argmax-scored bundle, each round selects
// uniformly from the restricted candidate list (RCL) — the bundles whose
// score is within `alpha` of the round's best. alpha = 0 reproduces the
// deterministic greedy; alpha = 1 is uniform random construction. Multiple
// restarts with redundancy elimination give a cheap multistart
// metaheuristic, useful as (a) a stronger repair/constructive baseline and
// (b) a diversity source for lower-level populations.
#pragma once

#include "carbon/common/rng.hpp"
#include "carbon/cover/greedy.hpp"

namespace carbon::cover {

struct GraspOptions {
  /// RCL width in [0, 1]: a bundle joins the RCL when
  /// score >= best - alpha * (best - worst).
  double alpha = 0.15;
  std::size_t restarts = 8;
  GreedyOptions greedy{};
};

/// Runs `restarts` randomized constructions and returns the best feasible
/// cover found. Deterministic in `rng`'s state.
[[nodiscard]] SolveResult grasp_solve(const Instance& instance,
                                      const ScoreFunction& score,
                                      common::Rng& rng,
                                      std::span<const double> duals = {},
                                      std::span<const double> relaxed_x = {},
                                      const GraspOptions& options = {});

/// Batch-scoring overload (compiled GP programs via
/// gp::make_batch_score_function): each round scores the whole bundle axis
/// in one sweep instead of one call per candidate. Produces the same
/// construction sequence as the per-bundle overload whenever the batch
/// scorer computes the same per-bundle doubles.
[[nodiscard]] SolveResult grasp_solve(const Instance& instance,
                                      const BatchScoreFunction& score,
                                      common::Rng& rng,
                                      std::span<const double> duals = {},
                                      std::span<const double> relaxed_x = {},
                                      const GraspOptions& options = {});

}  // namespace carbon::cover

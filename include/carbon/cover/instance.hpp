// The lower-level problem of the BCPOP: a multicover ("covering") problem.
//
//   min  sum_j c_j x_j
//   s.t. sum_j q_jk x_j >= b_k   for every service k
//        x_j in {0,1}            for every bundle j
//
// Bundles are the M market offers; services are the N customer requirements;
// q_jk is how many units of service k bundle j contains. Coefficients are
// non-binary integers (the paper flips OR-library MKP instances to >=),
// prices are continuous because the leader sets them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace carbon::cover {

class Instance {
 public:
  Instance() = default;
  /// q is bundle-major: q[j][k] = units of service k in bundle j.
  Instance(std::vector<double> costs, std::vector<std::vector<int>> q,
           std::vector<int> demands);

  [[nodiscard]] std::size_t num_bundles() const noexcept {
    return costs_.size();
  }
  [[nodiscard]] std::size_t num_services() const noexcept {
    return demands_.size();
  }

  [[nodiscard]] double cost(std::size_t j) const noexcept { return costs_[j]; }
  [[nodiscard]] std::span<const double> costs() const noexcept {
    return costs_;
  }
  [[nodiscard]] int demand(std::size_t k) const noexcept {
    return demands_[k];
  }
  [[nodiscard]] std::span<const int> demands() const noexcept {
    return demands_;
  }
  [[nodiscard]] int quantity(std::size_t j, std::size_t k) const noexcept {
    return q_[j * num_services() + k];
  }
  /// Row of the (bundle-major) quantity matrix for bundle j.
  [[nodiscard]] std::span<const int> bundle(std::size_t j) const noexcept {
    return {q_.data() + j * num_services(), num_services()};
  }

  /// Bundles supplying service k (q_jk > 0), as parallel index/quantity
  /// arrays. Precomputed (CSR-style) because the greedy's coverage updates
  /// iterate service-major in its innermost loop.
  [[nodiscard]] std::span<const std::uint32_t> suppliers(
      std::size_t k) const noexcept {
    return {supplier_idx_.data() + supplier_start_[k],
            supplier_start_[k + 1] - supplier_start_[k]};
  }
  [[nodiscard]] std::span<const int> supplier_quantities(
      std::size_t k) const noexcept {
    return {supplier_q_.data() + supplier_start_[k],
            supplier_start_[k + 1] - supplier_start_[k]};
  }

  /// Total supply of service k across all bundles.
  [[nodiscard]] long long total_supply(std::size_t k) const noexcept;

  /// Replaces the price of bundle j (used by the BCPOP leader).
  void set_cost(std::size_t j, double c) noexcept { costs_[j] = c; }

  /// True when buying every bundle satisfies every demand (instance sanity).
  [[nodiscard]] bool coverable() const noexcept;

  /// True when the binary selection satisfies every demand.
  [[nodiscard]] bool feasible(std::span<const std::uint8_t> selection) const;

  /// Total cost of a selection (no feasibility check).
  [[nodiscard]] double selection_cost(
      std::span<const std::uint8_t> selection) const;

  /// Residual demand after a selection (negative = over-covered, clamped to 0).
  [[nodiscard]] std::vector<int> residual_demand(
      std::span<const std::uint8_t> selection) const;

  /// Human-readable one-line description.
  [[nodiscard]] std::string describe() const;

 private:
  void build_supplier_index();

  std::vector<double> costs_;   // size M
  std::vector<int> q_;          // bundle-major M x N
  std::vector<int> demands_;    // size N
  // CSR over services: suppliers of service k live in
  // [supplier_start_[k], supplier_start_[k+1]).
  std::vector<std::size_t> supplier_start_;   // size N+1
  std::vector<std::uint32_t> supplier_idx_;   // bundle indices
  std::vector<int> supplier_q_;               // matching quantities
};

/// A solution to a covering instance.
struct SolveResult {
  bool feasible = false;
  double value = 0.0;
  std::vector<std::uint8_t> selection;  // size M, 0/1
  /// Construction stopped by GreedyOptions::max_rounds before feasibility
  /// (distinguishes a budget trip from a genuinely uncoverable instance).
  bool rounds_capped = false;
};

}  // namespace carbon::cover

// CARBON — Competitive hybrid bi-level co-evolutionary algorithm (paper §IV).
//
// Two populations in a predator/prey arms race:
//   * prey: upper-level pricings, evolved with a real-coded GA
//     (binary tournament, SBX, polynomial mutation, elitist archive);
//   * predators: greedy scoring heuristics encoded as GP trees, evolved with
//     GP operators (tournament, one-point subtree crossover, uniform
//     mutation, reproduction).
//
// Predator fitness is the mean %-gap over a sample of current prey (lower is
// better): predators are selected for *modelling the rational follower well
// on whatever instances the prey currently induce*. Prey fitness is the
// leader revenue F obtained against the best current predator: prey are
// selected for revenue under the most rational follower model available.
// Because heuristics apply to any LL instance, the two populations are
// decoupled — this is how CARBON breaks the nested structure.
#pragma once

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/core/config.hpp"
#include "carbon/core/result.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::core {

/// CARBON-specific run outcome: the generic result plus the champion
/// heuristic that models the follower.
struct CarbonResult : RunResult {
  gp::Tree best_heuristic;
  double best_heuristic_gap = 1e9;  ///< its mean %-gap at the final sample
};

class CarbonSolver {
 public:
  /// Solves the single-customer BCPOP (creates its own Evaluator).
  CarbonSolver(const bcpop::Instance& instance, CarbonConfig config);

  /// Solves against any bi-level evaluation backend (e.g. the
  /// multi-follower market). The evaluator must outlive the solver; budgets
  /// are counted relative to its state at run() entry.
  CarbonSolver(bcpop::EvaluatorInterface& evaluator, CarbonConfig config);

  /// Runs until either evaluation budget is exhausted (checked between
  /// generations, so the last generation may overshoot by at most one
  /// generation's worth of evaluations).
  CarbonResult run();

 private:
  CarbonResult run_with(bcpop::EvaluatorInterface& eval);

  const bcpop::Instance* inst_ = nullptr;
  bcpop::EvaluatorInterface* external_ = nullptr;
  CarbonConfig cfg_;
};

}  // namespace carbon::core

// Result and convergence-trace types shared by all bi-level solvers
// (CARBON, COBRA, and the nested baseline).
#pragma once

#include <string>
#include <vector>

#include "carbon/bcpop/evaluator_interface.hpp"
#include "carbon/bcpop/instance.hpp"

namespace carbon::core {

/// One point of a convergence curve (Figs. 4 and 5 of the paper).
struct ConvergencePoint {
  int generation = 0;
  long long ul_evaluations = 0;
  long long ll_evaluations = 0;
  /// Best-so-far values (monotone by construction).
  double best_ul_so_far = 0.0;
  double best_gap_so_far = 0.0;
  /// Current-population values (these expose COBRA's see-saw).
  double current_best_ul = 0.0;
  double current_mean_gap = 0.0;
  /// GP predator-population diversity (CARBON only; 0 elsewhere).
  double gp_unique_fraction = 0.0;
  double gp_mean_tree_size = 0.0;
  /// Phase annotation: "carbon", "upper", "lower", "coevolution", ...
  std::string phase;

  bool operator==(const ConvergencePoint&) const = default;
};

/// Outcome of one independent solver run.
struct RunResult {
  /// Best leader revenue over all feasible complete evaluations.
  double best_ul_objective = 0.0;
  /// Smallest %-gap over all complete evaluations (the paper's Table III
  /// extraction: "best results in terms of %-gap").
  double best_gap = 1e9;
  /// The pricing achieving best_ul_objective and its full evaluation.
  bcpop::Pricing best_pricing;
  bcpop::Evaluation best_evaluation;
  /// Per-generation trace (empty when recording is disabled).
  std::vector<ConvergencePoint> convergence;
  long long ul_evaluations = 0;
  long long ll_evaluations = 0;
  int generations = 0;

  bool operator==(const RunResult&) const = default;
};

}  // namespace carbon::core

// Replicated-run experiment harness.
//
// The paper's protocol: every (instance class, algorithm) cell is measured
// over 30 independent runs; tables report the best %-gap and best UL
// objective per run, aggregated. This harness runs R seeded replications
// (in parallel when a thread pool is available), aggregates summaries and a
// Wilcoxon rank-sum comparison, and averages convergence traces for the
// figure benches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "carbon/bcpop/instance.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/core/result.hpp"

namespace carbon::core {

/// Algorithms the harness can dispatch to.
enum class Algorithm {
  kCarbon,
  kCobra,
  kNestedGa,
  kCarbonValueFitness,  ///< ablation: CARBON minimizing f instead of the gap
  kCarbonMemetic,       ///< extension: local-search polish of every cover
  kBiga,                ///< COBRA's ancestor (simultaneous co-evolution)
  kCodba,               ///< decomposition-based co-evolution
};

/// Display name of an algorithm. Throws std::invalid_argument on a value
/// outside the enum (e.g. a corrupted or miscast integer) instead of
/// silently labelling results "?".
[[nodiscard]] const char* to_string(Algorithm a);

/// Scaled-down experiment knobs. `scale(1.0)` is the paper's Table II
/// configuration; the default bench scale keeps the qualitative shape at
/// laptop runtimes.
struct ExperimentConfig {
  std::size_t runs = 3;
  std::size_t population_size = 30;       ///< both levels
  std::size_t archive_size = 30;
  long long ul_eval_budget = 400;
  long long ll_eval_budget = 1'200;
  std::size_t heuristic_sample_size = 4;  ///< CARBON competition size
  std::uint64_t base_seed = 20180521;     ///< per-run seed = base + run
  bool record_convergence = false;
  std::size_t threads = 0;                ///< 0 = hardware concurrency

  /// Crash-safe replication runs: when > 0, every checkpoint-capable run
  /// (CARBON, COBRA) writes its state to
  /// experiment_checkpoint_path(checkpoint_dir, algorithm, run) every N
  /// generations, and run_cell resumes any run whose checkpoint file
  /// already exists. Resumed cells are bit-identical to uninterrupted ones
  /// (docs/ALGORITHMS.md §11). Algorithms without checkpoint support run
  /// fresh and ignore these knobs.
  long long checkpoint_every = 0;
  std::string checkpoint_dir;

  /// Paper-scale (Table II) configuration: 30 runs, pop/archive 100,
  /// 50 000 + 50 000 evaluations.
  [[nodiscard]] static ExperimentConfig paper_scale();
};

/// Per-run checkpoint file used by run_cell: "<dir>/<algo>-run<r>.ckpt".
[[nodiscard]] std::string experiment_checkpoint_path(const std::string& dir,
                                                     Algorithm algorithm,
                                                     std::size_t run);

/// Aggregate over the R runs of one (instance, algorithm) cell.
struct CellResult {
  Algorithm algorithm = Algorithm::kCarbon;
  common::Summary gap;           ///< distribution of per-run best %-gap
  common::Summary ul_objective;  ///< distribution of per-run best F
  std::vector<RunResult> runs;
  double wall_seconds = 0.0;
};

/// Runs R replications of `algorithm` on `instance`.
[[nodiscard]] CellResult run_cell(const bcpop::Instance& instance,
                                  Algorithm algorithm,
                                  const ExperimentConfig& config);

/// Element-wise mean of convergence traces across runs, truncated to the
/// shortest trace. Traces must be non-empty.
[[nodiscard]] std::vector<ConvergencePoint> average_convergence(
    const std::vector<RunResult>& runs);

}  // namespace carbon::core

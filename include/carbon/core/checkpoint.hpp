// Crash-safe, versioned checkpoint/resume for the long-running solvers.
//
// A checkpoint snapshots the *complete* deterministic state of a solver at a
// generation boundary — populations, archives, RNG stream, best-so-far
// result, convergence trace, and consumed evaluation budgets — such that
// resuming from the file reproduces the uninterrupted run bit for bit (the
// golden-trajectory harness enforces this; see docs/ALGORITHMS.md §11).
//
// Wire format: two JSONL lines written through the obs/json layer.
//   line 1  header  {"magic":"carbon-checkpoint","version":1,"algo":...,
//                    "body_bytes":N,"body_fnv1a":"<hex>"}
//   line 2  body    one JSON object with the full solver state
// The header is validated (magic, schema version, algorithm, body length,
// FNV-1a 64 content hash) *before* the body is parsed, so truncated or
// corrupted files are rejected without any state having been applied.
//
// Bit-exactness: every double is serialized as the 16-hex-digit bit pattern
// of its IEEE-754 representation (including ±inf/NaN, which plain JSON
// numbers cannot carry), and every 64-bit counter/seed likewise — the
// decimal JSON number path goes through `double` and cannot round-trip the
// full uint64 range.
//
// Files are written atomically: tmp file in the target directory, fsync,
// rename over the destination, best-effort directory fsync. A crash during a
// write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/core/result.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/obs/json.hpp"
#include "carbon/obs/run_journal.hpp"

namespace carbon::core {

/// Any checkpoint save/load/validation failure. Loading throws this before
/// any solver state has been touched ("no partial state applied").
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bumped whenever the body schema changes incompatibly; readers reject any
/// other version (policy: docs/ALGORITHMS.md §11).
inline constexpr int kCheckpointSchemaVersion = 1;

/// Checkpoint/resume knobs shared by CarbonConfig and CobraConfig.
struct CheckpointConfig {
  /// Write a checkpoint every N recorded generations (0 = disabled).
  /// COBRA checkpoints at outer-round boundaries, so the effective cadence
  /// is the first round boundary at or past each multiple of N.
  long long every = 0;
  /// Destination file; required when `every` > 0. Written atomically.
  std::string path;
  /// Checkpoint file to restore at run() entry ("" = fresh run). The file
  /// must match the algorithm, schema version, seed, and population shape
  /// of the configured run.
  std::string resume_from;
  /// Fault-injection hook for the kill/resume tests: called after each
  /// successful checkpoint write with the generation just captured;
  /// returning true terminates the run immediately (simulated preemption —
  /// everything a real crash would lose is discarded).
  std::function<bool(int)> stop_after_checkpoint;
};

// ---- Bit-exact scalar/sequence encoding (exposed for tests) ----------------

/// 16 lowercase hex digits, zero-padded.
[[nodiscard]] std::string encode_u64(std::uint64_t v);
/// Strict inverse of encode_u64: exactly 16 hex digits or CheckpointError.
[[nodiscard]] std::uint64_t decode_u64(std::string_view text);

[[nodiscard]] std::string encode_i64(long long v);
[[nodiscard]] long long decode_i64(std::string_view text);

/// IEEE-754 bit pattern as hex; round-trips every double including
/// ±0, ±inf, and NaN payloads.
[[nodiscard]] std::string encode_f64(double v);
[[nodiscard]] double decode_f64(std::string_view text);

/// Space-separated encode_f64 words.
[[nodiscard]] std::string encode_doubles(std::span<const double> values);
[[nodiscard]] std::vector<double> decode_doubles(std::string_view text);

/// Two hex digits per byte, no separator (binary genomes, selections).
[[nodiscard]] std::string encode_bytes(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> decode_bytes(std::string_view text);

/// GP tree as space-separated prefix tokens: "+ - * / %" for operators,
/// "t<index>" for terminals, "c<hex16>" for constants. Structural validity
/// is re-checked on decode.
[[nodiscard]] std::string encode_tree(const gp::Tree& tree);
[[nodiscard]] gp::Tree decode_tree(std::string_view text);

// ---- Snapshot payloads -----------------------------------------------------

/// State common to both solvers, captured at a generation boundary.
struct SolverProgress {
  common::RngState rng;
  int generation = 0;
  /// Budget consumed since run start (eval counters are per-evaluator, so
  /// the resumed run offsets its fresh evaluator by these).
  long long consumed_ul = 0;
  long long consumed_ll = 0;
  /// Backend telemetry counters consumed so far; restored as an offset so
  /// journal records stay cumulative across the resume.
  obs::JournalBackendStats backend;
  /// Best-so-far result including the convergence trace prefix.
  RunResult result;

  bool operator==(const SolverProgress&) const = default;
};

/// One solution-archive entry (CARBON upper archive).
struct ArchivedPricingState {
  bcpop::Pricing pricing;
  bcpop::Evaluation evaluation;
  double fitness = 0.0;

  bool operator==(const ArchivedPricingState&) const = default;
};

/// One heuristic-archive entry (CARBON predator archive).
struct ArchivedHeuristicState {
  gp::Tree tree;
  double fitness = 0.0;

  bool operator==(const ArchivedHeuristicState&) const = default;
};

/// One COBRA archive entry (complete (pricing, basket) pair).
struct ArchivedPairState {
  bcpop::Pricing pricing;
  std::vector<std::uint8_t> basket;
  bcpop::Evaluation evaluation;
  double fitness = 0.0;

  bool operator==(const ArchivedPairState&) const = default;
};

struct CarbonCheckpoint {
  std::uint64_t seed = 0;  ///< config echo; resume rejects a mismatch
  SolverProgress progress;
  std::vector<bcpop::Pricing> ul_pop;
  std::vector<gp::Tree> gp_pop;
  /// Archives serialized best-first; re-adding in order reproduces the
  /// exact internal ordering (ties keep insertion order).
  std::vector<ArchivedPricingState> solution_archive;
  std::vector<ArchivedHeuristicState> heuristic_archive;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static CarbonCheckpoint from_json(const obs::JsonValue& body);

  /// Atomic two-line write / fully-validated load (see file comment).
  void save(const std::string& path) const;
  [[nodiscard]] static CarbonCheckpoint load(const std::string& path);

  bool operator==(const CarbonCheckpoint&) const = default;
};

struct CobraCheckpoint {
  std::uint64_t seed = 0;
  SolverProgress progress;
  std::vector<bcpop::Pricing> ul_pop;
  std::vector<std::vector<std::uint8_t>> ll_pop;
  std::vector<ArchivedPairState> upper_archive;
  std::vector<ArchivedPairState> lower_archive;
  /// Cross-level champions used for pairing in the next round.
  bcpop::Pricing paired_pricing;
  std::vector<std::uint8_t> paired_basket;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static CobraCheckpoint from_json(const obs::JsonValue& body);

  void save(const std::string& path) const;
  [[nodiscard]] static CobraCheckpoint load(const std::string& path);

  bool operator==(const CobraCheckpoint&) const = default;
};

// ---- File layer ------------------------------------------------------------

/// Writes `contents` to `path` via tmp + fsync + rename (+ best-effort
/// directory fsync). Throws CheckpointError on any I/O failure; the
/// destination is either the old file or the complete new one, never a
/// partial write.
void write_file_atomic(const std::string& path, std::string_view contents);

/// Wraps `body_json` in the validated header line and writes atomically.
void save_checkpoint_file(const std::string& path, std::string_view algo,
                          std::string_view body_json);

/// Reads `path`, validates the header (magic, version, algorithm, body
/// length, content hash), and returns the parsed body. Throws
/// CheckpointError on any mismatch, truncation, or parse failure.
[[nodiscard]] obs::JsonValue load_checkpoint_file(const std::string& path,
                                                  std::string_view expect_algo);

/// FNV-1a 64-bit content hash used by the header (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

}  // namespace carbon::core

// CARBON's configuration — defaults follow Table II of the paper.
#pragma once

#include <cstdint>

#include "carbon/bcpop/basis_pool.hpp"
#include "carbon/common/task_scheduler.hpp"
#include "carbon/core/checkpoint.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/operators.hpp"
#include "carbon/guard/guard.hpp"
#include "carbon/obs/run_journal.hpp"

namespace carbon::core {

/// Which solution the leader assumes the follower picks when several
/// follower models are available (paper §II). Optimistic: the best model
/// (lowest gap) speaks for the follower. Pessimistic: the leader hedges —
/// each pricing is evaluated under the top `follower_ensemble` models and
/// scored by its WORST (lowest) revenue, approximating "among plausible
/// rational reactions, count on the least favourable".
enum class Stance : unsigned char {
  kOptimistic,
  kPessimistic,
};

/// What the predator (heuristic) population minimizes. The paper argues the
/// %-gap is the only measure comparable across the different LL instances
/// that different pricings induce; raw LL value is provided as an ablation.
enum class PredatorFitness : unsigned char {
  kGap,    ///< mean %-gap over the competition sample (the paper's choice)
  kValue,  ///< mean raw LL objective value (COBRA-style; ablation)
};

struct CarbonConfig {
  // --- Upper level (prey: pricings, real-coded GA) ---
  std::size_t ul_population_size = 100;
  std::size_t ul_archive_size = 100;
  /// Probability that a selected pair undergoes SBX.
  double ul_crossover_prob = 0.85;
  /// Probability that an offspring undergoes polynomial mutation
  /// (per-gene rate inside the operator is 1/num_genes).
  double ul_mutation_prob = 0.01;
  ea::SbxConfig sbx{};
  ea::PolynomialMutationConfig mutation{};

  // --- Lower level (predators: heuristics, GP) ---
  std::size_t gp_population_size = 100;
  std::size_t gp_archive_size = 100;
  double gp_crossover_prob = 0.85;
  double gp_mutation_prob = 0.10;
  double gp_reproduction_prob = 0.05;
  std::size_t gp_tournament_size = 3;
  gp::OperatorConfig gp_ops{};

  PredatorFitness predator_fitness = PredatorFitness::kGap;

  /// Memetic variant: polish every heuristic-built cover with a drop/swap
  /// local search before scoring (extension; the paper scores raw greedies).
  bool memetic_polish = false;

  /// Optimistic (paper default) or pessimistic leader stance.
  Stance stance = Stance::kOptimistic;
  /// Follower models consulted per pricing in pessimistic mode (costs this
  /// many LL evaluations per prey evaluation).
  std::size_t follower_ensemble = 3;

  /// Pricings sampled per heuristic fitness evaluation (competition size).
  std::size_t heuristic_sample_size = 5;
  /// Archive entries re-injected into the UL population each generation.
  std::size_t archive_reinjection = 5;

  // --- Budgets (Table II: 50 000 UL + 50 000 LL fitness evaluations) ---
  long long ul_eval_budget = 50'000;
  long long ll_eval_budget = 50'000;

  /// Worker threads for batch evaluation (when the solver owns its
  /// evaluator). 1 = the legacy serial evaluator; >1 = a
  /// bcpop::ParallelEvaluator with that many workers; 0 = hardware
  /// concurrency. Results are bit-identical for any value at a fixed seed
  /// (per-thread contexts + ordered reduction; see docs/ALGORITHMS.md §7).
  std::size_t eval_threads = 1;

  /// Fan-out engine for the parallel evaluator (eval_threads > 1 or 0):
  /// the deterministic work-stealing TaskScheduler (default) or the
  /// barriered ThreadPool reference path. Bit-identical trajectories either
  /// way (docs/ALGORITHMS.md §14); the knob exists for differential testing
  /// and benchmarks. Ignored by the serial evaluator.
  common::SchedKind sched = common::SchedKind::kStealing;

  /// Cross-generation score memoization: finished heuristic Evaluations are
  /// cached across generations, keyed by (canonical program × pricing ×
  /// purpose). Hits still charge the Table II budgets, so trajectories are
  /// bit-identical with it on or off (docs/ALGORITHMS.md §14).
  bool memo_xgen = true;

  /// Warm-start policy for the LL relaxation LPs (docs/ALGORITHMS.md §15).
  /// kBaseline (default): every solve starts from the fixed base-cost basis
  /// — existing golden trajectories hold bit for bit. kPool: solves start
  /// from the nearest pooled basis (deterministic for any eval_threads ×
  /// sched × compiled_scoring, but a DIFFERENT golden axis: degenerate LPs
  /// can surface alternate optimal duals/x̄ under a different start basis).
  /// kPool routes evaluation through the parallel evaluator even when
  /// eval_threads == 1.
  bcpop::LpWarm lp_warm = bcpop::LpWarm::kBaseline;

  /// Compile GP scoring trees to batched SoA bytecode (gp::CompiledProgram)
  /// instead of interpreting them per bundle, and deduplicate repeated
  /// (tree, pricing) jobs within a batch. Bit-identical trajectories either
  /// way at a fixed seed (see docs/ALGORITHMS.md §8); off = the reference
  /// interpreter, kept for differential testing.
  bool compiled_scoring = true;

  std::uint64_t seed = 1;
  bool record_convergence = true;

  /// Optional run telemetry (metrics registry and/or JSONL run journal,
  /// both borrowed — the caller keeps them alive past run()). Attaching
  /// telemetry never changes the trajectory: results are bit-identical
  /// with telemetry on or off, for any eval_threads
  /// (see docs/ALGORITHMS.md §9).
  obs::TelemetryConfig telemetry{};

  /// Crash-safe checkpoint/resume (docs/ALGORITHMS.md §11). Writing a
  /// checkpoint never changes the trajectory, and resuming from one
  /// reproduces the uninterrupted run bit for bit.
  CheckpointConfig checkpoint{};

  /// Deterministic per-evaluation resource budgets + degradation ladder
  /// (docs/ALGORITHMS.md §13). Defaults are unlimited: the guarded path is
  /// then bitwise-identical to the historical unguarded one, for any
  /// eval_threads × compiled_scoring × SIMD combination.
  guard::GuardConfig guard{};
};

}  // namespace carbon::core

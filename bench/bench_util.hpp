// Shared CLI handling for the table/figure benchmark harnesses.
//
// All harnesses accept:
//   --runs R        replications per cell          (default 3; paper: 30)
//   --ul-budget U   UL fitness evaluations         (default 400; paper: 50000)
//   --ll-budget L   LL fitness evaluations         (default 1200; paper: 50000)
//   --pop P         population size, both levels   (default 30; paper: 100)
//   --seed S        base RNG seed
//   --full          shorthand for the paper-scale configuration (slow!)
#pragma once

#include "carbon/common/cli.hpp"
#include "carbon/core/experiment.hpp"

namespace carbon::bench {

inline core::ExperimentConfig experiment_config_from_cli(
    const common::CliArgs& args) {
  core::ExperimentConfig cfg;
  if (args.get_bool("full")) {
    cfg = core::ExperimentConfig::paper_scale();
  }
  cfg.runs = static_cast<std::size_t>(
      args.get_int("runs", static_cast<long long>(cfg.runs)));
  cfg.ul_eval_budget = args.get_int("ul-budget", cfg.ul_eval_budget);
  cfg.ll_eval_budget = args.get_int("ll-budget", cfg.ll_eval_budget);
  cfg.population_size = static_cast<std::size_t>(
      args.get_int("pop", static_cast<long long>(cfg.population_size)));
  cfg.archive_size = cfg.population_size;
  cfg.base_seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(cfg.base_seed)));
  return cfg;
}

}  // namespace carbon::bench

// Reproduces Table IV of the paper: upper-level objective values (leader
// revenue), CARBON vs COBRA, over the 9 instance classes.
//
// Expected shape (paper): COBRA reports HIGHER revenue on every class — but
// that is an artifact: a sloppy lower-level solver relaxes the upper level
// (Eq. 2/3), inflating the payoff the leader believes in. CARBON's smaller
// values are tighter (more realistic) bounds. The bench prints both values
// and the inflation ratio.

#include <cstdio>

#include "bench_util.hpp"
#include "carbon/cover/generator.hpp"
#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);

  std::printf("== Table IV: UL objective values "
              "(runs=%zu, UL budget=%lld, LL budget=%lld) ==\n\n",
              cfg.runs, cfg.ul_eval_budget, cfg.ll_eval_budget);
  std::printf("%6s %6s | %12s %12s %9s | %12s %12s %9s\n", "n", "m",
              "CARBON", "COBRA", "inflate", "paper-CAR", "paper-COB",
              "inflate");

  double sum_carbon = 0.0;
  double sum_cobra = 0.0;
  for (std::size_t cls = 0; cls < cover::paper_classes().size(); ++cls) {
    const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);
    const core::CellResult carbon =
        core::run_cell(inst, core::Algorithm::kCarbon, cfg);
    const core::CellResult cobra =
        core::run_cell(inst, core::Algorithm::kCobra, cfg);

    const auto& ref = bench::kPaperUl[cls];
    std::printf("%6zu %6zu | %12.2f %12.2f %8.2fx | %12.2f %12.2f %8.2fx\n",
                inst.num_bundles(), inst.num_services(),
                carbon.ul_objective.mean, cobra.ul_objective.mean,
                cobra.ul_objective.mean /
                    std::max(carbon.ul_objective.mean, 1.0),
                ref.carbon, ref.cobra, ref.cobra / ref.carbon);
    sum_carbon += carbon.ul_objective.mean;
    sum_cobra += cobra.ul_objective.mean;
  }
  std::printf("%6s %6s | %12.2f %12.2f %9s | %12.2f %12.2f\n", "avg", "",
              sum_carbon / 9.0, sum_cobra / 9.0, "",
              bench::kPaperUlAvgCarbon, bench::kPaperUlAvgCobra);
  std::printf("\nShape check: COBRA's reported revenue exceeds CARBON's "
              "(over-relaxation) = %s\n",
              sum_cobra > sum_carbon ? "consistent with the paper"
                                     : "VIOLATED");
  return 0;
}

// Empirical check of the paper's Eq. (2)/(3) relaxation argument:
//
//   w(x) <= A_carbon(x) <= A_cobra(x)
//   =>  S_opt ⊂ S_carbon ⊂ S_cobra
//   =>  max F over S_opt <= over S_carbon <= over S_cobra
//
// i.e. the worse an algorithm solves the lower level, the more the upper
// level is relaxed, and the more the leader's payoff is overestimated.
//
// On a small market (exactly solvable by branch & bound) we sample pricings,
// compute the true LL optimum w(x), CARBON's heuristic value A_carbon(x) and
// COBRA-style repaired-basket values A_cobra(x), and report how often the
// ordering holds and how large the payoff inflation is.

#include <cstdio>
#include <vector>

#include "carbon/common/cli.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/binary_ops.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 40));
  common::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 99)));

  // Small market: exact LL solves must be cheap.
  cover::GeneratorConfig gen;
  gen.num_bundles = 40;
  gen.num_services = 5;
  gen.seed = 4242;
  const bcpop::Instance market(cover::generate(gen), /*num_owned=*/4);

  // Train a CARBON follower model on this market.
  core::CarbonConfig cc;
  cc.ul_population_size = 30;
  cc.gp_population_size = 30;
  cc.ul_eval_budget = 500;
  cc.ll_eval_budget = 2'000;
  cc.seed = 1;
  const core::CarbonResult trained = core::CarbonSolver(market, cc).run();
  std::printf("follower model (mean gap %.3f%%): %s\n\n",
              trained.best_heuristic_gap,
              gp::simplify(trained.best_heuristic).to_string().c_str());

  bcpop::Evaluator eval(market);
  common::RunningStats w_stats;
  common::RunningStats carbon_stats;
  common::RunningStats cobra_stats;
  common::RunningStats f_opt;
  common::RunningStats f_carbon;
  common::RunningStats f_cobra;
  std::size_t ordering_holds = 0;

  for (std::size_t s = 0; s < samples; ++s) {
    const bcpop::Pricing pricing =
        ea::random_real_vector(rng, market.price_bounds());

    // True LL optimum w(x).
    const cover::Instance ll = market.lower_level_instance(pricing);
    const cover::ExactResult exact = cover::exact_solve(ll);
    if (!exact.feasible || !exact.proven_optimal) continue;
    const double w = exact.value;

    // CARBON's follower model.
    const bcpop::Evaluation ec =
        eval.evaluate_with_heuristic(pricing, trained.best_heuristic);

    // COBRA-style follower: best of a few random repaired baskets
    // (mimicking an early/transferred LL population).
    double a_cobra = 1e18;
    double f_cobra_best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto basket =
          ea::random_binary_vector(rng, market.num_bundles(), 0.3);
      const bcpop::Evaluation eo =
          eval.evaluate_with_selection(pricing, basket);
      if (eo.ll_objective < a_cobra) {
        a_cobra = eo.ll_objective;
        f_cobra_best = eo.ul_objective;
      }
    }

    w_stats.add(w);
    carbon_stats.add(ec.ll_objective);
    cobra_stats.add(a_cobra);
    f_opt.add(market.leader_revenue(pricing, exact.selection));
    f_carbon.add(ec.ul_objective);
    f_cobra.add(f_cobra_best);
    ordering_holds +=
        (w <= ec.ll_objective + 1e-6 && ec.ll_objective <= a_cobra + 1e-6);
  }

  std::printf("== Eq. (3) ordering over %zu sampled pricings ==\n",
              static_cast<std::size_t>(w_stats.count()));
  std::printf("%-26s %12s\n", "", "mean");
  std::printf("%-26s %12.2f\n", "w(x)      (exact LL opt)", w_stats.mean());
  std::printf("%-26s %12.2f\n", "A_carbon(x)", carbon_stats.mean());
  std::printf("%-26s %12.2f\n", "A_cobra(x)", cobra_stats.mean());
  std::printf("\nw <= A_carbon <= A_cobra held on %zu/%zu samples\n",
              ordering_holds, static_cast<std::size_t>(w_stats.count()));

  std::printf("\n== implied leader payoff (overestimation cascade) ==\n");
  std::printf("%-26s %12.2f   (the real payoff)\n", "F under exact follower",
              f_opt.mean());
  std::printf("%-26s %12.2f\n", "F under CARBON follower", f_carbon.mean());
  std::printf("%-26s %12.2f   (inflated)\n", "F under COBRA follower",
              f_cobra.mean());
  return 0;
}

// Reproduces Table III of the paper: best %-gap to lower-level optimality,
// CARBON vs COBRA, over the 9 instance classes
// (n in {100,250,500} bundles x m in {5,10,30} services).
//
// Expected shape (paper): CARBON's gap is an order of magnitude smaller than
// COBRA's on every class, and COBRA's gap grows with instance size while
// CARBON's shrinks. Run with --full for the paper-scale budget.

#include <cstdio>

#include "bench_util.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/cover/generator.hpp"
#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);

  std::printf("== Table III: %%-gap to LL optimality "
              "(runs=%zu, UL budget=%lld, LL budget=%lld) ==\n\n",
              cfg.runs, cfg.ul_eval_budget, cfg.ll_eval_budget);
  std::printf("%6s %6s | %10s %10s | %10s %10s | %8s\n", "n", "m",
              "CARBON", "COBRA", "paper-CAR", "paper-COB", "p-value");

  double sum_carbon = 0.0;
  double sum_cobra = 0.0;
  for (std::size_t cls = 0; cls < cover::paper_classes().size(); ++cls) {
    const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);
    const core::CellResult carbon =
        core::run_cell(inst, core::Algorithm::kCarbon, cfg);
    const core::CellResult cobra =
        core::run_cell(inst, core::Algorithm::kCobra, cfg);

    std::vector<double> gc;
    std::vector<double> go;
    for (const auto& r : carbon.runs) gc.push_back(r.best_gap);
    for (const auto& r : cobra.runs) go.push_back(r.best_gap);
    const double p = common::rank_sum_test(gc, go).p_value;

    const auto& ref = bench::kPaperGap[cls];
    std::printf("%6zu %6zu | %10.2f %10.2f | %10.2f %10.2f | %8.4f\n",
                inst.num_bundles(), inst.num_services(), carbon.gap.mean,
                cobra.gap.mean, ref.carbon, ref.cobra, p);
    sum_carbon += carbon.gap.mean;
    sum_cobra += cobra.gap.mean;
  }
  std::printf("%6s %6s | %10.2f %10.2f | %10.2f %10.2f |\n", "avg", "",
              sum_carbon / 9.0, sum_cobra / 9.0, bench::kPaperGapAvgCarbon,
              bench::kPaperGapAvgCobra);
  std::printf("\nShape check: CARBON < COBRA on every row = %s\n",
              sum_carbon < sum_cobra ? "consistent with the paper" : "VIOLATED");
  return 0;
}

// Microbenchmark of GP scoring-tree evaluation: per-bundle interpreter vs
// compiled SoA batch evaluation (gp::CompiledProgram), with the compiled
// path timed twice — forced-scalar kernels and the SIMD-dispatched kernels
// (AVX2 when built and supported). The two compiled paths are asserted
// bit-identical on every case before being timed, so a reported speedup can
// never come from a semantic divergence.
//
// Each (depth, batch) cell is measured for two operator pools:
//   full  — trees over the paper's whole operator set. Protected mod has no
//           bit-identical vector form (docs/ALGORITHMS.md §12), so its
//           scalar libm fmod dominates both kernel paths and caps the
//           end-to-end SIMD gain on mod-heavy trees.
//   arith — the same trees with mod rewritten to div: the all-vectorizable
//           mix, showing the kernel-level speedup the dispatch delivers.
//
// Also measures the incremental batched greedy on the paper's Table III
// instance classes: random depth-6 scoring trees are run through
// cover::greedy_solve_batched with GreedyBatchStats, and the fraction of
// score slots actually recomputed (rescored_frac) is reported per class —
// the dense baseline would be 1.0 everywhere. Random full-depth-6 trees
// almost always read BRES (which forces dense rescoring), so each tree is
// also measured with its BRES leaves redirected to QSUM — the QCOV-only
// regime the dirty set accelerates.
//
// Usage: micro_gp_eval [--smoke] [output.json]
//   Prints tables to stdout and writes machine-readable results (with
//   speedups and the SIMD dispatch report) to the JSON file (default:
//   BENCH_gp_eval.json). --smoke shrinks the grid and repetition counts to
//   a sub-second run for the bench-smoke ctest label.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/gp/compiled.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/gp/simd.hpp"
#include "carbon/gp/tree.hpp"

namespace {

using namespace carbon;
using Clock = std::chrono::steady_clock;

struct Case {
  const char* pool;  ///< "full" or "arith"
  int depth;
  std::size_t batch;
  std::size_t tree_nodes;
  std::size_t instructions;
  double interp_ns;  ///< per evaluation (one bundle, one round)
  double scalar_ns;  ///< compiled, forced-scalar kernels
  double simd_ns;    ///< compiled, dispatched (SIMD) kernels
  double compiled_speedup;  ///< interp / scalar
  double simd_speedup;      ///< scalar / simd
};

struct GreedyCase {
  std::size_t bundles;
  std::size_t services;
  std::size_t trees;        ///< (tree, variant) pairs measured
  std::size_t dirty_trees;  ///< pairs on the dirty-set (QCOV-only) regime
  double mean_rounds;
  double frac_all;    ///< mean rescored_frac over all measured pairs
  double frac_dirty;  ///< mean rescored_frac over dirty-set pairs
};

struct Columns {
  std::array<std::vector<double>, gp::kNumTerminals> data;
  gp::CompiledProgram::TerminalBatch batch;
};

Columns make_columns(common::Rng& rng, std::size_t m) {
  Columns c;
  for (std::size_t t = 0; t < gp::kNumTerminals; ++t) {
    // BRES is a round-scalar in the real greedy: broadcast column.
    const std::size_t len =
        t == static_cast<std::size_t>(gp::Terminal::kBres) ? 1 : m;
    for (std::size_t i = 0; i < len; ++i) {
      c.data[t].push_back(rng.uniform(0.0, 1000.0));
    }
  }
  for (std::size_t t = 0; t < gp::kNumTerminals; ++t) {
    c.batch.columns[t] = c.data[t];
  }
  c.batch.count = m;
  return c;
}

/// Tree surgery through the S-expression round trip: rewrites every `from`
/// token to `to` (used for mod->div and BRES->QSUM families).
gp::Tree rewrite_tokens(const gp::Tree& tree, const std::string& from,
                        const std::string& to) {
  std::string text = tree.to_string();
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return gp::parse(text);
}

Case run_case(common::Rng& rng, const char* pool, int depth, std::size_t m,
              bool smoke) {
  gp::GenerateConfig gen;
  gen.min_depth = depth;
  gen.max_depth = depth;
  gp::Tree tree = gp::generate_full(rng, depth, gen);
  if (std::string(pool) == "arith") {
    tree = rewrite_tokens(tree, "(mod ", "(div ");
  }
  const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
  const Columns cols = make_columns(rng, m);

  // Enough repetitions that each timing covers a few million evaluations
  // (a few thousand in smoke mode); best-of-3 to shed scheduler noise.
  const std::size_t budget = smoke ? 4'000 : 2'000'000;
  const std::size_t reps =
      std::max<std::size_t>(4, budget / std::max<std::size_t>(1, m));
  const int trials = smoke ? 1 : 3;

  double sink = 0.0;
  std::vector<double> op_scratch;

  const auto best_of = [&](auto body) {
    double best = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < trials; ++trial) {
      const auto t0 = Clock::now();
      body();
      const auto t1 = Clock::now();
      best = std::min(
          best, std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    return best / (static_cast<double>(reps) * static_cast<double>(m));
  };

  const double interp_ns = best_of([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < m; ++i) {
        std::array<double, gp::kNumTerminals> f{};
        for (std::size_t t = 0; t < gp::kNumTerminals; ++t) {
          f[t] = cols.data[t].size() == 1 ? cols.data[t][0] : cols.data[t][i];
        }
        sink += tree.evaluate(std::span<const double, gp::kNumTerminals>(f),
                              op_scratch);
      }
    }
  });

  // Cross-path bitwise check before timing: the speedup below is only
  // meaningful if both kernel tables compute the same doubles.
  std::vector<double> out_scalar(m);
  std::vector<double> out_simd(m);
  std::vector<double> reg_scratch;
  gp::simd::select_path("scalar");
  program.evaluate_batch(cols.batch, out_scalar, reg_scratch);
  gp::simd::select_path("auto");
  program.evaluate_batch(cols.batch, out_simd, reg_scratch);
  for (std::size_t i = 0; i < m; ++i) {
    if (std::bit_cast<std::uint64_t>(out_scalar[i]) !=
        std::bit_cast<std::uint64_t>(out_simd[i])) {
      std::fprintf(stderr,
                   "FATAL: scalar/simd divergence depth=%d batch=%zu i=%zu "
                   "(%a vs %a)\n",
                   depth, m, i, out_scalar[i], out_simd[i]);
      std::exit(1);
    }
  }

  std::vector<double> out(m);
  gp::simd::select_path("scalar");
  const double scalar_ns = best_of([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      program.evaluate_batch(cols.batch, out, reg_scratch);
      sink += out[r % m];
    }
  });

  gp::simd::select_path("auto");
  const double simd_ns = best_of([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      program.evaluate_batch(cols.batch, out, reg_scratch);
      sink += out[r % m];
    }
  });

  // Keep `sink` observable so no timed loop can be optimized away.
  if (sink == 0.12345) std::printf("# sink %f\n", sink);

  return {pool,
          depth,
          m,
          tree.size(),
          program.num_instructions(),
          interp_ns,
          scalar_ns,
          simd_ns,
          interp_ns / scalar_ns,
          scalar_ns / simd_ns};
}

GreedyCase run_greedy_class(std::size_t class_index, bool smoke) {
  const cover::PaperClass& pc = cover::paper_classes()[class_index];
  const cover::Instance inst = cover::make_paper_instance(class_index, 0);

  common::Rng rng(9000 + class_index);
  gp::GenerateConfig gen;
  gen.min_depth = 6;
  gen.max_depth = 6;

  const std::size_t trees = smoke ? 2 : 8;
  GreedyCase gc{pc.num_bundles, pc.num_services, 0, 0, 0.0, 0.0, 0.0};
  cover::GreedyScratch scratch;
  std::vector<double> reg_scratch;
  const auto measure = [&](const gp::Tree& tree) {
    const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
    if (program.is_static()) return;  // takes the sort fast path in bcpop
    cover::GreedyBatchStats stats;
    (void)cover::greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, reg_scratch), {}, {}, {},
        &scratch, &stats);
    gc.trees += 1;
    gc.mean_rounds += static_cast<double>(stats.rounds);
    gc.frac_all += stats.rescored_frac();
    if (!program.uses_terminal(gp::Terminal::kBres)) {
      gc.dirty_trees += 1;
      gc.frac_dirty += stats.rescored_frac();
    }
  };
  for (std::size_t t = 0; t < trees; ++t) {
    const gp::Tree tree = gp::generate_full(rng, 6, gen);
    measure(tree);
    // The QCOV-only variant: depth-6 trees essentially always read BRES
    // somewhere, which forces dense rescoring; redirecting those leaves to
    // QSUM yields the regime the dirty set is built for.
    measure(rewrite_tokens(tree, "BRES", "QSUM"));
  }
  if (gc.trees > 0) {
    gc.mean_rounds /= static_cast<double>(gc.trees);
    gc.frac_all /= static_cast<double>(gc.trees);
  }
  if (gc.dirty_trees > 0) {
    gc.frac_dirty /= static_cast<double>(gc.dirty_trees);
  }
  return gc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_gp_eval.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }
  common::Rng rng(12345);

  // Resolve + report the dispatch up front (also what the JSON records).
  const bool cpu_avx2 = gp::simd::cpu_supports_avx2();
  const bool built_avx2 = gp::simd::avx2_kernels_available();
  gp::simd::select_path("auto");
  const char* dispatched = gp::simd::path_name();
  const std::size_t lanes = gp::simd::lanes();
  std::printf("simd: cpu_avx2=%d compiled_avx2=%d dispatched=%s lanes=%zu\n",
              cpu_avx2 ? 1 : 0, built_avx2 ? 1 : 0, dispatched, lanes);

  std::vector<Case> cases;
  const std::vector<int> depths = smoke ? std::vector<int>{4}
                                        : std::vector<int>{2, 4, 6, 8};
  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{50}
            : std::vector<std::size_t>{50, 200, 1000};
  for (const char* pool : {"full", "arith"}) {
    for (const int depth : depths) {
      for (const std::size_t m : batches) {
        cases.push_back(run_case(rng, pool, depth, m, smoke));
      }
    }
  }

  std::printf("%6s %6s %6s %6s %6s %12s %12s %12s %9s %9s\n", "pool", "depth",
              "batch", "nodes", "instr", "interp ns", "scalar ns", "simd ns",
              "compiled", "simd x");
  for (const Case& c : cases) {
    std::printf("%6s %6d %6zu %6zu %6zu %12.2f %12.2f %12.2f %8.2fx %8.2fx\n",
                c.pool, c.depth, c.batch, c.tree_nodes, c.instructions,
                c.interp_ns, c.scalar_ns, c.simd_ns, c.compiled_speedup,
                c.simd_speedup);
  }

  // Incremental greedy on the paper's instance classes.
  std::vector<GreedyCase> greedy;
  const std::size_t num_classes =
      smoke ? 2 : cover::paper_classes().size();
  for (std::size_t c = 0; c < num_classes; ++c) {
    greedy.push_back(run_greedy_class(c, smoke));
  }
  std::printf("\n%8s %9s %6s %11s %8s %10s %11s\n", "bundles", "services",
              "trees", "dirty-trees", "rounds", "frac(all)", "frac(dirty)");
  for (const GreedyCase& g : greedy) {
    std::printf("%8zu %9zu %6zu %11zu %8.1f %10.3f %11.3f\n", g.bundles,
                g.services, g.trees, g.dirty_trees, g.mean_rounds, g.frac_all,
                g.frac_dirty);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"gp_eval\",\n");
  std::fprintf(f,
               "  \"simd\": {\"cpu_avx2\": %s, \"compiled_avx2\": %s, "
               "\"dispatched\": \"%s\", \"lanes\": %zu},\n",
               cpu_avx2 ? "true" : "false", built_avx2 ? "true" : "false",
               dispatched, lanes);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::fprintf(
        f,
        "    {\"pool\": \"%s\", \"depth\": %d, \"batch\": %zu, "
        "\"tree_nodes\": %zu, \"program_instructions\": %zu, "
        "\"interp_ns_per_eval\": %.3f, \"compiled_ns_per_eval\": %.3f, "
        "\"simd_ns_per_eval\": %.3f, \"speedup\": %.3f, "
        "\"simd_speedup\": %.3f}%s\n",
        c.pool, c.depth, c.batch, c.tree_nodes, c.instructions, c.interp_ns,
        c.scalar_ns, c.simd_ns, c.compiled_speedup, c.simd_speedup,
        i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"greedy_rescoring\": [\n");
  for (std::size_t i = 0; i < greedy.size(); ++i) {
    const GreedyCase& g = greedy[i];
    std::fprintf(f,
                 "    {\"bundles\": %zu, \"services\": %zu, \"trees\": %zu, "
                 "\"dirty_trees\": %zu, \"mean_rounds\": %.2f, "
                 "\"rescored_frac_all\": %.4f, "
                 "\"rescored_frac_dirty\": %.4f}%s\n",
                 g.bundles, g.services, g.trees, g.dirty_trees, g.mean_rounds,
                 g.frac_all, g.frac_dirty, i + 1 < greedy.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

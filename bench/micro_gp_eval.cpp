// Microbenchmark of GP scoring-tree evaluation: per-bundle interpreter vs
// compiled SoA batch evaluation (gp::CompiledProgram).
//
// Replays the greedy's scoring pattern — score every bundle of a batch from
// terminal feature columns — for trees of several depths and batch sizes.
// The interpreter path gathers a per-bundle feature array and walks the
// prefix node vector per bundle; the compiled path runs the linearized
// program once with elementwise instruction loops over the whole batch.
//
// Usage: micro_gp_eval [--smoke] [output.json]
//   Prints a table to stdout and writes machine-readable results (with
//   speedups) to the JSON file (default: BENCH_gp_eval.json). --smoke
//   shrinks the grid and repetition counts to a sub-second run for the
//   bench-smoke ctest label.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/gp/compiled.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/tree.hpp"

namespace {

using namespace carbon;
using Clock = std::chrono::steady_clock;

struct Case {
  int depth;
  std::size_t batch;
  std::size_t tree_nodes;
  std::size_t instructions;
  double interp_ns;    ///< per evaluation (one bundle, one round)
  double compiled_ns;  ///< per evaluation
  double speedup;
};

struct Columns {
  std::array<std::vector<double>, gp::kNumTerminals> data;
  gp::CompiledProgram::TerminalBatch batch;
};

Columns make_columns(common::Rng& rng, std::size_t m) {
  Columns c;
  for (std::size_t t = 0; t < gp::kNumTerminals; ++t) {
    // BRES is a round-scalar in the real greedy: broadcast column.
    const std::size_t len =
        t == static_cast<std::size_t>(gp::Terminal::kBres) ? 1 : m;
    for (std::size_t i = 0; i < len; ++i) {
      c.data[t].push_back(rng.uniform(0.0, 1000.0));
    }
  }
  for (std::size_t t = 0; t < gp::kNumTerminals; ++t) {
    c.batch.columns[t] = c.data[t];
  }
  c.batch.count = m;
  return c;
}

Case run_case(common::Rng& rng, int depth, std::size_t m, bool smoke) {
  gp::GenerateConfig gen;
  gen.min_depth = depth;
  gen.max_depth = depth;
  const gp::Tree tree = gp::generate_full(rng, depth, gen);
  const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
  const Columns cols = make_columns(rng, m);

  // Enough repetitions that each timing covers a few million evaluations
  // (a few thousand in smoke mode).
  const std::size_t budget = smoke ? 4'000 : 4'000'000;
  const std::size_t reps =
      std::max<std::size_t>(4, budget / std::max<std::size_t>(1, m));

  double sink = 0.0;
  std::vector<double> op_scratch;

  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < m; ++i) {
      std::array<double, gp::kNumTerminals> f{};
      for (std::size_t t = 0; t < gp::kNumTerminals; ++t) {
        f[t] = cols.data[t].size() == 1 ? cols.data[t][0] : cols.data[t][i];
      }
      sink += tree.evaluate(std::span<const double, gp::kNumTerminals>(f),
                            op_scratch);
    }
  }
  const auto t1 = Clock::now();

  std::vector<double> out(m);
  std::vector<double> reg_scratch;
  const auto t2 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    program.evaluate_batch(cols.batch, out, reg_scratch);
    sink += out[r % m];
  }
  const auto t3 = Clock::now();

  const double evals = static_cast<double>(reps) * static_cast<double>(m);
  const double interp_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / evals;
  const double compiled_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() / evals;

  // Keep `sink` observable so neither loop can be optimized away.
  if (sink == 0.12345) std::printf("# sink %f\n", sink);

  return {depth,     m,           tree.size(), program.num_instructions(),
          interp_ns, compiled_ns, interp_ns / compiled_ns};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_gp_eval.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }
  common::Rng rng(12345);

  std::vector<Case> cases;
  const std::vector<int> depths = smoke ? std::vector<int>{4}
                                        : std::vector<int>{2, 4, 6, 8};
  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{50}
            : std::vector<std::size_t>{50, 200, 1000};
  for (const int depth : depths) {
    for (const std::size_t m : batches) {
      cases.push_back(run_case(rng, depth, m, smoke));
    }
  }

  std::printf("%6s %6s %6s %6s %14s %14s %9s\n", "depth", "batch", "nodes",
              "instr", "interp ns/ev", "compiled ns/ev", "speedup");
  for (const Case& c : cases) {
    std::printf("%6d %6zu %6zu %6zu %14.2f %14.2f %8.2fx\n", c.depth, c.batch,
                c.tree_nodes, c.instructions, c.interp_ns, c.compiled_ns,
                c.speedup);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"gp_eval\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::fprintf(f,
                 "    {\"depth\": %d, \"batch\": %zu, \"tree_nodes\": %zu, "
                 "\"program_instructions\": %zu, \"interp_ns_per_eval\": "
                 "%.3f, \"compiled_ns_per_eval\": %.3f, \"speedup\": %.3f}%s\n",
                 c.depth, c.batch, c.tree_nodes, c.instructions, c.interp_ns,
                 c.compiled_ns, c.speedup, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

// Microbenchmark of the parallel batch-evaluation layer.
//
// Replays a CARBON-shaped workload — generations of (pricing × heuristic)
// batches with the pricing pool reused across generations, as the solver's
// competition sampling does — through the serial Evaluator and through
// ParallelEvaluator at several thread counts. Reports evaluations/second,
// speedup over serial, and the relaxation-cache hit rate.
//
// Note the speedup is bounded by the machine: on a single hardware thread
// the parallel path can only show its (small) coordination overhead.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"

namespace {

using namespace carbon;

struct Workload {
  bcpop::Instance instance;
  std::vector<bcpop::Pricing> pricings;
  std::vector<gp::Tree> trees;
  std::vector<bcpop::HeuristicJob> batch;  ///< one generation's jobs
  int generations = 0;
};

Workload make_workload() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 120;
  cfg.num_services = 12;
  cfg.seed = 29;
  Workload w{bcpop::Instance(cover::generate(cfg), /*num_owned=*/12),
             {}, {}, {}, /*generations=*/6};
  common::Rng rng(7);
  // 20 pricings × 10 heuristics per generation; the pricing pool is shared
  // by every heuristic (and every generation), so most relaxation lookups
  // after the first sweep are cache hits — like CARBON's predator phase.
  for (int i = 0; i < 20; ++i) {
    w.pricings.push_back(
        ea::random_real_vector(rng, w.instance.price_bounds()));
  }
  for (int t = 0; t < 10; ++t) w.trees.push_back(gp::generate_ramped(rng));
  for (const auto& tree : w.trees) {
    for (const auto& p : w.pricings) {
      w.batch.push_back({p, &tree, bcpop::EvalPurpose::kLowerOnly});
    }
  }
  return w;
}

struct Measurement {
  double seconds = 0.0;
  long long evals = 0;
  long long solves = 0;
  long long hits = 0;
};

Measurement run(const Workload& w, bcpop::EvaluatorInterface& eval) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int g = 0; g < w.generations; ++g) {
    const auto results = eval.evaluate_heuristic_batch(w.batch);
    if (results.size() != w.batch.size()) std::abort();
  }
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.evals = static_cast<long long>(w.batch.size()) * w.generations;
  return m;
}

void report(const char* name, const Measurement& m, double serial_seconds) {
  const double rate = static_cast<double>(m.evals) / m.seconds;
  const double hit_rate =
      static_cast<double>(m.hits) / static_cast<double>(m.hits + m.solves);
  std::printf("%-12s %8.3f s  %9.0f evals/s  speedup %5.2fx  hit-rate %5.1f%%\n",
              name, m.seconds, rate, serial_seconds / m.seconds,
              100.0 * hit_rate);
}

}  // namespace

int main() {
  const Workload w = make_workload();
  std::printf("parallel batch evaluation: %zu jobs/generation x %d generations"
              " (%u hardware threads)\n",
              w.batch.size(), w.generations,
              std::thread::hardware_concurrency());

  bcpop::Evaluator serial(w.instance);
  Measurement base = run(w, serial);
  base.solves = serial.relaxations_solved();
  base.hits = serial.relaxation_cache_hits();
  report("serial", base, base.seconds);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    bcpop::ParallelEvaluator par(w.instance, threads);
    Measurement m = run(w, par);
    m.solves = par.relaxations_solved();
    m.hits = par.relaxation_cache_hits();
    char name[32];
    std::snprintf(name, sizeof(name), "threads=%zu", threads);
    report(name, m, base.seconds);
  }
  return 0;
}

// Microbenchmark of the parallel batch-evaluation layer.
//
// Two sections, both written to BENCH_parallel_eval.json:
//
//   grid — the scheduler-vs-parallel_for engine grid: batches of
//   spin-calibrated jobs with three cost profiles (uniform, skewed,
//   heavy_tail — the skewed shapes mimic a CARBON generation, where most
//   jobs are relaxation-cache hits and a few pay the full solve) dispatched
//   through common::TaskScheduler and common::ThreadPool::parallel_for at
//   1/2/4/8 workers. Every cell asserts the two engines produce bit-equal
//   result checksums before timing, so a speedup can never come from a
//   semantic divergence. The scheduler's win is per-task overhead: blocks
//   are pre-dealt to lock-free deques instead of a packaged_task + future +
//   global-mutex round trip per job — visible even on a single hardware
//   thread, and the skewed profiles add the steal-vs-barrier gap on many.
//
//   evaluator — a CARBON-shaped workload (generations of pricing x
//   heuristic batches, the pricing pool reused across generations) replayed
//   through ParallelEvaluator under sched {parallel_for, stealing} x
//   memo_xgen {off, on}, reporting evaluations/second, the cross-generation
//   memo hit rate, and the scheduler's task/steal counters.
//
// Note the wall-clock numbers are bounded by the machine: on a single
// hardware thread the parallel paths can only show their coordination
// overhead (which is exactly what the grid isolates).
//
// Usage: micro_parallel_eval [--smoke] [output.json]
//   --smoke shrinks repetitions and the grid to a sub-second run for the
//   bench-smoke ctest label (default output: BENCH_parallel_eval.json).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/common/task_scheduler.hpp"
#include "carbon/common/thread_pool.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"

namespace {

using namespace carbon;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Section 1: the engine grid on spin-calibrated synthetic jobs.

/// splitmix64 — the spin kernel's mixer; opaque enough that the optimizer
/// cannot collapse the loop.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Spins for `rounds` mixer iterations and returns the running hash (the
/// job's "result" — checksummed to pin engine bit-equality).
std::uint64_t spin(std::uint64_t seed, std::uint64_t rounds) {
  std::uint64_t h = seed;
  for (std::uint64_t r = 0; r < rounds; ++r) h = mix(h + r);
  return h;
}

/// Measures mixer rounds per microsecond (best of three, so a descheduled
/// calibration pass cannot inflate every job), so profiles can express job
/// costs in time units while the jobs themselves never read the clock.
double calibrate_rounds_per_us() {
  constexpr std::uint64_t kRounds = 4'000'000;
  double best_us = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    const std::uint64_t sink = spin(1, kRounds);
    const auto t1 = Clock::now();
    if (sink == 0xdeadbeef) std::abort();  // keep `sink` observable
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    if (us < best_us) best_us = us;
  }
  return static_cast<double>(kRounds) / best_us;
}

struct CostProfile {
  const char* name;
  /// Per-job cost in microseconds, index-deterministic.
  double (*cost_us)(std::size_t i);
};

/// uniform: every job 2us. skewed: 90% at 0.3us (a relaxation-cache hit is
/// a hash probe plus a copy — a few hundred ns), 8% at 3us (memo-path
/// scoring), 2% at 20us (fresh warm-started solves) — the CARBON
/// generation shape once the cache is warm. heavy_tail: one 500us
/// straggler amid 1us jobs — the worst case for chunk barriers, the best
/// for stealing.
double cost_uniform(std::size_t) { return 2.0; }
double cost_skewed(std::size_t i) {
  const std::uint64_t h = mix(i * 2654435761u);
  const unsigned bucket = static_cast<unsigned>(h % 100);
  if (bucket < 90) return 0.3;
  if (bucket < 98) return 3.0;
  return 20.0;
}
double cost_heavy_tail(std::size_t i) { return i == 7 ? 500.0 : 1.0; }

struct GridCell {
  const char* profile;
  std::size_t threads;
  std::size_t jobs;
  double pool_ms;   ///< ThreadPool::parallel_for, best-of-reps
  double sched_ms;  ///< TaskScheduler::parallel_for, best-of-reps
  double speedup;   ///< pool_ms / sched_ms
};

GridCell run_grid_cell(const CostProfile& profile, std::size_t threads,
                       std::size_t jobs, double rounds_per_us, int reps) {
  std::vector<std::uint64_t> rounds(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    rounds[i] = static_cast<std::uint64_t>(profile.cost_us(i) * rounds_per_us);
  }
  std::vector<std::uint64_t> results(jobs);
  const auto job = [&](std::size_t i) { results[i] = spin(i, rounds[i]); };
  const auto checksum = [&] {
    std::uint64_t h = 0;
    for (const std::uint64_t r : results) h = mix(h ^ r);
    return h;
  };

  common::ThreadPool pool(threads);
  common::TaskScheduler sched(threads);

  // Bit-equality guard (and warm-up) before any timing.
  pool.parallel_for(jobs, job);
  const std::uint64_t want = checksum();
  sched.parallel_for(jobs, [&](std::size_t, std::size_t i) { job(i); });
  if (checksum() != want) {
    std::fprintf(stderr, "engine checksum mismatch\n");
    std::abort();
  }

  GridCell cell{profile.name, threads, jobs, 1e300, 1e300, 0.0};
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    pool.parallel_for(jobs, job);
    auto t1 = Clock::now();
    const double pool_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (pool_ms < cell.pool_ms) cell.pool_ms = pool_ms;

    t0 = Clock::now();
    sched.parallel_for(jobs, [&](std::size_t, std::size_t i) { job(i); });
    t1 = Clock::now();
    const double sched_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (sched_ms < cell.sched_ms) cell.sched_ms = sched_ms;
  }
  cell.speedup = cell.pool_ms / cell.sched_ms;
  return cell;
}

// ---------------------------------------------------------------------------
// Section 2: the CARBON-shaped evaluator replay.

struct Workload {
  bcpop::Instance instance;
  std::vector<bcpop::Pricing> pricings;
  std::vector<gp::Tree> trees;
  std::vector<bcpop::HeuristicJob> batch;  ///< one generation's jobs
  int generations = 0;
};

Workload make_workload(bool smoke) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = smoke ? 40 : 120;
  cfg.num_services = smoke ? 5 : 12;
  cfg.seed = 29;
  Workload w{bcpop::Instance(cover::generate(cfg),
                             /*num_owned=*/smoke ? 4 : 12),
             {},
             {},
             {},
             /*generations=*/smoke ? 2 : 6};
  common::Rng rng(7);
  // 20 pricings x 10 heuristics per generation; the pricing pool is shared
  // by every heuristic (and every generation), so most relaxation lookups
  // after the first sweep are cache hits — like CARBON's predator phase.
  // Re-running the SAME batch every generation is the cross-generation
  // memo's best case and bounds what elitism/reinjection can recover.
  const int num_pricings = smoke ? 6 : 20;
  const int num_trees = smoke ? 4 : 10;
  for (int i = 0; i < num_pricings; ++i) {
    w.pricings.push_back(
        ea::random_real_vector(rng, w.instance.price_bounds()));
  }
  for (int t = 0; t < num_trees; ++t) {
    w.trees.push_back(gp::generate_ramped(rng));
  }
  for (const auto& tree : w.trees) {
    for (const auto& p : w.pricings) {
      w.batch.push_back({p, &tree, bcpop::EvalPurpose::kLowerOnly});
    }
  }
  return w;
}

struct EvalRow {
  std::size_t threads;
  const char* sched;
  bool memo_xgen;
  double seconds = 0.0;
  long long evals = 0;
  double evals_per_s = 0.0;
  long long relax_solves = 0;
  long long relax_hits = 0;
  long long xgen_hits = 0;
  long long sched_tasks = 0;
  long long sched_steals = 0;
};

EvalRow run_eval_row(const Workload& w, std::size_t threads,
                     common::SchedKind kind, bool memo) {
  bcpop::ParallelEvaluator::Options opt;
  opt.threads = threads;
  opt.sched = kind;
  opt.memo_xgen = memo;
  bcpop::ParallelEvaluator eval(w.instance, opt);

  const auto t0 = Clock::now();
  for (int g = 0; g < w.generations; ++g) {
    const auto results = eval.evaluate_heuristic_batch(w.batch);
    if (results.size() != w.batch.size()) std::abort();
  }
  const auto t1 = Clock::now();

  EvalRow row;
  row.threads = threads;
  row.sched =
      kind == common::SchedKind::kStealing ? "stealing" : "parallel_for";
  row.memo_xgen = memo;
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.evals = static_cast<long long>(w.batch.size()) * w.generations;
  row.evals_per_s = static_cast<double>(row.evals) / row.seconds;
  row.relax_solves = eval.relaxations_solved();
  row.relax_hits = eval.relaxation_cache_hits();
  row.xgen_hits = eval.score_cache().hits();
  row.sched_tasks = eval.sched_stats().tasks;
  row.sched_steals = eval.sched_stats().steals;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_parallel_eval.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const double rounds_per_us = calibrate_rounds_per_us();
  std::printf("parallel eval bench (%u hardware threads, %.0f rounds/us)\n",
              hw, rounds_per_us);

  // --- Section 1: engine grid ---
  const CostProfile profiles[] = {{"uniform", cost_uniform},
                                  {"skewed", cost_skewed},
                                  {"heavy_tail", cost_heavy_tail}};
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t jobs = smoke ? 64 : 512;
  const int reps = smoke ? 2 : 7;

  std::vector<GridCell> grid;
  for (const CostProfile& profile : profiles) {
    for (const std::size_t t : thread_counts) {
      grid.push_back(run_grid_cell(profile, t, jobs, rounds_per_us, reps));
    }
  }
  std::printf("%-11s %8s %6s %12s %12s %9s\n", "profile", "threads", "jobs",
              "pool ms", "sched ms", "speedup");
  for (const GridCell& c : grid) {
    std::printf("%-11s %8zu %6zu %12.3f %12.3f %8.2fx\n", c.profile,
                c.threads, c.jobs, c.pool_ms, c.sched_ms, c.speedup);
  }

  // --- Section 2: evaluator replay ---
  const Workload w = make_workload(smoke);
  std::printf("\nevaluator replay: %zu jobs/generation x %d generations\n",
              w.batch.size(), w.generations);
  std::vector<EvalRow> rows;
  for (const std::size_t t : thread_counts) {
    for (const common::SchedKind kind :
         {common::SchedKind::kParallelFor, common::SchedKind::kStealing}) {
      for (const bool memo : {false, true}) {
        rows.push_back(run_eval_row(w, t, kind, memo));
      }
    }
  }
  std::printf("%8s %-13s %5s %9s %12s %11s %10s %8s\n", "threads", "sched",
              "memo", "sec", "evals/s", "relax-hits", "xgen-hits", "steals");
  for (const EvalRow& r : rows) {
    std::printf("%8zu %-13s %5d %9.3f %12.0f %11lld %10lld %8lld\n",
                r.threads, r.sched, r.memo_xgen ? 1 : 0, r.seconds,
                r.evals_per_s, r.relax_hits, r.xgen_hits, r.sched_steals);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel_eval\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"grid\": [\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const GridCell& c = grid[i];
    std::fprintf(f,
                 "    {\"profile\": \"%s\", \"threads\": %zu, \"jobs\": %zu, "
                 "\"parallel_for_ms\": %.3f, \"stealing_ms\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 c.profile, c.threads, c.jobs, c.pool_ms, c.sched_ms,
                 c.speedup, i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"evaluator\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EvalRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"sched\": \"%s\", \"memo_xgen\": %s, "
        "\"seconds\": %.4f, \"evals_per_s\": %.0f, \"relax_solves\": %lld, "
        "\"relax_hits\": %lld, \"xgen_hits\": %lld, \"sched_tasks\": %lld, "
        "\"sched_steals\": %lld}%s\n",
        r.threads, r.sched, r.memo_xgen ? "true" : "false", r.seconds,
        r.evals_per_s, r.relax_solves, r.relax_hits, r.xgen_hits,
        r.sched_tasks, r.sched_steals, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

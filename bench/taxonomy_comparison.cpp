// Taxonomy sweep (extension): the paper's Fig. 2 classifies bi-level
// metaheuristics; this bench runs one representative of each implemented
// category on the same instance class under the same budget:
//
//   CARBON          — competitive co-evolution over heuristics (the paper)
//   CARBON-MEMETIC  — + local-search polish of every cover (extension)
//   COBRA           — co-evolution with improvement phases (COE)
//   BIGA            — simultaneous co-evolution, no phases (COE, ancestor)
//   CODBA           — decomposition-based co-evolution (≈ nested, per paper)
//   NESTED-GA       — nested sequential with a fixed heuristic (NSQ/CST)
//
// Reported per algorithm: best %-gap and UL objective, mean over runs.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);
  const std::size_t cls = static_cast<std::size_t>(args.get_int("class", 4));
  const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);

  std::printf("== Taxonomy comparison on %zux%zu "
              "(runs=%zu, UL budget=%lld, LL budget=%lld) ==\n\n",
              inst.num_bundles(), inst.num_services(), cfg.runs,
              cfg.ul_eval_budget, cfg.ll_eval_budget);
  std::printf("%-16s %12s %12s %14s %10s\n", "algorithm", "%-gap",
              "gap stddev", "UL objective", "seconds");

  const std::vector<core::Algorithm> algos = {
      core::Algorithm::kCarbon,        core::Algorithm::kCarbonMemetic,
      core::Algorithm::kCobra,         core::Algorithm::kBiga,
      core::Algorithm::kCodba,         core::Algorithm::kNestedGa,
  };
  for (const core::Algorithm a : algos) {
    const core::CellResult cell = core::run_cell(inst, a, cfg);
    std::printf("%-16s %12.3f %12.3f %14.2f %10.2f\n", core::to_string(a),
                cell.gap.mean, cell.gap.stddev, cell.ul_objective.mean,
                cell.wall_seconds);
  }
  std::printf(
      "\n(expected ordering of the gap column: CARBON variants < NESTED-GA\n"
      " < CODBA < {COBRA, BIGA}; solution-coevolving algorithms cannot\n"
      " transfer lower-level effort across pricings)\n");
  return 0;
}

// Extension bench (paper future work): how CARBON scales with the number of
// followers. For K = 1, 2, 4, 8 customers on the same market, runs CARBON
// and reports total revenue, aggregate %-gap and wall time. The aggregate
// gap should stay small as K grows — one evolved heuristic models all
// customers — while revenue grows roughly linearly with K.

#include <cstdio>

#include "carbon/bcpop/multi_follower.hpp"
#include "carbon/common/cli.hpp"
#include "carbon/common/stopwatch.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const auto ll_budget = args.get_int("ll-budget", 4'000);
  const auto ul_budget = args.get_int("ul-budget", 400);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::printf("== Extension: CARBON on multi-follower markets "
              "(UL budget=%lld, LL budget=%lld) ==\n\n",
              ul_budget, ll_budget);
  std::printf("%10s %14s %14s %12s %10s\n", "followers", "revenue F",
              "rev/follower", "%-gap", "seconds");

  for (const std::size_t k : {1UL, 2UL, 4UL, 8UL}) {
    cover::GeneratorConfig gen;
    gen.num_bundles = 100;
    gen.num_services = 5;
    gen.seed = seed;
    bcpop::Instance market(cover::generate(gen), 10);
    const auto problem = bcpop::make_multi_follower(std::move(market), k,
                                                    seed);
    bcpop::MultiFollowerEvaluator eval(problem);

    core::CarbonConfig cfg;
    cfg.ul_population_size = 30;
    cfg.gp_population_size = 30;
    cfg.ul_eval_budget = ul_budget;
    cfg.ll_eval_budget = ll_budget;
    cfg.heuristic_sample_size = 3;
    cfg.seed = seed;

    common::Stopwatch sw;
    const core::CarbonResult r = core::CarbonSolver(eval, cfg).run();
    std::printf("%10zu %14.2f %14.2f %12.3f %10.2f\n", k,
                r.best_ul_objective,
                r.best_ul_objective / static_cast<double>(k),
                r.best_evaluation.gap_percent, sw.seconds());
  }
  std::printf("\n(aggregate gap staying small as K grows shows one evolved\n"
              " heuristic modelling all followers — the property that lets\n"
              " the competitive scheme extend beyond one follower)\n");
  return 0;
}

// Ablation of CARBON's competition size (DESIGN.md §5.3): each heuristic's
// fitness is its mean %-gap over K pricings sampled from the prey. K = 1 is
// cheap but noisy (a heuristic can win by luck on one easy pricing); large K
// burns lower-level budget on evaluation instead of search. This bench
// sweeps K at a fixed total LL budget.

#include <cstdio>

#include "bench_util.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);
  const std::size_t cls = static_cast<std::size_t>(args.get_int("class", 4));
  const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);

  std::printf("== Ablation: heuristic competition size K on %zux%zu "
              "(runs=%zu, LL budget=%lld) ==\n\n",
              inst.num_bundles(), inst.num_services(), cfg.runs,
              cfg.ll_eval_budget);
  std::printf("%6s %12s %12s %14s\n", "K", "%-gap", "gap stddev",
              "UL objective");

  for (const std::size_t k : {1UL, 2UL, 4UL, 8UL, 16UL}) {
    cfg.heuristic_sample_size = k;
    const auto cell = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
    std::printf("%6zu %12.3f %12.3f %14.2f\n", k, cell.gap.mean,
                cell.gap.stddev, cell.ul_objective.mean);
  }
  std::printf("\n(moderate K is expected to win: K=1 selects lucky\n"
              " heuristics, very large K starves the evolutionary search)\n");
  return 0;
}

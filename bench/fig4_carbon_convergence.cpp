// Reproduces Fig. 4 of the paper: CARBON's average convergence curves on the
// n=500, m=30 instance class — upper-level fitness rising steadily while the
// lower-level %-gap falls steadily (both populations improve together; no
// see-saw). Prints a CSV series averaged over the runs.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "carbon/common/csv.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);
  cfg.record_convergence = true;

  // Paper Fig. 4 uses the n=500, m=30 class (class index 8).
  const std::size_t cls =
      static_cast<std::size_t>(args.get_int("class", 8));
  const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);

  std::printf("== Fig. 4: CARBON convergence on %zux%zu "
              "(runs=%zu, LL budget=%lld) ==\n",
              inst.num_bundles(), inst.num_services(), cfg.runs,
              cfg.ll_eval_budget);

  const core::CellResult cell =
      core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto curve = core::average_convergence(cell.runs);

  common::CsvWriter csv(std::cout);
  csv.header({"generation", "ul_evals", "ll_evals", "best_ul_fitness",
              "best_gap_percent", "pop_best_ul", "pop_mean_gap",
              "gp_unique_fraction", "gp_mean_tree_size"});
  for (const core::ConvergencePoint& pt : curve) {
    csv.integer(pt.generation)
        .integer(pt.ul_evaluations)
        .integer(pt.ll_evaluations)
        .number(pt.best_ul_so_far)
        .number(pt.best_gap_so_far)
        .number(pt.current_best_ul)
        .number(pt.current_mean_gap)
        .number(pt.gp_unique_fraction)
        .number(pt.gp_mean_tree_size);
    csv.end_row();
  }

  // Shape check: best-so-far UL fitness is monotone non-decreasing and the
  // best-so-far gap monotone non-increasing by construction; the paper's
  // claim is about the *population* curves being steady. Report the fraction
  // of generation-to-generation moves in the improving direction.
  std::size_t ul_up = 0;
  std::size_t gap_down = 0;
  for (std::size_t g = 1; g < curve.size(); ++g) {
    ul_up += curve[g].current_best_ul >= curve[g - 1].current_best_ul - 1e-9;
    gap_down +=
        curve[g].current_mean_gap <= curve[g - 1].current_mean_gap + 1e-9;
  }
  if (curve.size() > 1) {
    const double denom = static_cast<double>(curve.size() - 1);
    std::printf("# steady-improvement fractions: UL %.0f%%, gap %.0f%% "
                "(smooth curves expected; compare with Fig. 5's see-saw)\n",
                100.0 * ul_up / denom, 100.0 * gap_down / denom);
  }
  std::printf("# final: best F=%.2f best gap=%.3f%%\n", cell.ul_objective.mean,
              cell.gap.mean);
  return 0;
}

// Reproduces Fig. 5 of the paper: COBRA's average convergence curves on the
// n=500, m=30 class. Both curves show a see-saw shape: each improvement
// phase (upper or lower) deteriorates the other level, because lower-level
// baskets are evolved against one particular pricing and transfer poorly.
// Prints a CSV series (with the phase label) averaged over the runs.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "carbon/common/csv.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);
  cfg.record_convergence = true;

  const std::size_t cls =
      static_cast<std::size_t>(args.get_int("class", 8));
  const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);

  std::printf("== Fig. 5: COBRA convergence on %zux%zu "
              "(runs=%zu, budgets=%lld/%lld) ==\n",
              inst.num_bundles(), inst.num_services(), cfg.runs,
              cfg.ul_eval_budget, cfg.ll_eval_budget);

  const core::CellResult cell =
      core::run_cell(inst, core::Algorithm::kCobra, cfg);
  const auto curve = core::average_convergence(cell.runs);

  common::CsvWriter csv(std::cout);
  csv.header({"generation", "phase", "ul_evals", "ll_evals",
              "best_ul_fitness", "best_gap_percent", "pop_best_ul",
              "pop_mean_gap"});
  for (const core::ConvergencePoint& pt : curve) {
    csv.integer(pt.generation)
        .field(pt.phase)
        .integer(pt.ul_evaluations)
        .integer(pt.ll_evaluations)
        .number(pt.best_ul_so_far)
        .number(pt.best_gap_so_far)
        .number(pt.current_best_ul)
        .number(pt.current_mean_gap);
    csv.end_row();
  }

  // See-saw quantification: count direction reversals of the population
  // curves (a steady curve has ~0 reversals; a see-saw has many).
  std::size_t ul_reversals = 0;
  std::size_t gap_reversals = 0;
  for (std::size_t g = 2; g < curve.size(); ++g) {
    const double d1 =
        curve[g - 1].current_best_ul - curve[g - 2].current_best_ul;
    const double d2 = curve[g].current_best_ul - curve[g - 1].current_best_ul;
    if (d1 * d2 < 0) ++ul_reversals;
    const double e1 =
        curve[g - 1].current_mean_gap - curve[g - 2].current_mean_gap;
    const double e2 = curve[g].current_mean_gap - curve[g - 1].current_mean_gap;
    if (e1 * e2 < 0) ++gap_reversals;
  }
  if (curve.size() > 2) {
    std::printf("# see-saw: %zu UL reversals, %zu gap reversals over %zu "
                "generations (compare with Fig. 4's smooth curves)\n",
                ul_reversals, gap_reversals, curve.size());
  }
  std::printf("# final: best F=%.2f best gap=%.3f%%\n", cell.ul_objective.mean,
              cell.gap.mean);
  return 0;
}

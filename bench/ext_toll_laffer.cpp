// Extension bench: the toll-revenue "Laffer curve". On the two-road network
// (tollable highway vs free back road) sweeps the toll and prints the
// revenue series — linear growth up to the follower's detour threshold,
// then an instant collapse to zero. This is the cleanest possible picture
// of why bi-level objectives are discontinuous and why the leader must model
// the rational reaction (paper §II's discontinuous inducible region, in its
// original application domain).

#include <cstdio>
#include <iostream>

#include "carbon/common/cli.hpp"
#include "carbon/common/csv.hpp"
#include "carbon/toll/toll_problem.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const double base = args.get_double("highway-cost", 2.0);
  const double alt = args.get_double("backroad-cost", 10.0);
  const double demand = args.get_double("demand", 5.0);
  const double step = args.get_double("step", 0.5);

  graph::Digraph g(2);
  const graph::ArcId highway = g.add_arc(0, 1, base);
  g.add_arc(0, 1, alt);
  const toll::Problem problem(std::move(g), {highway}, {{0, 1, demand}},
                              /*toll_cap=*/alt + 5.0);

  std::printf("== Toll Laffer curve (highway %.1f vs back road %.1f, "
              "demand %.1f) ==\n",
              base, alt, demand);
  common::CsvWriter csv(std::cout);
  csv.header({"toll", "revenue", "travel_cost", "highway_flow"});
  double best_toll = 0.0;
  double best_revenue = 0.0;
  for (double t = 0.0; t <= alt + 5.0 + 1e-9; t += step) {
    const toll::Evaluation e = toll::evaluate(problem, std::vector{t});
    csv.number(t).number(e.revenue).number(e.travel_cost).number(
        e.toll_arc_flow[0]);
    csv.end_row();
    if (e.revenue > best_revenue) {
      best_revenue = e.revenue;
      best_toll = t;
    }
  }
  std::printf("# peak: toll %.2f -> revenue %.2f; the cliff sits at toll "
              "%.2f (= detour advantage)\n",
              best_toll, best_revenue, alt - base);
  return 0;
}

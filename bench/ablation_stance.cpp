// Ablation: optimistic vs pessimistic leader stance (paper §II).
//
// The paper adopts the optimistic convention ("we place our work in the
// optimistic case"). This bench quantifies what the pessimistic alternative
// costs: each pricing is scored by its worst revenue across the top-E
// follower models, so the leader only keeps pricings that are robust to
// follower-model uncertainty. Expected: pessimistic revenue <= optimistic
// revenue (it is a lower envelope), with the difference shrinking as the
// predator population converges.

#include <cstdio>

#include "bench_util.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const core::ExperimentConfig base = bench::experiment_config_from_cli(args);
  const std::size_t cls = static_cast<std::size_t>(args.get_int("class", 4));
  const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);

  std::printf("== Ablation: leader stance on %zux%zu "
              "(runs=%zu, LL budget=%lld) ==\n\n",
              inst.num_bundles(), inst.num_services(), base.runs,
              base.ll_eval_budget);
  std::printf("%-22s %14s %12s\n", "stance", "revenue F", "%-gap");

  const auto run_stance = [&](core::Stance stance, std::size_t ensemble) {
    common::RunningStats f_stats;
    common::RunningStats gap_stats;
    for (std::size_t r = 0; r < base.runs; ++r) {
      core::CarbonConfig cfg;
      cfg.ul_population_size = base.population_size;
      cfg.gp_population_size = base.population_size;
      cfg.ul_eval_budget = base.ul_eval_budget;
      cfg.ll_eval_budget = base.ll_eval_budget;
      cfg.heuristic_sample_size = base.heuristic_sample_size;
      cfg.stance = stance;
      cfg.follower_ensemble = ensemble;
      cfg.seed = base.base_seed + r;
      const auto result = core::CarbonSolver(inst, cfg).run();
      f_stats.add(result.best_ul_objective);
      gap_stats.add(result.best_gap);
    }
    return std::pair{f_stats.mean(), gap_stats.mean()};
  };

  const auto [f_opt, g_opt] = run_stance(core::Stance::kOptimistic, 1);
  std::printf("%-22s %14.2f %12.3f\n", "optimistic (paper)", f_opt, g_opt);
  for (const std::size_t e : {2UL, 3UL, 5UL}) {
    const auto [f_pes, g_pes] = run_stance(core::Stance::kPessimistic, e);
    std::printf("pessimistic (E=%zu)%5s %14.2f %12.3f\n", e, "", f_pes,
                g_pes);
  }
  std::printf("\n(pessimistic revenue is a lower envelope over follower\n"
              " models: more conservative, never higher in expectation)\n");
  return 0;
}

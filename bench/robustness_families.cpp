// Robustness sweep (extension): CARBON vs COBRA across six instance
// families that stress different aspects of the lower-level problem —
// constraint tightness, matrix density, and cost/content correlation.
// The paper evaluates only dense Chu-Beasley-style classes; this bench shows
// the competitive scheme's advantage is not an artifact of one family.

#include <cstdio>

#include "bench_util.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);

  std::printf("== Robustness: %%-gap across instance families "
              "(runs=%zu, LL budget=%lld) ==\n\n",
              cfg.runs, cfg.ll_eval_budget);
  std::printf("%-14s %10s %10s %8s   %s\n", "family", "CARBON", "COBRA",
              "ratio", "description");

  for (const cover::NamedFamily& fam : cover::instance_families()) {
    const bcpop::Instance inst(cover::generate(fam.config),
                               fam.config.num_bundles / 10);
    const auto carbon = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
    const auto cobra = core::run_cell(inst, core::Algorithm::kCobra, cfg);
    std::printf("%-14s %10.3f %10.3f %7.1fx   %s\n", fam.name,
                carbon.gap.mean, cobra.gap.mean,
                cobra.gap.mean / std::max(carbon.gap.mean, 1e-9),
                fam.description);
  }
  std::printf("\n(CARBON should dominate on every family; the evolved\n"
              " follower model adapts to the family's structure)\n");
  return 0;
}

// Ablation of CARBON's key design choice (paper §V-B discussion): the
// predator population minimizes the lower-level %-GAP, not the raw LL
// objective value. The raw value is incomparable across the different LL
// instances induced by different pricings, so selecting heuristics on it
// rewards whatever pricing happened to be cheap — the gap normalizes this
// away. This bench runs CARBON with both fitness definitions side by side.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const core::ExperimentConfig cfg = bench::experiment_config_from_cli(args);

  std::printf("== Ablation: predator fitness = %%-gap (paper) vs raw LL "
              "value (runs=%zu, LL budget=%lld) ==\n\n",
              cfg.runs, cfg.ll_eval_budget);
  std::printf("%6s %6s | %12s %12s | %8s\n", "n", "m", "gap-fitness",
              "value-fitness", "p-value");

  // Three representative classes (one per size).
  for (const std::size_t cls : {0UL, 4UL, 8UL}) {
    const bcpop::Instance inst = bcpop::make_paper_bcpop(cls);
    const core::CellResult gap_cell =
        core::run_cell(inst, core::Algorithm::kCarbon, cfg);
    const core::CellResult value_cell =
        core::run_cell(inst, core::Algorithm::kCarbonValueFitness, cfg);

    std::vector<double> g1;
    std::vector<double> g2;
    for (const auto& r : gap_cell.runs) g1.push_back(r.best_gap);
    for (const auto& r : value_cell.runs) g2.push_back(r.best_gap);

    std::printf("%6zu %6zu | %12.3f %12.3f | %8.4f\n", inst.num_bundles(),
                inst.num_services(), gap_cell.gap.mean, value_cell.gap.mean,
                common::rank_sum_test(g1, g2).p_value);
  }
  std::printf("\n(lower %%-gap is better; the gap-fitness variant should "
              "dominate or match)\n");
  return 0;
}

// Microbenchmark of the sparse revised-simplex kernels vs the dense
// reference kernels (SimplexOptions::use_dense_kernels).
//
// Part 1 — kernel grid: for relaxation-shaped problems (n = 4m covering
// columns, >= rows) across an m x density grid, times the two inner loops
// the solver spends its life in — the pricing sweep (column_dot over every
// column) and FTRAN column formation (B^-1 A_j) — against dense columns
// materialized exactly as the pre-sparse lp::Problem stored them. The loops
// here mirror SimplexSolver's kernels over the same storage; both variants
// compute bit-identical results (asserted).
//
// Part 2 — end-to-end: replays eval_core's hot path (warm-started
// cover::solve_relaxation_lp with per-pricing objective swaps) on generated
// covering instances, dense vs sparse mode, asserting bit-identical
// iteration counts and objectives.
//
// Part 3 — evaluator replay: simulates the UL population walk the
// evaluator actually serves (a population of pricings mutating
// multiplicatively across generations) through the ProblemFamily rebind
// path, comparing the fixed-baseline warm start (lp_warm=baseline) against
// the deterministic nearest-pricing BasisPool (lp_warm=pool, including the
// pool's own select/insert overhead). Reports pivots and us/solve per mode;
// the optimal objective VALUES must agree (alternate optimal bases may
// differ — that is the documented pool golden axis).
//
// Usage: micro_lp_simplex [--smoke] [output.json]
//   Prints tables to stdout and writes machine-readable results to the JSON
//   file (default: BENCH_lp_simplex.json). --smoke shrinks the grid and
//   repetition counts to a sub-second run for the bench-smoke ctest label.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "carbon/bcpop/basis_pool.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/lp/simplex.hpp"

namespace {

using namespace carbon;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Covering-relaxation-shaped LP: n columns in [0,1], m >= rows, integer
/// coefficients, nonzero with probability `density`.
lp::Problem make_relaxation_shaped(common::Rng& rng, std::size_t m,
                                   std::size_t n, double density) {
  lp::Problem p;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 1000.0), 0.0, 1.0);
  }
  std::vector<lp::RowEntry> entries;
  for (std::size_t i = 0; i < m; ++i) {
    entries.clear();
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!rng.chance(density)) continue;
      const double q = std::floor(rng.uniform(1.0, 1000.0));
      entries.push_back({j, q});
      total += q;
    }
    p.add_constraint(entries, lp::RowSense::kGreaterEqual, 0.25 * total);
  }
  return p;
}

/// Dense column materialization (the pre-sparse storage layout).
std::vector<std::vector<double>> densify(const lp::Problem& p) {
  std::vector<std::vector<double>> cols(p.num_vars(),
                                        std::vector<double>(p.num_rows(), 0.0));
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    const lp::SparseColumn& col = p.columns[j];
    for (std::size_t k = 0; k < col.nnz(); ++k) {
      cols[j][static_cast<std::size_t>(col.rows[k])] = col.values[k];
    }
  }
  return cols;
}

struct KernelCase {
  std::size_t m, n;
  double density;
  double nnz_frac;  ///< measured nonzero fraction of the matrix
  double pricing_dense_ns;   ///< full pricing sweep, per column
  double pricing_sparse_ns;
  double pricing_speedup;
  double ftran_dense_ns;     ///< one B^-1 A_j, per column
  double ftran_sparse_ns;
  double ftran_speedup;
};

KernelCase run_kernel_case(common::Rng& rng, std::size_t m, std::size_t n,
                           double density, bool smoke) {
  const lp::Problem p = make_relaxation_shaped(rng, m, n, density);
  const auto dense_cols = densify(p);

  std::vector<double> y(m);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);
  // Stand-in B^-1 (row-major, like the solver's DenseMatrix).
  std::vector<double> binv(m * m);
  for (auto& v : binv) v = rng.uniform(-1.0, 1.0);

  const std::size_t target_macs = smoke ? 2'000'000 : 400'000'000;
  const std::size_t sweep_reps =
      std::max<std::size_t>(3, target_macs / std::max<std::size_t>(1, n * m));

  double sink = 0.0;

  // Pricing sweep, dense: every column is an m-length dot product.
  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < sweep_reps; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto& col = dense_cols[j];
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) acc += col[i] * y[i];
      sink += acc;
    }
  }
  const double dense_sweep_s = seconds_since(t0);

  // Pricing sweep, sparse: only stored nonzeros. Bit-identical accumulation.
  double check = 0.0;
  const auto t1 = Clock::now();
  for (std::size_t r = 0; r < sweep_reps; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      const lp::SparseColumn& col = p.columns[j];
      double acc = 0.0;
      for (std::size_t k = 0; k < col.nnz(); ++k) {
        acc += col.values[k] * y[static_cast<std::size_t>(col.rows[k])];
      }
      check += acc;
    }
  }
  const double sparse_sweep_s = seconds_since(t1);
  sink += check;

  // FTRAN: alpha = B^-1 A_j for a rotating set of columns.
  const std::size_t ftran_reps = std::max<std::size_t>(
      3, target_macs / std::max<std::size_t>(1, m * m * 8));
  std::vector<double> alpha(m);
  const auto t2 = Clock::now();
  for (std::size_t r = 0; r < ftran_reps; ++r) {
    for (std::size_t j = 0; j < 8; ++j) {
      const auto& col = dense_cols[(r * 8 + j) % n];
      for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        const double* brow = binv.data() + i * m;
        for (std::size_t c = 0; c < m; ++c) acc += brow[c] * col[c];
        alpha[i] = acc;
      }
      sink += alpha[r % m];
    }
  }
  const double dense_ftran_s = seconds_since(t2);

  std::vector<double> alpha2(m);
  const auto t3 = Clock::now();
  for (std::size_t r = 0; r < ftran_reps; ++r) {
    for (std::size_t j = 0; j < 8; ++j) {
      const lp::SparseColumn& col = p.columns[(r * 8 + j) % n];
      for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        const double* brow = binv.data() + i * m;
        for (std::size_t k = 0; k < col.nnz(); ++k) {
          acc += brow[static_cast<std::size_t>(col.rows[k])] * col.values[k];
        }
        alpha2[i] = acc;
      }
      sink += alpha2[r % m];
    }
  }
  const double sparse_ftran_s = seconds_since(t3);

  // Bitwise agreement of the final FTRAN column (same (r, j) sequence).
  for (std::size_t i = 0; i < m; ++i) {
    if (alpha[i] != alpha2[i]) {
      std::fprintf(stderr, "kernel mismatch at m=%zu density=%.2f row %zu\n",
                   m, density, i);
      std::abort();
    }
  }
  if (sink == 0.12345) std::printf("# sink %f\n", sink);

  KernelCase c;
  c.m = m;
  c.n = n;
  c.density = density;
  c.nnz_frac = static_cast<double>(p.num_nonzeros()) /
               static_cast<double>(n * m);
  const double sweep_cols =
      static_cast<double>(sweep_reps) * static_cast<double>(n);
  c.pricing_dense_ns = dense_sweep_s * 1e9 / sweep_cols;
  c.pricing_sparse_ns = sparse_sweep_s * 1e9 / sweep_cols;
  c.pricing_speedup = c.pricing_dense_ns / c.pricing_sparse_ns;
  const double ftran_cols = static_cast<double>(ftran_reps) * 8.0;
  c.ftran_dense_ns = dense_ftran_s * 1e9 / ftran_cols;
  c.ftran_sparse_ns = sparse_ftran_s * 1e9 / ftran_cols;
  c.ftran_speedup = c.ftran_dense_ns / c.ftran_sparse_ns;
  return c;
}

struct EndToEndCase {
  std::size_t m, n;  ///< rows (services), columns (bundles)
  double density;
  std::size_t solves;
  double dense_us;   ///< per warm-started solve
  double sparse_us;
  double speedup;
  long long iterations;  ///< total pivots (identical in both modes)
};

EndToEndCase run_end_to_end_case(std::size_t services, std::size_t bundles,
                                 double density, bool smoke) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = bundles;
  cfg.num_services = services;
  cfg.density = density;
  cfg.seed = 1000 + services + bundles;
  const cover::Instance inst = cover::generate(cfg);
  lp::Problem p = cover::build_relaxation_lp(inst);

  // Baseline basis, exactly as EvalContext pins it at construction.
  lp::Basis baseline;
  {
    const lp::Solution sol = lp::solve(p, {}, &baseline);
    if (!sol.optimal()) {
      std::fprintf(stderr, "baseline solve failed\n");
      std::abort();
    }
  }

  // Deterministic batch of leader pricings: multiplicative perturbations of
  // the base costs, the shape of load the EA's price mutations produce (and
  // the regime the fixed warm-start basis is designed for).
  common::Rng rng(99 + services);
  const std::size_t num_pricings = smoke ? 3 : 24;
  std::vector<std::vector<double>> pricings(num_pricings);
  for (auto& pr : pricings) {
    pr.resize(bundles);
    for (std::size_t j = 0; j < bundles; ++j) {
      pr[j] = inst.cost(j) * rng.uniform(0.5, 1.5);
    }
  }

  lp::SimplexOptions sparse_opts;
  sparse_opts.max_iterations = 400'000;  // headroom for degenerate stalls
  lp::SimplexOptions dense_opts = sparse_opts;
  dense_opts.use_dense_kernels = true;

  long long sparse_iters = 0;
  long long dense_iters = 0;
  double sparse_obj = 0.0;
  double dense_obj = 0.0;
  lp::Basis scratch;

  const auto run_mode = [&](const lp::SimplexOptions& opts, long long& iters,
                            double& obj_acc) {
    const auto t0 = Clock::now();
    for (const auto& pr : pricings) {
      for (std::size_t j = 0; j < bundles; ++j) p.objective[j] = pr[j];
      scratch = baseline;
      const cover::Relaxation relax = cover::solve_relaxation_lp(
          p, opts, scratch.empty() ? nullptr : &scratch);
      iters += relax.stats.iterations;
      obj_acc += relax.lower_bound;
    }
    return seconds_since(t0);
  };

  const double dense_s = run_mode(dense_opts, dense_iters, dense_obj);
  const double sparse_s = run_mode(sparse_opts, sparse_iters, sparse_obj);

  if (sparse_iters != dense_iters || sparse_obj != dense_obj) {
    std::fprintf(stderr,
                 "end-to-end mismatch at m=%zu n=%zu density=%.2f "
                 "(iters %lld vs %lld)\n",
                 services, bundles, density, sparse_iters, dense_iters);
    std::abort();
  }

  EndToEndCase c;
  c.m = services;
  c.n = bundles;
  c.density = density;
  c.solves = num_pricings;
  c.dense_us = dense_s * 1e6 / static_cast<double>(num_pricings);
  c.sparse_us = sparse_s * 1e6 / static_cast<double>(num_pricings);
  c.speedup = c.dense_us / c.sparse_us;
  c.iterations = sparse_iters;
  return c;
}

struct ReplayCase {
  std::size_t m, n;  ///< rows (services), columns (bundles)
  double density;
  std::size_t population, generations, solves;
  double baseline_us;  ///< per solve, fixed-baseline warm start
  double pool_us;      ///< per solve, BasisPool warm start (incl. overhead)
  double speedup;
  long long baseline_pivots;
  long long pool_pivots;
  long long pool_hits;     ///< solves served from a pooled basis
  long long pool_rejects;  ///< pooled bases rejected -> baseline re-solve
};

ReplayCase run_replay_case(std::size_t services, std::size_t bundles,
                           double density, bool smoke) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = bundles;
  cfg.num_services = services;
  cfg.density = density;
  cfg.seed = 7000 + services + bundles;
  const cover::Instance inst = cover::generate(cfg);
  lp::ProblemFamily family(cover::build_relaxation_lp(inst));
  lp::SolveScratch scratch;

  lp::SimplexOptions opts;
  opts.max_iterations = 400'000;

  // Baseline basis, exactly as RelaxationFamily pins it at construction.
  lp::Basis baseline;
  {
    lp::Basis b;
    const lp::Solution sol = lp::solve(family, opts, &b, &scratch);
    if (!sol.optimal()) {
      std::fprintf(stderr, "replay baseline solve failed\n");
      std::abort();
    }
    baseline = b;
  }

  // The UL population walk, shaped like the load the evaluator actually
  // serves: the leader re-prices only an OWNED prefix of the bundles (the
  // pricing-prefix convention), and polynomial mutation touches ~1/n of the
  // genes per offspring — so each generation every member drifts in a
  // couple of owned coordinates, not everywhere. That sparse locality is
  // exactly what nearest-pricing selection exploits: a member's own parent
  // is far closer than any other member.
  const std::size_t population = smoke ? 4 : 24;
  const std::size_t generations = smoke ? 2 : 8;
  const std::size_t owned = std::max<std::size_t>(4, bundles / 5);
  common::Rng rng(31 + services);
  std::vector<std::vector<double>> pop(population);
  for (auto& pr : pop) {
    pr.resize(bundles);
    for (std::size_t j = 0; j < bundles; ++j) pr[j] = inst.cost(j);
    for (std::size_t j = 0; j < owned; ++j) pr[j] *= rng.uniform(0.5, 1.5);
  }
  const double gene_rate = 2.0 / static_cast<double>(owned);
  std::vector<std::vector<std::vector<double>>> walk;  // per generation
  walk.push_back(pop);
  for (std::size_t g = 1; g < generations; ++g) {
    for (auto& pr : pop) {
      for (std::size_t j = 0; j < owned; ++j) {
        if (rng.chance(gene_rate)) pr[j] *= rng.uniform(0.8, 1.2);
      }
    }
    walk.push_back(pop);
  }

  long long baseline_pivots = 0;
  long long pool_pivots = 0;
  long long pool_hits = 0;
  long long pool_rejects = 0;
  double baseline_obj = 0.0;
  double pool_obj = 0.0;
  lp::Basis basis;

  // Mode 1: the fixed-baseline scheme (lp_warm=baseline).
  const auto t0 = Clock::now();
  for (const auto& gen : walk) {
    for (const auto& pr : gen) {
      family.rebind(pr);
      basis = baseline;
      const cover::Relaxation relax =
          cover::solve_relaxation_lp(family, opts, &basis, &scratch);
      baseline_pivots += relax.stats.iterations;
      baseline_obj += relax.lower_bound;
    }
  }
  const double baseline_s = seconds_since(t0);

  // Mode 2: the nearest-pricing pool (lp_warm=pool), fallback to the
  // baseline basis on an empty pool or a rejected warm start — the exact
  // discipline of the pool-mode evaluator, overhead included.
  // Sized like the solvers size it: two generations of the population must
  // fit, or mid-generation LRU evictions reap exactly the parent bases the
  // not-yet-re-evaluated members are about to warm-start from, and the pool
  // degenerates to cousin-basis warm starts (~the baseline's pivot count).
  bcpop::BasisPool pool(2 * population);
  const auto t1 = Clock::now();
  for (const auto& gen : walk) {
    for (const auto& pr : gen) {
      family.rebind(pr);
      const lp::Basis* warm = pool.select(pr);
      const bool from_pool = warm != nullptr;
      basis = from_pool ? *warm : baseline;
      cover::Relaxation relax =
          cover::solve_relaxation_lp(family, opts, &basis, &scratch);
      if (from_pool && relax.stats.warm_start_rejected) {
        ++pool_rejects;
        basis = baseline;
        relax = cover::solve_relaxation_lp(family, opts, &basis, &scratch);
      } else if (from_pool) {
        ++pool_hits;
      }
      pool_pivots += relax.stats.iterations;
      pool_obj += relax.lower_bound;
      if (relax.stats.basis_saved) pool.insert(pr, basis);
    }
  }
  const double pool_s = seconds_since(t1);

  // Optimal VALUES must agree (the bases may legitimately differ).
  const double denom = std::max(1.0, std::abs(baseline_obj));
  if (std::abs(baseline_obj - pool_obj) / denom > 1e-9) {
    std::fprintf(stderr,
                 "replay objective mismatch at m=%zu n=%zu (%.12g vs %.12g)\n",
                 services, bundles, baseline_obj, pool_obj);
    std::abort();
  }

  ReplayCase c;
  c.m = services;
  c.n = bundles;
  c.density = density;
  c.population = population;
  c.generations = generations;
  c.solves = population * generations;
  c.baseline_us = baseline_s * 1e6 / static_cast<double>(c.solves);
  c.pool_us = pool_s * 1e6 / static_cast<double>(c.solves);
  c.speedup = c.baseline_us / c.pool_us;
  c.baseline_pivots = baseline_pivots;
  c.pool_pivots = pool_pivots;
  c.pool_hits = pool_hits;
  c.pool_rejects = pool_rejects;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_lp_simplex.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }

  common::Rng rng(424242);

  // Kernel grid: relaxation shape n = 4m across the density ladder. The
  // paper-shaped regime is the sparse end (most bundles cover few services).
  std::vector<KernelCase> kernels;
  const std::vector<std::size_t> kernel_ms =
      smoke ? std::vector<std::size_t>{50}
            : std::vector<std::size_t>{50, 200, 400};
  const std::vector<double> densities =
      smoke ? std::vector<double>{0.10} : std::vector<double>{0.05, 0.10, 0.25, 0.75};
  for (const std::size_t m : kernel_ms) {
    for (const double d : densities) {
      kernels.push_back(run_kernel_case(rng, m, 4 * m, d, smoke));
    }
  }

  std::printf("kernel grid (pricing sweep + FTRAN, per column)\n");
  std::printf("%5s %6s %8s %8s | %11s %11s %8s | %11s %11s %8s\n", "m", "n",
              "density", "nnz", "price dn/ns", "price sp/ns", "speedup",
              "ftran dn/ns", "ftran sp/ns", "speedup");
  for (const KernelCase& c : kernels) {
    std::printf(
        "%5zu %6zu %8.2f %8.3f | %11.1f %11.1f %7.2fx | %11.1f %11.1f "
        "%7.2fx\n",
        c.m, c.n, c.density, c.nnz_frac, c.pricing_dense_ns,
        c.pricing_sparse_ns, c.pricing_speedup, c.ftran_dense_ns,
        c.ftran_sparse_ns, c.ftran_speedup);
  }

  // End-to-end: eval_core's warm-started relaxation path on generated
  // covering instances (services = LP rows, bundles = LP columns).
  std::vector<EndToEndCase> e2e;
  struct Shape {
    std::size_t services, bundles;
    double density;
  };
  const std::vector<Shape> shapes =
      smoke ? std::vector<Shape>{{20, 80, 0.10}}
            : std::vector<Shape>{{50, 400, 0.10},  {200, 800, 0.05},
                                 {200, 800, 0.10}, {200, 800, 0.25},
                                 {400, 1600, 0.10}};
  for (const Shape& s : shapes) {
    std::fprintf(stderr, "# end-to-end m=%zu n=%zu density=%.2f...\n",
                 s.services, s.bundles, s.density);
    e2e.push_back(run_end_to_end_case(s.services, s.bundles, s.density, smoke));
  }

  std::printf("\nend-to-end warm-started solve_relaxation batch\n");
  std::printf("%5s %6s %8s %7s %8s | %12s %12s %8s\n", "m", "n", "density",
              "solves", "pivots", "dense us/sv", "sparse us/sv", "speedup");
  for (const EndToEndCase& c : e2e) {
    std::printf("%5zu %6zu %8.2f %7zu %8lld | %12.1f %12.1f %7.2fx\n", c.m,
                c.n, c.density, c.solves, c.iterations, c.dense_us,
                c.sparse_us, c.speedup);
  }

  // Evaluator replay: baseline vs pool warm starts over a population walk.
  std::vector<ReplayCase> replay;
  // Table III-shaped classes (services x bundles like the paper's
  // generated instances) plus one LP-bench-sized shape.
  const std::vector<Shape> replay_shapes =
      smoke ? std::vector<Shape>{{20, 80, 0.10}}
            : std::vector<Shape>{{5, 100, 0.10},
                                 {10, 250, 0.10},
                                 {30, 500, 0.10},
                                 {50, 400, 0.10},
                                 {200, 800, 0.05}};
  for (const Shape& s : replay_shapes) {
    std::fprintf(stderr, "# evaluator replay m=%zu n=%zu density=%.2f...\n",
                 s.services, s.bundles, s.density);
    replay.push_back(run_replay_case(s.services, s.bundles, s.density, smoke));
  }

  std::printf("\nevaluator replay: baseline vs pool warm start\n");
  std::printf("%5s %6s %8s %7s | %9s %9s | %12s %12s %8s | %6s %7s\n", "m",
              "n", "density", "solves", "base piv", "pool piv", "base us/sv",
              "pool us/sv", "speedup", "hits", "rejects");
  for (const ReplayCase& c : replay) {
    std::printf(
        "%5zu %6zu %8.2f %7zu | %9lld %9lld | %12.1f %12.1f %7.2fx | %6lld "
        "%7lld\n",
        c.m, c.n, c.density, c.solves, c.baseline_pivots, c.pool_pivots,
        c.baseline_us, c.pool_us, c.speedup, c.pool_hits, c.pool_rejects);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"lp_simplex\",\n  \"kernel_grid\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelCase& c = kernels[i];
    std::fprintf(
        f,
        "    {\"m\": %zu, \"n\": %zu, \"density\": %.3f, \"nnz_frac\": %.4f, "
        "\"pricing_dense_ns_per_col\": %.2f, \"pricing_sparse_ns_per_col\": "
        "%.2f, \"pricing_speedup\": %.3f, \"ftran_dense_ns_per_col\": %.2f, "
        "\"ftran_sparse_ns_per_col\": %.2f, \"ftran_speedup\": %.3f}%s\n",
        c.m, c.n, c.density, c.nnz_frac, c.pricing_dense_ns,
        c.pricing_sparse_ns, c.pricing_speedup, c.ftran_dense_ns,
        c.ftran_sparse_ns, c.ftran_speedup,
        i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndCase& c = e2e[i];
    std::fprintf(
        f,
        "    {\"services_m\": %zu, \"bundles_n\": %zu, \"density\": %.3f, "
        "\"solves\": %zu, \"total_pivots\": %lld, \"dense_us_per_solve\": "
        "%.2f, \"sparse_us_per_solve\": %.2f, \"speedup\": %.3f}%s\n",
        c.m, c.n, c.density, c.solves, c.iterations, c.dense_us, c.sparse_us,
        c.speedup, i + 1 < e2e.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"evaluator_replay\": [\n");
  for (std::size_t i = 0; i < replay.size(); ++i) {
    const ReplayCase& c = replay[i];
    std::fprintf(
        f,
        "    {\"services_m\": %zu, \"bundles_n\": %zu, \"density\": %.3f, "
        "\"population\": %zu, \"generations\": %zu, \"solves\": %zu, "
        "\"baseline_pivots\": %lld, \"pool_pivots\": %lld, "
        "\"baseline_us_per_solve\": %.2f, \"pool_us_per_solve\": %.2f, "
        "\"speedup\": %.3f, \"pool_hits\": %lld, \"pool_rejects\": %lld}%s\n",
        c.m, c.n, c.density, c.population, c.generations, c.solves,
        c.baseline_pivots, c.pool_pivots, c.baseline_us, c.pool_us, c.speedup,
        c.pool_hits, c.pool_rejects, i + 1 < replay.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

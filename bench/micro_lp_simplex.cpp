// Microbenchmark of the sparse revised-simplex kernels vs the dense
// reference kernels (SimplexOptions::use_dense_kernels).
//
// Part 1 — kernel grid: for relaxation-shaped problems (n = 4m covering
// columns, >= rows) across an m x density grid, times the two inner loops
// the solver spends its life in — the pricing sweep (column_dot over every
// column) and FTRAN column formation (B^-1 A_j) — against dense columns
// materialized exactly as the pre-sparse lp::Problem stored them. The loops
// here mirror SimplexSolver's kernels over the same storage; both variants
// compute bit-identical results (asserted).
//
// Part 2 — end-to-end: replays eval_core's hot path (warm-started
// cover::solve_relaxation_lp with per-pricing objective swaps) on generated
// covering instances, dense vs sparse mode, asserting bit-identical
// iteration counts and objectives.
//
// Usage: micro_lp_simplex [--smoke] [output.json]
//   Prints tables to stdout and writes machine-readable results to the JSON
//   file (default: BENCH_lp_simplex.json). --smoke shrinks the grid and
//   repetition counts to a sub-second run for the bench-smoke ctest label.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/lp/simplex.hpp"

namespace {

using namespace carbon;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Covering-relaxation-shaped LP: n columns in [0,1], m >= rows, integer
/// coefficients, nonzero with probability `density`.
lp::Problem make_relaxation_shaped(common::Rng& rng, std::size_t m,
                                   std::size_t n, double density) {
  lp::Problem p;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 1000.0), 0.0, 1.0);
  }
  std::vector<lp::RowEntry> entries;
  for (std::size_t i = 0; i < m; ++i) {
    entries.clear();
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!rng.chance(density)) continue;
      const double q = std::floor(rng.uniform(1.0, 1000.0));
      entries.push_back({j, q});
      total += q;
    }
    p.add_constraint(entries, lp::RowSense::kGreaterEqual, 0.25 * total);
  }
  return p;
}

/// Dense column materialization (the pre-sparse storage layout).
std::vector<std::vector<double>> densify(const lp::Problem& p) {
  std::vector<std::vector<double>> cols(p.num_vars(),
                                        std::vector<double>(p.num_rows(), 0.0));
  for (std::size_t j = 0; j < p.num_vars(); ++j) {
    const lp::SparseColumn& col = p.columns[j];
    for (std::size_t k = 0; k < col.nnz(); ++k) {
      cols[j][static_cast<std::size_t>(col.rows[k])] = col.values[k];
    }
  }
  return cols;
}

struct KernelCase {
  std::size_t m, n;
  double density;
  double nnz_frac;  ///< measured nonzero fraction of the matrix
  double pricing_dense_ns;   ///< full pricing sweep, per column
  double pricing_sparse_ns;
  double pricing_speedup;
  double ftran_dense_ns;     ///< one B^-1 A_j, per column
  double ftran_sparse_ns;
  double ftran_speedup;
};

KernelCase run_kernel_case(common::Rng& rng, std::size_t m, std::size_t n,
                           double density, bool smoke) {
  const lp::Problem p = make_relaxation_shaped(rng, m, n, density);
  const auto dense_cols = densify(p);

  std::vector<double> y(m);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);
  // Stand-in B^-1 (row-major, like the solver's DenseMatrix).
  std::vector<double> binv(m * m);
  for (auto& v : binv) v = rng.uniform(-1.0, 1.0);

  const std::size_t target_macs = smoke ? 2'000'000 : 400'000'000;
  const std::size_t sweep_reps =
      std::max<std::size_t>(3, target_macs / std::max<std::size_t>(1, n * m));

  double sink = 0.0;

  // Pricing sweep, dense: every column is an m-length dot product.
  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < sweep_reps; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto& col = dense_cols[j];
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) acc += col[i] * y[i];
      sink += acc;
    }
  }
  const double dense_sweep_s = seconds_since(t0);

  // Pricing sweep, sparse: only stored nonzeros. Bit-identical accumulation.
  double check = 0.0;
  const auto t1 = Clock::now();
  for (std::size_t r = 0; r < sweep_reps; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      const lp::SparseColumn& col = p.columns[j];
      double acc = 0.0;
      for (std::size_t k = 0; k < col.nnz(); ++k) {
        acc += col.values[k] * y[static_cast<std::size_t>(col.rows[k])];
      }
      check += acc;
    }
  }
  const double sparse_sweep_s = seconds_since(t1);
  sink += check;

  // FTRAN: alpha = B^-1 A_j for a rotating set of columns.
  const std::size_t ftran_reps = std::max<std::size_t>(
      3, target_macs / std::max<std::size_t>(1, m * m * 8));
  std::vector<double> alpha(m);
  const auto t2 = Clock::now();
  for (std::size_t r = 0; r < ftran_reps; ++r) {
    for (std::size_t j = 0; j < 8; ++j) {
      const auto& col = dense_cols[(r * 8 + j) % n];
      for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        const double* brow = binv.data() + i * m;
        for (std::size_t c = 0; c < m; ++c) acc += brow[c] * col[c];
        alpha[i] = acc;
      }
      sink += alpha[r % m];
    }
  }
  const double dense_ftran_s = seconds_since(t2);

  std::vector<double> alpha2(m);
  const auto t3 = Clock::now();
  for (std::size_t r = 0; r < ftran_reps; ++r) {
    for (std::size_t j = 0; j < 8; ++j) {
      const lp::SparseColumn& col = p.columns[(r * 8 + j) % n];
      for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        const double* brow = binv.data() + i * m;
        for (std::size_t k = 0; k < col.nnz(); ++k) {
          acc += brow[static_cast<std::size_t>(col.rows[k])] * col.values[k];
        }
        alpha2[i] = acc;
      }
      sink += alpha2[r % m];
    }
  }
  const double sparse_ftran_s = seconds_since(t3);

  // Bitwise agreement of the final FTRAN column (same (r, j) sequence).
  for (std::size_t i = 0; i < m; ++i) {
    if (alpha[i] != alpha2[i]) {
      std::fprintf(stderr, "kernel mismatch at m=%zu density=%.2f row %zu\n",
                   m, density, i);
      std::abort();
    }
  }
  if (sink == 0.12345) std::printf("# sink %f\n", sink);

  KernelCase c;
  c.m = m;
  c.n = n;
  c.density = density;
  c.nnz_frac = static_cast<double>(p.num_nonzeros()) /
               static_cast<double>(n * m);
  const double sweep_cols =
      static_cast<double>(sweep_reps) * static_cast<double>(n);
  c.pricing_dense_ns = dense_sweep_s * 1e9 / sweep_cols;
  c.pricing_sparse_ns = sparse_sweep_s * 1e9 / sweep_cols;
  c.pricing_speedup = c.pricing_dense_ns / c.pricing_sparse_ns;
  const double ftran_cols = static_cast<double>(ftran_reps) * 8.0;
  c.ftran_dense_ns = dense_ftran_s * 1e9 / ftran_cols;
  c.ftran_sparse_ns = sparse_ftran_s * 1e9 / ftran_cols;
  c.ftran_speedup = c.ftran_dense_ns / c.ftran_sparse_ns;
  return c;
}

struct EndToEndCase {
  std::size_t m, n;  ///< rows (services), columns (bundles)
  double density;
  std::size_t solves;
  double dense_us;   ///< per warm-started solve
  double sparse_us;
  double speedup;
  long long iterations;  ///< total pivots (identical in both modes)
};

EndToEndCase run_end_to_end_case(std::size_t services, std::size_t bundles,
                                 double density, bool smoke) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = bundles;
  cfg.num_services = services;
  cfg.density = density;
  cfg.seed = 1000 + services + bundles;
  const cover::Instance inst = cover::generate(cfg);
  lp::Problem p = cover::build_relaxation_lp(inst);

  // Baseline basis, exactly as EvalContext pins it at construction.
  lp::Basis baseline;
  {
    const lp::Solution sol = lp::solve(p, {}, &baseline);
    if (!sol.optimal()) {
      std::fprintf(stderr, "baseline solve failed\n");
      std::abort();
    }
  }

  // Deterministic batch of leader pricings: multiplicative perturbations of
  // the base costs, the shape of load the EA's price mutations produce (and
  // the regime the fixed warm-start basis is designed for).
  common::Rng rng(99 + services);
  const std::size_t num_pricings = smoke ? 3 : 24;
  std::vector<std::vector<double>> pricings(num_pricings);
  for (auto& pr : pricings) {
    pr.resize(bundles);
    for (std::size_t j = 0; j < bundles; ++j) {
      pr[j] = inst.cost(j) * rng.uniform(0.5, 1.5);
    }
  }

  lp::SimplexOptions sparse_opts;
  sparse_opts.max_iterations = 400'000;  // headroom for degenerate stalls
  lp::SimplexOptions dense_opts = sparse_opts;
  dense_opts.use_dense_kernels = true;

  long long sparse_iters = 0;
  long long dense_iters = 0;
  double sparse_obj = 0.0;
  double dense_obj = 0.0;
  lp::Basis scratch;

  const auto run_mode = [&](const lp::SimplexOptions& opts, long long& iters,
                            double& obj_acc) {
    const auto t0 = Clock::now();
    for (const auto& pr : pricings) {
      for (std::size_t j = 0; j < bundles; ++j) p.objective[j] = pr[j];
      scratch = baseline;
      const cover::Relaxation relax = cover::solve_relaxation_lp(
          p, opts, scratch.empty() ? nullptr : &scratch);
      iters += relax.stats.iterations;
      obj_acc += relax.lower_bound;
    }
    return seconds_since(t0);
  };

  const double dense_s = run_mode(dense_opts, dense_iters, dense_obj);
  const double sparse_s = run_mode(sparse_opts, sparse_iters, sparse_obj);

  if (sparse_iters != dense_iters || sparse_obj != dense_obj) {
    std::fprintf(stderr,
                 "end-to-end mismatch at m=%zu n=%zu density=%.2f "
                 "(iters %lld vs %lld)\n",
                 services, bundles, density, sparse_iters, dense_iters);
    std::abort();
  }

  EndToEndCase c;
  c.m = services;
  c.n = bundles;
  c.density = density;
  c.solves = num_pricings;
  c.dense_us = dense_s * 1e6 / static_cast<double>(num_pricings);
  c.sparse_us = sparse_s * 1e6 / static_cast<double>(num_pricings);
  c.speedup = c.dense_us / c.sparse_us;
  c.iterations = sparse_iters;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_lp_simplex.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }

  common::Rng rng(424242);

  // Kernel grid: relaxation shape n = 4m across the density ladder. The
  // paper-shaped regime is the sparse end (most bundles cover few services).
  std::vector<KernelCase> kernels;
  const std::vector<std::size_t> kernel_ms =
      smoke ? std::vector<std::size_t>{50}
            : std::vector<std::size_t>{50, 200, 400};
  const std::vector<double> densities =
      smoke ? std::vector<double>{0.10} : std::vector<double>{0.05, 0.10, 0.25, 0.75};
  for (const std::size_t m : kernel_ms) {
    for (const double d : densities) {
      kernels.push_back(run_kernel_case(rng, m, 4 * m, d, smoke));
    }
  }

  std::printf("kernel grid (pricing sweep + FTRAN, per column)\n");
  std::printf("%5s %6s %8s %8s | %11s %11s %8s | %11s %11s %8s\n", "m", "n",
              "density", "nnz", "price dn/ns", "price sp/ns", "speedup",
              "ftran dn/ns", "ftran sp/ns", "speedup");
  for (const KernelCase& c : kernels) {
    std::printf(
        "%5zu %6zu %8.2f %8.3f | %11.1f %11.1f %7.2fx | %11.1f %11.1f "
        "%7.2fx\n",
        c.m, c.n, c.density, c.nnz_frac, c.pricing_dense_ns,
        c.pricing_sparse_ns, c.pricing_speedup, c.ftran_dense_ns,
        c.ftran_sparse_ns, c.ftran_speedup);
  }

  // End-to-end: eval_core's warm-started relaxation path on generated
  // covering instances (services = LP rows, bundles = LP columns).
  std::vector<EndToEndCase> e2e;
  struct Shape {
    std::size_t services, bundles;
    double density;
  };
  const std::vector<Shape> shapes =
      smoke ? std::vector<Shape>{{20, 80, 0.10}}
            : std::vector<Shape>{{50, 400, 0.10},  {200, 800, 0.05},
                                 {200, 800, 0.10}, {200, 800, 0.25},
                                 {400, 1600, 0.10}};
  for (const Shape& s : shapes) {
    std::fprintf(stderr, "# end-to-end m=%zu n=%zu density=%.2f...\n",
                 s.services, s.bundles, s.density);
    e2e.push_back(run_end_to_end_case(s.services, s.bundles, s.density, smoke));
  }

  std::printf("\nend-to-end warm-started solve_relaxation batch\n");
  std::printf("%5s %6s %8s %7s %8s | %12s %12s %8s\n", "m", "n", "density",
              "solves", "pivots", "dense us/sv", "sparse us/sv", "speedup");
  for (const EndToEndCase& c : e2e) {
    std::printf("%5zu %6zu %8.2f %7zu %8lld | %12.1f %12.1f %7.2fx\n", c.m,
                c.n, c.density, c.solves, c.iterations, c.dense_us,
                c.sparse_us, c.speedup);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"lp_simplex\",\n  \"kernel_grid\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelCase& c = kernels[i];
    std::fprintf(
        f,
        "    {\"m\": %zu, \"n\": %zu, \"density\": %.3f, \"nnz_frac\": %.4f, "
        "\"pricing_dense_ns_per_col\": %.2f, \"pricing_sparse_ns_per_col\": "
        "%.2f, \"pricing_speedup\": %.3f, \"ftran_dense_ns_per_col\": %.2f, "
        "\"ftran_sparse_ns_per_col\": %.2f, \"ftran_speedup\": %.3f}%s\n",
        c.m, c.n, c.density, c.nnz_frac, c.pricing_dense_ns,
        c.pricing_sparse_ns, c.pricing_speedup, c.ftran_dense_ns,
        c.ftran_sparse_ns, c.ftran_speedup,
        i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndCase& c = e2e[i];
    std::fprintf(
        f,
        "    {\"services_m\": %zu, \"bundles_n\": %zu, \"density\": %.3f, "
        "\"solves\": %zu, \"total_pivots\": %lld, \"dense_us_per_solve\": "
        "%.2f, \"sparse_us_per_solve\": %.2f, \"speedup\": %.3f}%s\n",
        c.m, c.n, c.density, c.solves, c.iterations, c.dense_us, c.sparse_us,
        c.speedup, i + 1 < e2e.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

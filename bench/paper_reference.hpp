// The numbers reported by the paper (Tables III and IV), used to print
// side-by-side comparisons. Our substrate is a synthetic reproduction of the
// (unavailable) modified OR-library instances, so absolute values are not
// expected to match — the ordering and rough magnitudes are.
#pragma once

#include <array>

namespace carbon::bench {

struct PaperRow {
  int variables;
  int constraints;
  double carbon;
  double cobra;
};

/// Table III: best %-gap to LL optimality.
inline constexpr std::array<PaperRow, 9> kPaperGap = {{
    {100, 5, 1.13, 9.71},
    {100, 10, 1.87, 12.33},
    {100, 30, 3.13, 23.31},
    {250, 5, 0.37, 25.19},
    {250, 10, 0.76, 26.08},
    {250, 30, 1.62, 27.75},
    {500, 5, 0.15, 30.07},
    {500, 10, 0.34, 34.68},
    {500, 30, 0.74, 35.19},
}};
inline constexpr double kPaperGapAvgCarbon = 1.12;
inline constexpr double kPaperGapAvgCobra = 24.92;

/// Table IV: upper-level objective values.
inline constexpr std::array<PaperRow, 9> kPaperUl = {{
    {100, 5, 10964.07, 14710.78},
    {100, 10, 8976.39, 15226.79},
    {100, 30, 8669.49, 14762.83},
    {250, 5, 25750.66, 35479.64},
    {250, 10, 26897.33, 38283.71},
    {250, 30, 24338.39, 39368.26},
    {500, 5, 50177.28, 73529.34},
    {500, 10, 49441.39, 75041.02},
    {500, 30, 48904.15, 75386.02},
}};
inline constexpr double kPaperUlAvgCarbon = 28235.46;
inline constexpr double kPaperUlAvgCobra = 42420.93;

}  // namespace carbon::bench

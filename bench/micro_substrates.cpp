// google-benchmark microbenchmarks for the substrates on the evaluation hot
// path: LP relaxation (cold and warm-started), the score-driven greedy, GP
// tree evaluation, variation operators, and a full bi-level evaluation.

#include <benchmark/benchmark.h>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/operators.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/lp/simplex.hpp"

namespace {

using namespace carbon;

const cover::Instance& instance_for_class(std::size_t cls) {
  static std::vector<cover::Instance> cache = [] {
    std::vector<cover::Instance> v;
    for (std::size_t c = 0; c < cover::paper_classes().size(); ++c) {
      v.push_back(cover::make_paper_instance(c));
    }
    return v;
  }();
  return cache[cls];
}

void BM_SimplexCold(benchmark::State& state) {
  const auto& inst = instance_for_class(static_cast<std::size_t>(state.range(0)));
  const lp::Problem p = cover::build_relaxation_lp(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(p));
  }
  state.SetLabel(inst.describe());
}
BENCHMARK(BM_SimplexCold)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SimplexWarm(benchmark::State& state) {
  const auto& inst = instance_for_class(static_cast<std::size_t>(state.range(0)));
  lp::Problem p = cover::build_relaxation_lp(inst);
  lp::Basis warm;
  benchmark::DoNotOptimize(lp::solve(p, {}, &warm));
  common::Rng rng(1);
  const std::size_t owned = inst.num_bundles() / 10;
  for (auto _ : state) {
    // Perturb the leader's prices, as the evaluator does per pricing.
    for (std::size_t j = 0; j < owned; ++j) {
      p.objective[j] = rng.uniform(0.0, 1500.0);
    }
    benchmark::DoNotOptimize(lp::solve(p, {}, &warm));
  }
}
BENCHMARK(BM_SimplexWarm)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_GreedyCostEffectiveness(benchmark::State& state) {
  const auto& inst = instance_for_class(static_cast<std::size_t>(state.range(0)));
  const cover::Relaxation relax = cover::relax(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover::greedy_solve_with(
        inst, cover::cost_effectiveness_score, relax.duals, relax.relaxed_x));
  }
}
BENCHMARK(BM_GreedyCostEffectiveness)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyGpTree(benchmark::State& state) {
  const auto& inst = instance_for_class(static_cast<std::size_t>(state.range(0)));
  const cover::Relaxation relax = cover::relax(inst);
  common::Rng rng(7);
  const gp::Tree tree = gp::generate_full(rng, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover::greedy_solve_with(
        inst,
        [&tree](const cover::BundleFeatures& f) {
          const auto arr = gp::features_to_array(f);
          return tree.evaluate(std::span<const double, gp::kNumTerminals>(arr));
        },
        relax.duals, relax.relaxed_x));
  }
}
BENCHMARK(BM_GreedyGpTree)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_TreeEvaluate(benchmark::State& state) {
  common::Rng rng(7);
  const gp::Tree tree =
      gp::generate_full(rng, static_cast<int>(state.range(0)));
  const std::array<double, gp::kNumTerminals> features = {100.0, 2000.0,
                                                          1500.0, 9000.0,
                                                          130.0, 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.evaluate(
        std::span<const double, gp::kNumTerminals>(features)));
  }
  state.SetLabel("depth=" + std::to_string(state.range(0)) +
                 " nodes=" + std::to_string(tree.size()));
}
BENCHMARK(BM_TreeEvaluate)->Arg(3)->Arg(5)->Arg(8);

void BM_GpCrossover(benchmark::State& state) {
  common::Rng rng(7);
  const gp::Tree a = gp::generate_full(rng, 5);
  const gp::Tree b = gp::generate_full(rng, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp::subtree_crossover(rng, a, b));
  }
}
BENCHMARK(BM_GpCrossover);

void BM_SbxCrossover(benchmark::State& state) {
  common::Rng rng(7);
  const std::vector<ea::Bounds> bounds(50, ea::Bounds{0.0, 1500.0});
  std::vector<double> a = ea::random_real_vector(rng, bounds);
  std::vector<double> b = ea::random_real_vector(rng, bounds);
  for (auto _ : state) {
    ea::sbx_crossover(rng, a, b, bounds);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_SbxCrossover);

void BM_FullBilevelEvaluation(benchmark::State& state) {
  const bcpop::Instance market =
      bcpop::make_paper_bcpop(static_cast<std::size_t>(state.range(0)));
  bcpop::Evaluator eval(market);
  common::Rng rng(7);
  const gp::Tree tree = gp::generate_full(rng, 4);
  for (auto _ : state) {
    const auto pricing = ea::random_real_vector(rng, market.price_bounds());
    benchmark::DoNotOptimize(eval.evaluate_with_heuristic(pricing, tree));
  }
}
BENCHMARK(BM_FullBilevelEvaluation)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ExactSmallCover(benchmark::State& state) {
  cover::GeneratorConfig gen;
  gen.num_bundles = static_cast<std::size_t>(state.range(0));
  gen.num_services = 5;
  gen.seed = 11;
  const cover::Instance inst = cover::generate(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover::exact_solve(inst));
  }
}
BENCHMARK(BM_ExactSmallCover)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

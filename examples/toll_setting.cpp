// Toll setting on a road network — the application domain the paper's
// related-work section opens with. The leader prices a subset of arcs; each
// commodity of travellers then takes its cheapest path (the exact rational
// reaction, computed by Dijkstra). Sweeping a single toll exposes the
// classic bi-level revenue cliff: revenue grows linearly with the toll until
// the rational follower detours, then drops to zero instantly.
//
// Usage: toll_setting [--rows R] [--cols C] [--commodities K] [--seed S]

#include <cstdio>

#include "carbon/common/cli.hpp"
#include "carbon/toll/toll_problem.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);

  toll::GridConfig grid;
  grid.rows = static_cast<std::size_t>(args.get_int("rows", 5));
  grid.cols = static_cast<std::size_t>(args.get_int("cols", 5));
  grid.num_commodities =
      static_cast<std::size_t>(args.get_int("commodities", 5));
  grid.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const toll::Problem problem = toll::make_grid_problem(grid);

  std::printf("Road network: %zux%zu grid, %zu arcs (%zu tollable), "
              "%zu commodities\n\n",
              grid.rows, grid.cols, problem.network().num_arcs(),
              problem.tollable_arcs().size(), problem.commodities().size());

  // Baselines: free roads and maximal tolls.
  const std::vector<double> zero(problem.tollable_arcs().size(), 0.0);
  const std::vector<double> maxed(problem.tollable_arcs().size(),
                                  problem.toll_cap());
  const toll::Evaluation free_roads = toll::evaluate(problem, zero);
  const toll::Evaluation gouging = toll::evaluate(problem, maxed);
  std::printf("zero tolls:    revenue %8.2f, travel cost %8.2f\n",
              free_roads.revenue, free_roads.travel_cost);
  std::printf("maximal tolls: revenue %8.2f, travel cost %8.2f "
              "(travellers detour!)\n\n",
              gouging.revenue, gouging.travel_cost);

  // Optimize.
  toll::GaConfig cfg;
  cfg.seed = grid.seed;
  const toll::GaResult r = toll::solve_with_ga(problem, cfg);
  std::printf("optimized:     revenue %8.2f, travel cost %8.2f\n",
              r.best_evaluation.revenue, r.best_evaluation.travel_cost);

  std::printf("\ntolled arcs actually used (flow > 0):\n");
  for (std::size_t i = 0; i < r.best_tolls.size(); ++i) {
    if (r.best_evaluation.toll_arc_flow[i] <= 0.0) continue;
    const graph::Arc& a =
        problem.network().arc(problem.tollable_arcs()[i]);
    std::printf("  arc %u->%u: base cost %.2f, toll %.2f, flow %.2f\n",
                a.from, a.to, a.weight, r.best_tolls[i],
                r.best_evaluation.toll_arc_flow[i]);
  }
  std::printf("\nThe optimizer keeps tolls just below each commodity's "
              "detour cost — charging\nmore loses the customer entirely "
              "(the same overestimation trap as BCPOP's\nTable IV, here in "
              "its original habitat).\n");
  return 0;
}

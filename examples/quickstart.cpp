// Quickstart: solve a small Bi-level Cloud Pricing problem with CARBON.
//
// A Cloud Service Provider (the leader) owns 10 of the 100 bundles on a
// market and must price them. A rational customer (the follower) buys the
// cheapest set of bundles covering all of its service requirements. CARBON
// co-evolves candidate pricings against GP-generated greedy heuristics that
// model the customer.
//
// Build & run:  ./quickstart [--seed N]

#include <cstdio>

#include "carbon/common/cli.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);

  // 1. A market: 100 bundles x 5 services (paper class 0), 10 owned by us.
  bcpop::Instance market = bcpop::make_paper_bcpop(/*class_index=*/0);
  std::printf("Market: %zu bundles, %zu services, we own the first %zu.\n",
              market.num_bundles(), market.num_services(),
              market.num_owned());
  std::printf("Mean competitor price: %.2f\n\n",
              market.mean_competitor_price());

  // 2. Configure CARBON (scaled-down budget for a quick demo).
  core::CarbonConfig cfg;
  cfg.ul_population_size = 40;
  cfg.gp_population_size = 40;
  cfg.ul_eval_budget = 1'500;
  cfg.ll_eval_budget = 5'000;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  // 3. Run.
  core::CarbonResult result = core::CarbonSolver(market, cfg).run();

  // 4. Inspect the outcome.
  std::printf("CARBON finished after %d generations (%lld UL / %lld LL "
              "evaluations).\n",
              result.generations, result.ul_evaluations,
              result.ll_evaluations);
  std::printf("Best leader revenue F = %.2f with lower-level %%-gap %.3f%%\n",
              result.best_ul_objective, result.best_evaluation.gap_percent);
  std::printf("Customer pays %.2f (LP lower bound %.2f)\n",
              result.best_evaluation.ll_objective,
              result.best_evaluation.lower_bound);

  std::printf("\nOur optimal prices:");
  for (double p : result.best_pricing) std::printf(" %.1f", p);
  std::printf("\n\nEvolved follower model (greedy scoring heuristic):\n  %s\n",
              gp::simplify(result.best_heuristic).to_string().c_str());
  std::printf("(terminals: COST=price, QCOV=useful coverage, BRES=residual "
              "demand,\n QSUM=bundle mass, DUAL=LP-dual-weighted coverage, "
              "XBAR=LP relaxed value)\n");
  return 0;
}

// Standalone GP hyper-heuristic demo: evolve a greedy scoring function for
// covering instances, with no bi-level layer involved. This exercises the
// gp + cover substrates directly and shows what CARBON's predator population
// does internally.
//
// Usage: evolve_heuristic [--instances K] [--generations G] [--pop P]
//                         [--seed S]

#include <cstdio>
#include <vector>

#include "carbon/bilevel/gap.hpp"
#include "carbon/common/cli.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/operators.hpp"
#include "carbon/gp/scoring.hpp"

namespace {

struct TrainingCase {
  carbon::cover::Instance instance;
  carbon::cover::Relaxation relaxation;
};

/// Mean %-gap of a heuristic across the training cases (lower = better).
double mean_gap(const carbon::gp::Tree& tree,
                const std::vector<TrainingCase>& cases) {
  carbon::common::RunningStats gaps;
  for (const TrainingCase& c : cases) {
    const auto result = carbon::cover::greedy_solve_with(
        c.instance, carbon::gp::make_score_function(tree),
        c.relaxation.duals, c.relaxation.relaxed_x);
    gaps.add(result.feasible ? carbon::bilevel::percent_gap(
                                   result.value, c.relaxation.lower_bound)
                             : 1e9);
  }
  return gaps.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const auto num_instances =
      static_cast<std::size_t>(args.get_int("instances", 5));
  const int generations = static_cast<int>(args.get_int("generations", 30));
  const auto pop_size = static_cast<std::size_t>(args.get_int("pop", 50));
  common::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 123)));

  // Training set: several covering instances with their LP relaxations.
  std::vector<TrainingCase> cases;
  for (std::size_t i = 0; i < num_instances; ++i) {
    cover::GeneratorConfig gen;
    gen.num_bundles = 80;
    gen.num_services = 6;
    gen.seed = 100 + i;
    cover::Instance inst = cover::generate(gen);
    cover::Relaxation relax = cover::relax(inst);
    cases.push_back({std::move(inst), std::move(relax)});
  }

  // Reference points: two hand-written heuristics.
  const double ce_gap = [&] {
    common::RunningStats g;
    for (const TrainingCase& c : cases) {
      const auto r = cover::greedy_solve_with(
          c.instance, cover::cost_effectiveness_score, c.relaxation.duals,
          c.relaxation.relaxed_x);
      g.add(bilevel::percent_gap(r.value, c.relaxation.lower_bound));
    }
    return g.mean();
  }();
  std::printf("hand-written cost-effectiveness greedy: %.3f%% mean gap\n",
              ce_gap);

  // Evolve.
  gp::OperatorConfig ops;
  std::vector<gp::Tree> pop;
  for (std::size_t i = 0; i < pop_size; ++i) {
    pop.push_back(gp::generate_ramped(rng, ops.generate));
  }
  std::vector<double> fitness(pop.size());

  gp::Tree best;
  double best_gap = 1e18;
  for (int g = 0; g < generations; ++g) {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      fitness[i] = mean_gap(pop[i], cases);
      if (fitness[i] < best_gap) {
        best_gap = fitness[i];
        best = pop[i];
      }
    }
    if (g % 5 == 0 || g == generations - 1) {
      std::printf("gen %3d: best-so-far %.3f%% mean gap\n", g, best_gap);
    }
    std::vector<gp::Tree> next;
    next.push_back(best);  // elitism
    while (next.size() < pop.size()) {
      const double op = rng.uniform();
      if (op < 0.85) {
        const std::size_t ia = ea::tournament_select(rng, fitness, 3, false);
        const std::size_t ib = ea::tournament_select(rng, fitness, 3, false);
        auto [ca, cb] = gp::subtree_crossover(rng, pop[ia], pop[ib], ops);
        next.push_back(std::move(ca));
        if (next.size() < pop.size()) next.push_back(std::move(cb));
      } else {
        const std::size_t i = ea::tournament_select(rng, fitness, 3, false);
        next.push_back(gp::uniform_mutation(rng, pop[i], ops));
      }
    }
    pop = std::move(next);
  }

  std::printf("\nevolved heuristic: %.3f%% mean gap (hand-written: %.3f%%)\n",
              best_gap, ce_gap);
  std::printf("scoring function: %s\n", gp::simplify(best).to_string().c_str());
  return 0;
}

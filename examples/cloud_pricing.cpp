// Full Bi-level Cloud Pricing scenario: CARBON vs COBRA vs nested GA,
// head-to-head on one configurable market.
//
// Usage:
//   cloud_pricing [--bundles M] [--services N] [--owned L] [--tightness T]
//                 [--runs R] [--ul-budget U] [--ll-budget L] [--seed S]
//
// Prints one row per algorithm with the best leader revenue, the best
// lower-level %-gap, and the Wilcoxon rank-sum p-value of the gap comparison
// against CARBON. Demonstrates the paper's central claim: a leader using a
// sloppy follower model (COBRA) believes in revenue it will never collect.

#include <cstdio>
#include <vector>

#include "carbon/common/cli.hpp"
#include "carbon/common/statistics.hpp"
#include "carbon/core/experiment.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);

  cover::GeneratorConfig gen;
  gen.num_bundles = static_cast<std::size_t>(args.get_int("bundles", 150));
  gen.num_services = static_cast<std::size_t>(args.get_int("services", 8));
  gen.tightness = args.get_double("tightness", 0.25);
  gen.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto owned = static_cast<std::size_t>(
      args.get_int("owned", static_cast<long long>(gen.num_bundles / 10)));

  const bcpop::Instance market(cover::generate(gen), owned);
  std::printf("Market: %zu bundles x %zu services, leader owns %zu, "
              "mean competitor price %.1f\n\n",
              market.num_bundles(), market.num_services(), market.num_owned(),
              market.mean_competitor_price());

  core::ExperimentConfig cfg;
  cfg.runs = static_cast<std::size_t>(args.get_int("runs", 5));
  cfg.ul_eval_budget = args.get_int("ul-budget", 1'000);
  cfg.ll_eval_budget = args.get_int("ll-budget", 3'000);
  cfg.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 7)) * 977;

  const std::vector<core::Algorithm> algos = {
      core::Algorithm::kCarbon,
      core::Algorithm::kCobra,
      core::Algorithm::kNestedGa,
  };

  std::vector<core::CellResult> cells;
  for (core::Algorithm a : algos) {
    cells.push_back(core::run_cell(market, a, cfg));
  }

  std::vector<double> carbon_gaps;
  for (const auto& r : cells[0].runs) carbon_gaps.push_back(r.best_gap);

  std::printf("%-12s %14s %14s %12s %12s %10s\n", "algorithm", "F (revenue)",
              "F stddev", "%-gap", "gap stddev", "p vs CARBON");
  for (const core::CellResult& cell : cells) {
    std::vector<double> gaps;
    for (const auto& r : cell.runs) gaps.push_back(r.best_gap);
    const double p =
        cell.algorithm == core::Algorithm::kCarbon
            ? 1.0
            : common::rank_sum_test(carbon_gaps, gaps).p_value;
    std::printf("%-12s %14.2f %14.2f %12.3f %12.3f %10.4f\n",
                core::to_string(cell.algorithm), cell.ul_objective.mean,
                cell.ul_objective.stddev, cell.gap.mean, cell.gap.stddev, p);
  }

  std::printf(
      "\nReading the table: COBRA's larger %%-gap means its customer model\n"
      "overpays, so its reported revenue is an over-relaxation (Eq. 3 of\n"
      "the paper) — CARBON's smaller revenue is the realistic one.\n");
  return 0;
}

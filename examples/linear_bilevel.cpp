// Walkthrough of the paper's pedagogical example (Program 3, the Mersha &
// Dempe instance behind Fig. 1): a two-variable linear bi-level problem
// whose inducible region is DISCONTINUOUS because the follower ignores the
// leader's constraints.
//
//   leader:   min F(x,y) = -x - 2y   s.t. 2x - 3y >= -12,  x + y <= 14
//   follower: min f(y)   = -y        s.t. -3x + y <= -3,   3x + y <= 30
//
// At x = 6 the rational follower picks y = 12 (its feasible maximum), which
// violates the leader's first constraint — so x = 6 yields NO feasible
// bi-level solution, even though the naive pair (6, 8) looks great.

#include <cstdio>

#include "carbon/bilevel/linear.hpp"

int main() {
  using namespace carbon::bilevel;
  const LinearBilevel p = program3();

  std::printf("Scanning the leader's decision x and the follower's rational "
              "reaction:\n\n");
  std::printf("%6s %12s %12s %16s\n", "x", "reaction y", "F(x,y)",
              "UL-feasible?");
  for (double x = 0.0; x <= 14.0; x += 1.0) {
    const auto y = rational_reaction(p, x);
    if (!y) {
      std::printf("%6.1f %12s %12s %16s\n", x, "-", "-", "LL infeasible");
      continue;
    }
    const bool ok = upper_feasible(p, x, *y);
    std::printf("%6.1f %12.2f %12.2f %16s\n", x, *y, p.upper_objective(x, *y),
                ok ? "yes" : "NO  <-- hole");
  }

  // The trap discussed in the paper.
  const double x_trap = 6.0;
  const auto y_trap = rational_reaction(p, x_trap);
  std::printf("\nAt x = %.0f the follower's rational reaction is y = %.0f.\n",
              x_trap, *y_trap);
  std::printf("Naively pairing x = 6 with y = 8 satisfies the leader "
              "(F = %.0f),\nbut the follower would never play y = 8: "
              "f(8) = %.0f > f(12) = %.0f.\n",
              p.upper_objective(6, 8), p.lower_objective(8),
              p.lower_objective(12));
  std::printf("The pair (6, 12) violates 2x - 3y >= -12 "
              "(2*6 - 3*12 = %.0f < -12): x = 6 is a hole in the inducible "
              "region.\n\n",
              2 * 6.0 - 3 * 12.0);

  // Reference solve over a fine grid.
  const GridSolveResult grid = solve_by_grid(p, 14001);
  std::printf("Grid scan (%zu feasible, %zu holes, %zu LL-infeasible):\n",
              grid.feasible_points, grid.infeasible_points,
              grid.empty_points);
  if (grid.best) {
    std::printf("Best bi-level solution: x = %.4f, y = %.4f, F = %.4f\n",
                grid.best->x, grid.best->y, grid.best->upper_value);
  }
  return 0;
}

// Multi-follower cloud pricing (the paper's future-work direction): one
// Cloud Service Provider prices its bundles for a market of SEVERAL
// customers, each with different service requirements. CARBON's predator
// population evolves a single scoring heuristic that must model ALL
// customers well — heuristics generalize across lower-level instances,
// which is exactly why the competitive scheme scales past one follower.
//
// Usage: multi_follower [--followers K] [--seed S]

#include <cstdio>

#include "carbon/bcpop/multi_follower.hpp"
#include "carbon/common/cli.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"

int main(int argc, char** argv) {
  using namespace carbon;
  const common::CliArgs args(argc, argv);
  const auto followers =
      static_cast<std::size_t>(args.get_int("followers", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  cover::GeneratorConfig gen;
  gen.num_bundles = 80;
  gen.num_services = 6;
  gen.seed = seed;
  bcpop::Instance market(cover::generate(gen), /*num_owned=*/8);
  const auto problem =
      bcpop::make_multi_follower(std::move(market), followers, seed);

  std::printf("Market: %zu bundles x %zu services, %zu customers, we own 8 "
              "bundles.\n",
              problem.num_bundles(), problem.follower(0).num_services(),
              problem.num_followers());
  for (std::size_t f = 0; f < problem.num_followers(); ++f) {
    std::printf("  customer %zu demands:", f);
    for (std::size_t k = 0; k < problem.follower(f).num_services(); ++k) {
      std::printf(" %d", problem.follower(f).market().demand(k));
    }
    std::printf("\n");
  }

  bcpop::MultiFollowerEvaluator eval(problem);
  core::CarbonConfig cfg;
  cfg.ul_population_size = 30;
  cfg.gp_population_size = 30;
  cfg.ul_eval_budget = 600;
  cfg.ll_eval_budget = 6'000;  // K follower solves per evaluation
  cfg.heuristic_sample_size = 3;
  cfg.seed = seed;

  const core::CarbonResult r = core::CarbonSolver(eval, cfg).run();

  std::printf("\nCARBON: %d generations, %lld UL / %lld LL evaluations\n",
              r.generations, r.ul_evaluations, r.ll_evaluations);
  std::printf("Total revenue across %zu customers: %.2f (aggregate gap "
              "%.3f%%)\n",
              problem.num_followers(), r.best_ul_objective,
              r.best_evaluation.gap_percent);

  // Per-customer breakdown at the best pricing.
  (void)eval.evaluate_with_heuristic(r.best_pricing, r.best_heuristic);
  const auto& parts = eval.last_breakdown();
  for (std::size_t f = 0; f < parts.size(); ++f) {
    std::printf("  customer %zu: pays %.2f (gap %.3f%%), of which %.2f to "
                "us\n",
                f, parts[f].ll_objective, parts[f].gap_percent,
                parts[f].ul_objective);
  }
  std::printf("\nShared follower model: %s\n",
              gp::simplify(r.best_heuristic).to_string().c_str());
  return 0;
}

#include <gtest/gtest.h>

#include "carbon/bilevel/gap.hpp"
#include "carbon/bilevel/linear.hpp"

namespace carbon::bilevel {
namespace {

// ---- Eq. (1): %-gap ----

TEST(Gap, BasicFormula) {
  EXPECT_DOUBLE_EQ(percent_gap(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_gap(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_gap(150.0, 100.0), 50.0);
}

TEST(Gap, GuardsAgainstTinyLowerBound) {
  // Denominator floored at 1.0: no division blow-up.
  EXPECT_DOUBLE_EQ(percent_gap(0.5, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_gap(0.0, 0.0), 0.0);
}

TEST(Gap, ClampsNumericalNegatives) {
  EXPECT_DOUBLE_EQ(percent_gap(99.9999999, 100.0), 0.0);
}

// ---- Program 3 / Mersha-Dempe ----

TEST(Program3, FollowerFeasibleInterval) {
  const LinearBilevel p = program3();
  // y <= 3x - 3 and y <= 30 - 3x, y >= 0.
  const auto at2 = follower_feasible_interval(p, 2.0);
  ASSERT_TRUE(at2.has_value());
  EXPECT_DOUBLE_EQ(at2->lo, 0.0);
  EXPECT_DOUBLE_EQ(at2->hi, 3.0);

  const auto at6 = follower_feasible_interval(p, 6.0);
  ASSERT_TRUE(at6.has_value());
  EXPECT_DOUBLE_EQ(at6->hi, 12.0);

  // x = 0: y <= -3 impossible with y >= 0.
  EXPECT_FALSE(follower_feasible_interval(p, 0.0).has_value());
}

TEST(Program3, RationalReactionMatchesPaper) {
  const LinearBilevel p = program3();
  // Paper: x=2 -> y=3; x=6 -> y=12.
  EXPECT_DOUBLE_EQ(*rational_reaction(p, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(*rational_reaction(p, 6.0), 12.0);
}

TEST(Program3, XSixIsAHoleInTheInducibleRegion) {
  const LinearBilevel p = program3();
  const double y = *rational_reaction(p, 6.0);
  EXPECT_FALSE(upper_feasible(p, 6.0, y));
  // The naive pairing (6, 8) IS upper-feasible — the trap the paper warns
  // about: it is not a bi-level solution because y=8 is not rational.
  EXPECT_TRUE(upper_feasible(p, 6.0, 8.0));
}

TEST(Program3, GridSolverFindsDiscontinuousRegion) {
  const LinearBilevel p = program3();
  const GridSolveResult r = solve_by_grid(p, 2801);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.infeasible_points, 0u);  // holes exist
  EXPECT_GT(r.feasible_points, 0u);
  EXPECT_GT(r.empty_points, 0u);  // x < 1 has no follower response
  // Known optimum of this instance: x = 8, y = 6, F = -20.
  EXPECT_NEAR(r.best->x, 8.0, 0.01);
  EXPECT_NEAR(r.best->y, 6.0, 0.02);
  EXPECT_NEAR(r.best->upper_value, -20.0, 0.05);
}

TEST(Program3, BestGridPointIsConsistent) {
  const LinearBilevel p = program3();
  const GridSolveResult r = solve_by_grid(p, 1001);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(upper_feasible(p, r.best->x, r.best->y));
  EXPECT_NEAR(*rational_reaction(p, r.best->x), r.best->y, 1e-9);
}

TEST(LinearBilevel, IndifferentFollowerUsesOptimisticConvention) {
  LinearBilevel p;
  p.upper_cost_x = 0.0;
  p.upper_cost_y = 1.0;  // leader prefers small y
  p.lower_cost_y = 0.0;  // follower indifferent
  p.lower.push_back({0.0, 1.0, 5.0});  // y <= 5
  p.x_min = 0.0;
  p.x_max = 1.0;
  p.y_min = 0.0;
  p.y_max = 10.0;
  // Optimistic: follower breaks ties in the leader's favour -> y = 0.
  EXPECT_DOUBLE_EQ(*rational_reaction(p, 0.5), 0.0);

  p.upper_cost_y = -1.0;  // leader prefers large y
  EXPECT_DOUBLE_EQ(*rational_reaction(p, 0.5), 5.0);
}

TEST(LinearBilevel, FollowerMinimizingPositiveCostPicksLowerEnd) {
  LinearBilevel p;
  p.lower_cost_y = 1.0;
  p.lower.push_back({0.0, 1.0, 9.0});   // y <= 9
  p.lower.push_back({0.0, -1.0, -2.0});  // y >= 2
  p.y_min = 0.0;
  p.y_max = 100.0;
  p.x_min = 0.0;
  p.x_max = 1.0;
  EXPECT_DOUBLE_EQ(*rational_reaction(p, 0.0), 2.0);
}

TEST(LinearBilevel, ConstraintOnXAloneCanEmptyFollower) {
  LinearBilevel p;
  p.lower_cost_y = -1.0;
  p.lower.push_back({1.0, 0.0, 3.0});  // x <= 3 (no y involvement)
  p.x_min = 0.0;
  p.x_max = 10.0;
  p.y_min = 0.0;
  p.y_max = 10.0;
  EXPECT_TRUE(follower_feasible_interval(p, 2.0).has_value());
  EXPECT_FALSE(follower_feasible_interval(p, 5.0).has_value());
}

TEST(LinearBilevel, GridHandlesAllInfeasible) {
  LinearBilevel p;
  p.lower_cost_y = 1.0;
  p.lower.push_back({0.0, 1.0, -1.0});  // y <= -1 impossible with y >= 0
  p.x_min = 0.0;
  p.x_max = 1.0;
  p.y_min = 0.0;
  p.y_max = 1.0;
  const GridSolveResult r = solve_by_grid(p, 11);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_EQ(r.empty_points, 11u);
}

}  // namespace
}  // namespace carbon::bilevel

#include <gtest/gtest.h>

#include <numeric>

#include "carbon/ea/archive.hpp"
#include "carbon/ea/binary_ops.hpp"

namespace carbon::ea {
namespace {

TEST(BinaryOps, RandomVectorDensity) {
  common::Rng rng(1);
  const auto v = random_binary_vector(rng, 10000, 0.3);
  const long ones = std::accumulate(v.begin(), v.end(), 0L);
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.03);
}

TEST(BinaryOps, RandomVectorExtremes) {
  common::Rng rng(2);
  const auto zeros = random_binary_vector(rng, 100, 0.0);
  const auto ones = random_binary_vector(rng, 100, 1.0);
  EXPECT_EQ(std::accumulate(zeros.begin(), zeros.end(), 0), 0);
  EXPECT_EQ(std::accumulate(ones.begin(), ones.end(), 0), 100);
}

TEST(BinaryOps, TwoPointCrossoverPreservesPairwiseMultiset) {
  common::Rng rng(3);
  for (int rep = 0; rep < 100; ++rep) {
    auto a = random_binary_vector(rng, 50, 0.5);
    auto b = random_binary_vector(rng, 50, 0.5);
    const int total_before =
        std::accumulate(a.begin(), a.end(), 0) +
        std::accumulate(b.begin(), b.end(), 0);
    two_point_crossover(rng, a, b);
    const int total_after =
        std::accumulate(a.begin(), a.end(), 0) +
        std::accumulate(b.begin(), b.end(), 0);
    ASSERT_EQ(total_before, total_after);
  }
}

TEST(BinaryOps, TwoPointCrossoverActuallyMixes) {
  common::Rng rng(4);
  int mixed = 0;
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<std::uint8_t> a(20, 0);
    std::vector<std::uint8_t> b(20, 1);
    two_point_crossover(rng, a, b);
    mixed += std::accumulate(a.begin(), a.end(), 0) > 0;
  }
  EXPECT_GT(mixed, 80);
}

TEST(BinaryOps, TwoPointCrossoverTinyGenomes) {
  common::Rng rng(5);
  std::vector<std::uint8_t> a = {1};
  std::vector<std::uint8_t> b = {0};
  two_point_crossover(rng, a, b);  // must not crash; n < 2 is a no-op
  EXPECT_EQ(a[0] + b[0], 1);
}

TEST(BinaryOps, SwapMutationPreservesOnesCount) {
  common::Rng rng(6);
  for (int rep = 0; rep < 100; ++rep) {
    auto v = random_binary_vector(rng, 60, 0.4);
    const int before = std::accumulate(v.begin(), v.end(), 0);
    swap_mutation(rng, v, 0.5);
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), before);
  }
}

TEST(BinaryOps, FlipMutationTogglesApproximatelyRate) {
  common::Rng rng(7);
  int flips = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::uint8_t> v(100, 0);
    flip_mutation(rng, v, 0.1);
    flips += std::accumulate(v.begin(), v.end(), 0);
  }
  EXPECT_NEAR(flips / static_cast<double>(reps), 10.0, 2.0);
}

TEST(BinaryOps, DefaultMutationRateIsOneOverN) {
  common::Rng rng(8);
  int flips = 0;
  const int reps = 500;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::uint8_t> v(50, 0);
    flip_mutation(rng, v);
    flips += std::accumulate(v.begin(), v.end(), 0);
  }
  EXPECT_NEAR(flips / static_cast<double>(reps), 1.0, 0.3);
}

// ---- Archive ----

TEST(Archive, KeepsBestWhenMaximizing) {
  Archive<int> arch(3, /*maximize=*/true);
  arch.add(1, 1.0);
  arch.add(2, 5.0);
  arch.add(3, 3.0);
  arch.add(4, 4.0);  // evicts fitness 1.0
  EXPECT_EQ(arch.size(), 3u);
  EXPECT_EQ(arch.best().item, 2);
  EXPECT_DOUBLE_EQ(arch.best().fitness, 5.0);
  EXPECT_DOUBLE_EQ(arch.at(2).fitness, 3.0);
}

TEST(Archive, KeepsBestWhenMinimizing) {
  Archive<int> arch(2, /*maximize=*/false);
  arch.add(1, 10.0);
  arch.add(2, 1.0);
  arch.add(3, 5.0);
  EXPECT_EQ(arch.best().item, 2);
  EXPECT_DOUBLE_EQ(arch.at(1).fitness, 5.0);
}

TEST(Archive, RejectsWorseThanWorstWhenFull) {
  Archive<int> arch(2, true);
  arch.add(1, 10.0);
  arch.add(2, 20.0);
  EXPECT_FALSE(arch.add(3, 5.0));
  EXPECT_TRUE(arch.add(4, 15.0));
  EXPECT_EQ(arch.size(), 2u);
  EXPECT_EQ(arch.at(1).item, 4);
}

TEST(Archive, SortedBestFirstInvariant) {
  common::Rng rng(9);
  Archive<int> arch(10, true);
  for (int i = 0; i < 100; ++i) {
    arch.add(i, rng.uniform());
  }
  for (std::size_t i = 1; i < arch.size(); ++i) {
    ASSERT_GE(arch.at(i - 1).fitness, arch.at(i).fitness);
  }
}

TEST(Archive, ZeroCapacityNeverStores) {
  Archive<int> arch(0, true);
  EXPECT_FALSE(arch.add(1, 1.0));
  EXPECT_TRUE(arch.empty());
}

TEST(Archive, SampleReturnsStoredEntries) {
  common::Rng rng(10);
  Archive<int> arch(5, true);
  for (int i = 0; i < 5; ++i) arch.add(i, static_cast<double>(i));
  for (int rep = 0; rep < 50; ++rep) {
    const auto& e = arch.sample(rng);
    EXPECT_GE(e.item, 0);
    EXPECT_LT(e.item, 5);
  }
}

}  // namespace
}  // namespace carbon::ea

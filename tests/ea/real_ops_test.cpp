#include "carbon/ea/real_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace carbon::ea {
namespace {

std::vector<Bounds> uniform_bounds(std::size_t n, double lo, double hi) {
  return std::vector<Bounds>(n, Bounds{lo, hi});
}

TEST(RealOps, RandomVectorWithinBounds) {
  common::Rng rng(1);
  const auto bounds = uniform_bounds(50, -3.0, 7.0);
  for (int rep = 0; rep < 50; ++rep) {
    const auto v = random_real_vector(rng, bounds);
    ASSERT_EQ(v.size(), 50u);
    for (double x : v) {
      ASSERT_GE(x, -3.0);
      ASSERT_LT(x, 7.0);
    }
  }
}

TEST(RealOps, ClampToBounds) {
  const auto bounds = uniform_bounds(3, 0.0, 1.0);
  std::vector<double> v = {-1.0, 0.5, 2.0};
  clamp_to_bounds(v, bounds);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

class SbxSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SbxSweepTest, ChildrenStayWithinBounds) {
  common::Rng rng(GetParam());
  const auto bounds = uniform_bounds(20, 0.0, 100.0);
  for (int rep = 0; rep < 100; ++rep) {
    auto a = random_real_vector(rng, bounds);
    auto b = random_real_vector(rng, bounds);
    SbxConfig cfg;
    cfg.per_gene_probability = 1.0;
    sbx_crossover(rng, a, b, bounds, cfg);
    for (double x : a) {
      ASSERT_GE(x, 0.0);
      ASSERT_LE(x, 100.0);
    }
    for (double x : b) {
      ASSERT_GE(x, 0.0);
      ASSERT_LE(x, 100.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbxSweepTest,
                         ::testing::Range<std::uint64_t>(0, 5));

TEST(RealOps, SbxPreservesGeneSumOnAverage) {
  // SBX children are symmetric around the parents' midpoint, so the sum of
  // each gene across the pair is (statistically) preserved.
  common::Rng rng(9);
  const auto bounds = uniform_bounds(1, 0.0, 10.0);
  double drift = 0.0;
  const int reps = 5000;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> a = {2.0};
    std::vector<double> b = {8.0};
    SbxConfig cfg;
    cfg.per_gene_probability = 1.0;
    sbx_crossover(rng, a, b, bounds, cfg);
    drift += (a[0] + b[0]) - 10.0;
  }
  EXPECT_NEAR(drift / reps, 0.0, 0.1);
}

TEST(RealOps, SbxLargeEtaStaysNearParents) {
  common::Rng rng(10);
  const auto bounds = uniform_bounds(1, 0.0, 10.0);
  SbxConfig tight;
  tight.eta = 200.0;
  tight.per_gene_probability = 1.0;
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> a = {4.0};
    std::vector<double> b = {6.0};
    sbx_crossover(rng, a, b, bounds, tight);
    const double lo = std::min(a[0], b[0]);
    const double hi = std::max(a[0], b[0]);
    ASSERT_GT(lo, 3.0);
    ASSERT_LT(hi, 7.0);
  }
}

TEST(RealOps, SbxIdenticalParentsUnchanged) {
  common::Rng rng(11);
  const auto bounds = uniform_bounds(5, 0.0, 1.0);
  std::vector<double> a = {0.2, 0.4, 0.6, 0.8, 1.0};
  auto b = a;
  SbxConfig cfg;
  cfg.per_gene_probability = 1.0;
  sbx_crossover(rng, a, b, bounds, cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

class PolyMutationSweepTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PolyMutationSweepTest, StaysWithinBounds) {
  common::Rng rng(GetParam() + 100);
  const auto bounds = uniform_bounds(30, -5.0, 5.0);
  for (int rep = 0; rep < 100; ++rep) {
    auto v = random_real_vector(rng, bounds);
    PolynomialMutationConfig cfg;
    cfg.per_gene_probability = 1.0;
    polynomial_mutation(rng, v, bounds, cfg);
    for (double x : v) {
      ASSERT_GE(x, -5.0);
      ASSERT_LE(x, 5.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyMutationSweepTest,
                         ::testing::Range<std::uint64_t>(0, 5));

TEST(RealOps, PolynomialMutationDefaultRateIsOneOverN) {
  common::Rng rng(12);
  const auto bounds = uniform_bounds(100, 0.0, 1.0);
  int mutated = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    auto v = std::vector<double>(100, 0.5);
    polynomial_mutation(rng, v, bounds, {});
    for (double x : v) mutated += x != 0.5;
  }
  // Expect about one mutation per individual.
  EXPECT_NEAR(static_cast<double>(mutated) / reps, 1.0, 0.5);
}

TEST(RealOps, PolynomialMutationSmallEtaMovesFurther) {
  common::Rng rng(13);
  const auto bounds = uniform_bounds(1, 0.0, 1.0);
  const auto mean_move = [&](double eta) {
    PolynomialMutationConfig cfg;
    cfg.eta = eta;
    cfg.per_gene_probability = 1.0;
    double total = 0.0;
    for (int rep = 0; rep < 3000; ++rep) {
      std::vector<double> v = {0.5};
      polynomial_mutation(rng, v, bounds, cfg);
      total += std::abs(v[0] - 0.5);
    }
    return total / 3000.0;
  };
  EXPECT_GT(mean_move(5.0), mean_move(100.0) * 2.0);
}

TEST(RealOps, FixedGeneNeverMutates) {
  common::Rng rng(14);
  const std::vector<Bounds> bounds = {{2.0, 2.0}};
  std::vector<double> v = {2.0};
  PolynomialMutationConfig cfg;
  cfg.per_gene_probability = 1.0;
  for (int rep = 0; rep < 100; ++rep) {
    polynomial_mutation(rng, v, bounds, cfg);
    ASSERT_DOUBLE_EQ(v[0], 2.0);
  }
}

TEST(RealOps, TournamentPrefersBetter) {
  common::Rng rng(15);
  const std::vector<double> fitness = {1.0, 2.0, 3.0, 4.0, 100.0};
  int best_wins = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    best_wins += tournament_select(rng, fitness, 2, /*maximize=*/true) == 4;
  }
  // P(best in a binary tournament) = 1 - (4/5)^2 = 0.36.
  EXPECT_NEAR(best_wins / static_cast<double>(trials), 0.36, 0.05);
}

TEST(RealOps, TournamentMinimizePrefersSmall) {
  common::Rng rng(16);
  const std::vector<double> fitness = {10.0, 1.0, 10.0};
  int small_wins = 0;
  for (int i = 0; i < 1000; ++i) {
    small_wins += tournament_select(rng, fitness, 3, /*maximize=*/false) == 1;
  }
  EXPECT_GT(small_wins, 600);
}

TEST(RealOps, TournamentSizeOneIsUniform) {
  common::Rng rng(17);
  const std::vector<double> fitness = {1.0, 100.0};
  int idx0 = 0;
  for (int i = 0; i < 2000; ++i) {
    idx0 += tournament_select(rng, fitness, 1, true) == 0;
  }
  EXPECT_NEAR(idx0 / 2000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace carbon::ea

#include "carbon/common/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace carbon::common {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = sw.millis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 2000.0);  // generous: CI machines stall
}

TEST(Stopwatch, SecondsAndMillisAgree) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = sw.seconds();
  const double ms = sw.millis();
  EXPECT_NEAR(ms, s * 1000.0, 50.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.millis(), 15.0);
}

TEST(Stopwatch, MonotoneNonDecreasing) {
  Stopwatch sw;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.seconds();
    ASSERT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace carbon::common

#include "carbon/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "carbon/common/thread_pool.hpp"

namespace carbon::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry m;
  m.add_counter("a");
  m.add_counter("a", 4);
  m.add_counter("b", -2);
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5);
  EXPECT_EQ(snap.counters.at("b"), -2);
  EXPECT_EQ(snap.counters.size(), 2u);
}

TEST(MetricsRegistry, GaugeKeepsTheLatestWrite) {
  MetricsRegistry m;
  m.set_gauge("g", 1.0);
  m.set_gauge("g", 7.5);
  m.set_gauge("g", 3.25);
  EXPECT_DOUBLE_EQ(m.snapshot().gauges.at("g"), 3.25);
}

TEST(MetricsRegistry, TimersAccumulateCountTotalMax) {
  MetricsRegistry m;
  m.record_timer("t", 0.5);
  m.record_timer("t", 0.25);
  m.record_timer("t", 1.0);
  const auto t = m.snapshot().timers.at("t");
  EXPECT_EQ(t.count, 3);
  EXPECT_DOUBLE_EQ(t.total_seconds, 1.75);
  EXPECT_DOUBLE_EQ(t.max_seconds, 1.0);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry m;
  m.add_counter("a");
  m.set_gauge("g", 1.0);
  m.record_timer("t", 0.5);
  m.reset();
  const auto snap = m.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.timers.empty());
}

TEST(MetricsRegistry, ConcurrentCounterHammeringLosesNothing) {
  // Exercised under TSan by tools/run_sanitizers.sh: many pool workers write
  // the same counter names while a reader snapshots concurrently.
  MetricsRegistry m;
  common::ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kPerTask = 250;
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) (void)m.snapshot();
  });
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (int k = 0; k < kPerTask; ++k) {
      m.add_counter("evals");
      m.add_counter(i % 2 == 0 ? "even" : "odd");
    }
  });
  reader.join();
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("evals"), kTasks * kPerTask);
  EXPECT_EQ(snap.counters.at("even") + snap.counters.at("odd"),
            kTasks * kPerTask);
}

TEST(MetricsRegistry, ConcurrentTimerHammeringMergesExactly) {
  MetricsRegistry m;
  common::ThreadPool pool(8);
  constexpr int kTasks = 32;
  constexpr int kPerTask = 100;
  // 0.5 is exactly representable, so the merged total is exact regardless
  // of the shard the writes landed in or the merge order.
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (int k = 0; k < kPerTask; ++k) m.record_timer("t", 0.5);
  });
  const auto t = m.snapshot().timers.at("t");
  EXPECT_EQ(t.count, kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(t.total_seconds, 0.5 * kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(t.max_seconds, 0.5);
}

TEST(MetricsRegistry, ConcurrentGaugeWritersLeaveOneOfTheWrittenValues) {
  MetricsRegistry m;
  common::ThreadPool pool(4);
  pool.parallel_for(16, [&](std::size_t i) {
    m.set_gauge("g", static_cast<double>(i));
  });
  const double got = m.snapshot().gauges.at("g");
  EXPECT_GE(got, 0.0);
  EXPECT_LT(got, 16.0);
  EXPECT_EQ(got, static_cast<double>(static_cast<int>(got)));  // integral
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry m;
  m.add_counter("z");
  m.add_counter("a");
  m.add_counter("m");
  const auto snap = m.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, v] : snap.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "m", "z"}));
}

TEST(NullSafeHelpers, AreNoOpsOnNullRegistry) {
  count(nullptr, "c");
  gauge(nullptr, "g", 1.0);
  {
    ScopedTimer t(nullptr, "t");
    t.stop();
    t.stop();  // idempotent
  }
  // Nothing to assert beyond "did not crash"; also confirm a live registry
  // sees nothing from the calls above.
  MetricsRegistry m;
  EXPECT_TRUE(m.snapshot().counters.empty());
}

TEST(ScopedTimer, RecordsOneIntervalPerScope) {
  MetricsRegistry m;
  {
    ScopedTimer t(&m, "t");
  }
  {
    ScopedTimer t(&m, "t");
    t.stop();
    t.stop();  // second stop must not double-record
  }
  const auto t = m.snapshot().timers.at("t");
  EXPECT_EQ(t.count, 2);
  EXPECT_GE(t.total_seconds, 0.0);
  EXPECT_GE(t.max_seconds, 0.0);
}

TEST(MetricsRegistry, ShardCountIsConfigurable) {
  MetricsRegistry one(1);
  EXPECT_EQ(one.num_shards(), 1u);
  one.add_counter("a", 3);
  EXPECT_EQ(one.snapshot().counters.at("a"), 3);
}

}  // namespace
}  // namespace carbon::obs

// Per-test unique temporary directories.
//
// ::testing::TempDir() is one shared directory per machine, so tests that
// write fixed filenames there collide when the suite runs with `ctest -j`
// or when two checkouts share a builder — the classic source of "passes
// alone, flakes in CI". test_temp_dir() instead derives a directory from
// the running test's full name, the process id, and a per-process counter:
// unique across concurrent test binaries, across repeated runs of the same
// binary, and across two calls within one test.
//
// The directory is created eagerly and intentionally NOT removed on
// destruction: a failing test's artifacts stay on disk for post-mortem, and
// the OS temp cleaner owns the lifetime (same policy as gtest's own
// TempDir).
#pragma once

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace carbon::test {

/// Creates (if needed) and returns a unique directory for the current test,
/// with a trailing '/'. `tag` distinguishes several directories inside one
/// test body; the default draws from a process-wide counter.
inline std::string test_temp_dir(const std::string& tag = "") {
  static std::atomic<unsigned long long> counter{0};

  std::string name = "carbon-test";
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    name += std::string("-") + info->test_suite_name() + "-" + info->name();
  }
  name += "-p" + std::to_string(static_cast<long long>(::getpid()));
  if (tag.empty()) {
    name += "-n" + std::to_string(counter.fetch_add(1));
  } else {
    name += "-" + tag;
  }
  // Gtest parameterized/typed test names can contain '/', which would read
  // as a path separator; flatten them.
  for (char& c : name) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }

  std::string dir = ::testing::TempDir();
  if (dir.empty() || dir.back() != '/') dir.push_back('/');
  dir += name;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("test_temp_dir: cannot create " + dir);
  }
  dir.push_back('/');
  return dir;
}

}  // namespace carbon::test

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "carbon/common/cli.hpp"
#include "carbon/common/csv.hpp"

namespace carbon::common {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  csv.field("x").number(1.5).integer(-7);
  csv.end_row();
  EXPECT_EQ(out.str(), "a,b,c\nx,1.5,-7\n");
}

TEST(Csv, QuotesFieldsWithSpecials) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("hello, world").field("quote\"inside").field("plain");
  csv.end_row();
  EXPECT_EQ(out.str(), "\"hello, world\",\"quote\"\"inside\",plain\n");
}

TEST(Csv, NumberPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.number(3.14159265358979, 3);
  csv.end_row();
  EXPECT_EQ(out.str(), "3.14\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.end_row();
  EXPECT_EQ(out.str(), "\n");
}

class CliFixture : public ::testing::Test {
 protected:
  CliArgs parse(std::vector<const char*> argv) {
    return CliArgs(static_cast<int>(argv.size()),
                   const_cast<char**>(argv.data()));
  }
};

TEST_F(CliFixture, FlagWithSeparateValue) {
  const auto args = parse({"prog", "--runs", "30"});
  EXPECT_EQ(args.get_int("runs", 0), 30);
}

TEST_F(CliFixture, FlagWithEqualsValue) {
  const auto args = parse({"prog", "--seed=42"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST_F(CliFixture, BooleanFlag) {
  const auto args = parse({"prog", "--full"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_FALSE(args.get_bool("absent"));
}

TEST_F(CliFixture, BooleanBeforeAnotherFlag) {
  const auto args = parse({"prog", "--full", "--runs", "5"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_EQ(args.get_int("runs", 0), 5);
}

TEST_F(CliFixture, DoubleAndStringAndFallbacks) {
  const auto args = parse({"prog", "--alpha", "0.25", "--name", "x"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.25);
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 9.5), 9.5);
}

TEST_F(CliFixture, PositionalArguments) {
  const auto args = parse({"prog", "input.txt", "--v", "1", "out.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "out.txt");
  EXPECT_EQ(args.program(), "prog");
}

TEST_F(CliFixture, HasDetectsPresence) {
  const auto args = parse({"prog", "--x", "1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST_F(CliFixture, IntRejectsTrailingGarbage) {
  // "--threads 4x" must be an error, not silently 4.
  const auto args = parse({"prog", "--threads", "4x"});
  EXPECT_THROW((void)args.get_int("threads", 1), std::invalid_argument);
  try {
    (void)args.get_int("threads", 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the offending flag and value.
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4x"), std::string::npos);
  }
}

TEST_F(CliFixture, IntRejectsNonNumericAndOverflow) {
  EXPECT_THROW((void)parse({"prog", "--n", "abc"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"prog", "--n", ""}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"prog", "--n", "1.5"}).get_int("n", 0),
               std::invalid_argument);  // trailing ".5"
  EXPECT_THROW(
      (void)parse({"prog", "--n", "99999999999999999999"}).get_int("n", 0),
      std::invalid_argument);  // out of long long range
  EXPECT_EQ(parse({"prog", "--n", "-7"}).get_int("n", 0), -7);
}

TEST_F(CliFixture, DoubleRejectsTrailingGarbage) {
  EXPECT_THROW((void)parse({"prog", "--alpha", "1.5.2"}).get_double("alpha", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"prog", "--alpha", "0.5x"}).get_double("alpha", 0),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"prog", "--alpha", "nope"}).get_double("alpha", 0),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(parse({"prog", "--alpha", "1e-3"}).get_double("alpha", 0),
                   1e-3);
}

TEST_F(CliFixture, PositiveIntRejectsZeroAndNegative) {
  EXPECT_THROW((void)parse({"prog", "--threads", "0"}).get_positive_int("threads", 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"prog", "--threads", "-4"}).get_positive_int("threads", 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"prog", "--threads", "4x"}).get_positive_int("threads", 1),
               std::invalid_argument);
  EXPECT_EQ(parse({"prog", "--threads", "4"}).get_positive_int("threads", 1), 4);
}

TEST_F(CliFixture, PositiveIntTrustsAbsentFallback) {
  // Validation applies to user input only: a caller-chosen non-positive
  // default (e.g. 0 = disabled) passes through untouched.
  EXPECT_EQ(parse({"prog"}).get_positive_int("checkpoint-every", 0), 0);
  EXPECT_EQ(parse({"prog"}).get_positive_int("threads", -1), -1);
}

}  // namespace
}  // namespace carbon::common

#include "carbon/common/task_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace carbon::common {
namespace {

/// splitmix64 — a cheap, stateless per-index mixer so every job does a
/// deterministic amount of "work" that depends only on its inputs.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The fuzz job: spin for a seed-dependent number of mix rounds (a skewed
/// duration distribution: most jobs are short, a few are ~100x longer) and
/// return a value that depends on every round. Pure function of (seed, i).
std::uint64_t job_value(std::uint64_t seed, std::size_t i) {
  std::uint64_t h = mix(seed ^ i);
  // Top 4 bits pick the duration class; class 15 spins two orders of
  // magnitude longer than class 0, so steal interleavings vary per seed.
  const std::uint64_t rounds = 1 + (h >> 60) * ((h >> 58) & 0x3 ? 1 : 40);
  for (std::uint64_t r = 0; r < rounds; ++r) h = mix(h + r);
  return h;
}

TEST(TaskScheduler, ZeroTasksIsANoOp) {
  TaskScheduler sched(2);
  sched.parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(TaskScheduler, SingleTaskRunsInline) {
  TaskScheduler sched(4);
  std::atomic<int> runs{0};
  sched.parallel_for(1, [&](std::size_t participant, std::size_t i) {
    EXPECT_EQ(participant, 0u);  // inline path: the caller executes it
    EXPECT_EQ(i, 0u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(TaskScheduler, CoversEveryIndexExactlyOnce) {
  TaskScheduler sched(4);
  std::vector<std::atomic<int>> hits(1000);
  sched.parallel_for(
      hits.size(), [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskScheduler, ParticipantIdsStayInRange) {
  TaskScheduler sched(3);
  ASSERT_EQ(sched.participants(), sched.workers() + 1);
  std::atomic<bool> ok{true};
  sched.parallel_for(500, [&](std::size_t participant, std::size_t) {
    if (participant >= sched.participants()) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(TaskScheduler, RethrowsLowestIndexException) {
  TaskScheduler sched(4);
  // Both 3 and 7 throw; the batch must deterministically surface index 3
  // regardless of which participant ran it first.
  for (int rep = 0; rep < 20; ++rep) {
    try {
      sched.parallel_for(64, [](std::size_t, std::size_t i) {
        if (i == 3) throw std::logic_error("three");
        if (i == 7) throw std::runtime_error("seven");
      });
      FAIL() << "expected an exception";
    } catch (const std::logic_error& e) {
      EXPECT_STREQ(e.what(), "three");
    } catch (const std::runtime_error&) {
      FAIL() << "index 7's error surfaced instead of index 3's";
    }
  }
}

TEST(TaskScheduler, AllJobsRunEvenWhenOneThrows) {
  TaskScheduler sched(2);
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(sched.parallel_for(hits.size(),
                                  [&](std::size_t, std::size_t i) {
                                    hits[i].fetch_add(1);
                                    if (i == 10) throw std::logic_error("x");
                                  }),
               std::logic_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskScheduler, StatsCountEveryTask) {
  TaskScheduler sched(4);
  const auto before = sched.stats();
  sched.parallel_for(256, [](std::size_t, std::size_t) {});
  sched.parallel_for(1, [](std::size_t, std::size_t) {});  // inline path
  const auto after = sched.stats();
  EXPECT_EQ(after.tasks - before.tasks, 257);
  EXPECT_GE(after.steals, before.steals);
  EXPECT_GE(after.idle_ns, before.idle_ns);
}

// The determinism contract (docs/ALGORITHMS.md §14): for PURE jobs committed
// into index-ordered result slots, the result vector is bitwise identical to
// the serial loop for any worker count and any steal interleaving. 500
// seeds × skewed job durations × threads {1,2,4,8}; each seed also varies
// the batch size (including n < participants and n == 0 edge shapes).
TEST(TaskScheduler, DeterminismFuzzMatchesSerialBitwise) {
  constexpr int kSeeds = 500;
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<std::unique_ptr<TaskScheduler>> scheds;  // reused across seeds
  for (const std::size_t t : thread_counts) {
    scheds.push_back(std::make_unique<TaskScheduler>(t));
  }

  for (int seed = 0; seed < kSeeds; ++seed) {
    const std::size_t n = mix(static_cast<std::uint64_t>(seed)) % 97;
    std::vector<std::uint64_t> want(n);
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = job_value(static_cast<std::uint64_t>(seed), i);
    }
    for (const auto& sched : scheds) {
      std::vector<std::uint64_t> got(n, 0);
      sched->parallel_for(n, [&](std::size_t, std::size_t i) {
        got[i] = job_value(static_cast<std::uint64_t>(seed), i);
      });
      ASSERT_EQ(got, want) << "seed " << seed << ", workers "
                           << sched->workers();
    }
  }
}

}  // namespace
}  // namespace carbon::common

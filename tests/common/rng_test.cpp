#include "carbon/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace carbon::common {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.below(n), n);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(5);
  constexpr std::uint64_t kBuckets = 10;
  std::array<int, kBuckets> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / static_cast<int>(kBuckets), n / 100);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(rng.chance(0.0));
    ASSERT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GaussMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, SpawnStreamsAreIndependentAndDeterministic) {
  Rng root(42);
  Rng a1 = root.spawn(1);
  Rng a2 = root.spawn(1);
  Rng b = root.spawn(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a1();
    ASSERT_EQ(va, a2());
    equal += (va == b());
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

class SampleIndicesTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleIndicesTest, ProducesKDistinctSortedInRange) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k);
  for (int rep = 0; rep < 20; ++rep) {
    const auto idx = rng.sample_indices(n, k);
    ASSERT_EQ(idx.size(), k);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    ASSERT_EQ(unique.size(), k);
    for (std::size_t i : idx) ASSERT_LT(i, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleIndicesTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 0},
                      std::pair<std::size_t, std::size_t>{10, 1},
                      std::pair<std::size_t, std::size_t>{10, 5},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{1000, 3},
                      std::pair<std::size_t, std::size_t>{1000, 999}));

TEST(Rng, SampleIndicesRejectsOverdraw) {
  Rng rng(1);
  EXPECT_THROW((void)rng.sample_indices(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace carbon::common

#include "carbon/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace carbon::common {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::logic_error("task failed");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForDrainsAllTasksBeforeRethrow) {
  // Regression: parallel_for used to rethrow on the first failed future and
  // abandon the rest. The remaining tasks captured `fn` (and the caller's
  // locals) by reference, so returning early let them race against destroyed
  // state. The fix drains every future before rethrowing the first error.
  ThreadPool pool(2);
  constexpr std::size_t n = 16;
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(n,
                        [&](std::size_t i) {
                          if (i == 0) throw std::runtime_error("early");
                          // Slow tasks: with the old early-rethrow these were
                          // still queued/running when parallel_for returned.
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(2));
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every non-throwing task finished before parallel_for returned.
  EXPECT_EQ(completed.load(), n - 1);
}

TEST(ThreadPool, ParallelForMultipleExceptionsPropagatesOne) {
  ThreadPool pool(4);
  std::atomic<int> threw{0};
  try {
    pool.parallel_for(20, [&](std::size_t i) {
      if (i % 2 == 0) {
        threw.fetch_add(1);
        throw std::runtime_error("even task failed");
      }
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "even task failed");
  }
  // All throwing tasks ran to completion (were not abandoned).
  EXPECT_EQ(threw.load(), 10);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace carbon::common

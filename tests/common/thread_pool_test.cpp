#include "carbon/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace carbon::common {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::logic_error("task failed");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace carbon::common

#include "carbon/common/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "carbon/common/rng.hpp"

namespace carbon::common {
namespace {

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(4);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gauss(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Summarize, QuartilesOfKnownSample) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
}

TEST(Summarize, UnsortedInputHandled) {
  const std::vector<double> xs = {9, 1, 5, 3, 7};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(QuantileSorted, InterpolatesLinearly) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
}

TEST(QuantileSorted, EmptyThrows) {
  EXPECT_THROW((void)quantile_sorted({}, 0.5), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(RankSum, IdenticalSamplesNoEvidence) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const auto r = rank_sum_test(a, a);
  EXPECT_NEAR(r.p_value, 1.0, 0.05);
  EXPECT_NEAR(r.rank_biserial, 0.0, 1e-9);
}

TEST(RankSum, DisjointSamplesStrongEvidence) {
  const std::vector<double> lo = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> hi = {101, 102, 103, 104, 105,
                                  106, 107, 108, 109, 110};
  const auto r = rank_sum_test(lo, hi);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_NEAR(r.rank_biserial, -1.0, 1e-9);  // lo < hi
}

TEST(RankSum, DirectionOfEffect) {
  const std::vector<double> hi = {10, 11, 12, 13, 14, 15, 16, 17};
  const std::vector<double> lo = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto r = rank_sum_test(hi, lo);
  EXPECT_GT(r.rank_biserial, 0.9);  // first sample larger
}

TEST(RankSum, AllTiedIsInconclusive) {
  const std::vector<double> a = {5, 5, 5};
  const std::vector<double> b = {5, 5, 5};
  const auto r = rank_sum_test(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(RankSum, EmptySampleIsInconclusive) {
  const std::vector<double> a = {1.0};
  const auto r = rank_sum_test(a, {});
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(RankSum, MatchesKnownUStatistic) {
  // Classic textbook example: A = {1, 4, 5}, B = {2, 3, 6}.
  // Ranks: 1->1, 2->2, 3->3, 4->4, 5->5, 6->6. Rank sum A = 1+4+5 = 10.
  // U_A = 10 - 3*4/2 = 4.
  const std::vector<double> a = {1, 4, 5};
  const std::vector<double> b = {2, 3, 6};
  const auto r = rank_sum_test(a, b);
  EXPECT_DOUBLE_EQ(r.u_statistic, 4.0);
}

}  // namespace
}  // namespace carbon::common

#include "carbon/toll/toll_problem.hpp"

#include <gtest/gtest.h>

namespace carbon::toll {
namespace {

/// Two parallel roads from 0 to 1: a tollable highway (base cost 2) and a
/// free back road (cost 10). One commodity with demand 5.
Problem two_roads() {
  graph::Digraph g(2);
  const graph::ArcId highway = g.add_arc(0, 1, 2.0);
  g.add_arc(0, 1, 10.0);
  return Problem(std::move(g), {highway}, {{0, 1, 5.0}}, /*toll_cap=*/20.0);
}

TEST(Toll, ZeroTollZeroRevenue) {
  const Problem p = two_roads();
  const Evaluation e = evaluate(p, std::vector<double>{0.0});
  EXPECT_TRUE(e.all_routable);
  EXPECT_DOUBLE_EQ(e.revenue, 0.0);
  EXPECT_DOUBLE_EQ(e.travel_cost, 10.0);  // 5 travellers x cost 2
  EXPECT_DOUBLE_EQ(e.toll_arc_flow[0], 5.0);
}

TEST(Toll, ModerateTollCollects) {
  const Problem p = two_roads();
  // Toll 7: highway costs 9 < 10, still chosen; revenue 5 * 7 = 35.
  const Evaluation e = evaluate(p, std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(e.revenue, 35.0);
  EXPECT_DOUBLE_EQ(e.travel_cost, 45.0);
}

TEST(Toll, ExcessiveTollLosesTheCustomer) {
  const Problem p = two_roads();
  // Toll 9: highway costs 11 > 10 -> back road, zero revenue.
  const Evaluation e = evaluate(p, std::vector<double>{9.0});
  EXPECT_DOUBLE_EQ(e.revenue, 0.0);
  EXPECT_DOUBLE_EQ(e.toll_arc_flow[0], 0.0);
  EXPECT_DOUBLE_EQ(e.travel_cost, 50.0);
}

TEST(Toll, RevenueIsLafferShaped) {
  // Sweep the toll: revenue rises linearly then collapses to zero once the
  // rational follower detours — the bi-level structure in one picture.
  const Problem p = two_roads();
  double best_revenue = 0.0;
  double revenue_at_cap = -1.0;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const Evaluation e = evaluate(p, std::vector<double>{t});
    best_revenue = std::max(best_revenue, e.revenue);
    revenue_at_cap = e.revenue;
  }
  // Optimum approached at toll just below 8 (highway cost 10 == back road).
  EXPECT_NEAR(best_revenue, 5.0 * 7.5, 2.6);
  EXPECT_DOUBLE_EQ(revenue_at_cap, 0.0);
}

TEST(Toll, EvaluateValidatesInput) {
  const Problem p = two_roads();
  EXPECT_THROW((void)evaluate(p, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate(p, std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Toll, ProblemValidation) {
  graph::Digraph g(2);
  const graph::ArcId a = g.add_arc(0, 1, 1.0);
  EXPECT_THROW(Problem(graph::Digraph(2), {5}, {}, 1.0),
               std::invalid_argument);
  {
    graph::Digraph g2(2);
    const graph::ArcId a2 = g2.add_arc(0, 1, 1.0);
    EXPECT_THROW(Problem(std::move(g2), {a2}, {{0, 9, 1.0}}, 1.0),
                 std::invalid_argument);
  }
  {
    graph::Digraph g3(2);
    const graph::ArcId a3 = g3.add_arc(0, 1, 1.0);
    EXPECT_THROW(Problem(std::move(g3), {a3}, {{0, 1, -1.0}}, 1.0),
                 std::invalid_argument);
  }
  {
    graph::Digraph g4(2);
    const graph::ArcId a4 = g4.add_arc(0, 1, 1.0);
    EXPECT_THROW(Problem(std::move(g4), {a4}, {}, -1.0),
                 std::invalid_argument);
  }
  (void)a;
}

TEST(TollGrid, GeneratorProducesRoutableProblems) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    GridConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.seed = seed;
    const Problem p = make_grid_problem(cfg);
    EXPECT_GE(p.tollable_arcs().size(), 1u);
    EXPECT_EQ(p.commodities().size(), cfg.num_commodities);
    // Zero tolls: the bidirected grid is strongly connected.
    const Evaluation e =
        evaluate(p, std::vector<double>(p.tollable_arcs().size(), 0.0));
    EXPECT_TRUE(e.all_routable) << "seed " << seed;
    EXPECT_GT(e.travel_cost, 0.0);
  }
}

TEST(TollGrid, GeneratorValidatesConfig) {
  GridConfig cfg;
  cfg.rows = 1;
  EXPECT_THROW((void)make_grid_problem(cfg), std::invalid_argument);
}

TEST(TollGa, FindsNearOptimalTollOnTwoRoads) {
  const Problem p = two_roads();
  GaConfig cfg;
  cfg.population_size = 30;
  cfg.generations = 40;
  cfg.seed = 2;
  const GaResult r = solve_with_ga(p, cfg);
  // Optimal revenue is 5 * t with t < 8 => sup 40; GA should get close.
  EXPECT_GT(r.best_evaluation.revenue, 35.0);
  EXPECT_LT(r.best_evaluation.revenue, 40.0 + 1e-9);
  ASSERT_EQ(r.best_tolls.size(), 1u);
  EXPECT_LT(r.best_tolls[0], 8.0);
}

TEST(TollGa, HistoryIsMonotone) {
  GridConfig gcfg;
  gcfg.seed = 3;
  const Problem p = make_grid_problem(gcfg);
  GaConfig cfg;
  cfg.population_size = 20;
  cfg.generations = 15;
  cfg.seed = 4;
  const GaResult r = solve_with_ga(p, cfg);
  ASSERT_EQ(r.history.size(), 15u);
  for (std::size_t g = 1; g < r.history.size(); ++g) {
    ASSERT_GE(r.history[g], r.history[g - 1]);
  }
}

TEST(TollGa, DeterministicForSeed) {
  GridConfig gcfg;
  gcfg.seed = 5;
  const Problem p = make_grid_problem(gcfg);
  GaConfig cfg;
  cfg.population_size = 16;
  cfg.generations = 10;
  cfg.seed = 6;
  const GaResult a = solve_with_ga(p, cfg);
  const GaResult b = solve_with_ga(p, cfg);
  EXPECT_EQ(a.best_tolls, b.best_tolls);
  EXPECT_DOUBLE_EQ(a.best_evaluation.revenue, b.best_evaluation.revenue);
}

}  // namespace
}  // namespace carbon::toll

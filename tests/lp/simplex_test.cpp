#include "carbon/lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "carbon/common/rng.hpp"

namespace carbon::lp {
namespace {

TEST(Simplex, SimpleMaximizationViaNegation) {
  // max x + 2y s.t. x + y <= 4, y <= 2, x,y >= 0  -> (2, 2), value 6.
  Problem p;
  p.add_variable(-1, 0, kInfinity);
  p.add_variable(-2, 0, 2);
  p.add_constraint({1, 1}, RowSense::kLessEqual, 4);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -6.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(Simplex, GreaterEqualRows) {
  // min x1 + x2 s.t. x1 + 2x2 >= 2, 2x1 + x2 >= 2, 0 <= x <= 1.
  Problem p;
  p.add_variable(1, 0, 1);
  p.add_variable(1, 0, 1);
  p.add_constraint({1, 2}, RowSense::kGreaterEqual, 2);
  p.add_constraint({2, 1}, RowSense::kGreaterEqual, 2);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0 / 3.0, 1e-9);
}

TEST(Simplex, EqualityRow) {
  // min x + y s.t. x + y = 3, x <= 2, y <= 2 -> value 3.
  Problem p;
  p.add_variable(1, 0, 2);
  p.add_variable(1, 0, 2);
  p.add_constraint({1, 1}, RowSense::kEqual, 3);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 3.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  p.add_variable(0, 0, 1);
  p.add_constraint({1}, RowSense::kGreaterEqual, 2);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Problem p;
  p.add_variable(0, 0, 10);
  p.add_variable(0, 0, 10);
  p.add_constraint({1, 1}, RowSense::kEqual, 5);
  p.add_constraint({1, 1}, RowSense::kEqual, 7);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  p.add_variable(-1, 0, kInfinity);
  p.add_constraint({1}, RowSense::kGreaterEqual, 0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, BoundedVariableMakesItFinite) {
  Problem p;
  p.add_variable(-1, 0, 5);
  p.add_constraint({1}, RowSense::kGreaterEqual, 0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -5.0, 1e-9);
}

TEST(Simplex, RedundantRowsHandled) {
  Problem p;
  p.add_variable(1, 0, 10);
  p.add_variable(1, 0, 10);
  p.add_constraint({1, 1}, RowSense::kEqual, 4);
  p.add_constraint({2, 2}, RowSense::kEqual, 8);  // redundant duplicate
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(Simplex, NonzeroLowerBounds) {
  // min x + y with x >= 2, y >= 3, x + y >= 7 -> 7.
  Problem p;
  p.add_variable(1, 2, kInfinity);
  p.add_variable(1, 3, kInfinity);
  p.add_constraint({1, 1}, RowSense::kGreaterEqual, 7);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
  EXPECT_GE(s.x[0], 2.0 - 1e-9);
  EXPECT_GE(s.x[1], 3.0 - 1e-9);
}

TEST(Simplex, FixedVariable) {
  Problem p;
  p.add_variable(1, 4, 4);  // fixed at 4
  p.add_variable(1, 0, kInfinity);
  p.add_constraint({1, 1}, RowSense::kGreaterEqual, 6);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(Simplex, DualSignConventions) {
  // min x s.t. x >= 3 -> dual of >= row must be >= 0 (here exactly 1).
  Problem p;
  p.add_variable(1, 0, kInfinity);
  p.add_constraint({1}, RowSense::kGreaterEqual, 3);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.duals[0], 1.0, 1e-9);

  // max x (min -x) s.t. x <= 3 -> dual of <= row must be <= 0 (here -1).
  Problem q;
  q.add_variable(-1, 0, kInfinity);
  q.add_constraint({1}, RowSense::kLessEqual, 3);
  const Solution t = solve(q);
  ASSERT_TRUE(t.optimal());
  EXPECT_NEAR(t.duals[0], -1.0, 1e-9);
}

TEST(Simplex, ReducedCostsVanishForBasicVariables) {
  Problem p;
  p.add_variable(1, 0, 1);
  p.add_variable(2, 0, 1);
  p.add_variable(3, 0, 1);
  p.add_constraint({1, 1, 1}, RowSense::kGreaterEqual, 1.5);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  for (std::size_t j = 0; j < 3; ++j) {
    const bool basic = s.x[j] > 1e-9 && s.x[j] < 1.0 - 1e-9;
    if (basic) {
      EXPECT_NEAR(s.reduced_costs[j], 0.0, 1e-7);
    }
  }
}

TEST(Simplex, MalformedProblemThrows) {
  Problem p;
  p.add_variable(1, 0, 1);
  p.lower[0] = 2.0;  // lower > upper
  EXPECT_THROW((void)solve(p), std::invalid_argument);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  Problem p;
  p.add_variable(-1, 0, kInfinity);
  p.add_variable(-1, 0, kInfinity);
  for (int i = 1; i <= 8; ++i) {
    p.add_constraint({static_cast<double>(i), static_cast<double>(i)},
                     RowSense::kLessEqual, 4.0 * i);
  }
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -4.0, 1e-8);
}

// ---- Randomized property sweep: covering LPs ----

struct CoveringCase {
  std::size_t vars;
  std::size_t rows;
  std::uint64_t seed;
};

class CoveringLpTest : public ::testing::TestWithParam<CoveringCase> {};

TEST_P(CoveringLpTest, PrimalFeasibleAndStrongDuality) {
  const auto [n, m, seed] = GetParam();
  common::Rng rng(seed);
  Problem p;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 100.0), 0.0, 1.0);
  }
  std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.chance(0.7)) {
        rows[i][j] = std::floor(rng.uniform(1.0, 100.0));
        total += rows[i][j];
      }
    }
    p.add_constraint(rows[i], RowSense::kGreaterEqual, 0.3 * total);
  }

  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());

  // Primal feasibility.
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_GE(s.x[j], -1e-7);
    ASSERT_LE(s.x[j], 1.0 + 1e-7);
  }
  for (std::size_t i = 0; i < m; ++i) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) lhs += rows[i][j] * s.x[j];
    ASSERT_GE(lhs, p.rhs[i] - 1e-5);
  }

  // Dual feasibility + strong duality for  min c'x, Ax >= b, 0 <= x <= 1:
  //   dual obj = y'b - sum_j max(0, (A'y)_j - c_j),  y >= 0.
  double dual_obj = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    ASSERT_GE(s.duals[i], -1e-7);
    dual_obj += s.duals[i] * p.rhs[i];
  }
  for (std::size_t j = 0; j < n; ++j) {
    double aty = 0.0;
    for (std::size_t i = 0; i < m; ++i) aty += rows[i][j] * s.duals[i];
    dual_obj -= std::max(0.0, aty - p.objective[j]);
  }
  ASSERT_NEAR(dual_obj, s.objective, 1e-5 * (1.0 + std::abs(s.objective)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoveringLpTest,
    ::testing::Values(CoveringCase{5, 2, 1}, CoveringCase{10, 3, 2},
                      CoveringCase{20, 5, 3}, CoveringCase{50, 8, 4},
                      CoveringCase{100, 10, 5}, CoveringCase{200, 20, 6},
                      CoveringCase{40, 4, 7}, CoveringCase{60, 6, 8}));

TEST(SimplexWarmStart, MatchesColdSolveAfterCostChange) {
  common::Rng rng(77);
  Problem p;
  const std::size_t n = 60;
  const std::size_t m = 6;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 100.0), 0.0, 1.0);
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> row(n, 0.0);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.chance(0.6)) {
        row[j] = std::floor(rng.uniform(1.0, 50.0));
        total += row[j];
      }
    }
    p.add_constraint(row, RowSense::kGreaterEqual, 0.25 * total);
  }

  Basis warm;
  const Solution first = solve(p, {}, &warm);
  ASSERT_TRUE(first.optimal());
  ASSERT_FALSE(warm.empty());

  for (int round = 0; round < 10; ++round) {
    for (std::size_t j = 0; j < 10; ++j) {
      p.objective[j] = rng.uniform(1.0, 100.0);
    }
    const Solution warm_sol = solve(p, {}, &warm);
    const Solution cold_sol = solve(p);
    ASSERT_TRUE(warm_sol.optimal());
    ASSERT_TRUE(cold_sol.optimal());
    ASSERT_NEAR(warm_sol.objective, cold_sol.objective,
                1e-6 * (1.0 + std::abs(cold_sol.objective)));
    // Warm solves should be no slower (pivot-wise) than cold ones.
    EXPECT_LE(warm_sol.iterations, cold_sol.iterations + 5);
  }
}

TEST(SimplexWarmStart, GarbageBasisFallsBackGracefully) {
  Problem p;
  p.add_variable(1, 0, 1);
  p.add_constraint({1}, RowSense::kGreaterEqual, 0.5);
  Basis garbage;
  garbage.status = {7};          // invalid status code
  garbage.basic_vars = {999};    // out of range
  const Solution s = solve(p, {}, &garbage);
  ASSERT_TRUE(s.optimal());
  EXPECT_FALSE(s.warm_start_used);
  EXPECT_NEAR(s.objective, 0.5, 1e-9);
}

// Each rejection path must fall back to the crash/Phase-1 start and land on
// the same solution a cold solve computes, bit for bit (the fallback runs
// the identical deterministic code path).
namespace {

void expect_identical_to_cold(const Problem& p, Basis bad) {
  const Solution cold = solve(p);
  const Solution fell_back = solve(p, {}, &bad);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(fell_back.optimal());
  EXPECT_FALSE(fell_back.warm_start_used);
  EXPECT_EQ(fell_back.iterations, cold.iterations);
  EXPECT_EQ(fell_back.objective, cold.objective);
  EXPECT_EQ(fell_back.x, cold.x);
  EXPECT_EQ(fell_back.duals, cold.duals);
  EXPECT_EQ(fell_back.reduced_costs, cold.reduced_costs);
}

/// min x0+x1 s.t. x0+x1 >= 0.5, x in [0,1]; the problems below corrupt a
/// basis for this LP (n_struct = 2, m = 1: status size 3, one basic var).
Problem tiny_covering_lp() {
  Problem p;
  p.add_variable(1, 0, 1);
  p.add_variable(1, 0, 1);
  p.add_constraint({1, 1}, RowSense::kGreaterEqual, 0.5);
  return p;
}

}  // namespace

TEST(SimplexWarmStart, WrongSizeBasisRejected) {
  const Problem p = tiny_covering_lp();
  Basis bad;
  bad.status = {2, 0};      // too short: needs n_struct + m = 3 entries
  bad.basic_vars = {0};
  expect_identical_to_cold(p, bad);

  Basis bad2;
  bad2.status = {2, 0, 0};
  bad2.basic_vars = {0, 1};  // too many basic variables for one row
  expect_identical_to_cold(p, bad2);
}

TEST(SimplexWarmStart, SingularBasisRejected) {
  // Two variables with identical columns: a basis made of both is singular,
  // so refactorize() must fail and the solve fall back.
  Problem p;
  p.add_variable(1, 0, kInfinity);
  p.add_variable(2, 0, kInfinity);
  p.add_constraint({1, 1}, RowSense::kGreaterEqual, 1);
  p.add_constraint({1, 1}, RowSense::kLessEqual, 3);
  Basis singular;
  singular.status = {2, 2, 0, 0};
  singular.basic_vars = {0, 1};
  expect_identical_to_cold(p, singular);
}

TEST(SimplexWarmStart, PrimalInfeasibleBasisRejected) {
  // With x1 parked at its upper bound, the basic x0 would need value
  // 0.5 - 1 = -0.5 < lower: the basis refactorizes fine but fails the
  // primal feasibility check.
  const Problem p = tiny_covering_lp();
  Basis infeasible;
  infeasible.status = {2, 1, 0};
  infeasible.basic_vars = {0};
  expect_identical_to_cold(p, infeasible);
}

TEST(SimplexWarmStart, AtUpperStatusWithInfiniteBoundRejected) {
  Problem p;
  p.add_variable(1, 0, kInfinity);
  p.add_variable(1, 0, 1);
  p.add_constraint({1, 1}, RowSense::kGreaterEqual, 0.5);
  Basis bad;
  bad.status = {1, 0, 2};  // x0 "at upper" but its upper bound is infinite
  bad.basic_vars = {2};    // slack basic
  expect_identical_to_cold(p, bad);
}

TEST(SimplexWarmStart, BasicStatusWithoutBasisEntryRejected) {
  const Problem p = tiny_covering_lp();
  Basis bad;
  bad.status = {2, 2, 0};  // claims two basic variables...
  bad.basic_vars = {0};    // ...but only one row/basis slot
  expect_identical_to_cold(p, bad);
}

TEST(SimplexWarmStart, AcceptedBasisReportsWarmStartUsed) {
  Problem p = tiny_covering_lp();
  Basis warm;
  const Solution first = solve(p, {}, &warm);
  ASSERT_TRUE(first.optimal());
  ASSERT_FALSE(warm.empty());
  p.objective[0] = 3.0;  // cost change keeps the basis primal-feasible
  const Solution again = solve(p, {}, &warm);
  ASSERT_TRUE(again.optimal());
  EXPECT_TRUE(again.warm_start_used);
}

}  // namespace
}  // namespace carbon::lp

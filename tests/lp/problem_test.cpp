#include "carbon/lp/problem.hpp"

#include <gtest/gtest.h>

namespace carbon::lp {
namespace {

TEST(Problem, AddVariableAndConstraintShapes) {
  Problem p;
  EXPECT_EQ(p.add_variable(1.0, 0.0, 1.0), 0u);
  EXPECT_EQ(p.add_variable(2.0, 0.0, kInfinity), 1u);
  EXPECT_EQ(p.add_constraint({1.0, 2.0}, RowSense::kLessEqual, 3.0), 0u);
  EXPECT_EQ(p.num_vars(), 2u);
  EXPECT_EQ(p.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(p.columns[0][0], 1.0);
  EXPECT_DOUBLE_EQ(p.columns[1][0], 2.0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, ShortRowIsZeroPadded) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({5.0}, RowSense::kEqual, 5.0);  // second coeff implied 0
  EXPECT_DOUBLE_EQ(p.columns[1][0], 0.0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, VariablesAddedAfterConstraints) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kGreaterEqual, 0.5);
  p.add_variable(2.0, 0.0, 1.0);  // new column must have the row slot
  EXPECT_EQ(p.columns[1].size(), 1u);
  EXPECT_DOUBLE_EQ(p.columns[1][0], 0.0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, ValidateCatchesBadBounds) {
  Problem p;
  p.add_variable(1.0, 2.0, 1.0);  // lower > upper
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesInfiniteLower) {
  Problem p;
  p.add_variable(1.0, -kInfinity, 1.0);
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesNonFiniteRhs) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kLessEqual, kInfinity);
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesColumnSizeMismatch) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kLessEqual, 1.0);
  p.columns[0].push_back(9.0);  // corrupt
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, StatusStrings) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNumericalFailure),
               "numerical-failure");
}

TEST(Solution, OptimalFlag) {
  Solution s;
  EXPECT_FALSE(s.optimal());
  s.status = SolveStatus::kOptimal;
  EXPECT_TRUE(s.optimal());
}

}  // namespace
}  // namespace carbon::lp

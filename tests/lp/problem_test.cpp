#include "carbon/lp/problem.hpp"

#include <gtest/gtest.h>

#include <array>

namespace carbon::lp {
namespace {

TEST(Problem, AddVariableAndConstraintShapes) {
  Problem p;
  EXPECT_EQ(p.add_variable(1.0, 0.0, 1.0), 0u);
  EXPECT_EQ(p.add_variable(2.0, 0.0, kInfinity), 1u);
  EXPECT_EQ(p.add_constraint({1.0, 2.0}, RowSense::kLessEqual, 3.0), 0u);
  EXPECT_EQ(p.num_vars(), 2u);
  EXPECT_EQ(p.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 1), 2.0);
  EXPECT_EQ(p.num_nonzeros(), 2u);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, ShortRowIsZeroPadded) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({5.0}, RowSense::kEqual, 5.0);  // second coeff implied 0
  EXPECT_DOUBLE_EQ(p.coefficient(0, 1), 0.0);
  EXPECT_EQ(p.columns[1].nnz(), 0u);  // implied zero is not stored
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, DenseRowZerosAreNotStored) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_variable(1.0, 0.0, 1.0);
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0, 0.0, 3.0}, RowSense::kGreaterEqual, 1.0);
  EXPECT_EQ(p.num_nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 2), 3.0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, SparseConstraintOverload) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_variable(1.0, 0.0, 1.0);
  p.add_variable(1.0, 0.0, 1.0);
  const std::array<RowEntry, 2> row0 = {{{0, 2.0}, {2, 4.0}}};
  const std::array<RowEntry, 2> row1 = {{{1, 5.0}, {2, 0.0}}};  // 0 dropped
  EXPECT_EQ(p.add_constraint(row0, RowSense::kGreaterEqual, 1.0), 0u);
  EXPECT_EQ(p.add_constraint(row1, RowSense::kLessEqual, 7.0), 1u);
  EXPECT_EQ(p.num_nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(p.coefficient(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(p.coefficient(1, 2), 0.0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, SparseAndDenseConstraintsBuildIdenticalColumns) {
  Problem dense;
  Problem sparse;
  for (int j = 0; j < 3; ++j) {
    dense.add_variable(1.0, 0.0, 1.0);
    sparse.add_variable(1.0, 0.0, 1.0);
  }
  dense.add_constraint({1.0, 0.0, 2.0}, RowSense::kGreaterEqual, 1.0);
  dense.add_constraint({0.0, 3.0, 4.0}, RowSense::kGreaterEqual, 2.0);
  const std::array<RowEntry, 2> row0 = {{{0, 1.0}, {2, 2.0}}};
  const std::array<RowEntry, 2> row1 = {{{1, 3.0}, {2, 4.0}}};
  sparse.add_constraint(row0, RowSense::kGreaterEqual, 1.0);
  sparse.add_constraint(row1, RowSense::kGreaterEqual, 2.0);
  ASSERT_EQ(dense.columns.size(), sparse.columns.size());
  for (std::size_t j = 0; j < dense.columns.size(); ++j) {
    EXPECT_EQ(dense.columns[j].rows, sparse.columns[j].rows);
    EXPECT_EQ(dense.columns[j].values, sparse.columns[j].values);
  }
}

TEST(Problem, VariablesAddedAfterConstraints) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kGreaterEqual, 0.5);
  p.add_variable(2.0, 0.0, 1.0);  // new column starts empty
  EXPECT_EQ(p.columns[1].nnz(), 0u);
  EXPECT_DOUBLE_EQ(p.coefficient(0, 1), 0.0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, ValidateCatchesBadBounds) {
  Problem p;
  p.add_variable(1.0, 2.0, 1.0);  // lower > upper
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesInfiniteLower) {
  Problem p;
  p.add_variable(1.0, -kInfinity, 1.0);
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesNonFiniteRhs) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kLessEqual, kInfinity);
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesRaggedColumn) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kLessEqual, 1.0);
  p.columns[0].values.push_back(9.0);  // value with no row index
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesOutOfRangeRowIndex) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kLessEqual, 1.0);
  p.columns[0].push_back(5, 9.0);  // row 5 does not exist
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, ValidateCatchesUnsortedRowIndices) {
  Problem p;
  p.add_variable(1.0, 0.0, 1.0);
  p.add_constraint({1.0}, RowSense::kLessEqual, 1.0);
  p.add_constraint({2.0}, RowSense::kLessEqual, 1.0);
  std::swap(p.columns[0].rows[0], p.columns[0].rows[1]);
  EXPECT_FALSE(p.validate().empty());
}

TEST(Problem, StatusStrings) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(SolveStatus::kNumericalFailure),
               "numerical-failure");
}

TEST(Solution, OptimalFlag) {
  Solution s;
  EXPECT_FALSE(s.optimal());
  s.status = SolveStatus::kOptimal;
  EXPECT_TRUE(s.optimal());
}

}  // namespace
}  // namespace carbon::lp

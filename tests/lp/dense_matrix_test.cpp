#include "carbon/lp/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "carbon/common/rng.hpp"

namespace carbon::lp {
namespace {

TEST(DenseMatrix, IdentityAndAccess) {
  auto m = DenseMatrix::identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrix, Multiply) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const std::vector<double> v = {1, 0, -1};
  std::vector<double> out(2);
  m.multiply(v, out);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(DenseMatrix, MultiplyTransposed) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const std::vector<double> v = {1, -1};
  std::vector<double> out(3);
  m.multiply_transposed(v, out);
  EXPECT_DOUBLE_EQ(out[0], -3.0);
  EXPECT_DOUBLE_EQ(out[1], -3.0);
  EXPECT_DOUBLE_EQ(out[2], -3.0);
}

TEST(DenseMatrix, InvertKnown2x2) {
  DenseMatrix m(2, 2);
  m(0, 0) = 4;
  m(0, 1) = 7;
  m(1, 0) = 2;
  m(1, 1) = 6;
  ASSERT_TRUE(m.invert());
  EXPECT_NEAR(m(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(m(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(m(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(m(1, 1), 0.4, 1e-12);
}

TEST(DenseMatrix, InvertSingularFails) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 2;
  m(1, 1) = 4;
  EXPECT_FALSE(m.invert());
}

TEST(DenseMatrix, InvertRequiresPivoting) {
  // Zero on the diagonal: only works with row exchanges.
  DenseMatrix m(2, 2);
  m(0, 0) = 0;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 0;
  ASSERT_TRUE(m.invert());
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

class InvertRoundtripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InvertRoundtripTest, RandomMatrixTimesInverseIsIdentity) {
  const std::size_t n = GetParam();
  common::Rng rng(n);
  DenseMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = rng.uniform(-10, 10);
    }
    m(r, r) += 20.0;  // diagonally dominant => nonsingular
  }
  DenseMatrix inv = m;
  ASSERT_TRUE(inv.invert());
  // Verify M * inv(M) = I column by column.
  std::vector<double> col(n);
  std::vector<double> prod(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = inv(r, c);
    m.multiply(col, prod);
    for (std::size_t r = 0; r < n; ++r) {
      ASSERT_NEAR(prod[r], r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InvertRoundtripTest,
                         ::testing::Values(1, 2, 5, 10, 30, 50));

}  // namespace
}  // namespace carbon::lp

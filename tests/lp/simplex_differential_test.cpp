// Dense-vs-sparse differential test: the sparse simplex kernels must be
// BIT-identical to the dense reference kernels (use_dense_kernels) on every
// outcome class — optimal, degenerate, redundant-row, infeasible, unbounded —
// with and without warm starts. Not "close": identical. Skipping a `+= 0.0`
// term (or a rank-1 update scaled by an exact zero) is IEEE-exact, so any
// difference in any output bit is a kernel bug, and EXPECT_EQ on doubles is
// the correct comparison.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::lp {
namespace {

SimplexOptions dense_opts() {
  SimplexOptions o;
  o.use_dense_kernels = true;
  return o;
}

void expect_bitwise_equal(const Solution& sparse, const Solution& dense) {
  ASSERT_EQ(sparse.status, dense.status);
  EXPECT_EQ(sparse.iterations, dense.iterations);
  EXPECT_EQ(sparse.objective, dense.objective);
  ASSERT_EQ(sparse.x.size(), dense.x.size());
  for (std::size_t j = 0; j < sparse.x.size(); ++j) {
    EXPECT_EQ(sparse.x[j], dense.x[j]) << "x[" << j << "]";
  }
  ASSERT_EQ(sparse.duals.size(), dense.duals.size());
  for (std::size_t i = 0; i < sparse.duals.size(); ++i) {
    EXPECT_EQ(sparse.duals[i], dense.duals[i]) << "dual[" << i << "]";
  }
  ASSERT_EQ(sparse.reduced_costs.size(), dense.reduced_costs.size());
  for (std::size_t j = 0; j < sparse.reduced_costs.size(); ++j) {
    EXPECT_EQ(sparse.reduced_costs[j], dense.reduced_costs[j])
        << "reduced_cost[" << j << "]";
  }
}

/// Solves `p` both ways (cold and, when an optimal basis emerges, warm) and
/// asserts bitwise agreement of every output, including the exported basis.
void differential_check(const Problem& p) {
  Basis sparse_basis;
  Basis dense_basis;
  const Solution sparse = solve(p, {}, &sparse_basis);
  const Solution dense = solve(p, dense_opts(), &dense_basis);
  expect_bitwise_equal(sparse, dense);
  EXPECT_EQ(sparse_basis.status, dense_basis.status);
  EXPECT_EQ(sparse_basis.basic_vars, dense_basis.basic_vars);

  if (sparse.optimal() && !sparse_basis.empty()) {
    // Warm-start both modes from the basis the cold solves agreed on; the
    // warm path (refactorize + pivots from the installed basis) must agree
    // bitwise too.
    Basis warm_sparse = sparse_basis;
    Basis warm_dense = sparse_basis;
    const Solution again_sparse = solve(p, {}, &warm_sparse);
    const Solution again_dense = solve(p, dense_opts(), &warm_dense);
    EXPECT_TRUE(again_sparse.warm_start_used);
    EXPECT_TRUE(again_dense.warm_start_used);
    expect_bitwise_equal(again_sparse, again_dense);
  }
}

/// Random bounded LP shaped like the covering relaxations (n >> m, sparse
/// non-negative integer coefficients, >= rows) but with knobs to hit every
/// outcome class.
Problem random_lp(common::Rng& rng, std::size_t m, std::size_t n,
                  double density, bool integer_coeffs) {
  Problem p;
  for (std::size_t j = 0; j < n; ++j) {
    const double cost = rng.uniform(-5.0, 100.0);
    const double hi = rng.chance(0.8) ? 1.0 : kInfinity;
    p.add_variable(cost, 0.0, hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> row(n, 0.0);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!rng.chance(density)) continue;
      row[j] = integer_coeffs ? std::floor(rng.uniform(1.0, 20.0))
                              : rng.uniform(0.1, 10.0);
      total += row[j];
    }
    const auto sense = rng.chance(0.7)   ? RowSense::kGreaterEqual
                       : rng.chance(0.5) ? RowSense::kLessEqual
                                         : RowSense::kEqual;
    p.add_constraint(row, sense, rng.uniform(0.1, 0.4) * total);
  }
  return p;
}

TEST(SimplexDifferential, RandomizedBoundedLps) {
  common::Rng rng(20240806);
  const struct {
    std::size_t m, n;
    double density;
  } grid[] = {{3, 12, 0.3},  {5, 30, 0.2},  {8, 40, 0.5},
              {10, 80, 0.1}, {15, 60, 0.25}, {20, 150, 0.08}};
  for (const auto& g : grid) {
    for (int rep = 0; rep < 6; ++rep) {
      const Problem p =
          random_lp(rng, g.m, g.n, g.density, /*integer_coeffs=*/rep % 2 == 0);
      differential_check(p);
    }
  }
}

TEST(SimplexDifferential, DegenerateVertices) {
  // Many constraints active at the same point (rhs ties) force degenerate
  // pivots; both modes must stall and recover identically.
  common::Rng rng(7);
  for (int rep = 0; rep < 8; ++rep) {
    Problem p;
    const std::size_t n = 10;
    for (std::size_t j = 0; j < n; ++j) {
      p.add_variable(rng.uniform(1.0, 10.0), 0.0, 1.0);
    }
    for (std::size_t i = 0; i < 6; ++i) {
      std::vector<double> row(n, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.chance(0.4)) row[j] = 1.0;  // identical coefficients => ties
      }
      p.add_constraint(row, RowSense::kGreaterEqual, 2.0);
    }
    differential_check(p);
  }
}

TEST(SimplexDifferential, RedundantRows) {
  // Duplicate rows leave artificials pinned on redundant equality rows in
  // Phase 1; purge_artificials must behave identically in both modes.
  common::Rng rng(11);
  for (int rep = 0; rep < 8; ++rep) {
    Problem p;
    const std::size_t n = 8;
    for (std::size_t j = 0; j < n; ++j) {
      p.add_variable(rng.uniform(1.0, 10.0), 0.0, 2.0);
    }
    std::vector<double> row(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.chance(0.5)) row[j] = std::floor(rng.uniform(1.0, 5.0));
    }
    p.add_constraint(row, RowSense::kEqual, 3.0);
    p.add_constraint(row, RowSense::kEqual, 3.0);  // exact duplicate
    std::vector<double> row2(n, 1.0);
    p.add_constraint(row2, RowSense::kGreaterEqual, 1.0);
    differential_check(p);
  }
}

TEST(SimplexDifferential, InfeasibleLps) {
  common::Rng rng(13);
  for (int rep = 0; rep < 8; ++rep) {
    Problem p;
    const std::size_t n = 6;
    for (std::size_t j = 0; j < n; ++j) {
      p.add_variable(rng.uniform(1.0, 10.0), 0.0, 1.0);
    }
    std::vector<double> row(n, 0.0);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::floor(rng.uniform(1.0, 5.0));
      total += row[j];
    }
    // Demand exceeds what the bounded variables can supply.
    p.add_constraint(row, RowSense::kGreaterEqual, total + 1.0);
    const Solution sparse = solve(p);
    const Solution dense = solve(p, dense_opts());
    EXPECT_EQ(sparse.status, SolveStatus::kInfeasible);
    EXPECT_EQ(dense.status, SolveStatus::kInfeasible);
    EXPECT_EQ(sparse.iterations, dense.iterations);
  }
}

TEST(SimplexDifferential, UnboundedLps) {
  common::Rng rng(17);
  for (int rep = 0; rep < 8; ++rep) {
    Problem p;
    const std::size_t n = 5;
    for (std::size_t j = 0; j < n; ++j) {
      // Negative cost + infinite upper bound => profitable ray.
      p.add_variable(-rng.uniform(1.0, 5.0), 0.0, kInfinity);
    }
    std::vector<double> row(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.chance(0.6)) row[j] = rng.uniform(0.5, 3.0);
    }
    p.add_constraint(row, RowSense::kGreaterEqual, 1.0);
    const Solution sparse = solve(p);
    const Solution dense = solve(p, dense_opts());
    EXPECT_EQ(sparse.status, SolveStatus::kUnbounded);
    EXPECT_EQ(dense.status, SolveStatus::kUnbounded);
    EXPECT_EQ(sparse.iterations, dense.iterations);
  }
}

TEST(SimplexDifferential, SparseSolveReportsSkippedWork) {
  // On a genuinely sparse instance the sparse kernels must report skipped
  // FTRAN MACs; the dense reference must report none (it does all the work).
  common::Rng rng(23);
  const Problem p = random_lp(rng, 12, 60, 0.15, /*integer_coeffs=*/true);
  Basis warm;
  const Solution sparse = solve(p, {}, &warm);
  const Solution dense = solve(p, dense_opts());
  ASSERT_EQ(sparse.status, dense.status);
  EXPECT_GT(sparse.ftran_nnz_skipped, 0);
  EXPECT_EQ(dense.ftran_nnz_skipped, 0);
  if (sparse.optimal() && !warm.empty()) {
    // Installing a warm basis always refactorizes once.
    const Solution again = solve(p, {}, &warm);
    EXPECT_TRUE(again.warm_start_used);
    EXPECT_GT(again.refactorizations, 0);
  }
}

}  // namespace
}  // namespace carbon::lp

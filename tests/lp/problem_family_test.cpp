// Tests for lp::ProblemFamily: once-only validation at construction,
// cost-only rebind() semantics (prefix copy, length check, rebind counter),
// and the central equivalence contract of the hot path — a family solve
// with a reused SolveScratch is bit-identical to a plain validated-Problem
// solve of the same data, including on degenerate LPs with alternate
// optima, where "equally optimal but different bits" would silently break
// the golden-trajectory harness.

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "carbon/lp/problem_family.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::lp {
namespace {

/// Covering-style LP shaped like the LL relaxation: x in [0, 1], rows
/// "each service covered at least once" over overlapping bundles.
Problem covering_problem(const std::vector<double>& costs) {
  Problem p;
  for (const double c : costs) p.add_variable(c, 0.0, 1.0);
  // 6 variables, 4 rows; every row has >= 2 covering columns.
  p.add_constraint({1, 1, 0, 0, 1, 0}, RowSense::kGreaterEqual, 1.0);
  p.add_constraint({0, 1, 1, 0, 0, 1}, RowSense::kGreaterEqual, 1.0);
  p.add_constraint({1, 0, 1, 1, 0, 0}, RowSense::kGreaterEqual, 1.0);
  p.add_constraint({0, 0, 0, 1, 1, 1}, RowSense::kGreaterEqual, 1.0);
  return p;
}

void expect_bitwise_equal(const Solution& want, const Solution& got) {
  ASSERT_EQ(want.status, got.status);
  EXPECT_EQ(want.objective, got.objective);  // bitwise, not tolerance
  ASSERT_EQ(want.x.size(), got.x.size());
  for (std::size_t j = 0; j < want.x.size(); ++j) {
    EXPECT_EQ(want.x[j], got.x[j]) << "x[" << j << "]";
  }
  ASSERT_EQ(want.duals.size(), got.duals.size());
  for (std::size_t i = 0; i < want.duals.size(); ++i) {
    EXPECT_EQ(want.duals[i], got.duals[i]) << "dual[" << i << "]";
  }
  ASSERT_EQ(want.reduced_costs.size(), got.reduced_costs.size());
  for (std::size_t j = 0; j < want.reduced_costs.size(); ++j) {
    EXPECT_EQ(want.reduced_costs[j], got.reduced_costs[j]) << "rc[" << j << "]";
  }
  EXPECT_EQ(want.iterations, got.iterations);
}

TEST(ProblemFamily, ConstructionValidatesOnce) {
  Problem bad = covering_problem({1, 1, 1, 1, 1, 1});
  bad.lower[2] = 2.0;  // lower > upper: exactly what lp::solve rejects
  EXPECT_THROW(ProblemFamily{std::move(bad)}, std::invalid_argument);
  EXPECT_NO_THROW(ProblemFamily{covering_problem({1, 1, 1, 1, 1, 1})});
}

TEST(ProblemFamily, RebindCopiesPrefixAndCountsCalls) {
  ProblemFamily fam(covering_problem({10, 20, 30, 40, 50, 60}));
  EXPECT_EQ(fam.rebinds(), 0);

  const std::vector<double> prefix = {1.5, 2.5, 3.5};
  fam.rebind(prefix);
  EXPECT_EQ(fam.rebinds(), 1);
  const std::vector<double>& obj = fam.problem().objective;
  EXPECT_EQ(obj[0], 1.5);
  EXPECT_EQ(obj[1], 2.5);
  EXPECT_EQ(obj[2], 3.5);
  // Trailing coefficients keep their current values (pricing-prefix rule).
  EXPECT_EQ(obj[3], 40.0);
  EXPECT_EQ(obj[4], 50.0);
  EXPECT_EQ(obj[5], 60.0);

  const std::vector<double> too_long(7, 1.0);
  EXPECT_THROW(fam.rebind(too_long), std::invalid_argument);
  EXPECT_EQ(fam.rebinds(), 1);

  // Copies share the validated problem but start their own rebind count.
  const ProblemFamily copy(fam);
  EXPECT_EQ(copy.rebinds(), 0);
  EXPECT_EQ(copy.problem().objective, fam.problem().objective);
  ProblemFamily assigned(covering_problem({1, 1, 1, 1, 1, 1}));
  assigned.rebind(prefix);
  EXPECT_EQ(assigned.rebinds(), 1);
  assigned = fam;
  EXPECT_EQ(assigned.rebinds(), 0);
}

TEST(ProblemFamily, FamilySolveMatchesPlainSolveAcrossRebinds) {
  // A reused family + scratch + carried basis must produce the SAME bits as
  // building and solving a fresh validated Problem with the same warm basis
  // at every step of a cost-vector walk (the UL population pattern).
  ProblemFamily fam(covering_problem({3, 5, 2, 7, 4, 6}));
  SolveScratch scratch;
  Basis family_warm;  // carried across the walk, like the evaluator does

  const std::vector<std::vector<double>> walk = {
      {3, 5, 2, 7, 4, 6}, {3.1, 5, 2, 7, 4, 6},   {2.9, 5.2, 2, 7, 4, 6},
      {3, 5, 8, 1, 4, 6}, {0.5, 0.5, 9, 9, 9, 9}, {3.1, 5, 2, 7, 4, 6}};
  for (std::size_t step = 0; step < walk.size(); ++step) {
    SCOPED_TRACE("walk step " + std::to_string(step));
    fam.rebind(walk[step]);

    // Reference: fresh Problem, same warm-basis content.
    Problem plain = covering_problem(walk[step]);
    Basis plain_warm = family_warm;
    const Solution want = solve(plain, {}, &plain_warm);

    const Solution got = solve(fam, {}, &family_warm, &scratch);
    expect_bitwise_equal(want, got);
    ASSERT_TRUE(got.optimal());
    EXPECT_TRUE(got.basis_saved);
    // The written-back bases must match too — they seed the next step.
    EXPECT_EQ(plain_warm.status, family_warm.status);
    EXPECT_EQ(plain_warm.basic_vars, family_warm.basic_vars);
    if (step > 0) EXPECT_TRUE(got.warm_start_used);
  }
  EXPECT_EQ(fam.rebinds(), static_cast<long long>(walk.size()));
}

TEST(ProblemFamily, RejectedWarmBasisFallsBackAndIsReported) {
  ProblemFamily fam(covering_problem({3, 5, 2, 7, 4, 6}));
  SolveScratch scratch;

  Basis garbage;
  garbage.status.assign(2, 9);  // wrong size AND invalid status codes
  garbage.basic_vars = {0, 1};
  const Solution sol = solve(fam, {}, &garbage, &scratch);
  ASSERT_TRUE(sol.optimal());
  EXPECT_TRUE(sol.warm_start_rejected);
  EXPECT_FALSE(sol.warm_start_used);
  // The fallback solve must still equal a cold solve bit for bit.
  Problem plain = covering_problem({3, 5, 2, 7, 4, 6});
  const Solution cold = solve(plain);
  expect_bitwise_equal(cold, sol);

  // The clean optimal basis was written back over the garbage; a re-solve
  // from it is accepted.
  ASSERT_TRUE(sol.basis_saved);
  const Solution again = solve(fam, {}, &garbage, &scratch);
  EXPECT_TRUE(again.warm_start_used);
  EXPECT_FALSE(again.warm_start_rejected);
}

TEST(ProblemFamily, DegenerateAlternateOptimaAreBitwiseReproducible) {
  // Duplicate columns with identical costs: the optimal FACE has many
  // vertices, so "any optimum" is not unique — but for a fixed (family,
  // cost vector, warm basis) the solver must pick the SAME vertex, with the
  // same duals, every time, with or without scratch reuse and regardless of
  // what was solved in between. This is the property that makes the basis
  // pool a golden AXIS rather than a nondeterminism source.
  auto degenerate = [] {
    Problem p;
    for (int j = 0; j < 4; ++j) p.add_variable(1.0, 0.0, 1.0);  // 4 clones
    p.add_variable(3.0, 0.0, 1.0);
    p.add_constraint({1, 1, 1, 1, 0}, RowSense::kGreaterEqual, 1.0);
    p.add_constraint({1, 1, 1, 1, 1}, RowSense::kGreaterEqual, 2.0);
    return p;
  };
  ProblemFamily fam(degenerate());

  // Derive a warm basis from a different cost vector first.
  SolveScratch s0;
  Basis warm;
  fam.rebind(std::vector<double>{2.0, 1.0, 1.0, 2.0, 3.0});
  ASSERT_TRUE(solve(fam, {}, &warm, &s0).optimal());
  const Basis warm_snapshot = warm;

  const std::vector<double> cost = {1.0, 1.0, 1.0, 1.0, 3.0};
  fam.rebind(cost);
  Basis b1 = warm_snapshot;
  const Solution first = solve(fam, {}, &b1, &s0);
  ASSERT_TRUE(first.optimal());

  // Re-solve after polluting the scratch with other work, from a fresh
  // scratch, and from a fresh family copy: all identical bits.
  fam.rebind(std::vector<double>{9.0, 0.1, 5.0, 0.1, 0.2});
  (void)solve(fam, {}, nullptr, &s0);
  fam.rebind(cost);
  Basis b2 = warm_snapshot;
  const Solution polluted = solve(fam, {}, &b2, &s0);
  expect_bitwise_equal(first, polluted);

  SolveScratch fresh;
  ProblemFamily fam2(degenerate());
  fam2.rebind(cost);
  Basis b3 = warm_snapshot;
  const Solution other_family = solve(fam2, {}, &b3, &fresh);
  expect_bitwise_equal(first, other_family);
  EXPECT_EQ(b1.status, b3.status);
  EXPECT_EQ(b1.basic_vars, b3.basic_vars);
}

}  // namespace
}  // namespace carbon::lp

// Stress and failure-injection tests for the simplex beyond the happy path.
#include <gtest/gtest.h>

#include <cmath>

#include "carbon/common/rng.hpp"
#include "carbon/lp/simplex.hpp"

namespace carbon::lp {
namespace {

/// Brute-force reference for 2-variable LPs: evaluate all vertex candidates
/// (constraint intersections + bound corners) and keep the feasible best.
double brute_force_2var(const Problem& p) {
  std::vector<std::pair<double, double>> candidates;
  struct Line {
    double a, b, c;  // a x + b y = c
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < p.num_rows(); ++i) {
    lines.push_back({p.coefficient(i, 0), p.coefficient(i, 1), p.rhs[i]});
  }
  // Bounds as lines.
  for (int v = 0; v < 2; ++v) {
    Line lo{v == 0 ? 1.0 : 0.0, v == 1 ? 1.0 : 0.0, p.lower[v]};
    lines.push_back(lo);
    if (std::isfinite(p.upper[v])) {
      Line hi{v == 0 ? 1.0 : 0.0, v == 1 ? 1.0 : 0.0, p.upper[v]};
      lines.push_back(hi);
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-12) continue;
      const double x =
          (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double y =
          (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      candidates.push_back({x, y});
    }
  }

  const auto feasible = [&](double x, double y) {
    if (x < p.lower[0] - 1e-7 || y < p.lower[1] - 1e-7) return false;
    if (std::isfinite(p.upper[0]) && x > p.upper[0] + 1e-7) return false;
    if (std::isfinite(p.upper[1]) && y > p.upper[1] + 1e-7) return false;
    for (std::size_t i = 0; i < p.num_rows(); ++i) {
      const double lhs = p.coefficient(i, 0) * x + p.coefficient(i, 1) * y;
      switch (p.sense[i]) {
        case RowSense::kLessEqual:
          if (lhs > p.rhs[i] + 1e-7) return false;
          break;
        case RowSense::kGreaterEqual:
          if (lhs < p.rhs[i] - 1e-7) return false;
          break;
        case RowSense::kEqual:
          if (std::abs(lhs - p.rhs[i]) > 1e-7) return false;
          break;
      }
    }
    return true;
  };

  double best = std::numeric_limits<double>::infinity();
  for (const auto& [x, y] : candidates) {
    if (!feasible(x, y)) continue;
    best = std::min(best, p.objective[0] * x + p.objective[1] * y);
  }
  return best;
}

class RandomTwoVarLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTwoVarLpTest, MatchesVertexEnumeration) {
  common::Rng rng(GetParam() * 17 + 3);
  for (int rep = 0; rep < 30; ++rep) {
    Problem p;
    p.add_variable(rng.uniform(-5, 5), 0.0, rng.uniform(1.0, 10.0));
    p.add_variable(rng.uniform(-5, 5), 0.0, rng.uniform(1.0, 10.0));
    const int rows = static_cast<int>(rng.range(1, 4));
    for (int i = 0; i < rows; ++i) {
      const double a = rng.uniform(-3, 3);
      const double b = rng.uniform(-3, 3);
      // RHS chosen so the box center is feasible for <= rows: keeps most
      // problems feasible without biasing the optimum.
      const double mid = a * p.upper[0] / 2 + b * p.upper[1] / 2;
      p.add_constraint({a, b}, RowSense::kLessEqual,
                       mid + rng.uniform(0.0, 5.0));
    }
    const Solution s = solve(p);
    const double reference = brute_force_2var(p);
    if (s.status == SolveStatus::kInfeasible) {
      ASSERT_TRUE(std::isinf(reference))
          << "solver said infeasible but vertices exist";
      continue;
    }
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    ASSERT_NEAR(s.objective, reference, 1e-5 * (1.0 + std::abs(reference)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTwoVarLpTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(SimplexStress, IterationLimitReported) {
  common::Rng rng(5);
  Problem p;
  const std::size_t n = 50;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 10.0), 0.0, 1.0);
  }
  std::vector<double> row(n);
  for (std::size_t i = 0; i < 8; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::floor(rng.uniform(1.0, 9.0));
      total += row[j];
    }
    p.add_constraint(row, RowSense::kGreaterEqual, 0.4 * total);
  }
  SimplexOptions opts;
  opts.max_iterations = 2;  // absurdly small
  const Solution s = solve(p, opts);
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);
}

TEST(SimplexStress, AggressiveRefactorizationStaysCorrect) {
  common::Rng rng(6);
  Problem p;
  const std::size_t n = 40;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 10.0), 0.0, 1.0);
  }
  std::vector<double> row(n);
  for (std::size_t i = 0; i < 6; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::floor(rng.uniform(0.0, 9.0));
      total += row[j];
    }
    p.add_constraint(row, RowSense::kGreaterEqual, 0.3 * total);
  }
  const Solution normal = solve(p);
  SimplexOptions paranoid;
  paranoid.refactor_interval = 1;  // refactorize every pivot
  const Solution refactored = solve(p, paranoid);
  ASSERT_TRUE(normal.optimal());
  ASSERT_TRUE(refactored.optimal());
  EXPECT_NEAR(normal.objective, refactored.objective,
              1e-7 * (1.0 + std::abs(normal.objective)));
}

TEST(SimplexStress, BlandModeStillReachesOptimum) {
  common::Rng rng(7);
  Problem p;
  const std::size_t n = 30;
  for (std::size_t j = 0; j < n; ++j) {
    p.add_variable(rng.uniform(1.0, 10.0), 0.0, 1.0);
  }
  std::vector<double> row(n);
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    row[j] = 1.0;
    total += 1.0;
  }
  p.add_constraint(row, RowSense::kGreaterEqual, 0.5 * total);
  SimplexOptions bland_now;
  bland_now.bland_threshold = 0;  // Bland pricing from the first pivot
  const Solution a = solve(p);
  const Solution b = solve(p, bland_now);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-8 * (1.0 + std::abs(a.objective)));
}

TEST(SimplexStress, EmptyObjectiveIsAFeasibilityCheck) {
  Problem p;
  p.add_variable(0.0, 0.0, 1.0);
  p.add_variable(0.0, 0.0, 1.0);
  p.add_constraint({1, 1}, RowSense::kGreaterEqual, 1.5);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 0.0, 1e-12);
  EXPECT_GE(s.x[0] + s.x[1], 1.5 - 1e-7);
}

TEST(SimplexStress, MixedSenseSystem) {
  // min x + 2y + 3z  s.t.  x + y >= 2,  y + z <= 3,  x + z = 2,
  // all in [0, 5].
  Problem p;
  p.add_variable(1, 0, 5);
  p.add_variable(2, 0, 5);
  p.add_variable(3, 0, 5);
  p.add_constraint({1, 1, 0}, RowSense::kGreaterEqual, 2);
  p.add_constraint({0, 1, 1}, RowSense::kLessEqual, 3);
  p.add_constraint({1, 0, 1}, RowSense::kEqual, 2);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  // Best: x = 2 (z = 0), y = 0 -> objective 2.
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
}

}  // namespace
}  // namespace carbon::lp

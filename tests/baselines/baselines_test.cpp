#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "carbon/baselines/biga.hpp"
#include "carbon/baselines/codba.hpp"
#include "carbon/baselines/nested_ga.hpp"
#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/multi_follower.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/core/experiment.hpp"
#include "carbon/cover/generator.hpp"

namespace carbon::baselines {
namespace {

bcpop::Instance small_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 25;
  cfg.num_services = 3;
  cfg.seed = 31;
  return bcpop::Instance(cover::generate(cfg), 3);
}

TEST(Biga, SmokeFeasibleAndDeterministic) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.ul_eval_budget = 150;
  cfg.ll_eval_budget = 150;
  cfg.seed = 3;
  const core::RunResult a = BigaSolver(inst, cfg).run();
  const core::RunResult b = BigaSolver(inst, cfg).run();
  ASSERT_TRUE(a.best_evaluation.ll_feasible);
  EXPECT_GT(a.best_ul_objective, 0.0);
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
  EXPECT_DOUBLE_EQ(a.best_gap, b.best_gap);
}

TEST(Biga, RespectsBudgets) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 10;
  cfg.ul_eval_budget = 100;
  cfg.ll_eval_budget = 100;
  cfg.seed = 3;
  const core::RunResult r = BigaSolver(inst, cfg).run();
  EXPECT_LE(r.ul_evaluations, 100 + 10);
  EXPECT_LE(r.ll_evaluations, 100 + 10);
  EXPECT_GT(r.generations, 0);
}

TEST(Biga, TracePhaseLabeled) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 8;
  cfg.ul_eval_budget = 60;
  cfg.ll_eval_budget = 60;
  cfg.seed = 3;
  const core::RunResult r = BigaSolver(inst, cfg).run();
  ASSERT_FALSE(r.convergence.empty());
  EXPECT_EQ(r.convergence.front().phase, "biga");
}

TEST(Biga, InvalidConfigThrows) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(BigaSolver(inst, cfg), std::invalid_argument);
}

TEST(Codba, SmokeFeasibleAndDeterministic) {
  const bcpop::Instance inst = small_instance();
  CodbaConfig cfg;
  cfg.ul_population_size = 10;
  cfg.archive_size = 10;
  cfg.decomposition_width = 3;
  cfg.ll_subpopulation_size = 6;
  cfg.ll_subpopulation_generations = 2;
  cfg.ul_eval_budget = 300;
  cfg.ll_eval_budget = 300;
  cfg.seed = 5;
  const core::RunResult a = CodbaSolver(inst, cfg).run();
  const core::RunResult b = CodbaSolver(inst, cfg).run();
  ASSERT_TRUE(a.best_evaluation.ll_feasible);
  EXPECT_GT(a.best_ul_objective, 0.0);
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
}

TEST(Codba, BudgetStopsSubpopulations) {
  const bcpop::Instance inst = small_instance();
  CodbaConfig cfg;
  cfg.ul_population_size = 10;
  cfg.decomposition_width = 5;
  cfg.ll_subpopulation_size = 8;
  cfg.ll_subpopulation_generations = 4;
  cfg.ul_eval_budget = 10'000;
  cfg.ll_eval_budget = 120;  // LL budget binds
  cfg.seed = 5;
  const core::RunResult r = CodbaSolver(inst, cfg).run();
  // Overshoot bounded by one subpopulation generation.
  EXPECT_LE(r.ll_evaluations, 120 + 8);
}

TEST(Codba, InvalidConfigsThrow) {
  const bcpop::Instance inst = small_instance();
  CodbaConfig cfg;
  cfg.ll_subpopulation_size = 1;
  EXPECT_THROW(CodbaSolver(inst, cfg), std::invalid_argument);
  cfg = CodbaConfig{};
  cfg.decomposition_width = 0;
  EXPECT_THROW(CodbaSolver(inst, cfg), std::invalid_argument);
}

TEST(Baselines, RunOnMultiFollowerMarkets) {
  const auto problem =
      bcpop::make_multi_follower(small_instance(), 2, /*seed=*/4);
  {
    bcpop::MultiFollowerEvaluator eval(problem);
    BigaConfig cfg;
    cfg.population_size = 8;
    cfg.ul_eval_budget = 60;
    cfg.ll_eval_budget = 240;
    const auto r = BigaSolver(eval, cfg).run();
    EXPECT_TRUE(r.best_evaluation.ll_feasible);
  }
  {
    bcpop::MultiFollowerEvaluator eval(problem);
    CodbaConfig cfg;
    cfg.ul_population_size = 8;
    cfg.decomposition_width = 2;
    cfg.ll_subpopulation_size = 4;
    cfg.ul_eval_budget = 60;
    cfg.ll_eval_budget = 240;
    const auto r = CodbaSolver(eval, cfg).run();
    EXPECT_TRUE(r.best_evaluation.ll_feasible);
  }
}

TEST(ExperimentDispatch, NewAlgorithmsAreWired) {
  const bcpop::Instance inst = small_instance();
  core::ExperimentConfig cfg;
  cfg.runs = 1;
  cfg.population_size = 8;
  cfg.archive_size = 8;
  cfg.ul_eval_budget = 60;
  cfg.ll_eval_budget = 200;
  cfg.heuristic_sample_size = 2;
  for (const auto a :
       {core::Algorithm::kBiga, core::Algorithm::kCodba,
        core::Algorithm::kCarbonMemetic}) {
    const auto cell = core::run_cell(inst, a, cfg);
    EXPECT_TRUE(cell.runs[0].best_evaluation.ll_feasible)
        << core::to_string(a);
  }
  EXPECT_STREQ(core::to_string(core::Algorithm::kBiga), "BIGA");
  EXPECT_STREQ(core::to_string(core::Algorithm::kCodba), "CODBA");
  EXPECT_STREQ(core::to_string(core::Algorithm::kCarbonMemetic),
               "CARBON-MEMETIC");
}

TEST(MemeticCarbon, PolishNeverWorsensTheGap) {
  const bcpop::Instance inst = small_instance();
  core::ExperimentConfig cfg;
  cfg.runs = 2;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.ul_eval_budget = 100;
  cfg.ll_eval_budget = 400;
  cfg.heuristic_sample_size = 2;
  const auto plain = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto memetic =
      core::run_cell(inst, core::Algorithm::kCarbonMemetic, cfg);
  // Polish changes trajectories, so strict dominance is not guaranteed —
  // but the memetic variant must stay in the same quality league.
  EXPECT_LE(memetic.gap.mean, 2.0 * plain.gap.mean + 1.0);
}

// ---- Differential harness against a brute-force lower level ----------------
//
// On an instance small enough to enumerate every follower selection (2^M
// subsets), the true LL optimum A*(x) is computable exactly. That pins down
// the invariants every solver in the zoo — CARBON and the three baselines —
// must satisfy at its reported best, whatever trajectory got it there:
//   LB(x) <= A*(x) <= w(x)      (relaxation / optimum / heuristic sandwich)
//   best_ul == leader_revenue(best_pricing, best_selection), recomputed
//   budget accounting within one generation of the configured caps.

/// 10 bundles -> 1024 subsets: enumerable in microseconds.
bcpop::Instance tiny_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 10;
  cfg.num_services = 2;
  cfg.seed = 11;
  return bcpop::Instance(cover::generate(cfg), 2);
}

/// Exact follower optimum A*(x) by exhaustive enumeration; infinity when no
/// subset covers the demands (cannot happen for generator instances).
double brute_force_follower_cost(const bcpop::Instance& inst,
                                 std::span<const double> pricing) {
  const cover::Instance ll = inst.lower_level_instance(pricing);
  const std::size_t m = ll.num_bundles();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> sel(m, 0);
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    for (std::size_t j = 0; j < m; ++j) sel[j] = (mask >> j) & 1u;
    const std::vector<int> residual = ll.residual_demand(sel);
    bool covered = true;
    for (const int r : residual) covered &= (r == 0);
    if (!covered) continue;
    best = std::min(best, ll.selection_cost(sel));
  }
  return best;
}

void expect_sandwich_at_best(const core::RunResult& r,
                             const bcpop::Instance& inst,
                             const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_TRUE(r.best_evaluation.ll_feasible);
  const double optimum = brute_force_follower_cost(inst, r.best_pricing);
  ASSERT_TRUE(std::isfinite(optimum));
  // The heuristic/genome construction can never beat the true optimum, and
  // the LP relaxation can never exceed it.
  EXPECT_GE(r.best_evaluation.ll_objective, optimum - 1e-9);
  EXPECT_LE(r.best_evaluation.lower_bound, optimum + 1e-9);
  // The reported leader revenue is exactly what the pricing and selection
  // imply — no solver may carry a stale or recombined objective.
  EXPECT_EQ(r.best_ul_objective, r.best_evaluation.ul_objective);
  EXPECT_EQ(r.best_ul_objective,
            inst.leader_revenue(r.best_pricing, r.best_evaluation.selection));
}

TEST(Differential, EverySolverRespectsTheBruteForceOptimum) {
  const bcpop::Instance inst = tiny_instance();

  core::CarbonConfig carbon;
  carbon.ul_population_size = 8;
  carbon.ul_archive_size = 8;
  carbon.gp_population_size = 8;
  carbon.gp_archive_size = 8;
  carbon.heuristic_sample_size = 2;
  carbon.archive_reinjection = 2;
  carbon.ul_eval_budget = 60;
  carbon.ll_eval_budget = 600;
  carbon.seed = 9;
  expect_sandwich_at_best(core::CarbonSolver(inst, carbon).run(), inst,
                          "CARBON");

  BigaConfig biga;
  biga.population_size = 8;
  biga.archive_size = 8;
  biga.ul_eval_budget = 120;
  biga.ll_eval_budget = 120;
  biga.seed = 9;
  expect_sandwich_at_best(BigaSolver(inst, biga).run(), inst, "BIGA");

  CodbaConfig codba;
  codba.ul_population_size = 8;
  codba.archive_size = 8;
  codba.decomposition_width = 2;
  codba.ll_subpopulation_size = 4;
  codba.ll_subpopulation_generations = 2;
  codba.ul_eval_budget = 120;
  codba.ll_eval_budget = 240;
  codba.seed = 9;
  expect_sandwich_at_best(CodbaSolver(inst, codba).run(), inst, "CODBA");

  NestedGaConfig nested;
  nested.population_size = 8;
  nested.archive_size = 8;
  nested.ul_eval_budget = 120;
  nested.ll_eval_budget = 120;
  nested.seed = 9;
  expect_sandwich_at_best(NestedGaSolver(inst, nested).run(), inst,
                          "NESTED-GA");
}

TEST(Differential, RelaxationBruteForceGreedySandwichOnRandomPricings) {
  // The same sandwich, decoupled from any solver: for random pricings the
  // evaluator's LB and greedy cost must bracket the enumerated optimum.
  const bcpop::Instance inst = tiny_instance();
  bcpop::Evaluator eval(inst);
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  common::Rng rng(2026);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> pricing;
    for (const ea::Bounds& b : inst.price_bounds()) {
      pricing.push_back(rng.uniform(b.lo, b.hi));
    }
    const bcpop::Evaluation e = eval.evaluate_with_heuristic(pricing, tree);
    ASSERT_TRUE(e.ll_feasible) << "trial " << trial;
    const double optimum = brute_force_follower_cost(inst, pricing);
    EXPECT_LE(e.lower_bound, optimum + 1e-9) << "trial " << trial;
    EXPECT_GE(e.ll_objective, optimum - 1e-9) << "trial " << trial;
  }
}

TEST(Differential, BudgetAccountingParityAcrossSolvers) {
  // Every solver must stop within one population/generation of its caps —
  // the Table II accounting is the comparison's fairness guarantee, so an
  // overshoot beyond generation granularity disqualifies a differential.
  const bcpop::Instance inst = tiny_instance();
  const long long ul_budget = 80;
  const long long ll_budget = 400;
  const long long slack = 64;  // one generation of the largest population

  core::CarbonConfig carbon;
  carbon.ul_population_size = 8;
  carbon.ul_archive_size = 8;
  carbon.gp_population_size = 8;
  carbon.gp_archive_size = 8;
  carbon.heuristic_sample_size = 2;
  carbon.archive_reinjection = 2;
  carbon.ul_eval_budget = ul_budget;
  carbon.ll_eval_budget = ll_budget;
  carbon.seed = 12;
  const core::RunResult rc = core::CarbonSolver(inst, carbon).run();

  BigaConfig biga;
  biga.population_size = 8;
  biga.archive_size = 8;
  biga.ul_eval_budget = ul_budget;
  biga.ll_eval_budget = ll_budget;
  biga.seed = 12;
  const core::RunResult rb = BigaSolver(inst, biga).run();

  CodbaConfig codba;
  codba.ul_population_size = 8;
  codba.archive_size = 8;
  codba.decomposition_width = 2;
  codba.ll_subpopulation_size = 4;
  codba.ll_subpopulation_generations = 2;
  codba.ul_eval_budget = ul_budget;
  codba.ll_eval_budget = ll_budget;
  codba.seed = 12;
  const core::RunResult rd = CodbaSolver(inst, codba).run();

  NestedGaConfig nested;
  nested.population_size = 8;
  nested.archive_size = 8;
  nested.ul_eval_budget = ul_budget;
  nested.ll_eval_budget = ll_budget;
  nested.seed = 12;
  const core::RunResult rn = NestedGaSolver(inst, nested).run();

  const struct {
    const char* name;
    const core::RunResult* r;
  } rows[] = {{"CARBON", &rc}, {"BIGA", &rb}, {"CODBA", &rd},
              {"NESTED-GA", &rn}};
  for (const auto& row : rows) {
    SCOPED_TRACE(row.name);
    EXPECT_GT(row.r->ul_evaluations, 0);
    EXPECT_GT(row.r->ll_evaluations, 0);
    EXPECT_LE(row.r->ul_evaluations, ul_budget + slack);
    EXPECT_LE(row.r->ll_evaluations, ll_budget + slack);
    EXPECT_GT(row.r->generations, 0);
    // The final convergence point reports exactly the consumed budget.
    ASSERT_FALSE(row.r->convergence.empty());
    EXPECT_EQ(row.r->convergence.back().ul_evaluations,
              row.r->ul_evaluations);
    EXPECT_EQ(row.r->convergence.back().ll_evaluations,
              row.r->ll_evaluations);
  }
}

}  // namespace
}  // namespace carbon::baselines

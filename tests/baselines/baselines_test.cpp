#include <gtest/gtest.h>

#include "carbon/baselines/biga.hpp"
#include "carbon/baselines/codba.hpp"
#include "carbon/bcpop/multi_follower.hpp"
#include "carbon/core/experiment.hpp"
#include "carbon/cover/generator.hpp"

namespace carbon::baselines {
namespace {

bcpop::Instance small_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 25;
  cfg.num_services = 3;
  cfg.seed = 31;
  return bcpop::Instance(cover::generate(cfg), 3);
}

TEST(Biga, SmokeFeasibleAndDeterministic) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.ul_eval_budget = 150;
  cfg.ll_eval_budget = 150;
  cfg.seed = 3;
  const core::RunResult a = BigaSolver(inst, cfg).run();
  const core::RunResult b = BigaSolver(inst, cfg).run();
  ASSERT_TRUE(a.best_evaluation.ll_feasible);
  EXPECT_GT(a.best_ul_objective, 0.0);
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
  EXPECT_DOUBLE_EQ(a.best_gap, b.best_gap);
}

TEST(Biga, RespectsBudgets) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 10;
  cfg.ul_eval_budget = 100;
  cfg.ll_eval_budget = 100;
  cfg.seed = 3;
  const core::RunResult r = BigaSolver(inst, cfg).run();
  EXPECT_LE(r.ul_evaluations, 100 + 10);
  EXPECT_LE(r.ll_evaluations, 100 + 10);
  EXPECT_GT(r.generations, 0);
}

TEST(Biga, TracePhaseLabeled) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 8;
  cfg.ul_eval_budget = 60;
  cfg.ll_eval_budget = 60;
  cfg.seed = 3;
  const core::RunResult r = BigaSolver(inst, cfg).run();
  ASSERT_FALSE(r.convergence.empty());
  EXPECT_EQ(r.convergence.front().phase, "biga");
}

TEST(Biga, InvalidConfigThrows) {
  const bcpop::Instance inst = small_instance();
  BigaConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(BigaSolver(inst, cfg), std::invalid_argument);
}

TEST(Codba, SmokeFeasibleAndDeterministic) {
  const bcpop::Instance inst = small_instance();
  CodbaConfig cfg;
  cfg.ul_population_size = 10;
  cfg.archive_size = 10;
  cfg.decomposition_width = 3;
  cfg.ll_subpopulation_size = 6;
  cfg.ll_subpopulation_generations = 2;
  cfg.ul_eval_budget = 300;
  cfg.ll_eval_budget = 300;
  cfg.seed = 5;
  const core::RunResult a = CodbaSolver(inst, cfg).run();
  const core::RunResult b = CodbaSolver(inst, cfg).run();
  ASSERT_TRUE(a.best_evaluation.ll_feasible);
  EXPECT_GT(a.best_ul_objective, 0.0);
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
}

TEST(Codba, BudgetStopsSubpopulations) {
  const bcpop::Instance inst = small_instance();
  CodbaConfig cfg;
  cfg.ul_population_size = 10;
  cfg.decomposition_width = 5;
  cfg.ll_subpopulation_size = 8;
  cfg.ll_subpopulation_generations = 4;
  cfg.ul_eval_budget = 10'000;
  cfg.ll_eval_budget = 120;  // LL budget binds
  cfg.seed = 5;
  const core::RunResult r = CodbaSolver(inst, cfg).run();
  // Overshoot bounded by one subpopulation generation.
  EXPECT_LE(r.ll_evaluations, 120 + 8);
}

TEST(Codba, InvalidConfigsThrow) {
  const bcpop::Instance inst = small_instance();
  CodbaConfig cfg;
  cfg.ll_subpopulation_size = 1;
  EXPECT_THROW(CodbaSolver(inst, cfg), std::invalid_argument);
  cfg = CodbaConfig{};
  cfg.decomposition_width = 0;
  EXPECT_THROW(CodbaSolver(inst, cfg), std::invalid_argument);
}

TEST(Baselines, RunOnMultiFollowerMarkets) {
  const auto problem =
      bcpop::make_multi_follower(small_instance(), 2, /*seed=*/4);
  {
    bcpop::MultiFollowerEvaluator eval(problem);
    BigaConfig cfg;
    cfg.population_size = 8;
    cfg.ul_eval_budget = 60;
    cfg.ll_eval_budget = 240;
    const auto r = BigaSolver(eval, cfg).run();
    EXPECT_TRUE(r.best_evaluation.ll_feasible);
  }
  {
    bcpop::MultiFollowerEvaluator eval(problem);
    CodbaConfig cfg;
    cfg.ul_population_size = 8;
    cfg.decomposition_width = 2;
    cfg.ll_subpopulation_size = 4;
    cfg.ul_eval_budget = 60;
    cfg.ll_eval_budget = 240;
    const auto r = CodbaSolver(eval, cfg).run();
    EXPECT_TRUE(r.best_evaluation.ll_feasible);
  }
}

TEST(ExperimentDispatch, NewAlgorithmsAreWired) {
  const bcpop::Instance inst = small_instance();
  core::ExperimentConfig cfg;
  cfg.runs = 1;
  cfg.population_size = 8;
  cfg.archive_size = 8;
  cfg.ul_eval_budget = 60;
  cfg.ll_eval_budget = 200;
  cfg.heuristic_sample_size = 2;
  for (const auto a :
       {core::Algorithm::kBiga, core::Algorithm::kCodba,
        core::Algorithm::kCarbonMemetic}) {
    const auto cell = core::run_cell(inst, a, cfg);
    EXPECT_TRUE(cell.runs[0].best_evaluation.ll_feasible)
        << core::to_string(a);
  }
  EXPECT_STREQ(core::to_string(core::Algorithm::kBiga), "BIGA");
  EXPECT_STREQ(core::to_string(core::Algorithm::kCodba), "CODBA");
  EXPECT_STREQ(core::to_string(core::Algorithm::kCarbonMemetic),
               "CARBON-MEMETIC");
}

TEST(MemeticCarbon, PolishNeverWorsensTheGap) {
  const bcpop::Instance inst = small_instance();
  core::ExperimentConfig cfg;
  cfg.runs = 2;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.ul_eval_budget = 100;
  cfg.ll_eval_budget = 400;
  cfg.heuristic_sample_size = 2;
  const auto plain = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto memetic =
      core::run_cell(inst, core::Algorithm::kCarbonMemetic, cfg);
  // Polish changes trajectories, so strict dominance is not guaranteed —
  // but the memetic variant must stay in the same quality league.
  EXPECT_LE(memetic.gap.mean, 2.0 * plain.gap.mean + 1.0);
}

}  // namespace
}  // namespace carbon::baselines

// Unit tests for the carbon::guard resource-budget subsystem: the config
// surface (validate / combine_caps / enabled), the degradation ladder in
// eval_core (full LP -> Lagrangian -> greedy-only, each a weaker but valid
// lower bound), construction budgeting, node-budget exhaustion, the
// fault-injection hook firing at an exact deterministic evaluation ordinal,
// and the guard counters surfaced through BackendStats and obs metrics.
//
// The load-bearing property throughout: with every limit at its default the
// guarded paths are BITWISE identical to the historical unguarded ones.

#include "carbon/guard/guard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "carbon/bcpop/eval_core.hpp"
#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/instance.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/gp/tree.hpp"
#include "carbon/obs/metrics.hpp"

namespace carbon {
namespace {

using bcpop::EvalContext;
using bcpop::EvalPurpose;
using bcpop::Evaluation;
using bcpop::Evaluator;

bcpop::Instance make_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 21;
  return bcpop::Instance(cover::generate(cfg), /*num_owned=*/3);
}

/// A pricing far from the base market (every owned price at its upper
/// bound), so the warm-started LP needs several pivots to re-optimize.
std::vector<double> stress_pricing(const bcpop::Instance& inst) {
  std::vector<double> p;
  for (const ea::Bounds& b : inst.price_bounds()) p.push_back(b.hi);
  return p;
}

// ---- Config surface --------------------------------------------------------

TEST(GuardConfig, CombineCapsTreatsZeroAsUnlimited) {
  EXPECT_EQ(guard::combine_caps(0, 0), 0);
  EXPECT_EQ(guard::combine_caps(5, 0), 5);
  EXPECT_EQ(guard::combine_caps(0, 7), 7);
  EXPECT_EQ(guard::combine_caps(5, 7), 5);
  EXPECT_EQ(guard::combine_caps(9, 3), 3);
}

TEST(GuardConfig, DefaultsAreUnlimitedAndDisabled) {
  const guard::GuardConfig cfg;
  EXPECT_TRUE(cfg.limits.unlimited());
  EXPECT_FALSE(cfg.enabled());
  // The Lagrangian cap has a non-zero default but is only consulted after a
  // trip, so it must not count toward "limited".
  guard::Limits l;
  l.lagrangian_iteration_cap = 123;
  EXPECT_TRUE(l.unlimited());
  l.ll_node_cap = 1;
  EXPECT_FALSE(l.unlimited());
}

TEST(GuardConfig, InjectionAloneEnablesTheGuard) {
  guard::GuardConfig cfg;
  cfg.inject.at_eval = 0;
  EXPECT_TRUE(cfg.enabled());
  EXPECT_TRUE(cfg.limits.unlimited());
}

TEST(GuardConfig, ValidateRejectsMalformedConfigs) {
  guard::GuardConfig ok;
  EXPECT_NO_THROW(guard::validate(ok));
  ok.limits.lp_iteration_cap = 10;
  ok.inject.at_eval = 5;
  EXPECT_NO_THROW(guard::validate(ok));

  guard::GuardConfig bad;
  bad.limits.lp_iteration_cap = -1;
  EXPECT_THROW(guard::validate(bad), std::invalid_argument);
  bad = {};
  bad.limits.lagrangian_iteration_cap = -2;
  EXPECT_THROW(guard::validate(bad), std::invalid_argument);
  bad = {};
  bad.limits.construction_round_cap = -1;
  EXPECT_THROW(guard::validate(bad), std::invalid_argument);
  bad = {};
  bad.limits.ll_node_cap = -3;
  EXPECT_THROW(guard::validate(bad), std::invalid_argument);
  bad = {};
  bad.limits.watchdog_seconds = -0.5;
  EXPECT_THROW(guard::validate(bad), std::invalid_argument);
  bad = {};
  bad.inject.at_eval = -2;
  EXPECT_THROW(guard::validate(bad), std::invalid_argument);
}

TEST(GuardConfig, ToStringCoversEveryEnumerator) {
  EXPECT_STREQ(to_string(guard::Rung::kFullLp), "full_lp");
  EXPECT_STREQ(to_string(guard::Rung::kLagrangian), "lagrangian");
  EXPECT_STREQ(to_string(guard::Rung::kGreedyOnly), "greedy_only");
  EXPECT_STREQ(to_string(guard::Trip::kNone), "none");
  EXPECT_STREQ(to_string(guard::Trip::kLpIterationCap), "lp_iteration_cap");
  EXPECT_STREQ(to_string(guard::Trip::kConstructionCap), "construction_cap");
  EXPECT_STREQ(to_string(guard::Trip::kNodeBudget), "node_budget");
  EXPECT_STREQ(to_string(guard::Trip::kInjected), "injected");
  EXPECT_STREQ(to_string(guard::Trip::kWatchdog), "watchdog");
}

TEST(GuardOutcome, DegradedAndTrippedPredicates) {
  guard::Outcome o;
  EXPECT_FALSE(o.degraded());
  EXPECT_FALSE(o.tripped());
  o.rung = guard::Rung::kLagrangian;
  EXPECT_TRUE(o.degraded());
  o = {};
  o.construction_capped = true;
  EXPECT_TRUE(o.degraded());
  o = {};
  o.budget_exhausted = true;
  EXPECT_TRUE(o.degraded());
  o = {};
  o.trip = guard::Trip::kWatchdog;
  EXPECT_TRUE(o.tripped());
  EXPECT_FALSE(o.degraded());  // watchdog skip sets budget_exhausted itself
}

// ---- Degradation ladder (eval_core) ----------------------------------------

TEST(GuardLadder, UnlimitedGuardIsBitwiseIdenticalToUnguarded) {
  const bcpop::Instance inst = make_instance();
  EvalContext plain(inst);
  EvalContext guarded(inst);  // default ctx.guard: unlimited
  const std::vector<double> pricing = stress_pricing(inst);
  const cover::Relaxation a = bcpop::solve_relaxation(plain, pricing);
  const cover::Relaxation b = bcpop::solve_relaxation_guarded(guarded, pricing);
  EXPECT_EQ(a.lower_bound, b.lower_bound);  // bitwise
  EXPECT_EQ(a.duals, b.duals);
  EXPECT_EQ(a.relaxed_x, b.relaxed_x);
  EXPECT_EQ(b.guard_rung, guard::Rung::kFullLp);
  EXPECT_EQ(b.guard_trip, guard::Trip::kNone);
}

TEST(GuardLadder, LadderOrderingIsExact) {
  // Each rung weakens the bound but keeps it valid:
  //   LB(full LP) >= LB(Lagrangian) >= LB(greedy-only) = 0.
  const bcpop::Instance inst = make_instance();
  EvalContext ctx(inst);
  const std::vector<double> pricing = stress_pricing(inst);

  const cover::Relaxation full = bcpop::solve_relaxation_guarded(ctx, pricing);
  ASSERT_TRUE(full.feasible);
  ASSERT_EQ(full.guard_rung, guard::Rung::kFullLp);

  const cover::Relaxation lagr = bcpop::solve_relaxation_guarded(
      ctx, pricing, guard::Trip::kInjected, guard::Rung::kLagrangian);
  ASSERT_TRUE(lagr.feasible);
  EXPECT_EQ(lagr.guard_rung, guard::Rung::kLagrangian);
  EXPECT_EQ(lagr.guard_trip, guard::Trip::kInjected);

  const cover::Relaxation greedy = bcpop::solve_relaxation_guarded(
      ctx, pricing, guard::Trip::kInjected, guard::Rung::kGreedyOnly);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_EQ(greedy.guard_rung, guard::Rung::kGreedyOnly);
  EXPECT_EQ(greedy.lower_bound, 0.0);
  EXPECT_TRUE(greedy.duals.empty());
  EXPECT_TRUE(greedy.relaxed_x.empty());

  EXPECT_GE(full.lower_bound, lagr.lower_bound - 1e-9);
  EXPECT_GE(lagr.lower_bound, 0.0);
  EXPECT_GT(full.lower_bound, 0.0);
}

TEST(GuardLadder, LadderPositionIsAPureFunctionOfInputs) {
  // Same pricing, same limits, fresh contexts -> bit-identical degraded
  // relaxations (the property that lets degradations ride the cache).
  const bcpop::Instance inst = make_instance();
  const std::vector<double> pricing = stress_pricing(inst);
  cover::Relaxation first;
  for (int run = 0; run < 2; ++run) {
    EvalContext ctx(inst);
    ctx.guard.lp_iteration_cap = 1;
    const cover::Relaxation r = bcpop::solve_relaxation_guarded(ctx, pricing);
    if (run == 0) {
      first = r;
    } else {
      EXPECT_EQ(first.guard_rung, r.guard_rung);
      EXPECT_EQ(first.guard_trip, r.guard_trip);
      EXPECT_EQ(first.lower_bound, r.lower_bound);  // bitwise
      EXPECT_EQ(first.guard_nodes, r.guard_nodes);
    }
  }
}

TEST(GuardLadder, LpIterationCapFallsToLagrangian) {
  const bcpop::Instance inst = make_instance();
  const std::vector<double> pricing = stress_pricing(inst);
  // Establish how many pivots the uncapped solve needs; the stress pricing
  // moves every owned price to its bound, so the baseline basis cannot
  // already be optimal.
  EvalContext probe(inst);
  const cover::Relaxation full = bcpop::solve_relaxation_guarded(probe, pricing);
  ASSERT_GT(full.guard_nodes, 1) << "stress pricing did not force pivots";

  EvalContext ctx(inst);
  ctx.guard.lp_iteration_cap = full.guard_nodes - 1;
  const cover::Relaxation capped = bcpop::solve_relaxation_guarded(ctx, pricing);
  ASSERT_TRUE(capped.feasible);
  EXPECT_EQ(capped.guard_rung, guard::Rung::kLagrangian);
  EXPECT_EQ(capped.guard_trip, guard::Trip::kLpIterationCap);
  EXPECT_LE(capped.lower_bound, full.lower_bound + 1e-9);
  EXPECT_GE(capped.lower_bound, 0.0);
  // The node charge records bound work: the capped pivots plus the
  // subgradient iterations that produced the fallback bound.
  EXPECT_GT(capped.guard_nodes, 0);

  // A cap the solve fits under changes nothing. The simplex checks the
  // limit before it can detect optimality, so "fits" needs one spare.
  EvalContext roomy(inst);
  roomy.guard.lp_iteration_cap = full.guard_nodes + 1;
  const cover::Relaxation fits = bcpop::solve_relaxation_guarded(roomy, pricing);
  EXPECT_EQ(fits.guard_rung, guard::Rung::kFullLp);
  EXPECT_EQ(fits.guard_trip, guard::Trip::kNone);
  EXPECT_EQ(fits.lower_bound, full.lower_bound);  // bitwise
}

TEST(GuardLadder, ZeroLagrangianCapSkipsStraightToGreedyOnly) {
  const bcpop::Instance inst = make_instance();
  EvalContext ctx(inst);
  ctx.guard.lp_iteration_cap = 1;
  ctx.guard.lagrangian_iteration_cap = 0;
  const std::vector<double> pricing = stress_pricing(inst);
  const cover::Relaxation r = bcpop::solve_relaxation_guarded(ctx, pricing);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.guard_rung, guard::Rung::kGreedyOnly);
  EXPECT_EQ(r.guard_trip, guard::Trip::kLpIterationCap);
  EXPECT_EQ(r.lower_bound, 0.0);
}

// ---- Construction budgeting ------------------------------------------------

TEST(GuardPlan, PlanConstructionCombinesRoundAndNodeCaps) {
  cover::Relaxation relax;
  relax.guard_nodes = 7;

  guard::Limits unlimited;
  bcpop::ConstructionBudget plan = bcpop::plan_construction(unlimited, relax);
  EXPECT_FALSE(plan.skip);
  EXPECT_EQ(plan.options.max_rounds, 0);

  guard::Limits rounds_only;
  rounds_only.construction_round_cap = 5;
  plan = bcpop::plan_construction(rounds_only, relax);
  EXPECT_FALSE(plan.skip);
  EXPECT_EQ(plan.options.max_rounds, 5);

  guard::Limits nodes_only;
  nodes_only.ll_node_cap = 10;  // bound spent 7 -> 3 rounds remain
  plan = bcpop::plan_construction(nodes_only, relax);
  EXPECT_FALSE(plan.skip);
  EXPECT_EQ(plan.options.max_rounds, 3);

  guard::Limits both;
  both.construction_round_cap = 2;
  both.ll_node_cap = 10;
  plan = bcpop::plan_construction(both, relax);
  EXPECT_EQ(plan.options.max_rounds, 2);  // min(2, 3)

  guard::Limits exhausted;
  exhausted.ll_node_cap = 7;  // nothing left after the bound
  plan = bcpop::plan_construction(exhausted, relax);
  EXPECT_TRUE(plan.skip);
}

// ---- Evaluator-level behavior ----------------------------------------------

TEST(GuardEvaluator, DefaultGuardLeavesEvaluationsBitIdentical) {
  const bcpop::Instance inst = make_instance();
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  const std::vector<double> pricing = stress_pricing(inst);

  Evaluator plain(inst);
  Evaluator guarded(inst);
  guarded.set_guard(guard::GuardConfig{}, 0);

  const Evaluation a = plain.evaluate_with_heuristic(pricing, tree);
  const Evaluation b = guarded.evaluate_with_heuristic(pricing, tree);
  EXPECT_EQ(a, b);  // field-wise, doubles bitwise
  EXPECT_EQ(b.guard, guard::Outcome{});

  const bcpop::BackendStats stats = guarded.backend_stats();
  EXPECT_EQ(stats.guard_trips, 0);
  EXPECT_EQ(stats.guard_degraded_evals, 0);
  EXPECT_EQ(stats.guard_budget_exhausted, 0);
}

TEST(GuardEvaluator, InjectionFiresAtTheExactOrdinalOnly) {
  const bcpop::Instance inst = make_instance();
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  const std::vector<double> pricing = stress_pricing(inst);

  Evaluator eval(inst);
  obs::MetricsRegistry metrics;
  eval.set_metrics(&metrics);
  guard::GuardConfig cfg;
  cfg.inject.at_eval = 2;
  cfg.inject.degrade_to = guard::Rung::kLagrangian;
  eval.set_guard(cfg, eval.ll_evaluations());

  for (int i = 0; i < 5; ++i) {
    const Evaluation e =
        eval.evaluate_with_heuristic(pricing, tree, EvalPurpose::kLowerOnly);
    if (i == 2) {
      EXPECT_EQ(e.guard.trip, guard::Trip::kInjected) << "eval " << i;
      EXPECT_EQ(e.guard.rung, guard::Rung::kLagrangian);
      EXPECT_TRUE(e.ll_feasible);  // degraded, still a valid evaluation
    } else {
      EXPECT_EQ(e.guard, guard::Outcome{}) << "eval " << i;
    }
  }
  const bcpop::BackendStats stats = eval.backend_stats();
  EXPECT_EQ(stats.guard_trips, 1);
  EXPECT_EQ(stats.guard_degraded_evals, 1);
  EXPECT_EQ(stats.guard_budget_exhausted, 0);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("guard/trips"), 1);
  EXPECT_EQ(snap.counters.at("guard/degraded_evals"), 1);
  EXPECT_EQ(snap.counters.count("guard/budget_exhausted"), 0u);
}

TEST(GuardEvaluator, InjectionHonorsEvalBaseAcrossResume) {
  // Simulates the solver's resume wiring: an evaluator that already served
  // `consumed` evaluations gets eval_base = ll_evaluations() - consumed.
  // An injection ordinal BELOW consumed lands under the current counter and
  // must never fire; one above fires at the same logical run evaluation.
  const bcpop::Instance inst = make_instance();
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  const std::vector<double> pricing = stress_pricing(inst);

  Evaluator eval(inst);
  for (int i = 0; i < 3; ++i) {  // the "pre-checkpoint" segment
    (void)eval.evaluate_with_heuristic(pricing, tree, EvalPurpose::kLowerOnly);
  }
  guard::GuardConfig cfg;
  cfg.inject.at_eval = 1;  // already happened in the resumed-from segment
  eval.set_guard(cfg, eval.ll_evaluations() - 3);
  for (int i = 0; i < 3; ++i) {
    const Evaluation e =
        eval.evaluate_with_heuristic(pricing, tree, EvalPurpose::kLowerOnly);
    EXPECT_EQ(e.guard, guard::Outcome{}) << "resumed eval " << i;
  }
  EXPECT_EQ(eval.backend_stats().guard_trips, 0);

  cfg.inject.at_eval = 7;  // logical-run ordinal in the post-resume segment
  eval.set_guard(cfg, eval.ll_evaluations() - 6);
  for (int i = 6; i < 9; ++i) {
    const Evaluation e =
        eval.evaluate_with_heuristic(pricing, tree, EvalPurpose::kLowerOnly);
    EXPECT_EQ(e.guard.trip,
              i == 7 ? guard::Trip::kInjected : guard::Trip::kNone)
        << "resumed eval " << i;
  }
  EXPECT_EQ(eval.backend_stats().guard_trips, 1);
}

TEST(GuardEvaluator, TinyNodeBudgetExhaustsBeforeConstruction) {
  const bcpop::Instance inst = make_instance();
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  const std::vector<double> pricing = stress_pricing(inst);

  Evaluator eval(inst);
  guard::GuardConfig cfg;
  cfg.limits.ll_node_cap = 1;  // the bound alone exceeds this
  cfg.limits.lagrangian_iteration_cap = 1;
  eval.set_guard(cfg, 0);
  const Evaluation e = eval.evaluate_with_heuristic(pricing, tree);
  EXPECT_FALSE(e.ll_feasible);
  EXPECT_TRUE(e.guard.budget_exhausted);
  EXPECT_TRUE(e.guard.tripped());
  EXPECT_EQ(e.gap_percent, 1e9);
  EXPECT_EQ(e.selection.size(), inst.num_bundles());
  for (const std::uint8_t s : e.selection) EXPECT_EQ(s, 0);

  const bcpop::BackendStats stats = eval.backend_stats();
  EXPECT_EQ(stats.guard_budget_exhausted, 1);
  EXPECT_EQ(stats.guard_degraded_evals, 1);
  EXPECT_EQ(stats.guard_trips, 1);
}

TEST(GuardEvaluator, ConstructionRoundCapMarksOutcome) {
  const bcpop::Instance inst = make_instance();
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  const std::vector<double> pricing = stress_pricing(inst);

  // How many selection rounds does the unguarded greedy need?
  Evaluator probe(inst);
  const Evaluation full = probe.evaluate_with_heuristic(pricing, tree);
  ASSERT_TRUE(full.ll_feasible);
  long long bundles_picked = 0;
  for (const std::uint8_t s : full.selection) bundles_picked += s;
  ASSERT_GT(bundles_picked, 1);

  Evaluator eval(inst);
  guard::GuardConfig cfg;
  cfg.limits.construction_round_cap = 1;  // can't cover with one selection
  eval.set_guard(cfg, 0);
  const Evaluation e = eval.evaluate_with_heuristic(pricing, tree);
  EXPECT_FALSE(e.ll_feasible);
  EXPECT_TRUE(e.guard.construction_capped);
  EXPECT_EQ(e.guard.trip, guard::Trip::kConstructionCap);
  EXPECT_EQ(eval.backend_stats().guard_trips, 1);

  // A cap with room to spare reproduces the unguarded result bitwise.
  Evaluator roomy(inst);
  cfg.limits.construction_round_cap = bundles_picked;
  roomy.set_guard(cfg, 0);
  const Evaluation same = roomy.evaluate_with_heuristic(pricing, tree);
  EXPECT_EQ(same, full);
}

TEST(GuardEvaluator, BatchInjectionMatchesScalarCallSequence) {
  // The batch path must charge the injected trip to the same job ordinal as
  // a serial scalar call sequence — for both compiled-scoring settings.
  const bcpop::Instance inst = make_instance();
  const gp::Tree tree_a = gp::parse("(div QCOV COST)");
  const gp::Tree tree_b = gp::parse("(mul DUAL QCOV)");
  const std::vector<double> p1 = stress_pricing(inst);
  std::vector<double> p2 = p1;
  for (double& x : p2) x *= 0.5;

  std::vector<bcpop::HeuristicJob> jobs;
  jobs.push_back({p1, &tree_a, EvalPurpose::kLowerOnly});
  jobs.push_back({p2, &tree_b, EvalPurpose::kLowerOnly});
  jobs.push_back({p2, &tree_a, EvalPurpose::kLowerOnly});
  jobs.push_back({p1, &tree_a, EvalPurpose::kLowerOnly});  // dup of job 0
  jobs.push_back({p1, &tree_b, EvalPurpose::kLowerOnly});

  for (const bool compiled : {false, true}) {
    SCOPED_TRACE(compiled ? "compiled" : "interpreted");
    guard::GuardConfig cfg;
    cfg.inject.at_eval = 3;  // the duplicate job
    cfg.inject.degrade_to = guard::Rung::kGreedyOnly;

    Evaluator scalar(inst);
    scalar.set_compiled_scoring(compiled);
    scalar.set_guard(cfg, 0);
    std::vector<Evaluation> want;
    for (const bcpop::HeuristicJob& job : jobs) {
      want.push_back(scalar.evaluate_with_heuristic(job.pricing,
                                                    *job.heuristic,
                                                    job.purpose));
    }

    Evaluator batch(inst);
    batch.set_compiled_scoring(compiled);
    batch.set_guard(cfg, 0);
    const std::vector<Evaluation> got = batch.evaluate_heuristic_batch(jobs);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      EXPECT_EQ(got[i], want[i]);
    }
    EXPECT_EQ(got[3].guard.trip, guard::Trip::kInjected);
    EXPECT_EQ(got[3].guard.rung, guard::Rung::kGreedyOnly);
    EXPECT_EQ(batch.backend_stats().guard_trips,
              scalar.backend_stats().guard_trips);
  }
}

TEST(GuardEvaluator, SelectionPathHonorsInjectionAndCaps) {
  const bcpop::Instance inst = make_instance();
  const std::vector<double> pricing = stress_pricing(inst);
  const std::vector<std::uint8_t> empty_genome(inst.num_bundles(), 0);

  Evaluator eval(inst);
  guard::GuardConfig cfg;
  cfg.inject.at_eval = 1;
  eval.set_guard(cfg, 0);
  const Evaluation first =
      eval.evaluate_with_selection(pricing, empty_genome);
  EXPECT_EQ(first.guard, guard::Outcome{});
  const Evaluation second =
      eval.evaluate_with_selection(pricing, empty_genome);
  EXPECT_EQ(second.guard.trip, guard::Trip::kInjected);
  EXPECT_EQ(second.guard.rung, guard::Rung::kLagrangian);
  // The repair still runs: a degraded bound weakens the gap, not coverage.
  EXPECT_TRUE(second.ll_feasible);
  EXPECT_EQ(second.ll_objective, first.ll_objective);  // same cover, bitwise
}

}  // namespace
}  // namespace carbon

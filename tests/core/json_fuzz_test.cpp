// Negative-path fuzz for the obs/json recursive-descent parser.
//
// The parser sits on two trust boundaries — run journals read back by tools
// and checkpoint files read at resume — so malformed input must throw
// std::runtime_error, never crash, hang, or silently mis-parse:
//   * truncated documents (every strict prefix of valid records),
//   * pathological nesting ("[[[[..." past the recursion limit),
//   * non-finite number literals ("1e999" overflowing to infinity),
//   * duplicate object keys (a corrupted record smuggling a second value),
//   * random mutations of valid journal lines (differential fuzz: parse
//     either throws or yields a value that re-survives a round trip).

#include "carbon/obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "carbon/common/rng.hpp"

namespace carbon::obs {
namespace {

JsonValue parse(const std::string& text) { return parse_json(text); }

TEST(JsonFuzz, EveryPrefixOfValidRecordsIsRejectedOrValid) {
  const std::string docs[] = {
      R"({"type":"generation","gen":3,"best_ul":1.5,"flags":[true,false]})",
      R"({"a":{"b":{"c":[1,2,3],"d":"x\u00e9y"}},"e":null})",
      R"([{"k":"v"},[],-12.5e-3,"\n\t\\"])",
  };
  for (const std::string& doc : docs) {
    EXPECT_NO_THROW((void)parse(doc)) << doc;
    // No strict prefix of a complete document is itself complete: the
    // parser must throw on every one rather than accept a truncation.
    for (std::size_t cut = 0; cut < doc.size(); ++cut) {
      const std::string prefix = doc.substr(0, cut);
      EXPECT_THROW((void)parse(prefix), std::runtime_error)
          << "accepted truncation at " << cut << ": " << prefix;
    }
  }
}

TEST(JsonFuzz, DeepNestingIsRejectedNotStackOverflow) {
  // Just inside the limit parses fine...
  {
    std::string ok;
    for (int i = 0; i < 250; ++i) ok.push_back('[');
    ok.push_back('1');
    for (int i = 0; i < 250; ++i) ok.push_back(']');
    EXPECT_NO_THROW((void)parse(ok));
  }
  // ...while adversarial depth (far past it) throws instead of smashing
  // the stack. 100k unclosed brackets would recurse 100k deep unguarded.
  for (const char open : {'[', '{'}) {
    std::string evil(100'000, open);
    if (open == '{') {
      // Objects need a key before recursing into the value.
      evil.clear();
      for (int i = 0; i < 100'000; ++i) evil += "{\"k\":";
    }
    EXPECT_THROW((void)parse(evil), std::runtime_error);
  }
  // Balanced-but-too-deep is rejected too (depth, not truncation).
  std::string deep;
  for (int i = 0; i < 5'000; ++i) deep.push_back('[');
  deep.push_back('0');
  for (int i = 0; i < 5'000; ++i) deep.push_back(']');
  EXPECT_THROW((void)parse(deep), std::runtime_error);
}

TEST(JsonFuzz, NonFiniteNumberLiteralsAreRejected) {
  // The writer nulls non-finite doubles, so any literal that overflows to
  // +/-inf (or parses to nan) cannot come from a healthy producer.
  for (const std::string bad :
       {"1e999", "-1e999", "1e99999", "[1,2,1e999]", R"({"x":-2.5e308})"}) {
    EXPECT_THROW((void)parse(bad), std::runtime_error) << bad;
  }
  // Large-but-finite values still parse.
  EXPECT_DOUBLE_EQ(parse("1.5e308").as_number(), 1.5e308);
  EXPECT_DOUBLE_EQ(parse("-4e-320").as_number(), -4e-320);  // subnormal ok
}

TEST(JsonFuzz, DuplicateObjectKeysAreRejected) {
  EXPECT_THROW((void)parse(R"({"a":1,"a":2})"), std::runtime_error);
  EXPECT_THROW((void)parse(R"({"a":1,"b":{"x":1,"x":2}})"),
               std::runtime_error);
  EXPECT_THROW((void)parse(R"([{"k":0,"k":0}])"), std::runtime_error);
  // Same key at different depths is fine.
  EXPECT_NO_THROW((void)parse(R"({"a":{"a":{"a":1}}})"));
  // Escapes are resolved before comparison: "\u0061" IS "a".
  EXPECT_THROW((void)parse(R"({"a":1,"\u0061":2})"), std::runtime_error);
}

TEST(JsonFuzz, AssortedMalformedDocumentsThrow) {
  const std::string bad[] = {
      "",          " ",          "tru",          "falsey",     "nul",
      "+1",        "-",          "1.2.3",        "0x10",       "1e",
      "\"ab",      "\"\\q\"",    "\"\\u12\"",    "\"\\u12zq\"", "\"\x01\"",
      "{",         "}",          "{\"a\"}",      "{\"a\":}",   "{\"a\":1,}",
      "{a:1}",     "[1,]",       "[1 2]",        "[,1]",       "1 2",
      "{} []",     "[1]]",       "{\"a\":1}}",
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)parse(doc), std::runtime_error) << "accepted: " << doc;
  }
}

TEST(JsonFuzz, RandomMutationsNeverCrashAndSurvivorsRoundTrip) {
  // Differential fuzz: mutate a valid journal-like record at random
  // positions. Every mutant must either throw std::runtime_error or parse
  // to a value whose re-serialization (via the accessors) is consistent —
  // no crashes, no hangs, no partially-initialized values.
  const std::string seed_doc =
      R"({"type":"generation","algo":"carbon","generation":12,)"
      R"("best_ul":123.456,"flags":[true,false,null],)"
      R"("backend":{"hits":10,"misses":3},"note":"a\"b\\c"})";
  common::Rng rng(2026);
  int accepted = 0;
  for (int iter = 0; iter < 5'000; ++iter) {
    std::string doc = seed_doc;
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng() % doc.size();
      switch (rng() % 4) {
        case 0:  // flip to a random printable byte
          doc[pos] = static_cast<char>(' ' + rng() % 95);
          break;
        case 1:  // delete
          doc.erase(pos, 1);
          break;
        case 2:  // duplicate
          doc.insert(pos, 1, doc[pos]);
          break;
        default:  // truncate
          doc.resize(pos + 1);
          break;
      }
      if (doc.empty()) doc = "x";
    }
    try {
      const JsonValue v = parse(doc);
      ++accepted;
      // Whatever survived must be internally consistent: walking it cannot
      // throw, and any number it contains is finite.
      struct Walk {
        static void check(const JsonValue& n) {
          if (n.kind == JsonValue::Kind::kNumber) {
            EXPECT_TRUE(std::isfinite(n.as_number()));
          }
          for (const JsonValue& c : n.array) check(c);
          for (const auto& [k, c] : n.object) check(c);
        }
      };
      Walk::check(v);
    } catch (const std::runtime_error&) {
      // expected for most mutants
    }
  }
  // Sanity: the harness itself works — some mutants (e.g. digit tweaks)
  // must still parse, else the mutation operator is broken.
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace carbon::obs

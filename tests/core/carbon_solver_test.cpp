#include "carbon/core/carbon_solver.hpp"

#include <gtest/gtest.h>

#include "carbon/cover/generator.hpp"

namespace carbon::core {
namespace {

bcpop::Instance small_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 21;
  return bcpop::Instance(cover::generate(cfg), /*num_owned=*/3);
}

CarbonConfig small_config() {
  CarbonConfig cfg;
  cfg.ul_population_size = 12;
  cfg.gp_population_size = 12;
  cfg.ul_archive_size = 12;
  cfg.gp_archive_size = 12;
  cfg.ul_eval_budget = 150;
  cfg.ll_eval_budget = 600;
  cfg.heuristic_sample_size = 3;
  cfg.seed = 4;
  return cfg;
}

TEST(CarbonSolver, ProducesFeasibleBestSolution) {
  const bcpop::Instance inst = small_instance();
  const CarbonResult r = CarbonSolver(inst, small_config()).run();
  ASSERT_FALSE(r.best_pricing.empty());
  ASSERT_TRUE(r.best_evaluation.ll_feasible);
  EXPECT_GT(r.best_ul_objective, 0.0);
  EXPECT_GE(r.best_gap, 0.0);
  EXPECT_LT(r.best_gap, 1e6);
  // The reported best pricing respects the box bounds.
  const auto bounds = inst.price_bounds();
  for (std::size_t i = 0; i < r.best_pricing.size(); ++i) {
    EXPECT_GE(r.best_pricing[i], bounds[i].lo);
    EXPECT_LE(r.best_pricing[i], bounds[i].hi);
  }
}

TEST(CarbonSolver, RespectsBudgetsWithinOneGeneration) {
  const bcpop::Instance inst = small_instance();
  const CarbonConfig cfg = small_config();
  const CarbonResult r = CarbonSolver(inst, cfg).run();
  // Per generation: pop*sample LL + pop more LL and pop UL evals.
  const long long gen_ll =
      static_cast<long long>(cfg.gp_population_size) *
          static_cast<long long>(cfg.heuristic_sample_size) +
      static_cast<long long>(cfg.ul_population_size);
  EXPECT_LE(r.ll_evaluations, cfg.ll_eval_budget + gen_ll);
  EXPECT_LE(r.ul_evaluations,
            cfg.ul_eval_budget +
                static_cast<long long>(cfg.ul_population_size));
  EXPECT_GT(r.generations, 0);
}

TEST(CarbonSolver, DeterministicForSeed) {
  const bcpop::Instance inst = small_instance();
  const CarbonResult a = CarbonSolver(inst, small_config()).run();
  const CarbonResult b = CarbonSolver(inst, small_config()).run();
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
  EXPECT_DOUBLE_EQ(a.best_gap, b.best_gap);
  EXPECT_EQ(a.best_pricing, b.best_pricing);
  EXPECT_EQ(a.generations, b.generations);
}

TEST(CarbonSolver, SeedsChangeTrajectories) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  const CarbonResult a = CarbonSolver(inst, cfg).run();
  cfg.seed = 999;
  const CarbonResult b = CarbonSolver(inst, cfg).run();
  EXPECT_NE(a.best_pricing, b.best_pricing);
}

TEST(CarbonSolver, ConvergenceTraceIsMonotoneInBestSoFar) {
  const bcpop::Instance inst = small_instance();
  const CarbonResult r = CarbonSolver(inst, small_config()).run();
  ASSERT_FALSE(r.convergence.empty());
  for (std::size_t g = 1; g < r.convergence.size(); ++g) {
    ASSERT_GE(r.convergence[g].best_ul_so_far,
              r.convergence[g - 1].best_ul_so_far);
    ASSERT_LE(r.convergence[g].best_gap_so_far,
              r.convergence[g - 1].best_gap_so_far);
  }
  EXPECT_EQ(r.convergence.back().phase, "carbon");
  // Final trace point matches the result.
  EXPECT_DOUBLE_EQ(r.convergence.back().best_ul_so_far, r.best_ul_objective);
  EXPECT_DOUBLE_EQ(r.convergence.back().best_gap_so_far, r.best_gap);
}

TEST(CarbonSolver, ConvergenceCanBeDisabled) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  cfg.record_convergence = false;
  const CarbonResult r = CarbonSolver(inst, cfg).run();
  EXPECT_TRUE(r.convergence.empty());
}

TEST(CarbonSolver, ReturnsAHeuristic) {
  const bcpop::Instance inst = small_instance();
  const CarbonResult r = CarbonSolver(inst, small_config()).run();
  ASSERT_FALSE(r.best_heuristic.empty());
  EXPECT_TRUE(r.best_heuristic.valid());
  EXPECT_LT(r.best_heuristic_gap, 1e6);
}

TEST(CarbonSolver, EvolvedHeuristicBeatsTheWorstRandomOne) {
  // The champion's mean gap should at least not be catastrophic: it must
  // be below the gap of a deliberately terrible heuristic (most expensive
  // bundle first).
  const bcpop::Instance inst = small_instance();
  const CarbonResult r = CarbonSolver(inst, small_config()).run();
  bcpop::Evaluator eval(inst);
  common::Rng rng(1);
  const auto pricing = ea::random_real_vector(rng, inst.price_bounds());
  const auto bad = eval.evaluate_with_score(
      pricing, [](const cover::BundleFeatures& f) { return f.cost; });
  const auto good = eval.evaluate_with_heuristic(pricing, r.best_heuristic);
  EXPECT_LE(good.gap_percent, bad.gap_percent + 1e-9);
}

TEST(CarbonSolver, GapFitnessAtLeastMatchesValueFitnessVariant) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  const CarbonResult gap_r = CarbonSolver(inst, cfg).run();
  cfg.predator_fitness = PredatorFitness::kValue;
  const CarbonResult val_r = CarbonSolver(inst, cfg).run();
  // Not a strict dominance claim at this scale — but the gap variant must
  // stay in the same league (within 2x) and usually wins.
  EXPECT_LE(gap_r.best_gap, 2.0 * val_r.best_gap + 1.0);
}

TEST(CarbonSolver, PessimisticStanceIsMoreConservative) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  const CarbonResult optimistic = CarbonSolver(inst, cfg).run();
  cfg.stance = Stance::kPessimistic;
  cfg.follower_ensemble = 3;
  const CarbonResult pessimistic = CarbonSolver(inst, cfg).run();
  ASSERT_TRUE(pessimistic.best_evaluation.ll_feasible);
  // The pessimistic score is a min over follower models: the revenue it
  // reports cannot be wildly above the optimistic one (same seeds, same
  // budget; small slack for trajectory divergence).
  EXPECT_LE(pessimistic.best_ul_objective,
            optimistic.best_ul_objective * 1.5 + 1.0);
}

TEST(CarbonSolver, PessimisticStanceIsDeterministic) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  cfg.stance = Stance::kPessimistic;
  cfg.follower_ensemble = 2;
  const CarbonResult a = CarbonSolver(inst, cfg).run();
  const CarbonResult b = CarbonSolver(inst, cfg).run();
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
}

TEST(CarbonSolver, MemeticVariantRunsAndIsDeterministic) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  cfg.memetic_polish = true;
  const CarbonResult a = CarbonSolver(inst, cfg).run();
  const CarbonResult b = CarbonSolver(inst, cfg).run();
  ASSERT_TRUE(a.best_evaluation.ll_feasible);
  EXPECT_DOUBLE_EQ(a.best_gap, b.best_gap);
}

TEST(CarbonSolver, TraceRecordsGpDiversity) {
  const bcpop::Instance inst = small_instance();
  const CarbonResult r = CarbonSolver(inst, small_config()).run();
  ASSERT_FALSE(r.convergence.empty());
  for (const auto& pt : r.convergence) {
    ASSERT_GT(pt.gp_unique_fraction, 0.0);
    ASSERT_LE(pt.gp_unique_fraction, 1.0);
    ASSERT_GE(pt.gp_mean_tree_size, 1.0);
  }
}

TEST(CarbonSolver, InvalidConfigsThrow) {
  const bcpop::Instance inst = small_instance();
  CarbonConfig cfg = small_config();
  cfg.ul_population_size = 1;
  EXPECT_THROW(CarbonSolver(inst, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.heuristic_sample_size = 0;
  EXPECT_THROW(CarbonSolver(inst, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace carbon::core
